//! The compiled classification engine: tuple-space search over
//! [`MatchSpec`]s.
//!
//! A linear scan evaluates every installed rule per flow. Real rule sets
//! are highly regular, though: almost all of Stellar's rules share a
//! handful of *shapes* ("dst /32 + protocol + exact source port",
//! "dst /32 only", ...). Tuple-space search exploits that regularity by
//! grouping rules into **tuples** — one per distinct wildcard-mask
//! signature — and storing each tuple's rules in a hash table keyed by
//! the concrete values of the signature's exact-match fields. A lookup
//! masks the flow key once per tuple and probes one bucket, so its cost
//! scales with the number of distinct signatures, not the number of
//! rules.
//!
//! Port *ranges* and anything else a hash cannot express stay inside the
//! tuple as residuals: the hash probe only prefilters, and every
//! candidate is confirmed with the full [`MatchSpec::matches`] predicate
//! before it can win. That makes the engine behavior-identical to the
//! linear scan by construction — the hash can produce false positives
//! (rejected by the confirmation) but never false negatives, because
//! every hashed dimension is a necessary condition of the spec.
//!
//! First-match semantics: the winning rule is the matching rule with the
//! minimal `(priority, id)` rank — exactly what a `find` over rules
//! sorted by `(priority, id)` returns. Tuples are visited in ascending
//! order of their minimal rank so the search can stop as soon as the
//! best match so far outranks everything a later tuple could contain.

use crate::spec::{MatchSpec, PortMatch};
use std::collections::HashMap;
use stellar_net::addr::IpAddress;
use stellar_net::flow::FlowKey;
use stellar_net::mac::MacAddr;
use stellar_net::prefix::{Ipv4Prefix, Ipv6Prefix, Prefix};
use stellar_net::proto::IpProtocol;

/// Stable rule identifier (assigned by the manager).
pub type RuleId = u64;

/// Evaluation rank: lower wins, ties broken by id — the same order a
/// linear scan over rules sorted by `(priority, id)` evaluates in.
type Rank = (u16, RuleId);

/// One rule as the engine sees it: identity, evaluation priority, and the
/// match spec. Actions live with the caller (the engine answers "which
/// rule", not "what to do").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleEntry {
    /// Stable rule identifier.
    pub id: RuleId,
    /// Lower value = evaluated earlier.
    pub priority: u16,
    /// Match specification.
    pub spec: MatchSpec,
}

impl RuleEntry {
    /// Creates an entry.
    pub fn new(id: RuleId, priority: u16, spec: MatchSpec) -> Self {
        RuleEntry { id, priority, spec }
    }
}

/// How a port dimension participates in a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PortDim {
    /// Wildcard: not part of the tuple key.
    Wild,
    /// Exact port: hashed.
    Exact,
    /// Port range: residual, confirmed in-bucket.
    Range,
}

impl PortDim {
    fn of(pm: Option<&PortMatch>) -> Self {
        match pm {
            None => PortDim::Wild,
            Some(PortMatch::Exact(_)) => PortDim::Exact,
            Some(PortMatch::Range(..)) => PortDim::Range,
        }
    }
}

/// The wildcard-mask signature of a spec: which fields are constrained,
/// and for prefixes, the family and mask length. Specs with equal
/// signatures land in the same tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TupleSig {
    src_mac: bool,
    dst_mac: bool,
    /// `(is_v4, prefix_len)` when constrained.
    src_ip: Option<(bool, u8)>,
    dst_ip: Option<(bool, u8)>,
    protocol: bool,
    src_port: PortDim,
    dst_port: PortDim,
}

impl TupleSig {
    fn of(spec: &MatchSpec) -> Self {
        let ip_sig = |p: &Option<Prefix>| p.as_ref().map(|p| (p.is_v4(), p.len()));
        TupleSig {
            src_mac: spec.src_mac.is_some(),
            dst_mac: spec.dst_mac.is_some(),
            src_ip: ip_sig(&spec.src_ip),
            dst_ip: ip_sig(&spec.dst_ip),
            protocol: spec.protocol.is_some(),
            src_port: PortDim::of(spec.src_port.as_ref()),
            dst_port: PortDim::of(spec.dst_port.as_ref()),
        }
    }

    /// True if any port dimension is constrained — such rules can never
    /// match a portless protocol, so those flows skip the tuple outright.
    fn needs_ports(&self) -> bool {
        self.src_port != PortDim::Wild || self.dst_port != PortDim::Wild
    }
}

/// The concrete hashed values of a signature's exact fields. Wildcard and
/// residual dimensions are `None` on both the rule side and the flow
/// side, so they never desynchronize the probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TupleKey {
    src_mac: Option<MacAddr>,
    dst_mac: Option<MacAddr>,
    /// Masked network address (already canonical on the rule side).
    src_ip: Option<IpAddress>,
    dst_ip: Option<IpAddress>,
    protocol: Option<IpProtocol>,
    src_port: Option<u16>,
    dst_port: Option<u16>,
}

/// Masks `addr` to the tuple's prefix dimension; `None` when the address
/// family disagrees (the tuple cannot match such flows at all).
fn mask_ip(addr: IpAddress, is_v4: bool, len: u8) -> Option<IpAddress> {
    match (addr, is_v4) {
        (IpAddress::V4(a), true) => Ipv4Prefix::new(a, len)
            .ok()
            .map(|p| IpAddress::V4(p.addr())),
        (IpAddress::V6(a), false) => Ipv6Prefix::new(a, len)
            .ok()
            .map(|p| IpAddress::V6(p.addr())),
        _ => None,
    }
}

impl TupleKey {
    /// The bucket key a rule is stored under.
    fn for_rule(spec: &MatchSpec) -> Self {
        let exact_port = |pm: &Option<PortMatch>| match pm {
            Some(PortMatch::Exact(p)) => Some(*p),
            _ => None,
        };
        TupleKey {
            src_mac: spec.src_mac,
            dst_mac: spec.dst_mac,
            src_ip: spec.src_ip.as_ref().map(|p| p.network()),
            dst_ip: spec.dst_ip.as_ref().map(|p| p.network()),
            protocol: spec.protocol,
            src_port: exact_port(&spec.src_port),
            dst_port: exact_port(&spec.dst_port),
        }
    }

    /// The bucket key a flow probes a tuple with, or `None` when the
    /// tuple provably cannot match the flow (family mismatch, port
    /// criteria on a portless protocol).
    fn for_flow(sig: &TupleSig, key: &FlowKey) -> Option<Self> {
        if sig.needs_ports() && !key.protocol.has_ports() {
            return None;
        }
        let mask_dim = |dim: Option<(bool, u8)>, addr: IpAddress| match dim {
            None => Some(None),
            Some((is_v4, len)) => mask_ip(addr, is_v4, len).map(Some),
        };
        Some(TupleKey {
            src_mac: sig.src_mac.then_some(key.src_mac),
            dst_mac: sig.dst_mac.then_some(key.dst_mac),
            src_ip: mask_dim(sig.src_ip, key.src_ip)?,
            dst_ip: mask_dim(sig.dst_ip, key.dst_ip)?,
            protocol: sig.protocol.then_some(key.protocol),
            src_port: (sig.src_port == PortDim::Exact).then_some(key.src_port),
            dst_port: (sig.dst_port == PortDim::Exact).then_some(key.dst_port),
        })
    }
}

/// One tuple: all rules sharing a signature, bucketed by exact values.
#[derive(Debug)]
struct Tuple {
    /// Minimal rank across the tuple — the best any rule in here can do.
    min_rank: Rank,
    /// Rules in the tuple (across all buckets).
    len: usize,
    /// Bucket lists are kept sorted ascending by rank.
    buckets: HashMap<TupleKey, Vec<Rank>>,
}

/// Reusable worklists for [`ClassifyEngine::classify_batch_into`].
/// Cleared, never shrunk, between batches — own one per hot call site
/// and the steady-state batch path allocates nothing.
#[derive(Debug, Default)]
pub struct ClassifyScratch {
    /// Best rank found so far per key (index-aligned with the batch).
    best: Vec<Option<Rank>>,
    /// Keys still in play for the current tuple sweep.
    undecided: Vec<u32>,
    /// Double buffer for the next sweep's worklist.
    next: Vec<u32>,
}

impl ClassifyScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The compiled classification engine. See the module docs for the
/// data-structure story; the API is plain: [`insert`](Self::insert) /
/// [`remove`](Self::remove) rules incrementally (or
/// [`compile`](Self::compile) a whole set), then
/// [`classify`](Self::classify) keys one at a time or in
/// [batches](Self::classify_batch).
#[derive(Debug, Default)]
pub struct ClassifyEngine {
    /// Rule store plus each rule's location for O(1) removal.
    rules: HashMap<RuleId, (RuleEntry, TupleSig, TupleKey)>,
    tuples: HashMap<TupleSig, Tuple>,
    /// Signatures in ascending `min_rank` order — the probe order.
    order: Vec<TupleSig>,
}

impl ClassifyEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles a rule set in one go. Later entries replace earlier ones
    /// with the same id, matching incremental `insert` semantics.
    ///
    /// The probe order is rebuilt once after the whole set is loaded, not
    /// per entry — `insert` in a loop would sort the signature order R
    /// times (O(R·T log T) for T tuples), which dominated compile time on
    /// 10k-rule sets.
    pub fn compile(entries: impl IntoIterator<Item = RuleEntry>) -> Self {
        let mut engine = Self::new();
        for e in entries {
            engine.insert_unordered(e);
        }
        engine.rebuild_order();
        engine
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of distinct tuples (wildcard-mask signatures) — the factor
    /// a lookup's cost actually scales with.
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Installs a rule, replacing any rule with the same id.
    pub fn insert(&mut self, entry: RuleEntry) {
        self.insert_unordered(entry);
        self.rebuild_order();
    }

    /// [`insert`](Self::insert) without the probe-order rebuild — bulk
    /// loaders ([`compile`](Self::compile)) call this in a loop and sort
    /// the order once at the end.
    fn insert_unordered(&mut self, entry: RuleEntry) {
        self.remove_unordered(entry.id);
        let sig = TupleSig::of(&entry.spec);
        let key = TupleKey::for_rule(&entry.spec);
        let rank: Rank = (entry.priority, entry.id);
        let tuple = self.tuples.entry(sig).or_insert(Tuple {
            min_rank: rank,
            len: 0,
            buckets: HashMap::new(),
        });
        let bucket = tuple.buckets.entry(key).or_default();
        let pos = bucket.partition_point(|r| *r < rank);
        bucket.insert(pos, rank);
        tuple.len += 1;
        tuple.min_rank = tuple.min_rank.min(rank);
        self.rules.insert(entry.id, (entry, sig, key));
    }

    /// Removes a rule by id. Returns true if it existed.
    pub fn remove(&mut self, id: RuleId) -> bool {
        if self.remove_unordered(id) {
            self.rebuild_order();
            true
        } else {
            false
        }
    }

    /// [`remove`](Self::remove) without the probe-order rebuild.
    fn remove_unordered(&mut self, id: RuleId) -> bool {
        let Some((entry, sig, key)) = self.rules.remove(&id) else {
            return false;
        };
        let rank: Rank = (entry.priority, id);
        let tuple = self.tuples.get_mut(&sig).expect("rule location is in sync");
        let bucket = tuple
            .buckets
            .get_mut(&key)
            .expect("rule location is in sync");
        bucket.retain(|r| *r != rank);
        if bucket.is_empty() {
            tuple.buckets.remove(&key);
        }
        tuple.len -= 1;
        if tuple.len == 0 {
            self.tuples.remove(&sig);
        } else if tuple.min_rank == rank {
            tuple.min_rank = tuple
                .buckets
                .values()
                .filter_map(|b| b.first())
                .copied()
                .min()
                .expect("non-empty tuple has a minimal rank");
        }
        true
    }

    /// Removes every rule, returning the removed ids in evaluation order.
    pub fn clear(&mut self) -> Vec<RuleId> {
        let mut ranks: Vec<Rank> = self
            .rules
            .values()
            .map(|(e, _, _)| (e.priority, e.id))
            .collect();
        ranks.sort_unstable();
        self.rules.clear();
        self.tuples.clear();
        self.order.clear();
        ranks.into_iter().map(|(_, id)| id).collect()
    }

    /// The first matching rule id for a key (minimal `(priority, id)`
    /// among matching rules), if any.
    pub fn classify(&self, key: &FlowKey) -> Option<RuleId> {
        let mut best: Option<Rank> = None;
        for sig in &self.order {
            let tuple = &self.tuples[sig];
            if best.is_some_and(|b| b <= tuple.min_rank) {
                // Everything from here on has a worse minimal rank.
                break;
            }
            let Some(probe) = TupleKey::for_flow(sig, key) else {
                continue;
            };
            let Some(bucket) = tuple.buckets.get(&probe) else {
                continue;
            };
            for rank in bucket {
                if best.is_some_and(|b| b <= *rank) {
                    break;
                }
                // Confirm with the full predicate: the hash probe is only
                // a prefilter (residual ranges are checked here).
                if self.rules[&rank.1].0.spec.matches(key) {
                    best = Some(*rank);
                    break;
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Classifies a batch of keys. Equivalent to mapping
    /// [`classify`](Self::classify), amortizing the probe-order setup.
    pub fn classify_batch(&self, keys: &[FlowKey]) -> Vec<Option<RuleId>> {
        let mut out = Vec::new();
        self.classify_batch_into(keys, &mut ClassifyScratch::new(), &mut out);
        out
    }

    /// Batch classification into caller-owned buffers: `out[i]` becomes
    /// the verdict for `keys[i]`, exactly as [`classify`](Self::classify)
    /// would produce it.
    ///
    /// The search is tuple-major instead of key-major: each tuple is
    /// fetched once and probed by every still-undecided key, so the
    /// per-tuple hash lookup and the probe-order walk are amortized
    /// across the whole batch. Keys retire from the worklist as soon as
    /// their best match outranks everything later tuples could hold —
    /// the same early exit the single-key path takes. `scratch` keeps
    /// the worklists alive across calls so a steady-state tick makes no
    /// allocations here.
    pub fn classify_batch_into(
        &self,
        keys: &[FlowKey],
        scratch: &mut ClassifyScratch,
        out: &mut Vec<Option<RuleId>>,
    ) {
        let ClassifyScratch {
            best,
            undecided,
            next,
        } = scratch;
        best.clear();
        best.resize(keys.len(), None);
        undecided.clear();
        undecided.extend(0..keys.len() as u32);
        for sig in &self.order {
            if undecided.is_empty() {
                break;
            }
            let tuple = &self.tuples[sig];
            next.clear();
            for &i in undecided.iter() {
                let slot = &mut best[i as usize];
                if slot.is_some_and(|b| b <= tuple.min_rank) {
                    // Decided: tuples are visited in ascending min_rank,
                    // so nothing later can beat this key's match. Drop it
                    // from the worklist for good.
                    continue;
                }
                if let Some(probe) = TupleKey::for_flow(sig, &keys[i as usize]) {
                    if let Some(bucket) = tuple.buckets.get(&probe) {
                        for rank in bucket {
                            if slot.is_some_and(|b| b <= *rank) {
                                break;
                            }
                            if self.rules[&rank.1].0.spec.matches(&keys[i as usize]) {
                                *slot = Some(*rank);
                                break;
                            }
                        }
                    }
                }
                next.push(i);
            }
            std::mem::swap(undecided, next);
        }
        out.clear();
        out.extend(best.iter().map(|b| b.map(|(_, id)| id)));
    }

    /// The installed entry for an id.
    pub fn rule(&self, id: RuleId) -> Option<&RuleEntry> {
        self.rules.get(&id).map(|(e, _, _)| e)
    }

    fn rebuild_order(&mut self) {
        self.order.clear();
        self.order.extend(self.tuples.keys().copied());
        let tuples = &self.tuples;
        self.order.sort_unstable_by_key(|sig| tuples[sig].min_rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::ports;

    fn key(dst: [u8; 4], proto: IpProtocol, src_port: u16) -> FlowKey {
        FlowKey {
            src_mac: MacAddr::for_member(64500, 1),
            dst_mac: MacAddr::for_member(64501, 1),
            src_ip: IpAddress::V4(Ipv4Address::new(203, 0, 113, 7)),
            dst_ip: IpAddress::V4(Ipv4Address(dst)),
            protocol: proto,
            src_port,
            dst_port: 44444,
            ..FlowKey::default()
        }
    }

    /// The reference semantics the engine must reproduce exactly.
    fn linear(entries: &[RuleEntry], key: &FlowKey) -> Option<RuleId> {
        let mut sorted: Vec<&RuleEntry> = entries.iter().collect();
        sorted.sort_by_key(|e| (e.priority, e.id));
        sorted.iter().find(|e| e.spec.matches(key)).map(|e| e.id)
    }

    fn ntp_entry(id: RuleId, priority: u16, dst: &str) -> RuleEntry {
        RuleEntry::new(
            id,
            priority,
            MatchSpec::proto_src_port_to(dst.parse().unwrap(), IpProtocol::UDP, ports::NTP),
        )
    }

    #[test]
    fn empty_engine_matches_nothing() {
        let e = ClassifyEngine::new();
        assert!(e.is_empty());
        assert_eq!(e.classify(&key([1, 2, 3, 4], IpProtocol::UDP, 123)), None);
    }

    #[test]
    fn same_signature_rules_share_a_tuple() {
        let mut e = ClassifyEngine::new();
        for i in 0..50u64 {
            e.insert(ntp_entry(i, 10, &format!("100.10.10.{i}/32")));
        }
        assert_eq!(e.len(), 50);
        assert_eq!(e.tuple_count(), 1);
        assert_eq!(
            e.classify(&key([100, 10, 10, 7], IpProtocol::UDP, ports::NTP)),
            Some(7)
        );
        assert_eq!(
            e.classify(&key([100, 10, 10, 7], IpProtocol::UDP, ports::DNS)),
            None
        );
    }

    #[test]
    fn first_match_rank_is_priority_then_id() {
        let mut e = ClassifyEngine::new();
        // Same flow matched by three rules with different (priority, id).
        e.insert(ntp_entry(9, 10, "100.10.10.10/32"));
        e.insert(RuleEntry::new(
            5,
            10,
            MatchSpec::to_destination("100.10.10.10/32".parse().unwrap()),
        ));
        let k = key([100, 10, 10, 10], IpProtocol::UDP, ports::NTP);
        // Tie on priority: lower id wins.
        assert_eq!(e.classify(&k), Some(5));
        // A strictly better priority beats both.
        e.insert(RuleEntry::new(
            20,
            1,
            MatchSpec::to_destination("100.10.10.0/24".parse().unwrap()),
        ));
        assert_eq!(e.classify(&k), Some(20));
    }

    #[test]
    fn range_residuals_are_confirmed_in_bucket() {
        let mut e = ClassifyEngine::new();
        e.insert(RuleEntry::new(
            1,
            10,
            MatchSpec {
                protocol: Some(IpProtocol::UDP),
                src_port: Some(PortMatch::Range(8000, 8100)),
                ..Default::default()
            },
        ));
        assert_eq!(
            e.classify(&key([1, 1, 1, 1], IpProtocol::UDP, 8050)),
            Some(1)
        );
        assert_eq!(e.classify(&key([1, 1, 1, 1], IpProtocol::UDP, 7999)), None);
        // Port criterion never matches a portless protocol, even though
        // the ICMP flow key carries src_port 0.
        e.insert(RuleEntry::new(
            2,
            10,
            MatchSpec {
                src_port: Some(PortMatch::Range(0, 65535)),
                ..Default::default()
            },
        ));
        assert_eq!(e.classify(&key([1, 1, 1, 1], IpProtocol::ICMP, 0)), None);
    }

    #[test]
    fn match_all_and_family_mismatch() {
        let mut e = ClassifyEngine::new();
        e.insert(RuleEntry::new(7, 50, MatchSpec::default()));
        e.insert(RuleEntry::new(
            8,
            10,
            MatchSpec::to_destination("2001:db8::1/128".parse().unwrap()),
        ));
        // The v6 rule cannot match a v4 flow; the match-all catches it.
        assert_eq!(e.classify(&key([9, 9, 9, 9], IpProtocol::TCP, 80)), Some(7));
        let mut v6key = key([0, 0, 0, 0], IpProtocol::UDP, 123);
        v6key.dst_ip = IpAddress::V6("2001:db8::1".parse().unwrap());
        assert_eq!(e.classify(&v6key), Some(8));
    }

    #[test]
    fn insert_replaces_and_remove_restores_earlier_match() {
        let mut e = ClassifyEngine::new();
        e.insert(ntp_entry(1, 10, "100.10.10.10/32"));
        e.insert(RuleEntry::new(
            2,
            5,
            MatchSpec::to_destination("100.10.10.10/32".parse().unwrap()),
        ));
        let k = key([100, 10, 10, 10], IpProtocol::UDP, ports::NTP);
        assert_eq!(e.classify(&k), Some(2));
        // Replace rule 2 with a spec that no longer matches the flow.
        e.insert(RuleEntry::new(
            2,
            5,
            MatchSpec::to_destination("100.99.99.99/32".parse().unwrap()),
        ));
        assert_eq!(e.len(), 2);
        assert_eq!(e.classify(&k), Some(1));
        // Removing rule 1 leaves nothing matching.
        assert!(e.remove(1));
        assert!(!e.remove(1));
        assert_eq!(e.classify(&k), None);
        assert_eq!(e.tuple_count(), 1);
    }

    #[test]
    fn incremental_mutations_track_recompilation() {
        // After any interleaving of inserts and removes, the engine must
        // agree with compiling the surviving set from scratch.
        let mut e = ClassifyEngine::new();
        let mut live: Vec<RuleEntry> = Vec::new();
        let specs = [
            MatchSpec::to_destination("100.10.0.0/16".parse().unwrap()),
            MatchSpec::proto_src_port_to("100.10.10.10/32".parse().unwrap(), IpProtocol::UDP, 123),
            MatchSpec {
                protocol: Some(IpProtocol::TCP),
                dst_port: Some(PortMatch::Range(0, 1023)),
                ..Default::default()
            },
            MatchSpec::default(),
        ];
        for (i, spec) in specs.iter().enumerate() {
            let entry = RuleEntry::new(i as u64, (specs.len() - i) as u16, spec.clone());
            e.insert(entry.clone());
            live.push(entry);
        }
        e.remove(1);
        live.retain(|r| r.id != 1);
        let keys = [
            key([100, 10, 10, 10], IpProtocol::UDP, 123),
            key([100, 10, 20, 30], IpProtocol::TCP, 80),
            key([9, 9, 9, 9], IpProtocol::ICMP, 0),
        ];
        let fresh = ClassifyEngine::compile(live.iter().cloned());
        for k in &keys {
            assert_eq!(e.classify(k), fresh.classify(k));
            assert_eq!(e.classify(k), linear(&live, k));
        }
    }

    #[test]
    fn clear_returns_ids_in_evaluation_order() {
        let mut e = ClassifyEngine::new();
        e.insert(ntp_entry(3, 20, "100.10.10.3/32"));
        e.insert(ntp_entry(1, 10, "100.10.10.1/32"));
        e.insert(ntp_entry(2, 10, "100.10.10.2/32"));
        assert_eq!(e.clear(), vec![1, 2, 3]);
        assert!(e.is_empty());
        assert_eq!(e.tuple_count(), 0);
        assert_eq!(e.clear(), Vec::<RuleId>::new());
    }

    #[test]
    fn batch_agrees_with_single_key() {
        let mut e = ClassifyEngine::new();
        e.insert(ntp_entry(1, 10, "100.10.10.10/32"));
        e.insert(RuleEntry::new(2, 90, MatchSpec::default()));
        let keys = vec![
            key([100, 10, 10, 10], IpProtocol::UDP, ports::NTP),
            key([100, 10, 10, 11], IpProtocol::UDP, ports::NTP),
            key([1, 2, 3, 4], IpProtocol::ICMP, 0),
        ];
        let batch = e.classify_batch(&keys);
        let singles: Vec<_> = keys.iter().map(|k| e.classify(k)).collect();
        assert_eq!(batch, singles);
        assert_eq!(batch, vec![Some(1), Some(2), Some(2)]);
    }
}
