//! Route-server invariants under arbitrary member behaviour:
//! - handle_update never panics,
//! - every controller-feed message is wire-encodable under ADD-PATH,
//! - every export is wire-encodable on a plain session,
//! - exports never leak action communities and never target the sender.

use proptest::prelude::*;
use stellar_bgp::attr::{AsPath, PathAttribute};
use stellar_bgp::community::Community;
use stellar_bgp::message::{DecodeCtx, Message};
use stellar_bgp::types::Asn;
use stellar_bgp::update::UpdateMessage;
use stellar_net::addr::Ipv4Address;
use stellar_net::prefix::{Ipv4Prefix, Prefix};
use stellar_routeserver::irr::IrrDb;
use stellar_routeserver::policy::ImportPolicy;
use stellar_routeserver::rpki::RpkiTable;
use stellar_routeserver::server::{RouteServer, RouteServerConfig};

fn server() -> RouteServer {
    let mut irr = IrrDb::new();
    // Broad route objects so a good share of generated updates validates.
    for a in 0..8u32 {
        irr.register(
            Prefix::V4(Ipv4Prefix::new(Ipv4Address::new(100 + a as u8, 0, 0, 0), 8).unwrap()),
            Asn(64500 + a),
        );
    }
    let mut rs = RouteServer::new(
        RouteServerConfig::l_ixp(),
        ImportPolicy::new(irr, RpkiTable::new()),
    );
    for a in 0..8u32 {
        rs.add_peer(Asn(64500 + a), Ipv4Address::new(80, 81, 192, a as u8 + 1));
    }
    rs
}

fn arb_update() -> impl Strategy<Value = (u32, UpdateMessage)> {
    (
        0u32..8,                                       // peer index
        any::<[u8; 4]>(),                              // prefix bits
        8u8..=32,                                      // prefix len
        proptest::collection::vec(any::<u32>(), 0..4), // communities
        any::<bool>(),                                 // spoof first AS?
        any::<bool>(),                                 // blackhole tag?
        any::<bool>(),                                 // withdraw instead?
    )
        .prop_map(|(peer, octets, len, comms, spoof, blackhole, withdraw)| {
            let asn = 64500 + peer;
            let prefix = Prefix::V4(Ipv4Prefix::new(Ipv4Address(octets), len).unwrap());
            let u = if withdraw {
                UpdateMessage::withdraw(prefix)
            } else {
                let first = if spoof { asn + 1 } else { asn };
                let mut u = UpdateMessage::announce(
                    prefix,
                    Ipv4Address::new(80, 81, 192, peer as u8 + 1),
                    PathAttribute::AsPath(AsPath::sequence([first])),
                );
                let mut cs: Vec<Community> = comms.into_iter().map(Community).collect();
                if blackhole {
                    cs.push(Community::new(6695, 666));
                }
                if !cs.is_empty() {
                    u.add_communities(&cs);
                }
                u
            };
            (peer, u)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn outputs_are_wire_clean_under_arbitrary_inputs(
        updates in proptest::collection::vec(arb_update(), 1..24),
    ) {
        let mut rs = server();
        let plain = DecodeCtx { add_path: false };
        let add_path = DecodeCtx { add_path: true };
        for (t, (peer, u)) in updates.into_iter().enumerate() {
            let sender = Asn(64500 + peer);
            let out = rs.handle_update(sender, &u, t as u64);
            for (target, export) in &out.exports {
                // Never export back to the sender.
                prop_assert_ne!(*target, sender);
                // Exports must encode on a plain eBGP session.
                let wire = Message::Update(export.clone()).encode(plain);
                prop_assert!(wire.is_ok(), "export not encodable: {export:?}");
                // Action communities must be stripped.
                for c in export.communities() {
                    prop_assert!(
                        c.asn() != 0,
                        "action community {c} leaked in export"
                    );
                }
            }
            for feed in &out.controller_updates {
                // The controller feed must encode under ADD-PATH, and
                // every announced/withdrawn entry must carry a path id.
                let wire = Message::Update(feed.clone()).encode(add_path);
                prop_assert!(wire.is_ok(), "feed not encodable: {feed:?}");
                for n in feed.nlri.iter().chain(feed.withdrawn.iter()) {
                    prop_assert!(n.path_id.is_some());
                }
            }
        }
        // Tearing every peer down afterwards must also be clean.
        for a in 0..8u32 {
            let out = rs.peer_down(Asn(64500 + a));
            for (_, export) in &out.exports {
                prop_assert!(Message::Update(export.clone()).encode(plain).is_ok());
            }
            for feed in &out.controller_updates {
                prop_assert!(Message::Update(feed.clone()).encode(add_path).is_ok());
            }
        }
    }
}
