//! A minimal Internet Routing Registry (IRR) database: route objects
//! binding prefixes to the AS numbers allowed to originate them.
//!
//! "Typically, the IXPs require the members to register the ownership of
//! their prefixes in Internet Routing Registries (IRR), and check before
//! they accept announcements of prefixes at the route server" (§2.2 fn. 3).

use std::collections::{BTreeMap, BTreeSet};
use stellar_bgp::types::Asn;
use stellar_net::prefix::Prefix;

/// An IRR database of route objects.
#[derive(Debug, Default, Clone)]
pub struct IrrDb {
    // prefix -> set of origin ASNs with a route object for it.
    objects: BTreeMap<Prefix, BTreeSet<Asn>>,
}

impl IrrDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a route object `prefix` → `origin`.
    pub fn register(&mut self, prefix: Prefix, origin: Asn) {
        self.objects.entry(prefix).or_default().insert(origin);
    }

    /// Removes a route object. Returns true if it existed.
    pub fn deregister(&mut self, prefix: Prefix, origin: Asn) -> bool {
        if let Some(set) = self.objects.get_mut(&prefix) {
            let removed = set.remove(&origin);
            if set.is_empty() {
                self.objects.remove(&prefix);
            }
            removed
        } else {
            false
        }
    }

    /// True if `origin` may announce `prefix`: there is a route object for
    /// the exact prefix or for any covering aggregate ("this does not
    /// interfere with prefix delegations", §4.3) — so a /32 blackhole
    /// announcement validates against the owner's registered /24.
    pub fn validates(&self, prefix: &Prefix, origin: Asn) -> bool {
        self.objects
            .iter()
            .any(|(registered, origins)| registered.covers(prefix) && origins.contains(&origin))
    }

    /// Number of route objects (prefix, origin) pairs.
    pub fn len(&self) -> usize {
        self.objects.values().map(|s| s.len()).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn exact_and_covering_validation() {
        let mut irr = IrrDb::new();
        irr.register(p("100.10.10.0/24"), Asn(64500));
        assert!(irr.validates(&p("100.10.10.0/24"), Asn(64500)));
        // The /32 blackhole announcement validates via the covering /24.
        assert!(irr.validates(&p("100.10.10.10/32"), Asn(64500)));
        // A different origin does not validate.
        assert!(!irr.validates(&p("100.10.10.10/32"), Asn(64501)));
        // A shorter (covering) announcement does not validate via a
        // longer registered object.
        assert!(!irr.validates(&p("100.10.0.0/16"), Asn(64500)));
        // Unrelated prefix.
        assert!(!irr.validates(&p("9.9.9.0/24"), Asn(64500)));
    }

    #[test]
    fn multiple_origins_per_prefix() {
        let mut irr = IrrDb::new();
        irr.register(p("100.10.10.0/24"), Asn(64500));
        irr.register(p("100.10.10.0/24"), Asn(64501));
        assert!(irr.validates(&p("100.10.10.0/24"), Asn(64500)));
        assert!(irr.validates(&p("100.10.10.0/24"), Asn(64501)));
        assert_eq!(irr.len(), 2);
    }

    #[test]
    fn deregistration() {
        let mut irr = IrrDb::new();
        irr.register(p("100.10.10.0/24"), Asn(64500));
        assert!(irr.deregister(p("100.10.10.0/24"), Asn(64500)));
        assert!(!irr.deregister(p("100.10.10.0/24"), Asn(64500)));
        assert!(irr.is_empty());
        assert!(!irr.validates(&p("100.10.10.0/24"), Asn(64500)));
    }

    #[test]
    fn v6_objects() {
        let mut irr = IrrDb::new();
        irr.register(p("2001:db8::/32"), Asn(64500));
        assert!(irr.validates(&p("2001:db8::1/128"), Asn(64500)));
        assert!(!irr.validates(&p("2001:db9::/32"), Asn(64500)));
    }
}
