//! Route-server action communities: the per-peer announcement control
//! members attach to their announcements (§2.2 "selective advertisements
//! to certain peers or advertisements to all/none").
//!
//! The conventional encoding at large European IXPs:
//!
//! - `0:<ixp-asn>`   — announce to **no** peer (then whitelist),
//! - `<ixp-asn>:<peer-asn>` — **do** announce to that peer,
//! - `0:<peer-asn>`  — do **not** announce to that peer,
//! - no action community — announce to all.
//!
//! Fig. 3(b) classifies blackholing announcements by the scope these
//! communities express: "All", "All−k" (all except k peers), or an
//! explicit whitelist of k peers.

use stellar_bgp::community::Community;
use stellar_bgp::types::Asn;

/// Whether an announcement tagged with `communities` should be exported to
/// `target`. `ixp_asn` is the route server's AS (must fit 16 bits for the
/// classic encoding).
pub fn should_announce(communities: &[Community], target: Asn, ixp_asn: Asn) -> bool {
    let ixp16 = ixp_asn.0 as u16;
    let target16 = target.0 as u16;
    let block_all = communities
        .iter()
        .any(|c| c.asn() == 0 && c.value() == ixp16);
    let explicit_allow = communities
        .iter()
        .any(|c| c.asn() == ixp16 && c.value() == target16);
    let explicit_block = communities
        .iter()
        .any(|c| c.asn() == 0 && c.value() == target16 && c.value() != ixp16);
    if explicit_block {
        return false;
    }
    if block_all {
        return explicit_allow;
    }
    true
}

/// The export scope a community set expresses over a peer population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyScope {
    /// Announce to every peer.
    All,
    /// Announce to all but `n` peers.
    AllExcept(usize),
    /// Announce only to `n` explicitly whitelisted peers.
    Only(usize),
}

impl PolicyScope {
    /// The label used on Fig. 3(b)'s x-axis.
    pub fn label(&self) -> String {
        match self {
            PolicyScope::All => "All".to_string(),
            PolicyScope::AllExcept(n) => format!("All-{n}"),
            PolicyScope::Only(n) => format!("{n}"),
        }
    }
}

/// Classifies a community set the way Fig. 3(b) does.
pub fn classify_scope(communities: &[Community], ixp_asn: Asn) -> PolicyScope {
    let ixp16 = ixp_asn.0 as u16;
    let block_all = communities
        .iter()
        .any(|c| c.asn() == 0 && c.value() == ixp16);
    if block_all {
        let allowed = communities
            .iter()
            .filter(|c| c.asn() == ixp16 && c.value() != 666)
            .count();
        PolicyScope::Only(allowed)
    } else {
        let blocked = communities
            .iter()
            .filter(|c| c.asn() == 0 && c.value() != ixp16)
            .count();
        if blocked == 0 {
            PolicyScope::All
        } else {
            PolicyScope::AllExcept(blocked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IXP: Asn = Asn(6695);

    #[test]
    fn default_is_announce_to_all() {
        assert!(should_announce(&[], Asn(64500), IXP));
        assert!(should_announce(&[Community::BLACKHOLE], Asn(64500), IXP));
        assert_eq!(classify_scope(&[], IXP), PolicyScope::All);
    }

    #[test]
    fn block_one_peer() {
        let cs = [Community::new(0, 64500)];
        assert!(!should_announce(&cs, Asn(64500), IXP));
        assert!(should_announce(&cs, Asn(64501), IXP));
        assert_eq!(classify_scope(&cs, IXP), PolicyScope::AllExcept(1));
        assert_eq!(classify_scope(&cs, IXP).label(), "All-1");
    }

    #[test]
    fn announce_to_none_with_whitelist() {
        let cs = [
            Community::new(0, 6695),     // block all
            Community::new(6695, 64500), // allow 64500
            Community::new(6695, 64501), // allow 64501
        ];
        assert!(should_announce(&cs, Asn(64500), IXP));
        assert!(should_announce(&cs, Asn(64501), IXP));
        assert!(!should_announce(&cs, Asn(64502), IXP));
        assert_eq!(classify_scope(&cs, IXP), PolicyScope::Only(2));
        assert_eq!(classify_scope(&cs, IXP).label(), "2");
    }

    #[test]
    fn explicit_block_beats_everything() {
        let cs = [
            Community::new(0, 6695),
            Community::new(6695, 64500),
            Community::new(0, 64500),
        ];
        assert!(!should_announce(&cs, Asn(64500), IXP));
    }

    #[test]
    fn blackhole_community_does_not_affect_scope() {
        // IXP:666 is the blackhole tag, not a whitelist entry.
        let cs = [Community::new(6695, 666)];
        assert_eq!(classify_scope(&cs, IXP), PolicyScope::All);
        let cs = [
            Community::new(0, 6695),
            Community::new(6695, 666),
            Community::new(6695, 64500),
        ];
        assert_eq!(classify_scope(&cs, IXP), PolicyScope::Only(1));
    }

    #[test]
    fn multiple_excludes_classify_as_all_minus_k() {
        let cs: Vec<Community> = (0..5).map(|i| Community::new(0, 64500 + i)).collect();
        assert_eq!(classify_scope(&cs, IXP), PolicyScope::AllExcept(5));
        assert_eq!(classify_scope(&cs, IXP).label(), "All-5");
    }
}
