//! # stellar-routeserver
//!
//! The IXP route server (§2.1, §4.3): the member-facing control-plane
//! interface that Stellar's signaling layer is built on.
//!
//! - [`irr`], [`rpki`], [`bogon`] — the validation databases behind the
//!   IXP's "routing hygiene" import policy ("each member can only announce
//!   prefixes that are not in conflict with Internet Route Registry
//!   databases, BOGONS, and RPKI validation", §4.3);
//! - [`policy`] — the import policy combining them, including the
//!   more-specific-than-/24 exception for blackhole-tagged host routes;
//! - [`flowspec`] — RFC 9117 validation of FlowSpec (SAFI 133)
//!   announcements: a member may only announce flow rules whose embedded
//!   destination prefix it is the validated originator of;
//! - [`control`] — route-server action communities (announce to
//!   all / none / selected peers) and their classification, which is what
//!   Fig. 3(b) measures;
//! - [`server`] — the route server itself: per-peer Adj-RIB-In, export
//!   policy, RTBH next-hop rewriting, and the southbound ADD-PATH feed to
//!   the blackholing controller;
//! - [`looking_glass`] — the debugging view members use (§4.3).

pub mod bogon;
pub mod control;
pub mod flowspec;
pub mod irr;
pub mod looking_glass;
pub mod policy;
pub mod rpki;
pub mod server;

pub use control::{classify_scope, should_announce, PolicyScope};
pub use flowspec::{
    validate_flowspec, AcceptedFlowSpec, FlowSpecOutput, FlowSpecRejectReason, FlowSpecStats,
};
pub use irr::IrrDb;
pub use policy::{ImportPolicy, RejectReason};
pub use rpki::{RpkiStatus, RpkiTable};
pub use server::{RouteServer, RouteServerConfig, RouteServerOutput};
