//! The route server: multilateral peering with import policy, action
//! communities, RTBH next-hop rewriting, and the southbound ADD-PATH feed
//! to Stellar's blackholing controller (§4.3).
//!
//! "Notably, as opposed to RTBH, the route server does not reflect
//! \[Stellar\] signals back to the other members" — the server forwards
//! *everything* to the controller (tagging each peer's path with a
//! distinct ADD-PATH id to bypass best-path selection) while exporting to
//! members only what the action communities allow.

use crate::control::should_announce;
use crate::flowspec::{
    action_communities, validate_flowspec, AcceptedFlowSpec, FlowSpecOutput, FlowSpecStats,
};
use crate::policy::{ImportPolicy, RejectReason};
use std::collections::{BTreeMap, HashMap};
use stellar_bgp::attr::PathAttribute;
use stellar_bgp::community::Community;
use stellar_bgp::nlri::Nlri;
use stellar_bgp::rib::{AdjRibIn, PeerId};
use stellar_bgp::types::Asn;
use stellar_bgp::types::{Afi, Safi};
use stellar_bgp::update::UpdateMessage;
use stellar_net::addr::{IpAddress, Ipv4Address, Ipv6Address};
use stellar_net::prefix::Prefix;

/// Static route-server configuration.
#[derive(Debug, Clone)]
pub struct RouteServerConfig {
    /// The IXP's AS number (also the blackhole community namespace).
    pub ixp_asn: Asn,
    /// The route server's BGP identifier.
    pub bgp_id: Ipv4Address,
    /// The next hop installed on blackhole-tagged exports — traffic sent
    /// there lands on the IXP's null interface (§2.2).
    pub blackhole_next_hop: Ipv4Address,
    /// The IPv6 blackholing next hop (for MP-BGP blackhole exports).
    pub blackhole_next_hop_v6: Ipv6Address,
}

impl RouteServerConfig {
    /// A configuration resembling L-IXP's.
    pub fn l_ixp() -> Self {
        RouteServerConfig {
            ixp_asn: Asn(6695),
            bgp_id: Ipv4Address::new(80, 81, 192, 157),
            blackhole_next_hop: Ipv4Address::new(80, 81, 193, 253),
            blackhole_next_hop_v6: "2001:7f8:0:1::dead".parse().expect("static addr parses"),
        }
    }
}

/// What handling one member UPDATE produced.
#[derive(Debug, Default)]
pub struct RouteServerOutput {
    /// Per-target-member exports.
    pub exports: Vec<(Asn, UpdateMessage)>,
    /// The southbound feed: ADD-PATH-tagged updates for the blackholing
    /// controller.
    pub controller_updates: Vec<UpdateMessage>,
    /// Announcements refused by the import policy.
    pub rejections: Vec<(Prefix, RejectReason)>,
    /// FlowSpec rules flushed by a session-down event (the only unicast
    /// code path that also touches the FlowSpec RIB; explicit FlowSpec
    /// traffic goes through [`RouteServer::handle_flowspec_update`]).
    pub flowspec_withdrawn: Vec<(Asn, stellar_bgp::flowspec::FlowSpec)>,
}

/// Import statistics (exposed via the looking glass).
#[derive(Debug, Default, Clone)]
pub struct ImportStats {
    /// Announcement NLRI entries received from members (accepted or not).
    pub announced: u64,
    /// Withdrawals that actually removed a route (explicit withdrawals
    /// plus session-down flushes; duplicate withdrawals do not count).
    pub withdrawn: u64,
    /// Accepted announcements.
    pub accepted: u64,
    /// Rejected announcements by reason.
    pub rejected: HashMap<&'static str, u64>,
}

impl ImportStats {
    /// Publishes the import counters. Rejection reasons land under
    /// `routeserver.rejected.<reason>`; the registry keys are sorted, so
    /// the export order is stable regardless of `HashMap` iteration.
    pub fn observe(&self, reg: &mut stellar_obs::MetricsRegistry) {
        reg.counter_set("routeserver.announced", self.announced);
        reg.counter_set("routeserver.withdrawn", self.withdrawn);
        reg.counter_set("routeserver.accepted", self.accepted);
        let total_rejected: u64 = self.rejected.values().sum();
        reg.counter_set("routeserver.rejected", total_rejected);
        for (reason, n) in &self.rejected {
            reg.counter_set(&format!("routeserver.rejected.{reason}"), *n);
        }
    }
}

struct PeerState {
    rib: AdjRibIn,
    bgp_id: Ipv4Address,
}

/// The route server.
pub struct RouteServer {
    config: RouteServerConfig,
    policy: ImportPolicy,
    peers: BTreeMap<Asn, PeerState>,
    /// Stable ADD-PATH id per (announcing peer, prefix) for the
    /// controller feed.
    path_ids: HashMap<(Asn, Prefix), u32>,
    next_path_id: u32,
    stats: ImportStats,
    /// Accepted FlowSpec rules keyed by (owner, canonical NLRI bytes):
    /// re-announcing the same NLRI replaces the stored actions, as BGP
    /// implicit-withdraw semantics require.
    flowspec_rib: BTreeMap<(Asn, Vec<u8>), AcceptedFlowSpec>,
    flowspec_stats: FlowSpecStats,
}

impl RouteServer {
    /// Creates a route server.
    pub fn new(config: RouteServerConfig, policy: ImportPolicy) -> Self {
        RouteServer {
            config,
            policy,
            peers: BTreeMap::new(),
            path_ids: HashMap::new(),
            next_path_id: 1,
            stats: ImportStats::default(),
            flowspec_rib: BTreeMap::new(),
            flowspec_stats: FlowSpecStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RouteServerConfig {
        &self.config
    }

    /// Import statistics.
    pub fn stats(&self) -> &ImportStats {
        &self.stats
    }

    /// FlowSpec import statistics.
    pub fn flowspec_stats(&self) -> &FlowSpecStats {
        &self.flowspec_stats
    }

    /// Publishes the import counters into a metrics registry.
    pub fn observe(&self, reg: &mut stellar_obs::MetricsRegistry) {
        self.stats.observe(reg);
        self.flowspec_stats.observe(reg);
    }

    /// Mutable access to the import policy (IRR/RPKI updates).
    pub fn policy_mut(&mut self) -> &mut ImportPolicy {
        &mut self.policy
    }

    /// Registers a member session (multi-lateral peering, §2.1).
    pub fn add_peer(&mut self, asn: Asn, bgp_id: Ipv4Address) {
        self.peers.insert(
            asn,
            PeerState {
                rib: AdjRibIn::new(),
                bgp_id,
            },
        );
    }

    /// The registered peers.
    pub fn peer_asns(&self) -> Vec<Asn> {
        self.peers.keys().copied().collect()
    }

    /// All routes currently held for a prefix, across peers (looking
    /// glass support).
    pub fn routes_for(&self, prefix: Prefix) -> Vec<stellar_bgp::rib::Route> {
        self.peers
            .values()
            .flat_map(|p| {
                p.rib
                    .routes_for(prefix)
                    .into_iter()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Handles an UPDATE received from `peer`. Returns exports,
    /// controller feed, and rejections.
    pub fn handle_update(
        &mut self,
        peer: Asn,
        update: &UpdateMessage,
        now_us: u64,
    ) -> RouteServerOutput {
        let mut out = RouteServerOutput::default();
        let Some(state) = self.peers.get(&peer) else {
            return out; // unknown peer: drop silently (session layer
                        // should have prevented this)
        };
        let peer_id = PeerId {
            asn: peer,
            bgp_id: state.bgp_id,
        };

        // Withdrawals first (RFC 4271 processing order): classic IPv4
        // withdrawals plus MP_UNREACH_NLRI entries (IPv6, RFC 4760).
        let mut withdrawals: Vec<Nlri> = update.withdrawn.clone();
        for a in &update.attrs {
            if let PathAttribute::MpUnreach { nlri, .. } = a {
                withdrawals.extend(nlri.iter().copied());
            }
        }
        for w in &withdrawals {
            let delta = self
                .peers
                .get_mut(&peer)
                .expect("peer exists")
                .rib
                .apply_update(
                    peer_id,
                    &UpdateMessage {
                        withdrawn: vec![*w],
                        attrs: vec![],
                        nlri: vec![],
                    },
                    now_us,
                );
            if delta.withdrawn.is_empty() {
                continue; // nothing was actually removed
            }
            self.stats.withdrawn += 1;
            for target in self.peers.keys() {
                if *target != peer {
                    out.exports.push((*target, withdraw_msg(w.prefix, None)));
                }
            }
            if let Some(pid) = self.path_ids.remove(&(peer, w.prefix)) {
                out.controller_updates
                    .push(withdraw_msg(w.prefix, Some(pid)));
            }
        }

        // Announcements.
        let update_path = update.attrs.iter().find_map(|a| match a {
            PathAttribute::AsPath(p) => Some(p.clone()),
            _ => None,
        });
        let first_as = update_path.as_ref().and_then(|p| p.first_as());
        let origin_as = update_path.as_ref().and_then(|p| p.origin_as());
        let communities = update.communities().to_vec();
        // Any extended community in the IXP's own namespace marks the
        // update as an IXP service signal (a Stellar blackholing rule):
        // the /32 acceptance exception applies (§4.3).
        let ixp_service_signal = update.extended_communities().iter().any(|ec| {
            matches!(
                ec,
                stellar_bgp::extcommunity::ExtendedCommunity::TwoOctetAs { asn, .. }
                    if u32::from(*asn) == self.config.ixp_asn.0
            )
        });
        // Classic IPv4 NLRI plus MP_REACH_NLRI entries (IPv6, RFC 4760).
        let mut announcements: Vec<(Nlri, Option<IpAddress>)> =
            update.nlri.iter().map(|n| (*n, None)).collect();
        for a in &update.attrs {
            if let PathAttribute::MpReach { nlri, next_hop, .. } = a {
                announcements.extend(nlri.iter().map(|n| (*n, Some(*next_hop))));
            }
        }
        for (n, mp_next_hop) in &announcements {
            self.stats.announced += 1;
            // Max-prefix: counted against the peer's current Adj-RIB-In.
            if let Some(limit) = self.policy.max_prefixes_per_peer {
                let held = self.peers.get(&peer).expect("peer exists").rib.len();
                if held >= limit {
                    *self
                        .stats
                        .rejected
                        .entry(RejectReason::MaxPrefixExceeded.describe())
                        .or_insert(0) += 1;
                    out.rejections
                        .push((n.prefix, RejectReason::MaxPrefixExceeded));
                    continue;
                }
            }
            match self.policy.validate(
                peer,
                first_as,
                origin_as,
                &n.prefix,
                &communities,
                ixp_service_signal,
                self.config.ixp_asn,
            ) {
                Err(reason) => {
                    *self.stats.rejected.entry(reason.describe()).or_insert(0) += 1;
                    out.rejections.push((n.prefix, reason));
                    continue;
                }
                Ok(()) => {
                    self.stats.accepted += 1;
                }
            }
            // Store in the peer's Adj-RIB-In.
            let stored = UpdateMessage {
                withdrawn: vec![],
                attrs: update.attrs.clone(),
                nlri: vec![*n],
            };
            self.peers
                .get_mut(&peer)
                .expect("peer exists")
                .rib
                .apply_update(peer_id, &stored, now_us);

            // Exports to the other members.
            let is_blackhole = communities
                .iter()
                .any(|c| c.is_blackhole(self.config.ixp_asn));
            let export_msg = self.build_export(update, *n, *mp_next_hop, is_blackhole);
            for target in self.peers.keys() {
                if *target == peer {
                    continue;
                }
                if should_announce(&communities, *target, self.config.ixp_asn) {
                    out.exports.push((*target, export_msg.clone()));
                }
            }

            // Controller feed: every accepted path, ADD-PATH tagged,
            // with the *original* attributes (the controller needs the
            // extended communities and true next hop).
            let pid = *self.path_ids.entry((peer, n.prefix)).or_insert_with(|| {
                let id = self.next_path_id;
                self.next_path_id += 1;
                id
            });
            out.controller_updates
                .push(controller_feed(update, *n, *mp_next_hop, pid));
        }
        out
    }

    /// Handles a FlowSpec UPDATE received from `peer` (SAFI 133 riding in
    /// MP_REACH/MP_UNREACH, RFC 8955): validates each NLRI with the
    /// RFC 9117 procedure and updates the FlowSpec RIB. Accepted rules
    /// are returned for the southbound feed to the blackholing
    /// controller; like Stellar signals they are *not* reflected to the
    /// other members.
    pub fn handle_flowspec_update(&mut self, peer: Asn, update: &UpdateMessage) -> FlowSpecOutput {
        let mut out = FlowSpecOutput::default();
        if !self.peers.contains_key(&peer) {
            return out; // unknown peer: drop silently (session layer
                        // should have prevented this)
        }

        // Withdrawals first (RFC 4271 processing order). Duplicate
        // withdrawals remove nothing and count nothing.
        for a in &update.attrs {
            let PathAttribute::MpUnreachFlowSpec { nlri, .. } = a else {
                continue;
            };
            for flow in nlri {
                let Ok(key) = flow.to_wire() else {
                    continue;
                };
                if let Some(removed) = self.flowspec_rib.remove(&(peer, key)) {
                    self.flowspec_stats.withdrawn += 1;
                    out.withdrawn.push((peer, removed.flow));
                }
            }
        }

        // Announcements.
        let update_path = update.attrs.iter().find_map(|a| match a {
            PathAttribute::AsPath(p) => Some(p.clone()),
            _ => None,
        });
        let first_as = update_path.as_ref().and_then(|p| p.first_as());
        let origin_as = update_path.as_ref().and_then(|p| p.origin_as());
        let actions = action_communities(update.extended_communities());
        for a in &update.attrs {
            let PathAttribute::MpReachFlowSpec { nlri, .. } = a else {
                continue;
            };
            for flow in nlri {
                self.flowspec_stats.announced += 1;
                if let Err(reason) =
                    validate_flowspec(&self.policy, peer, first_as, origin_as, flow)
                {
                    *self
                        .flowspec_stats
                        .rejected
                        .entry(reason.describe())
                        .or_insert(0) += 1;
                    out.rejections.push((flow.clone(), reason));
                    continue;
                }
                // A decoded NLRI always fits the wire-length bound again;
                // guard rather than panic for hand-built oversize flows.
                let Ok(key) = flow.to_wire() else {
                    continue;
                };
                self.flowspec_stats.accepted += 1;
                let accepted = AcceptedFlowSpec {
                    owner: peer,
                    flow: flow.clone(),
                    actions: actions.clone(),
                };
                // Re-announcement of the same NLRI is an implicit
                // withdraw: the stored actions are replaced.
                self.flowspec_rib.insert((peer, key), accepted.clone());
                out.accepted.push(accepted);
            }
        }
        out
    }

    /// The FlowSpec rules currently accepted, in (owner, canonical NLRI)
    /// order (looking glass support, and the controller's resync source
    /// after an iBGP session flap).
    pub fn flowspec_routes(&self) -> Vec<&AcceptedFlowSpec> {
        self.flowspec_rib.values().collect()
    }

    /// True when `owner`'s FlowSpec rule with this canonical wire key is
    /// in the RIB (the watchdog's RIB↔plane consistency probe).
    pub fn flowspec_contains(&self, owner: Asn, wire: &[u8]) -> bool {
        self.flowspec_rib.contains_key(&(owner, wire.to_vec()))
    }

    /// Handles FlowSpec NLRI exactly as received on the wire: decodes
    /// `nlri_bytes` (RFC 8955 length-prefixed NLRIs) and, only if the
    /// *whole* run decodes, builds the UPDATE and runs the normal
    /// [`RouteServer::handle_flowspec_update`] path. Corrupted or
    /// truncated bytes are counted under `malformed` and refused without
    /// touching the `(peer, wire-bytes)` RIB — a damaged announcement
    /// must not poison state keyed on the bytes it failed to carry.
    pub fn handle_flowspec_wire(
        &mut self,
        peer: Asn,
        afi: Afi,
        nlri_bytes: &[u8],
        actions: &[stellar_bgp::extcommunity::ExtendedCommunity],
    ) -> FlowSpecOutput {
        let flows = match stellar_bgp::flowspec::FlowSpec::decode_many(afi, nlri_bytes) {
            Ok(flows) => flows,
            Err(_) => {
                self.flowspec_stats.malformed += 1;
                return FlowSpecOutput::default();
            }
        };
        let mut update = UpdateMessage {
            withdrawn: vec![],
            attrs: vec![
                PathAttribute::AsPath(stellar_bgp::attr::AsPath::sequence([peer.0])),
                PathAttribute::MpReachFlowSpec { afi, nlri: flows },
            ],
            nlri: vec![],
        };
        if !actions.is_empty() {
            update.add_extended_communities(actions);
        }
        self.handle_flowspec_update(peer, &update)
    }

    /// Handles a ROUTE-REFRESH from `target` (RFC 2918): rebuilds the
    /// member's entire view — every other peer's routes, subject to the
    /// same action-community scoping and blackhole next-hop rewriting as
    /// the original exports. This is how a member that flushed its RIB
    /// (or fat-fingered its import filters, §2.4) resynchronizes without
    /// bouncing the session.
    pub fn refresh_exports(&self, target: Asn) -> Vec<UpdateMessage> {
        let mut out = Vec::new();
        if !self.peers.contains_key(&target) {
            return out;
        }
        for (peer_asn, state) in &self.peers {
            if *peer_asn == target {
                continue;
            }
            for route in state.rib.routes() {
                let communities = route.communities();
                if !should_announce(&communities, target, self.config.ixp_asn) {
                    continue;
                }
                let is_blackhole = communities
                    .iter()
                    .any(|c| c.is_blackhole(self.config.ixp_asn));
                let original = UpdateMessage {
                    withdrawn: vec![],
                    attrs: route.attrs.clone(),
                    nlri: vec![],
                };
                let mp_next_hop = route.attrs.iter().find_map(|a| match a {
                    PathAttribute::MpReach { next_hop, .. } => Some(*next_hop),
                    _ => None,
                });
                out.push(self.build_export(&original, route.nlri, mp_next_hop, is_blackhole));
            }
        }
        out
    }

    /// Rebuilds the blackholing controller's southbound view after the
    /// controller's iBGP session comes back from a flap: replays every
    /// route currently held in the Adj-RIBs-In as an ADD-PATH-tagged
    /// controller-feed message, each with its stable path id. The routes
    /// (and their blackholing communities) live in the route server, so
    /// a controller that flushed its state on session loss re-derives
    /// its full desired rule set from this replay.
    pub fn controller_resync(&self) -> Vec<UpdateMessage> {
        let mut out = Vec::new();
        for (peer_asn, state) in &self.peers {
            for route in state.rib.routes() {
                let Some(pid) = self.path_ids.get(&(*peer_asn, route.nlri.prefix)) else {
                    continue;
                };
                let original = UpdateMessage {
                    withdrawn: vec![],
                    attrs: route.attrs.clone(),
                    nlri: vec![],
                };
                let mp_next_hop = route.attrs.iter().find_map(|a| match a {
                    PathAttribute::MpReach { next_hop, .. } => Some(*next_hop),
                    _ => None,
                });
                out.push(controller_feed(&original, route.nlri, mp_next_hop, *pid));
            }
        }
        out
    }

    /// Handles a member session going down: flushes its routes and emits
    /// the implicit withdrawals (to members and to the controller).
    pub fn peer_down(&mut self, peer: Asn) -> RouteServerOutput {
        let mut out = RouteServerOutput::default();
        let Some(state) = self.peers.get_mut(&peer) else {
            return out;
        };
        let flushed = state.rib.flush();
        for route in flushed {
            self.stats.withdrawn += 1;
            let prefix = route.nlri.prefix;
            for target in self.peers.keys() {
                if *target != peer {
                    out.exports.push((*target, withdraw_msg(prefix, None)));
                }
            }
            if let Some(pid) = self.path_ids.remove(&(peer, prefix)) {
                out.controller_updates.push(withdraw_msg(prefix, Some(pid)));
            }
        }
        // A downed session takes its FlowSpec rules with it.
        let flow_keys: Vec<(Asn, Vec<u8>)> = self
            .flowspec_rib
            .keys()
            .filter(|(owner, _)| *owner == peer)
            .cloned()
            .collect();
        for key in flow_keys {
            if let Some(removed) = self.flowspec_rib.remove(&key) {
                self.flowspec_stats.withdrawn += 1;
                out.flowspec_withdrawn.push((peer, removed.flow));
            }
        }
        out
    }

    /// Builds the member-facing export: action communities stripped,
    /// next hop rewritten to the blackhole IP for blackhole-tagged routes.
    /// IPv6 prefixes ride in MP_REACH_NLRI.
    fn build_export(
        &self,
        original: &UpdateMessage,
        n: Nlri,
        mp_next_hop: Option<IpAddress>,
        is_blackhole: bool,
    ) -> UpdateMessage {
        let ixp16 = self.config.ixp_asn.0 as u16;
        let mut attrs: Vec<PathAttribute> = original
            .attrs
            .iter()
            .filter(|a| {
                !matches!(
                    a,
                    PathAttribute::MpReach { .. } | PathAttribute::MpUnreach { .. }
                )
            })
            .cloned()
            .map(|a| match a {
                PathAttribute::Communities(cs) => PathAttribute::Communities(
                    cs.into_iter()
                        .filter(|c| {
                            // Strip action communities; keep blackhole and
                            // informational ones.
                            let action = (c.asn() == 0) || (c.asn() == ixp16 && c.value() != 666);
                            !action || c.is_blackhole(self.config.ixp_asn)
                        })
                        .collect::<Vec<Community>>(),
                ),
                other => other,
            })
            .collect();
        match n.prefix {
            Prefix::V4(_) => {
                if is_blackhole {
                    // Rewrite (or insert) the next hop.
                    let mut rewritten = false;
                    for a in attrs.iter_mut() {
                        if let PathAttribute::NextHop(nh) = a {
                            *nh = self.config.blackhole_next_hop;
                            rewritten = true;
                        }
                    }
                    if !rewritten {
                        attrs.push(PathAttribute::NextHop(self.config.blackhole_next_hop));
                    }
                }
                UpdateMessage {
                    withdrawn: vec![],
                    attrs,
                    nlri: vec![Nlri::plain(n.prefix)],
                }
            }
            Prefix::V6(_) => {
                // IPv6 rides in MP_REACH; the classic NEXT_HOP is
                // meaningless here and dropped.
                attrs.retain(|a| !matches!(a, PathAttribute::NextHop(_)));
                let next_hop = if is_blackhole {
                    IpAddress::V6(self.config.blackhole_next_hop_v6)
                } else {
                    mp_next_hop.unwrap_or(IpAddress::V6(Ipv6Address::UNSPECIFIED))
                };
                attrs.push(PathAttribute::MpReach {
                    afi: Afi::Ipv6,
                    safi: Safi::Unicast,
                    next_hop,
                    nlri: vec![Nlri::plain(n.prefix)],
                });
                UpdateMessage {
                    withdrawn: vec![],
                    attrs,
                    nlri: vec![],
                }
            }
        }
    }
}

/// A withdrawal message for `prefix`, family-appropriate (classic field
/// for IPv4, MP_UNREACH for IPv6), optionally ADD-PATH tagged.
fn withdraw_msg(prefix: Prefix, path_id: Option<u32>) -> UpdateMessage {
    let entry = match path_id {
        Some(pid) => Nlri::with_path_id(prefix, pid),
        None => Nlri::plain(prefix),
    };
    match prefix {
        Prefix::V4(_) => UpdateMessage {
            withdrawn: vec![entry],
            attrs: vec![],
            nlri: vec![],
        },
        Prefix::V6(_) => UpdateMessage {
            withdrawn: vec![],
            attrs: vec![PathAttribute::MpUnreach {
                afi: Afi::Ipv6,
                safi: Safi::Unicast,
                nlri: vec![entry],
            }],
            nlri: vec![],
        },
    }
}

/// The controller-feed message for one accepted path: original attributes
/// (the controller needs the extended communities and true next hop),
/// ADD-PATH tagged, family-appropriate.
fn controller_feed(
    original: &UpdateMessage,
    n: Nlri,
    mp_next_hop: Option<IpAddress>,
    pid: u32,
) -> UpdateMessage {
    let entry = Nlri::with_path_id(n.prefix, pid);
    match n.prefix {
        Prefix::V4(_) => UpdateMessage {
            withdrawn: vec![],
            attrs: original.attrs.clone(),
            nlri: vec![entry],
        },
        Prefix::V6(_) => {
            let mut attrs: Vec<PathAttribute> = original
                .attrs
                .iter()
                .filter(|a| {
                    !matches!(
                        a,
                        PathAttribute::MpReach { .. } | PathAttribute::MpUnreach { .. }
                    )
                })
                .cloned()
                .collect();
            attrs.push(PathAttribute::MpReach {
                afi: Afi::Ipv6,
                safi: Safi::Unicast,
                next_hop: mp_next_hop.unwrap_or(IpAddress::V6(Ipv6Address::UNSPECIFIED)),
                nlri: vec![entry],
            });
            UpdateMessage {
                withdrawn: vec![],
                attrs,
                nlri: vec![],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irr::IrrDb;
    use crate::rpki::RpkiTable;
    use stellar_bgp::attr::AsPath;

    fn server_with_peers(peers: &[u32]) -> RouteServer {
        let mut irr = IrrDb::new();
        for &p in peers {
            irr.register(format!("100.{}.0.0/16", p % 200).parse().unwrap(), Asn(p));
        }
        irr.register("100.10.10.0/24".parse().unwrap(), Asn(64500));
        let policy = ImportPolicy::new(irr, RpkiTable::new());
        let mut rs = RouteServer::new(RouteServerConfig::l_ixp(), policy);
        for (i, &p) in peers.iter().enumerate() {
            rs.add_peer(Asn(p), Ipv4Address::new(80, 81, 192, i as u8 + 1));
        }
        rs
    }

    fn announce(prefix: &str, asn: u32, communities: &[Community]) -> UpdateMessage {
        let mut u = UpdateMessage::announce(
            prefix.parse().unwrap(),
            Ipv4Address::new(80, 81, 192, 10),
            PathAttribute::AsPath(AsPath::sequence([asn])),
        );
        if !communities.is_empty() {
            u.add_communities(communities);
        }
        u
    }

    #[test]
    fn accepted_route_is_exported_to_all_other_peers() {
        let mut rs = server_with_peers(&[64500, 64501, 64502]);
        let out = rs.handle_update(Asn(64500), &announce("100.10.10.0/24", 64500, &[]), 0);
        assert!(out.rejections.is_empty());
        let targets: Vec<Asn> = out.exports.iter().map(|(t, _)| *t).collect();
        assert_eq!(targets, vec![Asn(64501), Asn(64502)]);
        // And the controller sees it with a path id.
        assert_eq!(out.controller_updates.len(), 1);
        assert!(out.controller_updates[0].nlri[0].path_id.is_some());
        assert_eq!(rs.stats().accepted, 1);
    }

    #[test]
    fn hijack_is_rejected_and_not_exported() {
        let mut rs = server_with_peers(&[64500, 64501]);
        let out = rs.handle_update(Asn(64501), &announce("100.10.10.0/24", 64501, &[]), 0);
        assert!(out.exports.is_empty());
        assert!(out.controller_updates.is_empty());
        assert_eq!(out.rejections.len(), 1);
        assert_eq!(out.rejections[0].1, RejectReason::IrrMismatch);
    }

    #[test]
    fn blackhole_route_gets_next_hop_rewritten() {
        let mut rs = server_with_peers(&[64500, 64501]);
        let out = rs.handle_update(
            Asn(64500),
            &announce("100.10.10.10/32", 64500, &[Community::new(6695, 666)]),
            0,
        );
        assert_eq!(out.exports.len(), 1);
        let (_, export) = &out.exports[0];
        assert_eq!(
            export.next_hop(),
            Some(RouteServerConfig::l_ixp().blackhole_next_hop)
        );
        // The controller still sees the member's true next hop.
        assert_eq!(
            out.controller_updates[0].next_hop(),
            Some(Ipv4Address::new(80, 81, 192, 10))
        );
    }

    #[test]
    fn plain_host_route_is_rejected_as_too_specific() {
        let mut rs = server_with_peers(&[64500, 64501]);
        let out = rs.handle_update(Asn(64500), &announce("100.10.10.10/32", 64500, &[]), 0);
        assert_eq!(out.rejections[0].1, RejectReason::TooSpecific);
    }

    #[test]
    fn action_communities_limit_export_scope() {
        let mut rs = server_with_peers(&[64500, 64501, 64502, 64503]);
        // Don't announce to 64502.
        let out = rs.handle_update(
            Asn(64500),
            &announce("100.10.10.0/24", 64500, &[Community::new(0, 64502)]),
            0,
        );
        let targets: Vec<Asn> = out.exports.iter().map(|(t, _)| *t).collect();
        assert_eq!(targets, vec![Asn(64501), Asn(64503)]);
        // Action communities are stripped from the export.
        for (_, e) in &out.exports {
            assert!(e.communities().iter().all(|c| c.asn() != 0));
        }
    }

    #[test]
    fn whitelist_mode_exports_only_to_listed_peers() {
        let mut rs = server_with_peers(&[64500, 64501, 64502]);
        let out = rs.handle_update(
            Asn(64500),
            &announce(
                "100.10.10.0/24",
                64500,
                &[Community::new(0, 6695), Community::new(6695, 64502)],
            ),
            0,
        );
        let targets: Vec<Asn> = out.exports.iter().map(|(t, _)| *t).collect();
        assert_eq!(targets, vec![Asn(64502)]);
        // The controller is fed regardless of export scope.
        assert_eq!(out.controller_updates.len(), 1);
    }

    #[test]
    fn withdrawal_propagates_and_frees_path_id() {
        let mut rs = server_with_peers(&[64500, 64501]);
        let out = rs.handle_update(Asn(64500), &announce("100.10.10.0/24", 64500, &[]), 0);
        let pid = out.controller_updates[0].nlri[0].path_id.unwrap();
        let out = rs.handle_update(
            Asn(64500),
            &UpdateMessage::withdraw("100.10.10.0/24".parse().unwrap()),
            1,
        );
        assert_eq!(out.exports.len(), 1);
        assert!(out.exports[0].1.nlri.is_empty());
        assert_eq!(out.controller_updates[0].withdrawn[0].path_id, Some(pid));
        // A second withdrawal is a no-op.
        let out = rs.handle_update(
            Asn(64500),
            &UpdateMessage::withdraw("100.10.10.0/24".parse().unwrap()),
            2,
        );
        assert!(out.exports.is_empty());
        assert!(out.controller_updates.is_empty());
    }

    #[test]
    fn same_prefix_from_two_members_gets_distinct_path_ids() {
        let mut rs = server_with_peers(&[64500, 64501]);
        rs.policy_mut()
            .irr
            .register("100.10.10.0/24".parse().unwrap(), Asn(64501));
        let o1 = rs.handle_update(Asn(64500), &announce("100.10.10.0/24", 64500, &[]), 0);
        let o2 = rs.handle_update(Asn(64501), &announce("100.10.10.0/24", 64501, &[]), 0);
        let p1 = o1.controller_updates[0].nlri[0].path_id.unwrap();
        let p2 = o2.controller_updates[0].nlri[0].path_id.unwrap();
        assert_ne!(p1, p2, "ADD-PATH must distinguish the two members' paths");
    }

    #[test]
    fn controller_resync_replays_rib_with_stable_path_ids() {
        let mut rs = server_with_peers(&[64500, 64501]);
        rs.handle_update(Asn(64500), &announce("100.10.10.0/24", 64500, &[]), 0);
        let out = rs.handle_update(
            Asn(64500),
            &announce("100.10.10.10/32", 64500, &[Community::new(6695, 666)]),
            1,
        );
        let pid = out.controller_updates[0].nlri[0].path_id.unwrap();
        let replay = rs.controller_resync();
        assert_eq!(replay.len(), 2);
        // The blackhole-tagged path reappears with the same path id and
        // its original attributes (communities intact).
        let host = replay
            .iter()
            .find(|u| u.nlri[0].prefix == "100.10.10.10/32".parse().unwrap())
            .unwrap();
        assert_eq!(host.nlri[0].path_id, Some(pid));
        assert!(!host.communities().is_empty());
        // An empty server replays nothing.
        let empty = server_with_peers(&[64500]);
        assert!(empty.controller_resync().is_empty());
    }

    #[test]
    fn peer_down_withdraws_everything() {
        let mut rs = server_with_peers(&[64500, 64501, 64502]);
        rs.handle_update(Asn(64500), &announce("100.10.10.0/24", 64500, &[]), 0);
        rs.handle_update(
            Asn(64500),
            &announce("100.10.10.10/32", 64500, &[Community::BLACKHOLE]),
            1,
        );
        let out = rs.peer_down(Asn(64500));
        // Two prefixes withdrawn towards each of the two other peers.
        assert_eq!(out.exports.len(), 4);
        assert_eq!(out.controller_updates.len(), 2);
        assert!(out
            .controller_updates
            .iter()
            .all(|u| u.withdrawn.len() == 1 && u.withdrawn[0].path_id.is_some()));
    }

    #[test]
    fn unknown_peer_is_ignored() {
        let mut rs = server_with_peers(&[64500]);
        let out = rs.handle_update(Asn(9999), &announce("100.10.10.0/24", 9999, &[]), 0);
        assert!(out.exports.is_empty() && out.rejections.is_empty());
    }
}

#[cfg(test)]
mod flowspec_tests {
    use super::*;
    use crate::flowspec::FlowSpecRejectReason;
    use crate::irr::IrrDb;
    use crate::rpki::RpkiTable;
    use stellar_bgp::attr::AsPath;
    use stellar_bgp::extcommunity::ExtendedCommunity;
    use stellar_bgp::flowspec::{Component, FlowSpec, NumericOp};

    fn server() -> RouteServer {
        let mut irr = IrrDb::new();
        irr.register("100.10.10.0/24".parse().unwrap(), Asn(64500));
        let policy = ImportPolicy::new(irr, RpkiTable::new());
        let mut rs = RouteServer::new(RouteServerConfig::l_ixp(), policy);
        rs.add_peer(Asn(64500), Ipv4Address::new(80, 81, 192, 1));
        rs.add_peer(Asn(64501), Ipv4Address::new(80, 81, 192, 2));
        rs
    }

    fn victim_flow() -> FlowSpec {
        FlowSpec::new(
            Afi::Ipv4,
            vec![
                Component::DstPrefix("100.10.10.10/32".parse().unwrap()),
                Component::IpProtocol(vec![NumericOp::equals(17)]),
            ],
        )
        .unwrap()
    }

    fn flowspec_announce(asn: u32, flow: FlowSpec, actions: &[ExtendedCommunity]) -> UpdateMessage {
        let mut u = UpdateMessage {
            withdrawn: vec![],
            attrs: vec![
                PathAttribute::AsPath(AsPath::sequence([asn])),
                PathAttribute::MpReachFlowSpec {
                    afi: Afi::Ipv4,
                    nlri: vec![flow],
                },
            ],
            nlri: vec![],
        };
        if !actions.is_empty() {
            u.add_extended_communities(actions);
        }
        u
    }

    fn flowspec_withdraw(flow: FlowSpec) -> UpdateMessage {
        UpdateMessage {
            withdrawn: vec![],
            attrs: vec![PathAttribute::MpUnreachFlowSpec {
                afi: Afi::Ipv4,
                nlri: vec![flow],
            }],
            nlri: vec![],
        }
    }

    #[test]
    fn owner_flowspec_is_accepted_and_installed() {
        let mut rs = server();
        let drop_rate = ExtendedCommunity::traffic_rate(64500, 0.0);
        let out = rs.handle_flowspec_update(
            Asn(64500),
            &flowspec_announce(64500, victim_flow(), &[drop_rate]),
        );
        assert!(out.rejections.is_empty());
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(out.accepted[0].owner, Asn(64500));
        assert_eq!(out.accepted[0].actions, vec![drop_rate]);
        assert_eq!(rs.flowspec_routes().len(), 1);
        assert_eq!(rs.flowspec_stats().accepted, 1);
    }

    #[test]
    fn non_owner_flowspec_is_rejected() {
        let mut rs = server();
        let out =
            rs.handle_flowspec_update(Asn(64501), &flowspec_announce(64501, victim_flow(), &[]));
        assert!(out.accepted.is_empty());
        assert_eq!(out.rejections.len(), 1);
        assert_eq!(
            out.rejections[0].1,
            FlowSpecRejectReason::OriginatorMismatch
        );
        assert!(rs.flowspec_routes().is_empty());
        assert_eq!(
            rs.flowspec_stats().rejected.get("originator-mismatch"),
            Some(&1)
        );
    }

    #[test]
    fn reannouncement_replaces_actions_in_place() {
        let mut rs = server();
        let shape = ExtendedCommunity::traffic_rate(64500, 1_000_000.0);
        rs.handle_flowspec_update(
            Asn(64500),
            &flowspec_announce(64500, victim_flow(), &[shape]),
        );
        let drop_rate = ExtendedCommunity::traffic_rate(64500, 0.0);
        rs.handle_flowspec_update(
            Asn(64500),
            &flowspec_announce(64500, victim_flow(), &[drop_rate]),
        );
        // One rule, carrying the latest actions (implicit withdraw).
        let routes = rs.flowspec_routes();
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].actions, vec![drop_rate]);
        assert_eq!(rs.flowspec_stats().announced, 2);
    }

    #[test]
    fn withdrawal_removes_the_rule_once() {
        let mut rs = server();
        rs.handle_flowspec_update(Asn(64500), &flowspec_announce(64500, victim_flow(), &[]));
        let out = rs.handle_flowspec_update(Asn(64500), &flowspec_withdraw(victim_flow()));
        assert_eq!(out.withdrawn.len(), 1);
        assert!(rs.flowspec_routes().is_empty());
        // A duplicate withdrawal removes (and counts) nothing.
        let out = rs.handle_flowspec_update(Asn(64500), &flowspec_withdraw(victim_flow()));
        assert!(out.withdrawn.is_empty());
        assert_eq!(rs.flowspec_stats().withdrawn, 1);
    }

    #[test]
    fn peer_down_flushes_flowspec_rules() {
        let mut rs = server();
        rs.handle_flowspec_update(Asn(64500), &flowspec_announce(64500, victim_flow(), &[]));
        let out = rs.peer_down(Asn(64500));
        assert_eq!(out.flowspec_withdrawn.len(), 1);
        assert_eq!(out.flowspec_withdrawn[0].0, Asn(64500));
        assert!(rs.flowspec_routes().is_empty());
        assert_eq!(rs.flowspec_stats().withdrawn, 1);
    }

    #[test]
    fn unknown_peer_flowspec_is_ignored() {
        let mut rs = server();
        let out =
            rs.handle_flowspec_update(Asn(9999), &flowspec_announce(9999, victim_flow(), &[]));
        assert!(out.accepted.is_empty() && out.rejections.is_empty());
        assert_eq!(rs.flowspec_stats().announced, 0);
    }

    #[test]
    fn corrupted_wire_is_refused_without_poisoning_the_rib() {
        let mut rs = server();
        let wire = victim_flow().to_wire().unwrap();
        // The intact wire installs the rule.
        let out = rs.handle_flowspec_wire(Asn(64500), Afi::Ipv4, &wire, &[]);
        assert_eq!(out.accepted.len(), 1);
        assert!(rs.flowspec_contains(Asn(64500), &wire));
        // Damaged variants are refused before touching the RIB: same
        // rule count, same stored entry, only `malformed` advances.
        for salt in [0u64, 1, 7, 42] {
            let bad = stellar_bgp::flowspec::corrupt_wire(&wire, salt);
            let out = rs.handle_flowspec_wire(Asn(64500), Afi::Ipv4, &bad, &[]);
            assert!(out.accepted.is_empty() && out.rejections.is_empty());
            assert!(!rs.flowspec_contains(Asn(64500), &bad));
        }
        assert_eq!(rs.flowspec_stats().malformed, 4);
        assert_eq!(rs.flowspec_routes().len(), 1);
        assert_eq!(
            rs.flowspec_stats().announced,
            1,
            "damage never reached validation"
        );
    }

    #[test]
    fn valid_wire_path_matches_the_update_path() {
        let mut rs = server();
        let drop_rate = ExtendedCommunity::traffic_rate(64500, 0.0);
        let wire = victim_flow().to_wire().unwrap();
        let out = rs.handle_flowspec_wire(Asn(64500), Afi::Ipv4, &wire, &[drop_rate]);
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(out.accepted[0].actions, vec![drop_rate]);
        assert_eq!(rs.flowspec_stats().accepted, 1);
    }

    #[test]
    fn observe_publishes_flowspec_counters() {
        let mut rs = server();
        rs.handle_flowspec_update(Asn(64500), &flowspec_announce(64500, victim_flow(), &[]));
        rs.handle_flowspec_update(Asn(64501), &flowspec_announce(64501, victim_flow(), &[]));
        let mut reg = stellar_obs::MetricsRegistry::new();
        rs.observe(&mut reg);
        assert_eq!(reg.counter("routeserver.flowspec.announced"), 2);
        assert_eq!(reg.counter("routeserver.flowspec.accepted"), 1);
        assert_eq!(
            reg.counter("routeserver.flowspec.rejected.originator-mismatch"),
            1
        );
    }
}

#[cfg(test)]
mod max_prefix_tests {
    use super::*;
    use crate::irr::IrrDb;
    use crate::policy::{ImportPolicy, RejectReason};
    use crate::rpki::RpkiTable;
    use stellar_bgp::attr::{AsPath, PathAttribute};

    #[test]
    fn max_prefix_limit_rejects_flooding_peer() {
        let mut irr = IrrDb::new();
        // The peer legitimately owns a /16 it could deaggregate.
        irr.register("100.10.0.0/16".parse().unwrap(), Asn(64500));
        let mut policy = ImportPolicy::new(irr, RpkiTable::new());
        policy.max_prefixes_per_peer = Some(3);
        let mut rs = RouteServer::new(RouteServerConfig::l_ixp(), policy);
        rs.add_peer(Asn(64500), Ipv4Address::new(80, 81, 192, 1));
        rs.add_peer(Asn(64501), Ipv4Address::new(80, 81, 192, 2));
        let mut accepted = 0;
        let mut rejected = 0;
        for i in 0..6u8 {
            let u = UpdateMessage::announce(
                format!("100.10.{i}.0/24").parse().unwrap(),
                Ipv4Address::new(80, 81, 192, 1),
                PathAttribute::AsPath(AsPath::sequence([64500])),
            );
            let out = rs.handle_update(Asn(64500), &u, u64::from(i));
            if out.rejections.is_empty() {
                accepted += 1;
            } else {
                assert_eq!(out.rejections[0].1, RejectReason::MaxPrefixExceeded);
                rejected += 1;
            }
        }
        assert_eq!(accepted, 3);
        assert_eq!(rejected, 3);
        // Withdrawing frees budget again.
        let out = rs.handle_update(
            Asn(64500),
            &UpdateMessage::withdraw("100.10.0.0/24".parse().unwrap()),
            10,
        );
        assert!(!out.exports.is_empty());
        let u = UpdateMessage::announce(
            "100.10.5.0/24".parse().unwrap(),
            Ipv4Address::new(80, 81, 192, 1),
            PathAttribute::AsPath(AsPath::sequence([64500])),
        );
        let out = rs.handle_update(Asn(64500), &u, 11);
        assert!(out.rejections.is_empty());
    }
}
