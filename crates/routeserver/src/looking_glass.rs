//! Looking glass: the member-facing debugging view (§4.3: "members can
//! rely on looking glasses for debugging").

use crate::server::RouteServer;
use stellar_bgp::community::Community;
use stellar_bgp::types::Asn;
use stellar_net::addr::Ipv4Address;
use stellar_net::prefix::Prefix;

/// One row of a looking-glass query.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteView {
    /// The announcing member.
    pub peer: Asn,
    /// The AS path as a list of ASNs (sequences flattened).
    pub as_path: Vec<u32>,
    /// Next hop.
    pub next_hop: Option<Ipv4Address>,
    /// Communities on the route.
    pub communities: Vec<Community>,
    /// True if the route carries a blackhole community.
    pub blackholed: bool,
}

/// Queries the route server for every path it holds for `prefix`.
pub fn query(rs: &RouteServer, prefix: Prefix) -> Vec<RouteView> {
    let ixp = rs.config().ixp_asn;
    rs.routes_for(prefix)
        .into_iter()
        .map(|r| {
            let communities = r.communities();
            let blackholed = communities.iter().any(|c| c.is_blackhole(ixp));
            let as_path = r
                .as_path()
                .segments
                .iter()
                .flat_map(|s| match s {
                    stellar_bgp::attr::AsSegment::Sequence(v)
                    | stellar_bgp::attr::AsSegment::Set(v) => {
                        v.iter().map(|a| a.0).collect::<Vec<_>>()
                    }
                })
                .collect();
            RouteView {
                peer: r.peer.asn,
                as_path,
                next_hop: r.next_hop(),
                communities,
                blackholed,
            }
        })
        .collect()
}

/// Renders a looking-glass answer as text (what a member would see).
pub fn render(prefix: Prefix, views: &[RouteView]) -> String {
    let mut out = format!("BGP routing table entry for {prefix}\n");
    if views.is_empty() {
        out.push_str("  (no paths)\n");
    }
    for v in views {
        let path: Vec<String> = v.as_path.iter().map(u32::to_string).collect();
        out.push_str(&format!(
            "  from {} path [{}] next-hop {}{}\n",
            v.peer,
            path.join(" "),
            v.next_hop
                .map(|h| h.to_string())
                .unwrap_or_else(|| "-".to_string()),
            if v.blackholed { " [BLACKHOLED]" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irr::IrrDb;
    use crate::policy::ImportPolicy;
    use crate::rpki::RpkiTable;
    use crate::server::RouteServerConfig;
    use stellar_bgp::attr::{AsPath, PathAttribute};
    use stellar_bgp::update::UpdateMessage;

    fn setup() -> RouteServer {
        let mut irr = IrrDb::new();
        irr.register("100.10.10.0/24".parse().unwrap(), Asn(64500));
        let mut rs = RouteServer::new(
            RouteServerConfig::l_ixp(),
            ImportPolicy::new(irr, RpkiTable::new()),
        );
        rs.add_peer(Asn(64500), Ipv4Address::new(80, 81, 192, 1));
        rs.add_peer(Asn(64501), Ipv4Address::new(80, 81, 192, 2));
        rs
    }

    #[test]
    fn query_reflects_blackhole_state() {
        let mut rs = setup();
        let mut u = UpdateMessage::announce(
            "100.10.10.10/32".parse().unwrap(),
            Ipv4Address::new(80, 81, 192, 10),
            PathAttribute::AsPath(AsPath::sequence([64500])),
        );
        u.add_communities(&[Community::new(6695, 666)]);
        rs.handle_update(Asn(64500), &u, 0);

        let views = query(&rs, "100.10.10.10/32".parse().unwrap());
        assert_eq!(views.len(), 1);
        assert!(views[0].blackholed);
        assert_eq!(views[0].peer, Asn(64500));
        assert_eq!(views[0].as_path, vec![64500]);

        let text = render("100.10.10.10/32".parse().unwrap(), &views);
        assert!(text.contains("[BLACKHOLED]"));
        assert!(text.contains("AS64500"));
    }

    #[test]
    fn empty_query_renders_no_paths() {
        let rs = setup();
        let views = query(&rs, "100.10.10.0/24".parse().unwrap());
        assert!(views.is_empty());
        let text = render("100.10.10.0/24".parse().unwrap(), &views);
        assert!(text.contains("(no paths)"));
    }
}
