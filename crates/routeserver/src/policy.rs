//! The route server's import policy: routing hygiene (§4.3).

use crate::bogon;
use crate::irr::IrrDb;
use crate::rpki::{RpkiStatus, RpkiTable};
use stellar_bgp::community::Community;
use stellar_bgp::types::Asn;
use stellar_net::prefix::Prefix;

/// Why an announcement was rejected on import.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The prefix is in a bogon range.
    Bogon,
    /// More specific than /24 (IPv4) or /48 (IPv6) without a blackhole
    /// community — the default-filter behaviour that makes plain
    /// more-specifics unusable and RTBH need an exception (§1.1).
    TooSpecific,
    /// No IRR route object authorizes this origin for this prefix.
    IrrMismatch,
    /// RPKI validation returned Invalid.
    RpkiInvalid,
    /// The AS_PATH's first hop is not the announcing peer.
    PathMismatch,
    /// The peer exceeded its max-prefix limit.
    MaxPrefixExceeded,
}

impl RejectReason {
    /// Human-readable description.
    pub fn describe(&self) -> &'static str {
        match self {
            RejectReason::Bogon => "prefix is a bogon",
            RejectReason::TooSpecific => "more specific than /24 without blackhole community",
            RejectReason::IrrMismatch => "no IRR route object for this origin",
            RejectReason::RpkiInvalid => "RPKI invalid",
            RejectReason::PathMismatch => "AS_PATH does not start with the announcing peer",
            RejectReason::MaxPrefixExceeded => "peer exceeded its max-prefix limit",
        }
    }
}

/// The import policy of the route server.
#[derive(Debug, Default)]
pub struct ImportPolicy {
    /// IRR database.
    pub irr: IrrDb,
    /// RPKI ROA table.
    pub rpki: RpkiTable,
    /// Reject RPKI-invalid announcements (production default: true).
    pub reject_rpki_invalid: bool,
    /// Maximum prefixes accepted per peer (max-prefix protection, the
    /// standard guard against route-table flooding \[51\]). `None`
    /// disables the check.
    pub max_prefixes_per_peer: Option<usize>,
    /// The IRR/RPKI validation oracle is unreachable (brownout fault).
    /// Checks that need it fail closed — announcements are deferred, not
    /// silently rejected or waved through.
    pub oracle_down: bool,
}

impl ImportPolicy {
    /// A policy with empty databases that rejects RPKI-invalids.
    pub fn new(irr: IrrDb, rpki: RpkiTable) -> Self {
        ImportPolicy {
            irr,
            rpki,
            reject_rpki_invalid: true,
            max_prefixes_per_peer: Some(10_000),
            oracle_down: false,
        }
    }

    /// Validates an announcement of `prefix` by `peer` whose AS_PATH
    /// starts with `first_as` and originates at `origin`, tagged with
    /// `communities`. `ixp_asn` identifies the IXP's blackhole community.
    /// `ixp_service_signal` is true when the update carries an
    /// IXP-namespace extended community (a Stellar blackholing signal) —
    /// those announcements get the same more-specific exception as RTBH,
    /// since the /32 only reaches the blackholing controller.
    #[allow(clippy::too_many_arguments)] // one argument per validation input
    pub fn validate(
        &self,
        peer: Asn,
        first_as: Option<Asn>,
        origin: Option<Asn>,
        prefix: &Prefix,
        communities: &[Community],
        ixp_service_signal: bool,
        ixp_asn: Asn,
    ) -> Result<(), RejectReason> {
        if bogon::is_bogon(prefix) {
            return Err(RejectReason::Bogon);
        }
        if let Some(first) = first_as {
            if first != peer {
                return Err(RejectReason::PathMismatch);
            }
        }
        let is_blackhole = communities.iter().any(|c| c.is_blackhole(ixp_asn));
        if prefix.needs_blackhole_exception() && !is_blackhole && !ixp_service_signal {
            return Err(RejectReason::TooSpecific);
        }
        let origin = origin.unwrap_or(peer);
        if !self.irr.validates(prefix, origin) {
            return Err(RejectReason::IrrMismatch);
        }
        if self.reject_rpki_invalid && self.rpki.validate(prefix, origin) == RpkiStatus::Invalid {
            return Err(RejectReason::RpkiInvalid);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpki::Roa;

    const IXP: Asn = Asn(6695);
    const MEMBER: Asn = Asn(64500);

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn policy() -> ImportPolicy {
        let mut irr = IrrDb::new();
        irr.register(p("100.10.10.0/24"), MEMBER);
        let mut rpki = RpkiTable::new();
        rpki.add(Roa {
            prefix: p("100.10.10.0/24"),
            max_len: 32,
            asn: MEMBER,
        });
        ImportPolicy::new(irr, rpki)
    }

    #[test]
    fn registered_announcement_is_accepted() {
        let pol = policy();
        assert_eq!(
            pol.validate(
                MEMBER,
                Some(MEMBER),
                Some(MEMBER),
                &p("100.10.10.0/24"),
                &[],
                false,
                IXP
            ),
            Ok(())
        );
    }

    #[test]
    fn bogons_are_rejected() {
        let pol = policy();
        assert_eq!(
            pol.validate(
                MEMBER,
                Some(MEMBER),
                Some(MEMBER),
                &p("10.0.0.0/8"),
                &[],
                false,
                IXP
            ),
            Err(RejectReason::Bogon)
        );
    }

    #[test]
    fn host_routes_need_the_blackhole_community() {
        let pol = policy();
        // /32 without the community: rejected as too specific.
        assert_eq!(
            pol.validate(
                MEMBER,
                Some(MEMBER),
                Some(MEMBER),
                &p("100.10.10.10/32"),
                &[],
                false,
                IXP
            ),
            Err(RejectReason::TooSpecific)
        );
        // With the well-known BLACKHOLE community: accepted.
        assert_eq!(
            pol.validate(
                MEMBER,
                Some(MEMBER),
                Some(MEMBER),
                &p("100.10.10.10/32"),
                &[Community::BLACKHOLE],
                false,
                IXP
            ),
            Ok(())
        );
        // With the IXP-specific variant: accepted too.
        assert_eq!(
            pol.validate(
                MEMBER,
                Some(MEMBER),
                Some(MEMBER),
                &p("100.10.10.10/32"),
                &[Community::new(6695, 666)],
                false,
                IXP
            ),
            Ok(())
        );
    }

    #[test]
    fn hijacks_are_rejected_by_irr() {
        let pol = policy();
        // A different member announcing someone else's prefix.
        assert_eq!(
            pol.validate(
                Asn(64999),
                Some(Asn(64999)),
                Some(Asn(64999)),
                &p("100.10.10.0/24"),
                &[],
                false,
                IXP
            ),
            Err(RejectReason::IrrMismatch)
        );
    }

    #[test]
    fn rpki_invalid_is_rejected_when_enabled() {
        let mut pol = policy();
        // Register the hijacker in the IRR so RPKI is the deciding check.
        pol.irr.register(p("100.10.10.0/24"), Asn(64999));
        assert_eq!(
            pol.validate(
                Asn(64999),
                Some(Asn(64999)),
                Some(Asn(64999)),
                &p("100.10.10.0/24"),
                &[],
                false,
                IXP
            ),
            Err(RejectReason::RpkiInvalid)
        );
        pol.reject_rpki_invalid = false;
        assert_eq!(
            pol.validate(
                Asn(64999),
                Some(Asn(64999)),
                Some(Asn(64999)),
                &p("100.10.10.0/24"),
                &[],
                false,
                IXP
            ),
            Ok(())
        );
    }

    #[test]
    fn path_spoofing_is_rejected() {
        let pol = policy();
        assert_eq!(
            pol.validate(
                MEMBER,
                Some(Asn(64999)),
                Some(MEMBER),
                &p("100.10.10.0/24"),
                &[],
                false,
                IXP
            ),
            Err(RejectReason::PathMismatch)
        );
    }

    #[test]
    fn reject_reasons_have_descriptions() {
        for r in [
            RejectReason::Bogon,
            RejectReason::TooSpecific,
            RejectReason::IrrMismatch,
            RejectReason::RpkiInvalid,
            RejectReason::PathMismatch,
            RejectReason::MaxPrefixExceeded,
        ] {
            assert!(!r.describe().is_empty());
        }
    }
}
