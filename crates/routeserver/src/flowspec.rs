//! FlowSpec announcement validation at the route server (RFC 9117).
//!
//! RFC 8955 left FlowSpec open to the same abuse as unfiltered RTBH: any
//! peer could announce a rule matching someone else's traffic. RFC 9117
//! tightens the validation procedure: a Flow Specification is usable only
//! if its embedded destination prefix is present and its originator is
//! the (unicast) originator of that destination prefix. In the simulated
//! IXP's trust model the unicast best-path check maps onto the IRR
//! database the route server already enforces for unicast announcements
//! (§4.3): the FlowSpec originator must hold a route object covering the
//! embedded destination prefix.

use crate::policy::ImportPolicy;
use crate::rpki::RpkiStatus;
use std::collections::BTreeMap;
use stellar_bgp::extcommunity::ExtendedCommunity;
use stellar_bgp::flowspec::FlowSpec;
use stellar_bgp::types::Asn;

/// Why a FlowSpec announcement was rejected on import.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSpecRejectReason {
    /// The NLRI has no destination-prefix component, so the RFC 9117
    /// validation procedure cannot anchor it to an originator.
    MissingDestPrefix,
    /// The AS_PATH's first hop is not the announcing peer.
    PathMismatch,
    /// The originator holds no IRR route object covering the embedded
    /// destination prefix — the trust-model analogue of RFC 9117's
    /// "originator of the best-match unicast route" check.
    OriginatorMismatch,
    /// RPKI validation of (destination prefix, originator) is Invalid.
    RpkiInvalid,
    /// The IRR/RPKI oracle could not be consulted (brownout): the check
    /// fails closed. Unlike the other reasons this one is transient —
    /// callers should retry with backoff instead of giving up.
    OracleUnavailable,
}

impl FlowSpecRejectReason {
    /// Stable metric-key token for this reason.
    pub fn describe(&self) -> &'static str {
        match self {
            FlowSpecRejectReason::MissingDestPrefix => "missing-dest-prefix",
            FlowSpecRejectReason::PathMismatch => "path-mismatch",
            FlowSpecRejectReason::OriginatorMismatch => "originator-mismatch",
            FlowSpecRejectReason::RpkiInvalid => "rpki-invalid",
            FlowSpecRejectReason::OracleUnavailable => "oracle-unavailable",
        }
    }

    /// True for refusals that clear by themselves — worth retrying with
    /// backoff rather than treating as a verdict on the announcement.
    pub fn is_transient(&self) -> bool {
        matches!(self, FlowSpecRejectReason::OracleUnavailable)
    }
}

/// Validates a FlowSpec announcement by `peer` whose AS_PATH starts with
/// `first_as` and originates at `origin` (both `None` when the update
/// carried no AS_PATH, as with iBGP-learned locals — the peer itself is
/// then taken as originator).
pub fn validate_flowspec(
    policy: &ImportPolicy,
    peer: Asn,
    first_as: Option<Asn>,
    origin: Option<Asn>,
    flow: &FlowSpec,
) -> Result<(), FlowSpecRejectReason> {
    let Some(dst) = flow.dst_prefix() else {
        return Err(FlowSpecRejectReason::MissingDestPrefix);
    };
    if let Some(first) = first_as {
        if first != peer {
            return Err(FlowSpecRejectReason::PathMismatch);
        }
    }
    let origin = origin.unwrap_or(peer);
    // The structural checks above need no external data; from here on
    // the IRR/RPKI oracle is consulted, and during a brownout the
    // procedure fails closed rather than guessing either way.
    if policy.oracle_down {
        return Err(FlowSpecRejectReason::OracleUnavailable);
    }
    if !policy.irr.validates(&dst, origin) {
        return Err(FlowSpecRejectReason::OriginatorMismatch);
    }
    if policy.reject_rpki_invalid && policy.rpki.validate(&dst, origin) == RpkiStatus::Invalid {
        return Err(FlowSpecRejectReason::RpkiInvalid);
    }
    Ok(())
}

/// Returns the FlowSpec action extended communities (RFC 8955 §7)
/// carried by an update, in announcement order.
pub fn action_communities(all: &[ExtendedCommunity]) -> Vec<ExtendedCommunity> {
    all.iter()
        .filter(|ec| {
            matches!(
                ec,
                ExtendedCommunity::TrafficRate { .. }
                    | ExtendedCommunity::TrafficAction { .. }
                    | ExtendedCommunity::RedirectAs2 { .. }
                    | ExtendedCommunity::TrafficMarking { .. }
            )
        })
        .cloned()
        .collect()
}

/// One FlowSpec rule accepted from a member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptedFlowSpec {
    /// The announcing member (validated as originator).
    pub owner: Asn,
    /// The flow specification.
    pub flow: FlowSpec,
    /// Its action extended communities, in announcement order.
    pub actions: Vec<ExtendedCommunity>,
}

/// What handling one member FlowSpec UPDATE produced. Unlike unicast
/// routes, FlowSpec rules are *not* reflected to the other members — like
/// Stellar signals they flow south to the blackholing controller only —
/// so there is no exports field.
#[derive(Debug, Default)]
pub struct FlowSpecOutput {
    /// Rules that passed validation (announced or re-announced).
    pub accepted: Vec<AcceptedFlowSpec>,
    /// Rules actually removed by MP_UNREACH withdrawals.
    pub withdrawn: Vec<(Asn, FlowSpec)>,
    /// Announcements refused by the RFC 9117 procedure.
    pub rejections: Vec<(FlowSpec, FlowSpecRejectReason)>,
}

/// FlowSpec import statistics (exposed via the looking glass).
#[derive(Debug, Default, Clone)]
pub struct FlowSpecStats {
    /// FlowSpec NLRI entries received from members (accepted or not).
    pub announced: u64,
    /// Accepted entries.
    pub accepted: u64,
    /// Withdrawals that actually removed a rule (explicit withdrawals
    /// plus session-down flushes; duplicate withdrawals do not count).
    pub withdrawn: u64,
    /// Rejected entries by reason token.
    pub rejected: BTreeMap<&'static str, u64>,
    /// Wire NLRI bytes that failed to decode (corrupted or truncated
    /// announcements, refused before validation).
    pub malformed: u64,
}

impl FlowSpecStats {
    /// Publishes the FlowSpec import counters under
    /// `routeserver.flowspec.*`.
    pub fn observe(&self, reg: &mut stellar_obs::MetricsRegistry) {
        reg.counter_set("routeserver.flowspec.announced", self.announced);
        reg.counter_set("routeserver.flowspec.accepted", self.accepted);
        reg.counter_set("routeserver.flowspec.withdrawn", self.withdrawn);
        reg.counter_set("routeserver.flowspec.malformed", self.malformed);
        let total_rejected: u64 = self.rejected.values().sum();
        reg.counter_set("routeserver.flowspec.rejected", total_rejected);
        for (reason, n) in &self.rejected {
            reg.counter_set(&format!("routeserver.flowspec.rejected.{reason}"), *n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irr::IrrDb;
    use crate::rpki::{Roa, RpkiTable};
    use stellar_bgp::flowspec::{Component, NumericOp};
    use stellar_bgp::types::Afi;

    const MEMBER: Asn = Asn(64500);

    fn policy() -> ImportPolicy {
        let mut irr = IrrDb::new();
        irr.register("100.10.10.0/24".parse().unwrap(), MEMBER);
        ImportPolicy::new(irr, RpkiTable::new())
    }

    fn victim_flow() -> FlowSpec {
        FlowSpec::new(
            Afi::Ipv4,
            vec![
                Component::DstPrefix("100.10.10.10/32".parse().unwrap()),
                Component::IpProtocol(vec![NumericOp::equals(17)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn owner_flowspec_is_accepted() {
        let pol = policy();
        assert_eq!(
            validate_flowspec(&pol, MEMBER, Some(MEMBER), Some(MEMBER), &victim_flow()),
            Ok(())
        );
        // No AS_PATH: the peer is taken as originator.
        assert_eq!(
            validate_flowspec(&pol, MEMBER, None, None, &victim_flow()),
            Ok(())
        );
    }

    #[test]
    fn missing_dest_prefix_is_rejected() {
        let pol = policy();
        let flow = FlowSpec::new(
            Afi::Ipv4,
            vec![Component::IpProtocol(vec![NumericOp::equals(17)])],
        )
        .unwrap();
        assert_eq!(
            validate_flowspec(&pol, MEMBER, Some(MEMBER), Some(MEMBER), &flow),
            Err(FlowSpecRejectReason::MissingDestPrefix)
        );
    }

    #[test]
    fn non_owner_cannot_filter_someone_elses_traffic() {
        let pol = policy();
        // Another member tries to blackhole MEMBER's victim address.
        assert_eq!(
            validate_flowspec(
                &pol,
                Asn(64999),
                Some(Asn(64999)),
                Some(Asn(64999)),
                &victim_flow()
            ),
            Err(FlowSpecRejectReason::OriginatorMismatch)
        );
    }

    #[test]
    fn path_spoofing_is_rejected() {
        let pol = policy();
        assert_eq!(
            validate_flowspec(&pol, MEMBER, Some(Asn(64999)), Some(MEMBER), &victim_flow()),
            Err(FlowSpecRejectReason::PathMismatch)
        );
    }

    #[test]
    fn rpki_invalid_dest_prefix_is_rejected() {
        let mut pol = policy();
        // A ROA pinning the covering /24 to a different origin makes
        // MEMBER's (dest, origin) pair Invalid.
        pol.rpki.add(Roa {
            prefix: "100.10.10.0/24".parse().unwrap(),
            max_len: 32,
            asn: Asn(65000),
        });
        assert_eq!(
            validate_flowspec(&pol, MEMBER, Some(MEMBER), Some(MEMBER), &victim_flow()),
            Err(FlowSpecRejectReason::RpkiInvalid)
        );
        pol.reject_rpki_invalid = false;
        assert_eq!(
            validate_flowspec(&pol, MEMBER, Some(MEMBER), Some(MEMBER), &victim_flow()),
            Ok(())
        );
    }

    #[test]
    fn action_communities_are_filtered_from_the_update() {
        let all = vec![
            ExtendedCommunity::TrafficRate {
                asn: 64500,
                rate_bits: 0,
            },
            ExtendedCommunity::TwoOctetAs {
                transitive: true,
                subtype: 2,
                asn: 6695,
                local: 666,
            },
            ExtendedCommunity::TrafficMarking { dscp: 46 },
        ];
        let actions = action_communities(&all);
        assert_eq!(actions.len(), 2);
        assert!(actions
            .iter()
            .all(|ec| !matches!(ec, ExtendedCommunity::TwoOctetAs { .. })));
    }

    #[test]
    fn reject_reasons_have_stable_tokens() {
        for r in [
            FlowSpecRejectReason::MissingDestPrefix,
            FlowSpecRejectReason::PathMismatch,
            FlowSpecRejectReason::OriginatorMismatch,
            FlowSpecRejectReason::RpkiInvalid,
            FlowSpecRejectReason::OracleUnavailable,
        ] {
            assert!(!r.describe().is_empty());
            assert!(!r.describe().contains(' '));
            assert_eq!(
                r.is_transient(),
                r == FlowSpecRejectReason::OracleUnavailable
            );
        }
    }

    #[test]
    fn oracle_brownout_fails_closed() {
        let mut pol = policy();
        pol.oracle_down = true;
        assert_eq!(
            validate_flowspec(&pol, MEMBER, Some(MEMBER), Some(MEMBER), &victim_flow()),
            Err(FlowSpecRejectReason::OracleUnavailable)
        );
        // Structural refusals still fire without the oracle.
        let no_dst = FlowSpec::new(
            Afi::Ipv4,
            vec![Component::IpProtocol(vec![NumericOp::equals(17)])],
        )
        .unwrap();
        assert_eq!(
            validate_flowspec(&pol, MEMBER, Some(MEMBER), Some(MEMBER), &no_dst),
            Err(FlowSpecRejectReason::MissingDestPrefix)
        );
        pol.oracle_down = false;
        assert_eq!(
            validate_flowspec(&pol, MEMBER, Some(MEMBER), Some(MEMBER), &victim_flow()),
            Ok(())
        );
    }

    #[test]
    fn stats_observe_publishes_flowspec_counters() {
        let stats = FlowSpecStats {
            announced: 5,
            accepted: 3,
            withdrawn: 1,
            rejected: BTreeMap::from([("missing-dest-prefix", 2)]),
            malformed: 4,
        };
        let mut reg = stellar_obs::MetricsRegistry::new();
        stats.observe(&mut reg);
        assert_eq!(reg.counter("routeserver.flowspec.announced"), 5);
        assert_eq!(reg.counter("routeserver.flowspec.malformed"), 4);
        assert_eq!(reg.counter("routeserver.flowspec.rejected"), 2);
        assert_eq!(
            reg.counter("routeserver.flowspec.rejected.missing-dest-prefix"),
            2
        );
    }
}
