//! RPKI origin validation (RFC 6811): Route Origin Authorizations and the
//! three-valued validation outcome.

use std::collections::BTreeMap;
use stellar_bgp::types::Asn;
use stellar_net::prefix::Prefix;

/// A Route Origin Authorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Roa {
    /// The authorized prefix.
    pub prefix: Prefix,
    /// Maximum announced length covered by this ROA.
    pub max_len: u8,
    /// The authorized origin AS.
    pub asn: Asn,
}

/// RFC 6811 validation states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpkiStatus {
    /// A ROA covers the announcement and authorizes the origin.
    Valid,
    /// A ROA covers the announcement but none authorizes it.
    Invalid,
    /// No ROA covers the announcement.
    NotFound,
}

/// A validated ROA table.
#[derive(Debug, Default, Clone)]
pub struct RpkiTable {
    roas: BTreeMap<Prefix, Vec<Roa>>,
}

impl RpkiTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a ROA.
    pub fn add(&mut self, roa: Roa) {
        self.roas.entry(roa.prefix).or_default().push(roa);
    }

    /// Validates an announcement of `prefix` by `origin`.
    pub fn validate(&self, prefix: &Prefix, origin: Asn) -> RpkiStatus {
        let mut covered = false;
        for roas in self.roas.values() {
            for roa in roas {
                if roa.prefix.covers(prefix) {
                    covered = true;
                    if roa.asn == origin && prefix.len() <= roa.max_len {
                        return RpkiStatus::Valid;
                    }
                }
            }
        }
        if covered {
            RpkiStatus::Invalid
        } else {
            RpkiStatus::NotFound
        }
    }

    /// Number of ROAs.
    pub fn len(&self) -> usize {
        self.roas.values().map(Vec::len).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.roas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn valid_invalid_notfound() {
        let mut t = RpkiTable::new();
        t.add(Roa {
            prefix: p("100.10.10.0/24"),
            max_len: 32,
            asn: Asn(64500),
        });
        assert_eq!(
            t.validate(&p("100.10.10.0/24"), Asn(64500)),
            RpkiStatus::Valid
        );
        // max_len 32 covers the blackhole /32.
        assert_eq!(
            t.validate(&p("100.10.10.10/32"), Asn(64500)),
            RpkiStatus::Valid
        );
        // Wrong origin: covered but unauthorized.
        assert_eq!(
            t.validate(&p("100.10.10.0/24"), Asn(666)),
            RpkiStatus::Invalid
        );
        // No ROA at all.
        assert_eq!(
            t.validate(&p("9.9.9.0/24"), Asn(64500)),
            RpkiStatus::NotFound
        );
    }

    #[test]
    fn max_len_is_enforced() {
        let mut t = RpkiTable::new();
        t.add(Roa {
            prefix: p("100.10.0.0/16"),
            max_len: 24,
            asn: Asn(64500),
        });
        assert_eq!(
            t.validate(&p("100.10.10.0/24"), Asn(64500)),
            RpkiStatus::Valid
        );
        // A /32 exceeds max_len 24: Invalid even for the right origin —
        // why RTBH deployments need ROAs with max_len 32 (or none).
        assert_eq!(
            t.validate(&p("100.10.10.10/32"), Asn(64500)),
            RpkiStatus::Invalid
        );
    }

    #[test]
    fn multiple_roas_any_valid_wins() {
        let mut t = RpkiTable::new();
        t.add(Roa {
            prefix: p("100.10.10.0/24"),
            max_len: 32,
            asn: Asn(1),
        });
        t.add(Roa {
            prefix: p("100.10.10.0/24"),
            max_len: 32,
            asn: Asn(2),
        });
        assert_eq!(t.validate(&p("100.10.10.0/24"), Asn(2)), RpkiStatus::Valid);
        assert_eq!(t.len(), 2);
    }
}
