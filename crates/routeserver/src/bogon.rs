//! Bogon filtering: prefixes that must never appear in inter-domain
//! routing (\[28\] in the paper).
//!
//! The documentation TEST-NET ranges (192.0.2.0/24 etc.) are deliberately
//! *not* listed: the emulation uses them as synthetic public address
//! space, exactly because no real network owns them.

use stellar_net::prefix::Prefix;

/// The filtered IPv4 bogon ranges.
pub fn bogon_list_v4() -> Vec<Prefix> {
    [
        "0.0.0.0/8",      // "this" network
        "10.0.0.0/8",     // RFC 1918
        "100.64.0.0/10",  // CGN shared space
        "127.0.0.0/8",    // loopback
        "169.254.0.0/16", // link local
        "172.16.0.0/12",  // RFC 1918
        "192.168.0.0/16", // RFC 1918
        "224.0.0.0/4",    // multicast
        "240.0.0.0/4",    // reserved
    ]
    .iter()
    .map(|s| s.parse().expect("static bogon list parses"))
    .collect()
}

/// The filtered IPv6 bogon ranges (a pragmatic subset).
pub fn bogon_list_v6() -> Vec<Prefix> {
    ["::/8", "fc00::/7", "fe80::/10", "ff00::/8"]
        .iter()
        .map(|s| s.parse().expect("static bogon list parses"))
        .collect()
}

/// True if `prefix` falls inside (or equals) a bogon range.
pub fn is_bogon(prefix: &Prefix) -> bool {
    let list = if prefix.is_v4() {
        bogon_list_v4()
    } else {
        bogon_list_v6()
    };
    list.iter().any(|b| b.covers(prefix))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn private_space_is_bogon() {
        assert!(is_bogon(&p("10.1.2.0/24")));
        assert!(is_bogon(&p("192.168.0.0/16")));
        assert!(is_bogon(&p("172.20.0.0/16")));
        assert!(is_bogon(&p("127.0.0.1/32")));
        assert!(is_bogon(&p("224.1.2.3/32")));
        assert!(is_bogon(&p("100.64.1.0/24")));
    }

    #[test]
    fn public_space_is_not_bogon() {
        assert!(!is_bogon(&p("100.10.10.0/24"))); // 100.0.0.0/10 side of 100/8
        assert!(!is_bogon(&p("8.8.8.0/24")));
        assert!(!is_bogon(&p("203.0.113.0/24"))); // TEST-NET-3: synthetic public
        assert!(!is_bogon(&p("172.32.0.0/16"))); // just outside RFC1918
    }

    #[test]
    fn covering_a_bogon_is_not_itself_bogon() {
        // A /6 containing 10/8 is not inside any bogon range.
        assert!(!is_bogon(&p("8.0.0.0/6")));
    }

    #[test]
    fn v6_bogons() {
        assert!(is_bogon(&p("fe80::/64")));
        assert!(is_bogon(&p("fc00::1/128")));
        assert!(is_bogon(&p("ff02::/16")));
        assert!(!is_bogon(&p("2001:db8::/32")));
    }
}
