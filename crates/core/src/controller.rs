//! The blackholing controller (§4.3/§4.4): a passive iBGP listener behind
//! the route server that turns signaled blackholing rules into abstract
//! configuration changes.
//!
//! "The blackholing controller implements a BGP parser and a BGP
//! processor. ... the controller calculates differences between RIB
//! snapshots. Essentially, these differences represent a set of abstract,
//! i.e., still hardware-independent, configuration changes."
//!
//! The controller is fed ADD-PATH-tagged updates so it can "honor the
//! same prefix from different member ASes with diverging blackholing
//! rules".

use crate::portal::CustomerPortal;
use crate::rule::BlackholingRule;
use crate::signal::StellarSignal;
use std::collections::HashMap;
use stellar_bgp::attr::PathAttribute;
use stellar_bgp::types::Asn;
use stellar_bgp::update::UpdateMessage;
use stellar_net::prefix::Prefix;

/// A hardware-independent configuration change (§4.4).
#[derive(Debug, Clone, PartialEq)]
pub enum AbstractChange {
    /// Install a blackholing rule.
    AddRule(BlackholingRule),
    /// Remove a previously installed rule.
    RemoveRule {
        /// The rule to remove.
        rule_id: u64,
        /// The owner whose egress port holds it.
        owner: Asn,
    },
}

/// What [`BlackholingController::degrade_rule`] did with a rule that
/// persistently failed TCAM admission.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeOutcome {
    /// The rule was replaced by a coarser one carrying the same id;
    /// install this instead.
    Degraded(BlackholingRule),
    /// The coarser signal already exists on the path under another rule
    /// id: the failing rule was dropped from desired state — its traffic
    /// is covered by the surviving rule.
    Merged,
    /// Already at the bottom of the ladder (drop-all would not fit);
    /// the rule was dropped from desired state.
    Exhausted,
    /// The rule id is not in desired state (already withdrawn).
    Unknown,
}

/// One announced path's blackholing state.
#[derive(Debug, Default)]
struct PathRules {
    owner: Option<Asn>,
    /// Signal → installed rule id.
    rules: HashMap<StellarSignal, u64>,
}

/// The blackholing controller.
pub struct BlackholingController {
    ixp_asn: Asn,
    portal: CustomerPortal,
    paths: HashMap<(Prefix, Option<u32>), PathRules>,
    next_rule_id: u64,
}

impl BlackholingController {
    /// Creates a controller with the IXP's standard rule catalog.
    pub fn new(ixp_asn: Asn) -> Self {
        BlackholingController {
            ixp_asn,
            portal: CustomerPortal::with_standard_catalog(ixp_asn),
            paths: HashMap::new(),
            next_rule_id: 1,
        }
    }

    /// Mutable access to the rule catalog (the customer portal).
    pub fn portal_mut(&mut self) -> &mut CustomerPortal {
        &mut self.portal
    }

    /// Read access to the catalog.
    pub fn portal(&self) -> &CustomerPortal {
        &self.portal
    }

    /// Total rules the controller believes are installed.
    pub fn rule_count(&self) -> usize {
        self.paths.values().map(|p| p.rules.len()).sum()
    }

    /// Processes one update from the route server's southbound feed and
    /// returns the abstract configuration changes it implies.
    pub fn process_update(&mut self, update: &UpdateMessage) -> Vec<AbstractChange> {
        let mut changes = Vec::new();
        // Withdrawals: every rule attached to the path goes away —
        // including the implicit-withdraw-on-session-failure case, where
        // the route server withdraws on the member's behalf (§4.2.1).
        // IPv6 withdrawals arrive in MP_UNREACH_NLRI.
        let mut withdrawals = update.withdrawn.clone();
        for a in &update.attrs {
            if let PathAttribute::MpUnreach { nlri, .. } = a {
                withdrawals.extend(nlri.iter().copied());
            }
        }
        for w in &withdrawals {
            let key = (w.prefix, w.path_id);
            if let Some(path) = self.paths.remove(&key) {
                let owner = path.owner.unwrap_or(Asn(0));
                // Sorted by rule id so emission order is deterministic
                // (rule maps are hash maps with per-instance seeds).
                let mut ids: Vec<u64> = path.rules.into_values().collect();
                ids.sort_unstable();
                for rule_id in ids {
                    changes.push(AbstractChange::RemoveRule { rule_id, owner });
                }
            }
        }
        // Announcements: diff desired signals against installed rules.
        let owner = update.attrs.iter().find_map(|a| match a {
            PathAttribute::AsPath(p) => p.origin_as(),
            _ => None,
        });
        let ecs = update.extended_communities();
        // IPv6 announcements arrive in MP_REACH_NLRI.
        let mut announcements = update.nlri.clone();
        for a in &update.attrs {
            if let PathAttribute::MpReach { nlri, .. } = a {
                announcements.extend(nlri.iter().copied());
            }
        }
        for n in &announcements {
            let key = (n.prefix, n.path_id);
            let Some(owner) = owner else {
                // No origin AS: cannot attribute rules; treat as plain
                // route (and drop any stale rules for the path).
                if let Some(path) = self.paths.remove(&key) {
                    let o = path.owner.unwrap_or(Asn(0));
                    let mut ids: Vec<u64> = path.rules.into_values().collect();
                    ids.sort_unstable();
                    for rule_id in ids {
                        changes.push(AbstractChange::RemoveRule { rule_id, owner: o });
                    }
                }
                continue;
            };
            let desired = StellarSignal::extract(ecs, self.ixp_asn, &self.portal, owner);
            let path = self.paths.entry(key).or_default();
            path.owner = Some(owner);
            // Removals: installed but no longer desired, in rule-id
            // order (deterministic across runs).
            let mut stale: Vec<(u64, StellarSignal)> = path
                .rules
                .iter()
                .filter(|(s, _)| !desired.contains(s))
                .map(|(s, id)| (*id, *s))
                .collect();
            stale.sort_unstable_by_key(|(id, _)| *id);
            for (rule_id, s) in stale {
                path.rules.remove(&s);
                changes.push(AbstractChange::RemoveRule { rule_id, owner });
            }
            // Additions: desired but not installed.
            for s in desired {
                if path.rules.contains_key(&s) {
                    continue;
                }
                let id = self.next_rule_id;
                self.next_rule_id += 1;
                path.rules.insert(s, id);
                changes.push(AbstractChange::AddRule(BlackholingRule::from_signal(
                    id, owner, n.prefix, s,
                )));
            }
            if path.rules.is_empty() && path.owner.is_some() {
                // Plain route with no rules: no need to track it.
                self.paths.remove(&key);
            }
        }
        changes
    }

    /// A snapshot of every rule the controller currently wants installed,
    /// sorted by rule id. This is the desired-state side of the
    /// reconciliation diff.
    pub fn desired_rules(&self) -> Vec<BlackholingRule> {
        let mut out = Vec::new();
        for ((prefix, _), path) in &self.paths {
            let owner = path.owner.unwrap_or(Asn(0));
            for (signal, id) in &path.rules {
                out.push(BlackholingRule::from_signal(*id, owner, *prefix, *signal));
            }
        }
        out.sort_by_key(|r| r.id);
        out
    }

    /// Admission control permanently refused `rule_id`: drop it from
    /// desired state so `rule_count()` and telemetry reflect what is
    /// actually in hardware, and the reconciler does not keep trying to
    /// repair an uninstallable rule. Returns whether the id was known.
    pub fn rule_refused(&mut self, rule_id: u64) -> bool {
        let mut found = false;
        self.paths.retain(|_, path| {
            path.rules.retain(|_, id| {
                let hit = *id == rule_id;
                found |= hit;
                !hit
            });
            !path.rules.is_empty()
        });
        found
    }

    /// Steps `rule_id` one rung down the degradation ladder
    /// ([`StellarSignal::degrade`]), keeping the same rule id so
    /// telemetry references stay valid. Desired state is updated in
    /// place; the caller installs the returned coarser rule.
    pub fn degrade_rule(&mut self, rule_id: u64) -> DegradeOutcome {
        let key = self
            .paths
            .iter()
            .find_map(|(k, path)| path.rules.values().any(|id| *id == rule_id).then_some(*k));
        let Some(key) = key else {
            return DegradeOutcome::Unknown;
        };
        let Some(path) = self.paths.get_mut(&key) else {
            return DegradeOutcome::Unknown;
        };
        let Some(signal) = path
            .rules
            .iter()
            .find(|(_, id)| **id == rule_id)
            .map(|(s, _)| *s)
        else {
            return DegradeOutcome::Unknown;
        };
        let owner = path.owner.unwrap_or(Asn(0));
        path.rules.remove(&signal);
        let outcome = match signal.degrade() {
            None => DegradeOutcome::Exhausted,
            Some(next) if path.rules.contains_key(&next) => DegradeOutcome::Merged,
            Some(next) => {
                path.rules.insert(next, rule_id);
                DegradeOutcome::Degraded(BlackholingRule::from_signal(rule_id, owner, key.0, next))
            }
        };
        if self.paths.get(&key).is_some_and(|p| p.rules.is_empty()) {
            self.paths.remove(&key);
        }
        outcome
    }

    /// The iBGP session to the route server died: fall back to plain
    /// forwarding by removing every rule (availability first, §4.1.2).
    pub fn session_down(&mut self) -> Vec<AbstractChange> {
        let mut changes = Vec::new();
        for (_, path) in self.paths.drain() {
            let owner = path.owner.unwrap_or(Asn(0));
            for (_, rule_id) in path.rules {
                changes.push(AbstractChange::RemoveRule { rule_id, owner });
            }
        }
        changes.sort_by_key(|c| match c {
            AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
            AbstractChange::AddRule(r) => r.id,
        });
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{RuleAction, RuleMatcher};
    use stellar_bgp::attr::AsPath;
    use stellar_bgp::nlri::Nlri;
    use stellar_net::addr::Ipv4Address;

    const IXP: Asn = Asn(6695);
    const OWNER: Asn = Asn(64500);

    fn victim() -> Prefix {
        "100.10.10.10/32".parse().unwrap()
    }

    fn update_with_signals(signals: &[StellarSignal], path_id: u32) -> UpdateMessage {
        let mut u = UpdateMessage::announce(
            victim(),
            Ipv4Address::new(80, 81, 192, 10),
            PathAttribute::AsPath(AsPath::sequence([OWNER.0])),
        );
        u.nlri = vec![Nlri::with_path_id(victim(), path_id)];
        let ecs: Vec<_> = signals.iter().map(|s| s.encode(IXP)).collect();
        if !ecs.is_empty() {
            u.add_extended_communities(&ecs);
        }
        u
    }

    #[test]
    fn new_signal_produces_add_rule() {
        let mut c = BlackholingController::new(IXP);
        let changes =
            c.process_update(&update_with_signals(&[StellarSignal::drop_udp_src(123)], 1));
        assert_eq!(changes.len(), 1);
        match &changes[0] {
            AbstractChange::AddRule(r) => {
                assert_eq!(r.owner, OWNER);
                assert_eq!(r.victim, victim());
                assert_eq!(r.signal(), Some(StellarSignal::drop_udp_src(123)));
            }
            other => panic!("expected add, got {other:?}"),
        }
        assert_eq!(c.rule_count(), 1);
        // Re-announcing the same state is idempotent.
        let changes =
            c.process_update(&update_with_signals(&[StellarSignal::drop_udp_src(123)], 1));
        assert!(changes.is_empty());
    }

    #[test]
    fn signal_change_swaps_rules() {
        let mut c = BlackholingController::new(IXP);
        c.process_update(&update_with_signals(
            &[StellarSignal::shape_udp_src(123, 200)],
            1,
        ));
        // Member escalates from shaping to dropping (the Fig. 10c story).
        let changes =
            c.process_update(&update_with_signals(&[StellarSignal::drop_udp_src(123)], 1));
        assert_eq!(changes.len(), 2);
        assert!(matches!(changes[0], AbstractChange::RemoveRule { .. }));
        match &changes[1] {
            AbstractChange::AddRule(r) => assert_eq!(r.action(), RuleAction::Drop),
            other => panic!("expected add, got {other:?}"),
        }
        assert_eq!(c.rule_count(), 1);
    }

    #[test]
    fn withdrawal_removes_all_rules_for_the_path() {
        let mut c = BlackholingController::new(IXP);
        c.process_update(&update_with_signals(
            &[
                StellarSignal::drop_udp_src(123),
                StellarSignal::drop_udp_src(53),
            ],
            1,
        ));
        assert_eq!(c.rule_count(), 2);
        let w = UpdateMessage {
            withdrawn: vec![Nlri::with_path_id(victim(), 1)],
            ..Default::default()
        };
        let changes = c.process_update(&w);
        assert_eq!(changes.len(), 2);
        assert!(changes
            .iter()
            .all(|ch| matches!(ch, AbstractChange::RemoveRule { owner, .. } if *owner == OWNER)));
        assert_eq!(c.rule_count(), 0);
    }

    #[test]
    fn reannounce_without_signals_clears_rules() {
        let mut c = BlackholingController::new(IXP);
        c.process_update(&update_with_signals(&[StellarSignal::drop_udp_src(123)], 1));
        let changes = c.process_update(&update_with_signals(&[], 1));
        assert_eq!(changes.len(), 1);
        assert!(matches!(changes[0], AbstractChange::RemoveRule { .. }));
        assert_eq!(c.rule_count(), 0);
    }

    #[test]
    fn distinct_paths_hold_distinct_rules() {
        let mut c = BlackholingController::new(IXP);
        c.process_update(&update_with_signals(&[StellarSignal::drop_udp_src(123)], 1));
        c.process_update(&update_with_signals(&[StellarSignal::drop_udp_src(53)], 2));
        assert_eq!(c.rule_count(), 2);
        // Withdrawing path 1 leaves path 2 intact.
        let w = UpdateMessage {
            withdrawn: vec![Nlri::with_path_id(victim(), 1)],
            ..Default::default()
        };
        c.process_update(&w);
        assert_eq!(c.rule_count(), 1);
    }

    #[test]
    fn session_down_flushes_everything() {
        let mut c = BlackholingController::new(IXP);
        c.process_update(&update_with_signals(&[StellarSignal::drop_udp_src(123)], 1));
        c.process_update(&update_with_signals(&[StellarSignal::drop_udp_src(53)], 2));
        let changes = c.session_down();
        assert_eq!(changes.len(), 2);
        assert_eq!(c.rule_count(), 0);
        assert!(c.session_down().is_empty());
    }

    #[test]
    fn predefined_reference_resolves_through_portal() {
        let mut c = BlackholingController::new(IXP);
        let id = crate::portal::CustomerPortal::predefined_id(
            stellar_net::amplification::AmpProtocol::Ntp,
        );
        let reference = crate::portal::CustomerPortal::reference_signal(id);
        let changes = c.process_update(&update_with_signals(&[reference], 1));
        assert_eq!(changes.len(), 1);
        match &changes[0] {
            AbstractChange::AddRule(r) => {
                assert_eq!(r.signal(), Some(StellarSignal::drop_udp_src(123)));
            }
            other => panic!("expected add, got {other:?}"),
        }
    }

    #[test]
    fn refused_rule_leaves_desired_state() {
        let mut c = BlackholingController::new(IXP);
        c.process_update(&update_with_signals(
            &[
                StellarSignal::drop_udp_src(123),
                StellarSignal::drop_udp_src(53),
            ],
            1,
        ));
        assert_eq!(c.rule_count(), 2);
        let refused = c.desired_rules()[0].id;
        assert!(c.rule_refused(refused));
        assert_eq!(c.rule_count(), 1);
        assert!(c.desired_rules().iter().all(|r| r.id != refused));
        // Unknown ids are reported as such.
        assert!(!c.rule_refused(refused));
    }

    #[test]
    fn degrade_rule_walks_the_ladder_in_place() {
        let mut c = BlackholingController::new(IXP);
        c.process_update(&update_with_signals(&[StellarSignal::drop_udp_src(123)], 1));
        let id = c.desired_rules()[0].id;
        // 3 criteria → 2: widen to all-UDP, same id.
        match c.degrade_rule(id) {
            DegradeOutcome::Degraded(r) => {
                assert_eq!(r.id, id);
                assert!(
                    matches!(r.matcher, RuleMatcher::Signal(s) if s.kind == crate::signal::MatchKind::AllUdp)
                );
                assert_eq!(r.victim, victim());
                assert_eq!(r.owner, OWNER);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(c.rule_count(), 1);
        // 2 → 1: RTBH-style drop-all.
        match c.degrade_rule(id) {
            DegradeOutcome::Degraded(r) => assert_eq!(r.signal(), Some(StellarSignal::drop_all())),
            other => panic!("expected Degraded, got {other:?}"),
        }
        // Bottom of the ladder: the rule leaves desired state.
        assert_eq!(c.degrade_rule(id), DegradeOutcome::Exhausted);
        assert_eq!(c.rule_count(), 0);
        assert_eq!(c.degrade_rule(id), DegradeOutcome::Unknown);
    }

    #[test]
    fn degrade_merges_into_existing_coarser_rule() {
        let mut c = BlackholingController::new(IXP);
        c.process_update(&update_with_signals(
            &[
                StellarSignal::drop_udp_src(123),
                StellarSignal {
                    kind: crate::signal::MatchKind::AllUdp,
                    port: 0,
                    action: RuleAction::Drop,
                },
            ],
            1,
        ));
        let fine = c
            .desired_rules()
            .into_iter()
            .find(|r| r.signal() == Some(StellarSignal::drop_udp_src(123)))
            .unwrap();
        assert_eq!(c.degrade_rule(fine.id), DegradeOutcome::Merged);
        assert_eq!(c.rule_count(), 1);
    }

    #[test]
    fn update_without_origin_as_is_inert() {
        let mut c = BlackholingController::new(IXP);
        let mut u = update_with_signals(&[StellarSignal::drop_udp_src(123)], 1);
        u.attrs.retain(|a| !matches!(a, PathAttribute::AsPath(_)));
        u.attrs.push(PathAttribute::AsPath(AsPath::empty()));
        let changes = c.process_update(&u);
        assert!(changes.is_empty());
        assert_eq!(c.rule_count(), 0);
    }
}
