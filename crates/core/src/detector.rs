//! Attack-signature detection over delivered traffic — the monitor-side
//! piece of §6's "Combining Advanced Blackholing with other solutions":
//!
//! "Stellar together with deep packet inspection of attack traffic can be
//! used to, e.g., infer attack signatures or an attack start/end."
//!
//! The detector watches a member's delivered (or shaped-sample) traffic
//! aggregates and flags L4 signatures whose rate and share exceed
//! thresholds; each finding maps directly to a [`StellarSignal`], so a
//! monitoring pipeline (a scrubbing center receiving the 200 Mbps sample,
//! or the member's own NOC tooling) can close the loop automatically.

use crate::rule::RuleAction;
use crate::signal::{MatchKind, StellarSignal};
use std::collections::HashMap;
use stellar_net::flow::FlowKey;
use stellar_net::ports;
use stellar_net::proto::IpProtocol;

/// One detected attack signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The matched signature.
    pub signal: StellarSignal,
    /// Observed rate of the signature in bits/second.
    pub rate_bps: f64,
    /// Share of the member's total observed traffic.
    pub share: f64,
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Minimum rate before a signature is considered (bps).
    pub min_rate_bps: f64,
    /// Minimum share of total traffic before a signature is considered.
    pub min_share: f64,
    /// Only flag amplification-prone source ports (conservative default:
    /// true — arbitrary ports need human review before auto-dropping).
    pub amplification_ports_only: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_rate_bps: 50e6,
            min_share: 0.25,
            amplification_ports_only: true,
        }
    }
}

/// A sliding-window signature detector.
#[derive(Debug, Default)]
pub struct SignatureDetector {
    /// (proto, src_port) → bytes in the current window.
    window: HashMap<(IpProtocol, u16), u64>,
    total_bytes: u64,
    window_start_us: u64,
}

impl SignatureDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observed aggregate.
    pub fn observe(&mut self, key: &FlowKey, bytes: u64) {
        if key.protocol.has_ports() {
            *self.window.entry((key.protocol, key.src_port)).or_insert(0) += bytes;
        }
        self.total_bytes += bytes;
    }

    /// Closes the window at `now_us` and returns detections, sorted by
    /// rate (highest first). Resets the window.
    pub fn analyze(&mut self, now_us: u64, config: &DetectorConfig) -> Vec<Detection> {
        let dt_s = ((now_us.saturating_sub(self.window_start_us)) as f64 / 1e6).max(1e-9);
        let total = self.total_bytes.max(1) as f64;
        let mut out = Vec::new();
        for ((proto, src_port), bytes) in self.window.drain() {
            let rate_bps = bytes as f64 * 8.0 / dt_s;
            let share = bytes as f64 / total;
            if rate_bps < config.min_rate_bps || share < config.min_share {
                continue;
            }
            if config.amplification_ports_only && !ports::is_amplification_prone(src_port) {
                continue;
            }
            let kind = match proto {
                IpProtocol::UDP => MatchKind::UdpSrcPort,
                IpProtocol::TCP => MatchKind::TcpSrcPort,
                _ => continue,
            };
            out.push(Detection {
                signal: StellarSignal {
                    kind,
                    port: src_port,
                    action: RuleAction::Drop,
                },
                rate_bps,
                share,
            });
        }
        self.total_bytes = 0;
        self.window_start_us = now_us;
        out.sort_by(|a, b| b.rate_bps.partial_cmp(&a.rate_bps).expect("finite rates"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::mac::MacAddr;

    fn key(src_port: u16, proto: IpProtocol) -> FlowKey {
        FlowKey {
            src_mac: MacAddr::for_member(65000, 1),
            dst_mac: MacAddr::for_member(64500, 1),
            src_ip: IpAddress::V4(Ipv4Address::new(198, 51, 100, 1)),
            dst_ip: IpAddress::V4(Ipv4Address::new(100, 10, 10, 10)),
            protocol: proto,
            src_port,
            dst_port: 40000,
            ..FlowKey::default()
        }
    }

    #[test]
    fn dominant_amplification_signature_is_detected() {
        let mut d = SignatureDetector::new();
        // One second: 900 Mbps NTP + 100 Mbps web.
        d.observe(&key(123, IpProtocol::UDP), 112_500_000);
        d.observe(&key(51000, IpProtocol::TCP), 12_500_000);
        let found = d.analyze(1_000_000, &DetectorConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].signal, StellarSignal::drop_udp_src(123));
        assert!((found[0].rate_bps - 900e6).abs() / 900e6 < 0.01);
        assert!(found[0].share > 0.85);
    }

    #[test]
    fn low_rate_or_low_share_is_ignored() {
        let mut d = SignatureDetector::new();
        // 40 Mbps NTP against 1 Gbps web: below both thresholds.
        d.observe(&key(123, IpProtocol::UDP), 5_000_000);
        d.observe(&key(51000, IpProtocol::TCP), 125_000_000);
        assert!(d.analyze(1_000_000, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn non_amplification_ports_need_opt_in() {
        let mut d = SignatureDetector::new();
        d.observe(&key(4444, IpProtocol::UDP), 112_500_000);
        assert!(d.analyze(1_000_000, &DetectorConfig::default()).is_empty());
        let mut d = SignatureDetector::new();
        d.observe(&key(4444, IpProtocol::UDP), 112_500_000);
        let cfg = DetectorConfig {
            amplification_ports_only: false,
            ..Default::default()
        };
        let found = d.analyze(1_000_000, &cfg);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].signal.port, 4444);
    }

    #[test]
    fn window_resets_after_analyze() {
        let mut d = SignatureDetector::new();
        d.observe(&key(123, IpProtocol::UDP), 112_500_000);
        assert_eq!(d.analyze(1_000_000, &DetectorConfig::default()).len(), 1);
        // Fresh window: nothing observed yet.
        assert!(d.analyze(2_000_000, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn multiple_signatures_sorted_by_rate() {
        let mut d = SignatureDetector::new();
        d.observe(&key(123, IpProtocol::UDP), 60_000_000); // 480 Mbps
        d.observe(&key(11211, IpProtocol::UDP), 80_000_000); // 640 Mbps
        let cfg = DetectorConfig {
            min_share: 0.1,
            ..Default::default()
        };
        let found = d.analyze(1_000_000, &cfg);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].signal.port, 11211);
        assert_eq!(found[1].signal.port, 123);
    }

    #[test]
    fn portless_protocols_never_form_signatures() {
        let mut d = SignatureDetector::new();
        d.observe(&key(0, IpProtocol::ICMP), 500_000_000);
        let cfg = DetectorConfig {
            amplification_ports_only: false,
            min_share: 0.0,
            ..Default::default()
        };
        assert!(d.analyze(1_000_000, &cfg).is_empty());
    }
}
