//! Reusable end-to-end attack/mitigation experiments — the machinery
//! behind Figs. 2(c), 3(c) and 10(c). The bench binaries parameterize and
//! print these; integration tests assert their shapes.

use crate::rtbh::{blackhole_announcement, RtbhFilter};
use crate::signal::StellarSignal;
use crate::system::StellarSystem;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use stellar_bgp::types::Asn;
use stellar_dataplane::hardware::HardwareInfoBase;
use stellar_dataplane::switch::OfferedAggregate;
use stellar_net::addr::{IpAddress, Ipv4Address};
use stellar_net::amplification::AmpProtocol;
use stellar_net::flow::FlowKey;
use stellar_net::prefix::Prefix;
use stellar_net::proto::IpProtocol;
use stellar_sim::collector::{FlowCollector, TimeSeries};
use stellar_sim::time::{secs, SimTime};
use stellar_sim::topology::{generic_members, IxpTopology, MemberSpec};
use stellar_sim::traffic::{BenignWebMix, BooterService, SourcePoint, TrafficSource};

/// The victim used by all scenarios: the "experimental AS" of §2.4.
pub const VICTIM_ASN: Asn = Asn(64500);

/// The attacked /32.
pub fn victim_ip() -> Ipv4Address {
    Ipv4Address::new(100, 10, 10, 10)
}

/// The victim host prefix.
pub fn victim_prefix() -> Prefix {
    Prefix::host(IpAddress::V4(victim_ip()))
}

/// Mitigation plan for the booter experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MitigationPlan {
    /// Let the attack run (baseline).
    None,
    /// Classic RTBH: announce the /32 with the blackhole community at
    /// this time (Fig. 3c: 280 s after the attack starts).
    Rtbh {
        /// When the victim signals.
        announce_at: SimTime,
    },
    /// Stellar: shape for telemetry, then drop (Fig. 10c).
    Stellar {
        /// When the shaping signal is sent.
        shape_at: SimTime,
        /// Shaping rate in Mbps (200 in the paper).
        shape_rate_mbps: u32,
        /// When the member escalates to a full UDP drop.
        drop_at: SimTime,
    },
}

/// Output of one booter run.
#[derive(Debug)]
pub struct BooterRun {
    /// Traffic delivered to the victim's port, Mbps per bucket.
    pub delivered_mbps: TimeSeries,
    /// Distinct peers delivering traffic per bucket.
    pub peers: TimeSeries,
    /// For RTBH: how many sources honored the signal.
    pub honoring_sources: usize,
    /// Total attack sources.
    pub attack_sources: usize,
}

/// Parameters of the booter experiment (§2.4 / §5.3).
#[derive(Debug, Clone)]
pub struct BooterParams {
    /// Total IXP members (the victim peers with all of them).
    pub n_members: usize,
    /// Member ports the attack arrives through (~40 in Fig. 3c, ~60 in
    /// Fig. 10c).
    pub n_reflector_members: usize,
    /// Attack peak in bits/second (≈1 Gbps).
    pub peak_bps: f64,
    /// When the attack starts.
    pub attack_start: SimTime,
    /// When the attack stops.
    pub attack_end: SimTime,
    /// Total experiment duration.
    pub duration: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl BooterParams {
    /// Fig. 3(c) setup: ~40 peers, RTBH at t = 380 s (280 s into the
    /// attack).
    pub fn fig3c() -> (Self, MitigationPlan) {
        (
            BooterParams {
                n_members: 120,
                n_reflector_members: 40,
                peak_bps: 1e9,
                attack_start: secs(100),
                attack_end: secs(900),
                duration: secs(900),
                seed: 0x3c,
            },
            MitigationPlan::Rtbh {
                announce_at: secs(380),
            },
        )
    }

    /// Fig. 10(c) setup: ~60 peers, shape at t = 300 s, drop at t = 500 s.
    pub fn fig10c() -> (Self, MitigationPlan) {
        (
            BooterParams {
                n_members: 120,
                n_reflector_members: 60,
                peak_bps: 1e9,
                attack_start: secs(100),
                attack_end: secs(900),
                duration: secs(900),
                seed: 0x10c,
            },
            MitigationPlan::Stellar {
                shape_at: secs(300),
                shape_rate_mbps: 200,
                drop_at: secs(500),
            },
        )
    }
}

fn build_system(params: &BooterParams) -> StellarSystem {
    let mut specs = vec![MemberSpec {
        asn: VICTIM_ASN.0,
        capacity_bps: 10_000_000_000, // the experimental AS's 10G port
        prefixes: vec![Prefix::V4(
            stellar_net::prefix::Ipv4Prefix::new(Ipv4Address::new(100, 10, 10, 0), 24)
                .expect("valid"),
        )],
    }];
    specs.extend(generic_members(VICTIM_ASN.0 + 1, params.n_members - 1));
    let ixp = IxpTopology::build(&specs, HardwareInfoBase::production_er());
    StellarSystem::new(ixp, 4.33)
}

fn reflector_points(system: &StellarSystem, n: usize) -> Vec<SourcePoint> {
    system
        .ixp
        .members
        .iter()
        .filter(|(asn, _)| **asn != VICTIM_ASN)
        .take(n)
        .enumerate()
        .map(|(i, (_, info))| SourcePoint {
            mac: info.mac,
            ip: Ipv4Address::from_u32(u32::from_be_bytes([198, 51, 100, 0]) + (i as u32 % 250) + 1),
        })
        .collect()
}

/// A small always-on background (keepalives, ARP-ish chatter) so the
/// post-mitigation plots show the residual the paper mentions.
fn background_offers(system: &StellarSystem, t0: SimTime, t1: SimTime) -> Vec<OfferedAggregate> {
    let victim = system.ixp.member(VICTIM_ASN).expect("victim exists");
    let dt_s = (t1 - t0) as f64 / 1e6;
    let mut out = Vec::new();
    for (i, (asn, info)) in system.ixp.members.iter().enumerate() {
        if *asn == VICTIM_ASN || i % 40 != 3 {
            continue; // a few chatty peers only
        }
        let bytes = (0.5e6 * dt_s / 8.0) as u64; // 0.5 Mbps each
        out.push(OfferedAggregate {
            key: FlowKey {
                src_mac: info.mac,
                dst_mac: victim.mac,
                src_ip: IpAddress::V4(info.peering_ip),
                dst_ip: IpAddress::V4(victim_ip()),
                protocol: IpProtocol::ICMP,
                src_port: 0,
                dst_port: 0,
                ..FlowKey::default()
            },
            bytes,
            packets: bytes / 64 + 1,
        });
    }
    out
}

/// Runs the booter experiment under the given mitigation plan.
pub fn run_booter(params: &BooterParams, plan: MitigationPlan) -> BooterRun {
    let mut system = build_system(params);
    let reflectors = reflector_points(&system, params.n_reflector_members);
    let reflector_asns: Vec<u32> = system
        .ixp
        .members
        .keys()
        .filter(|a| **a != VICTIM_ASN)
        .take(params.n_reflector_members)
        .map(|a| a.0)
        .collect();
    let mut booter = BooterService::order(
        AmpProtocol::Ntp,
        victim_ip(),
        system.ixp.member(VICTIM_ASN).expect("victim").mac,
        params.peak_bps,
        reflectors,
        params.attack_start,
        params.attack_end,
    );
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut collector = FlowCollector::new();
    let mut rtbh: Option<RtbhFilter> = None;
    let mut shaped = false;
    let mut dropped = false;

    let tick = secs(1);
    let victim_port = system.ixp.member(VICTIM_ASN).expect("victim").port;
    let mut t = 0;
    while t < params.duration {
        let t1 = t + tick;
        // Control-plane actions at their scheduled times.
        match plan {
            MitigationPlan::Rtbh { announce_at } if rtbh.is_none() && t >= announce_at => {
                // The victim announces the /32 + blackhole community; the
                // route server reflects it; honoring members null their
                // traffic.
                let u = blackhole_announcement(&system.ixp, VICTIM_ASN, victim_prefix());
                system.ixp.route_server.handle_update(VICTIM_ASN, &u, t);
                rtbh = Some(RtbhFilter::from_sources(
                    victim_prefix(),
                    &reflector_asns,
                    &system.ixp.honoring,
                ));
            }
            MitigationPlan::Stellar {
                shape_at,
                shape_rate_mbps,
                drop_at,
            } => {
                if !shaped && t >= shape_at {
                    shaped = true;
                    system.member_signal(
                        VICTIM_ASN,
                        victim_prefix(),
                        &[StellarSignal::shape_udp_src(123, shape_rate_mbps)],
                        t,
                    );
                }
                if !dropped && t >= drop_at {
                    dropped = true;
                    // Escalate: drop all UDP towards the victim.
                    system.member_signal(
                        VICTIM_ASN,
                        victim_prefix(),
                        &[StellarSignal {
                            kind: crate::signal::MatchKind::AllUdp,
                            port: 0,
                            action: crate::rule::RuleAction::Drop,
                        }],
                        t,
                    );
                }
            }
            _ => {}
        }
        system.pump(t);

        // Data plane.
        let mut offers = booter.generate(t, t1, &mut rng);
        offers.extend(background_offers(&system, t, t1));
        if let Some(f) = &rtbh {
            offers = offers.iter().filter_map(|o| f.filter(o)).collect();
        }
        let results = system.traffic_tick(&offers, t1, tick);
        if let Some(r) = results.get(&victim_port) {
            for (key, bytes, packets) in &r.delivered {
                collector.record(*key, t, t1, *bytes, *packets);
            }
        }
        t = t1;
    }

    let bucket = secs(10);
    let delivered = collector.rate_series(0, params.duration, bucket, |_| true);
    BooterRun {
        delivered_mbps: TimeSeries {
            start_us: delivered.start_us,
            bucket_us: delivered.bucket_us,
            values: delivered.values.iter().map(|v| v / 1e6).collect(),
        },
        peers: collector.peer_count_series(0, params.duration, bucket, |r| {
            // Count peers contributing real traffic, not just keepalive
            // noise.
            r.rate_bps() > 2e5
        }),
        honoring_sources: rtbh.map(|f| f.honoring_count()).unwrap_or(0),
        attack_sources: params.n_reflector_members,
    }
}

/// Output of the memcached collateral-damage scenario (Fig. 2c).
#[derive(Debug)]
pub struct CollateralRun {
    /// Per-minute traffic share by characteristic port, towards the
    /// victim member (normalized per bucket).
    pub shares: Vec<BTreeMap<u16, f64>>,
    /// Minute labels ("20:00" ...).
    pub labels: Vec<String>,
}

/// Runs the Fig. 2(c) scenario: a web service under a memcached
/// amplification attack starting at minute 21 of a 60-minute window.
/// `stellar_at_minute` optionally installs the fine-grained drop rule,
/// showing the shares returning to the pre-attack mix.
pub fn run_memcached_collateral(stellar_at_minute: Option<u32>, seed: u64) -> CollateralRun {
    let params = BooterParams {
        n_members: 60,
        n_reflector_members: 30,
        peak_bps: 40e9, // "traffic levels of up to 40 Gbps"
        attack_start: secs(21 * 60),
        attack_end: secs(60 * 60),
        duration: secs(60 * 60),
        seed,
    };
    let mut system = build_system(&params);
    let victim = system.ixp.member(VICTIM_ASN).expect("victim");
    let victim_mac = victim.mac;

    let web_sources: Vec<SourcePoint> = system
        .ixp
        .members
        .iter()
        .filter(|(asn, _)| **asn != VICTIM_ASN)
        .take(12)
        .map(|(_, info)| SourcePoint {
            mac: info.mac,
            ip: info.peering_ip,
        })
        .collect();
    let mut web = BenignWebMix::fig2c(
        victim_ip(),
        victim_mac,
        400e6,
        web_sources,
        (0, params.duration),
    );
    let mut attack = stellar_sim::traffic::AmplificationAttack {
        protocol: AmpProtocol::Memcached,
        target_ip: victim_ip(),
        target_mac: victim_mac,
        rate_bps: params.peak_bps,
        reflectors: reflector_points(&system, params.n_reflector_members),
        active: (params.attack_start, params.attack_end),
        ramp_us: secs(60),
    };

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut collector = FlowCollector::new();
    let tick = secs(2);
    let mut stellar_signaled = false;
    let mut t = 0;
    while t < params.duration {
        let t1 = t + tick;
        if let Some(minute) = stellar_at_minute {
            if !stellar_signaled && t >= secs(u64::from(minute) * 60) {
                stellar_signaled = true;
                system.member_signal(
                    VICTIM_ASN,
                    victim_prefix(),
                    &[StellarSignal::drop_udp_src(stellar_net::ports::MEMCACHED)],
                    t,
                );
            }
        }
        system.pump(t);
        let mut offers = web.generate(t, t1, &mut rng);
        offers.extend(attack.generate(t, t1, &mut rng));
        // Fig. 2(c) plots traffic *towards* the member as seen by the
        // IXP's flow export — i.e. at IXP ingress. Post-mitigation, the
        // dropped share vanishes from the egress; model both by
        // collecting deliveries at the victim port.
        let results = system.traffic_tick(&offers, t1, tick);
        let victim_port = system.ixp.member(VICTIM_ASN).expect("victim").port;
        if let Some(r) = results.get(&victim_port) {
            for (key, bytes, packets) in &r.delivered {
                collector.record(*key, t, t1, *bytes, *packets);
            }
        }
        t = t1;
    }

    // Per-minute port shares.
    let mut shares = Vec::new();
    let mut labels = Vec::new();
    for m in 0..60u64 {
        let (lo, hi) = (secs(m * 60), secs((m + 1) * 60));
        let s = collector.port_shares(|r| r.start_us >= lo && r.start_us < hi, 0.01);
        shares.push(s);
        labels.push(format!("20:{m:02}"));
    }
    CollateralRun { shares, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_attack_saturates_and_rtbh_is_ineffective() {
        let (params, plan) = BooterParams::fig3c();
        let run = run_booter(&params, plan);
        // Peak before mitigation approaches 1 Gbps.
        let peak = run.delivered_mbps.mean_between(300.0, 370.0);
        assert!(peak > 800.0, "pre-RTBH level {peak}");
        // After RTBH, traffic drops but stays in the paper's 600-800 Mbps
        // band: most members do not honor.
        let after = run.delivered_mbps.mean_between(500.0, 800.0);
        assert!(after > 550.0 && after < 850.0, "post-RTBH level {after}");
        // Peers decrease by roughly the honoring share (~25 %).
        let peers_before = run.peers.mean_between(300.0, 370.0);
        let peers_after = run.peers.mean_between(500.0, 800.0);
        assert!(peers_after < peers_before);
        assert!(
            peers_after > peers_before * 0.5,
            "peers {peers_before} -> {peers_after}"
        );
        assert!(run.honoring_sources > 0);
    }

    #[test]
    fn stellar_shapes_then_drops() {
        let (params, plan) = BooterParams::fig10c();
        let run = run_booter(&params, plan);
        // Full attack before mitigation.
        let before = run.delivered_mbps.mean_between(200.0, 290.0);
        assert!(before > 800.0, "pre-mitigation {before}");
        // Shaped window: ~200 Mbps telemetry.
        let shaped = run.delivered_mbps.mean_between(320.0, 490.0);
        assert!((150.0..=260.0).contains(&shaped), "shaped level {shaped}");
        // Peers stay constant while shaping (every reflector's sample
        // passes).
        let peers_attack = run.peers.mean_between(200.0, 290.0);
        let peers_shaped = run.peers.mean_between(320.0, 490.0);
        assert!(
            (peers_shaped - peers_attack).abs() <= peers_attack * 0.15,
            "peers {peers_attack} vs shaped {peers_shaped}"
        );
        // Dropped: near zero.
        let after = run.delivered_mbps.mean_between(520.0, 890.0);
        assert!(after < 20.0, "post-drop level {after}");
        let peers_after = run.peers.mean_between(520.0, 890.0);
        assert!(
            peers_after < peers_attack * 0.3,
            "peers after {peers_after}"
        );
    }

    #[test]
    fn memcached_attack_dominates_port_shares() {
        let run = run_memcached_collateral(None, 1);
        // Minute 10 (pre-attack): HTTPS dominates.
        let pre = &run.shares[10];
        assert!(pre.get(&443).copied().unwrap_or(0.0) > 0.4, "{pre:?}");
        assert!(pre.get(&11211).copied().unwrap_or(0.0) < 0.01);
        // Minute 40 (during attack): port 11211 + fragments dominate.
        let during = &run.shares[40];
        let memc =
            during.get(&11211).copied().unwrap_or(0.0) + during.get(&0).copied().unwrap_or(0.0);
        assert!(memc > 0.8, "{during:?}");
        assert_eq!(run.labels[21], "20:21");
    }

    #[test]
    fn stellar_restores_web_shares() {
        let run = run_memcached_collateral(Some(35), 1);
        // Minute 45 (post-mitigation): web mix is back.
        let post = &run.shares[45];
        let memc = post.get(&11211).copied().unwrap_or(0.0) + post.get(&0).copied().unwrap_or(0.0);
        assert!(memc < 0.05, "{post:?}");
        assert!(post.get(&443).copied().unwrap_or(0.0) > 0.4);
    }
}
