//! TCAM budget-aware rule placement across PoPs.
//!
//! Stellar's egress placement pins each rule to its victim's port — one
//! PoP, no choice to make. But TCAM budgets are per router, and the
//! moment a fabric has more than one PoP the operator has an ingress-side
//! option: install a copy of a rule at the PoPs where the attack
//! *enters*, trading rows on those PoPs for backbone bytes and earlier
//! kill points ("Optimal Filtering for DDoS Attacks" frames exactly this
//! knapsack). This module implements the deterministic greedy heuristic
//! the `pop_placement` experiment reports: rank every `(rule, PoP)`
//! candidate by net benefit per TCAM row and take the best that still
//! fits its PoP's remaining budget.
//!
//! Everything is integer arithmetic — bytes and thousandths — so the
//! ranking is exact and byte-reproducible across platforms; ties break
//! on (rule id, PoP) ascending.

/// One candidate installation: a rule placed at one PoP, with the
/// traffic consequences of that placement measured (or estimated) over
/// the planning window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementCandidate {
    /// The rule to place.
    pub rule_id: u64,
    /// The PoP it would be installed at.
    pub pop: u16,
    /// TCAM rows the installation costs on that PoP.
    pub rows: u32,
    /// Attack bytes this placement would remove.
    pub attack_bytes: u64,
    /// Benign bytes it would collaterally discard.
    pub benign_bytes: u64,
}

impl PlacementCandidate {
    /// Net benefit in milli-bytes: attack coverage minus weighted
    /// collateral, clamped at zero. `collateral_weight_milli` is the
    /// relative cost of one benign byte, in thousandths (1000 = benign
    /// bytes count exactly as much as attack bytes).
    fn benefit_milli(&self, collateral_weight_milli: u64) -> u128 {
        let gain = u128::from(self.attack_bytes) * 1000;
        let cost = u128::from(self.benign_bytes) * u128::from(collateral_weight_milli);
        gain.saturating_sub(cost)
    }
}

/// One accepted placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementDecision {
    /// The placed candidate.
    pub candidate: PlacementCandidate,
    /// Rows remaining on the PoP's budget *after* this placement.
    pub budget_left: u32,
}

/// The outcome of one greedy placement pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementOutcome {
    /// Accepted placements, in acceptance (rank) order.
    pub placed: Vec<PlacementDecision>,
    /// Attack bytes covered by the accepted placements.
    pub covered_attack_bytes: u64,
    /// Benign bytes collaterally discarded by them.
    pub collateral_benign_bytes: u64,
    /// TCAM rows consumed per PoP, index = PoP.
    pub rows_used: Vec<u32>,
    /// Candidates refused because their PoP's budget was exhausted.
    pub skipped_budget: usize,
    /// Candidates refused because collateral outweighed coverage.
    pub skipped_negative: usize,
    /// Candidates refused because their rule was already placed at a
    /// better-ranked PoP.
    pub skipped_duplicate: usize,
}

impl PlacementOutcome {
    /// Fraction of `total_attack_bytes` the accepted placements cover,
    /// in thousandths (0..=1000).
    pub fn coverage_milli(&self, total_attack_bytes: u64) -> u64 {
        if total_attack_bytes == 0 {
            return 0;
        }
        let m = u128::from(self.covered_attack_bytes) * 1000 / u128::from(total_attack_bytes);
        m.min(1000) as u64
    }
}

/// Ranks candidates by benefit per TCAM row (exact rational comparison
/// via cross-multiplication) and greedily accepts each against its PoP's
/// remaining row budget. Each rule is placed at most once — at its
/// best-ranked affordable PoP. `budgets[p]` is PoP `p`'s free rows;
/// candidates naming a PoP outside `budgets` are refused as over-budget.
/// Deterministic: equal-benefit candidates order by (rule id, PoP).
pub fn greedy_place(
    candidates: &[PlacementCandidate],
    budgets: &[u32],
    collateral_weight_milli: u64,
) -> PlacementOutcome {
    let mut ranked: Vec<(u128, &PlacementCandidate)> = candidates
        .iter()
        .map(|c| (c.benefit_milli(collateral_weight_milli), c))
        .collect();
    // benefit/rows descending: a/b > c/d  <=>  a*d > c*b (rows >= 1;
    // zero-row candidates rank as pure benefit against one row).
    ranked.sort_by(|(ba, a), (bb, b)| {
        let ra = u128::from(a.rows.max(1));
        let rb = u128::from(b.rows.max(1));
        (bb * ra)
            .cmp(&(ba * rb))
            .then(a.rule_id.cmp(&b.rule_id))
            .then(a.pop.cmp(&b.pop))
    });
    let mut out = PlacementOutcome {
        rows_used: vec![0; budgets.len()],
        ..Default::default()
    };
    let mut left: Vec<u32> = budgets.to_vec();
    let mut placed_rules: Vec<u64> = Vec::new();
    for (benefit, c) in ranked {
        if benefit == 0 {
            out.skipped_negative += 1;
            continue;
        }
        if placed_rules.binary_search(&c.rule_id).is_ok() {
            out.skipped_duplicate += 1;
            continue;
        }
        let p = c.pop as usize;
        let Some(budget) = left.get_mut(p) else {
            out.skipped_budget += 1;
            continue;
        };
        if *budget < c.rows {
            out.skipped_budget += 1;
            continue;
        }
        *budget -= c.rows;
        out.rows_used[p] += c.rows;
        out.covered_attack_bytes += c.attack_bytes;
        out.collateral_benign_bytes += c.benign_bytes;
        out.placed.push(PlacementDecision {
            candidate: *c,
            budget_left: *budget,
        });
        let at = placed_rules
            .binary_search(&c.rule_id)
            .unwrap_or_else(|pos| pos);
        placed_rules.insert(at, c.rule_id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(rule_id: u64, pop: u16, rows: u32, attack: u64, benign: u64) -> PlacementCandidate {
        PlacementCandidate {
            rule_id,
            pop,
            rows,
            attack_bytes: attack,
            benign_bytes: benign,
        }
    }

    #[test]
    fn ranks_by_benefit_per_row_and_respects_budgets() {
        // Rule 1 at pop 0: 100 bytes / 1 row. Rule 2 at pop 0: 150 / 3.
        // Per-row, rule 1 wins; with budget 3, both fit (1 + 3 > 3 -> 2
        // is refused after 1 takes a row).
        let cands = [cand(1, 0, 1, 100, 0), cand(2, 0, 3, 150, 0)];
        let out = greedy_place(&cands, &[3], 1000);
        assert_eq!(out.placed.len(), 1);
        assert_eq!(out.placed[0].candidate.rule_id, 1);
        assert_eq!(out.skipped_budget, 1);
        assert_eq!(out.covered_attack_bytes, 100);
        assert_eq!(out.rows_used, vec![1]);
        // With budget 4 both fit, acceptance order still per-row rank.
        let out = greedy_place(&cands, &[4], 1000);
        assert_eq!(out.placed.len(), 2);
        assert_eq!(out.placed[0].candidate.rule_id, 1);
        assert_eq!(out.covered_attack_bytes, 250);
        assert_eq!(out.coverage_milli(250), 1000);
    }

    #[test]
    fn each_rule_is_placed_at_its_best_pop_only() {
        // The same rule offered at two PoPs: the bigger-coverage PoP
        // wins, the other is a duplicate.
        let cands = [cand(7, 0, 2, 500, 0), cand(7, 1, 2, 900, 0)];
        let out = greedy_place(&cands, &[8, 8], 1000);
        assert_eq!(out.placed.len(), 1);
        assert_eq!(out.placed[0].candidate.pop, 1);
        assert_eq!(out.skipped_duplicate, 1);
    }

    #[test]
    fn collateral_weight_flips_a_choice() {
        // Candidate A covers more attack but kills benign bytes too.
        let a = cand(1, 0, 1, 1000, 600);
        let b = cand(2, 0, 1, 700, 0);
        // Collateral ignored: A ranks first.
        let out = greedy_place(&[a, b], &[1], 0);
        assert_eq!(out.placed[0].candidate.rule_id, 1);
        // Benign bytes at par: A's net is 400 < 700, B ranks first.
        let out = greedy_place(&[a, b], &[1], 1000);
        assert_eq!(out.placed[0].candidate.rule_id, 2);
        assert_eq!(out.collateral_benign_bytes, 0);
    }

    #[test]
    fn pure_collateral_candidates_are_refused() {
        let cands = [cand(1, 0, 1, 10, 1000), cand(2, 9, 1, 50, 0)];
        // Rule 1's benefit clamps to zero; rule 2 names a PoP with no
        // budget entry.
        let out = greedy_place(&cands, &[4], 1000);
        assert!(out.placed.is_empty());
        assert_eq!(out.skipped_negative, 1);
        assert_eq!(out.skipped_budget, 1);
    }

    #[test]
    fn ties_break_deterministically_by_rule_then_pop() {
        let cands = [
            cand(2, 1, 1, 100, 0),
            cand(2, 0, 1, 100, 0),
            cand(1, 1, 1, 100, 0),
        ];
        let out = greedy_place(&cands, &[4, 4], 1000);
        let order: Vec<(u64, u16)> = out
            .placed
            .iter()
            .map(|d| (d.candidate.rule_id, d.candidate.pop))
            .collect();
        // Rule 1 first; rule 2 then lands on pop 0 (lower pop wins the
        // intra-rule tie) and its pop-1 twin is a duplicate.
        assert_eq!(order, vec![(1, 1), (2, 0)]);
        assert_eq!(out.skipped_duplicate, 1);
    }
}
