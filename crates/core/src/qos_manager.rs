//! The QoS network manager (§4.4 "Option 1", §4.5): compiles abstract
//! changes into vendor QoS policies on the victim's **egress** member
//! port. Egress placement means "an update from one IXP member only
//! causes changes to the port configuration of exactly this IXP member" —
//! causality is maintained and only one port is touched per change.

use crate::controller::AbstractChange;
use crate::manager::{AdmissionError, NetworkManager};
use std::collections::HashMap;
use stellar_bgp::types::Asn;
use stellar_dataplane::switch::{InstallError, PortId};
use stellar_dataplane::tcam::TcamVerdict;
use stellar_sim::fabric::Fabric;

/// The QoS-policy compilation backend.
#[derive(Debug, Default)]
pub struct QosNetworkManager {
    owner_ports: HashMap<Asn, PortId>,
    rule_ports: HashMap<u64, PortId>,
}

impl QosNetworkManager {
    /// Creates a manager knowing each member's egress port.
    pub fn new(owner_ports: HashMap<Asn, PortId>) -> Self {
        QosNetworkManager {
            owner_ports,
            rule_ports: HashMap::new(),
        }
    }

    /// Registers a member → port mapping.
    pub fn register_owner(&mut self, owner: Asn, port: PortId) {
        self.owner_ports.insert(owner, port);
    }

    /// The port a rule was installed on.
    pub fn port_of_rule(&self, rule_id: u64) -> Option<PortId> {
        self.rule_ports.get(&rule_id).copied()
    }

    /// The egress port registered for a member — the per-PoP audit path
    /// uses this to resolve which PoP's TCAM a pending rule would charge.
    pub fn owner_port(&self, owner: Asn) -> Option<PortId> {
        self.owner_ports.get(&owner).copied()
    }

    /// Forgets rules whose hardware entries vanished out from under the
    /// manager — a fabric restart wipes every port policy on every PoP
    /// while this bookkeeping survives, and until the two are squared the
    /// manager would refuse re-adds as duplicates and mis-route removals.
    /// Returns the forgotten rule ids, sorted. The reconciler calls this
    /// before diffing desired against installed state.
    pub fn prune_vanished(&mut self, fabric: &Fabric) -> Vec<u64> {
        let mut gone: Vec<u64> = self
            .rule_ports
            .iter()
            .filter(|(id, port)| fabric.port(**port).is_none_or(|p| !p.policy.contains(**id)))
            .map(|(id, _)| *id)
            .collect();
        gone.sort_unstable();
        for id in &gone {
            self.rule_ports.remove(id);
        }
        gone
    }
}

impl NetworkManager for QosNetworkManager {
    type Fabric = Fabric;

    fn apply(
        &mut self,
        fabric: &mut Fabric,
        change: &AbstractChange,
        now_us: u64,
    ) -> Result<(), AdmissionError> {
        match change {
            AbstractChange::AddRule(rule) => {
                let port = *self
                    .owner_ports
                    .get(&rule.owner)
                    .ok_or(AdmissionError::UnknownOwner)?;
                match fabric.install_rule(port, rule.to_filter_rule(), now_us) {
                    Ok(()) => {
                        self.rule_ports.insert(rule.id, port);
                        Ok(())
                    }
                    Err(InstallError::NoSuchPort) => Err(AdmissionError::UnknownOwner),
                    Err(InstallError::PerPortLimit) => Err(AdmissionError::PerPortLimit),
                    Err(InstallError::Tcam(verdict)) => Err(match verdict {
                        TcamVerdict::F2 => AdmissionError::TcamMacExhausted,
                        // F1 — and a (never-constructed) Ok-as-error,
                        // which degrades to the same retryable verdict.
                        _ => AdmissionError::TcamL34Exhausted,
                    }),
                }
            }
            AbstractChange::RemoveRule { rule_id, .. } => {
                let port = self
                    .rule_ports
                    .remove(rule_id)
                    .ok_or(AdmissionError::NoSuchRule)?;
                if fabric.remove_rule(port, *rule_id, now_us) {
                    Ok(())
                } else {
                    Err(AdmissionError::NoSuchRule)
                }
            }
        }
    }

    fn installed_rules(&self) -> usize {
        self.rule_ports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::BlackholingRule;
    use crate::signal::StellarSignal;
    use stellar_dataplane::hardware::HardwareInfoBase;
    use stellar_dataplane::port::MemberPort;
    use stellar_net::mac::MacAddr;

    fn setup() -> (Fabric, QosNetworkManager) {
        let mut fabric = Fabric::single(HardwareInfoBase::lab_switch());
        fabric.add_port(
            stellar_sim::fabric::PopId(0),
            PortId(1),
            MemberPort::new(64500, MacAddr::for_member(64500, 1), 1_000_000_000),
        );
        let mut mgr = QosNetworkManager::default();
        mgr.register_owner(Asn(64500), PortId(1));
        (fabric, mgr)
    }

    fn rule(id: u64, owner: u32) -> AbstractChange {
        AbstractChange::AddRule(BlackholingRule::from_signal(
            id,
            Asn(owner),
            "100.10.10.10/32".parse().unwrap(),
            StellarSignal::drop_udp_src(123),
        ))
    }

    #[test]
    fn add_then_remove_round_trips() {
        let (mut fabric, mut mgr) = setup();
        mgr.apply(&mut fabric, &rule(1, 64500), 0).unwrap();
        assert_eq!(mgr.installed_rules(), 1);
        assert_eq!(fabric.total_rules(), 1);
        assert_eq!(mgr.port_of_rule(1), Some(PortId(1)));
        mgr.apply(
            &mut fabric,
            &AbstractChange::RemoveRule {
                rule_id: 1,
                owner: Asn(64500),
            },
            1,
        )
        .unwrap();
        assert_eq!(mgr.installed_rules(), 0);
        assert_eq!(fabric.total_rules(), 0);
    }

    #[test]
    fn unknown_owner_is_refused() {
        let (mut fabric, mut mgr) = setup();
        assert_eq!(
            mgr.apply(&mut fabric, &rule(1, 9999), 0),
            Err(AdmissionError::UnknownOwner)
        );
        assert_eq!(fabric.total_rules(), 0);
    }

    #[test]
    fn removing_unknown_rule_is_refused() {
        let (mut fabric, mut mgr) = setup();
        assert_eq!(
            mgr.apply(
                &mut fabric,
                &AbstractChange::RemoveRule {
                    rule_id: 42,
                    owner: Asn(64500)
                },
                0
            ),
            Err(AdmissionError::NoSuchRule)
        );
    }

    #[test]
    fn prune_vanished_squares_bookkeeping_after_restart() {
        let (mut fabric, mut mgr) = setup();
        mgr.apply(&mut fabric, &rule(1, 64500), 0).unwrap();
        mgr.apply(&mut fabric, &rule(2, 64500), 0).unwrap();
        // Nothing vanished yet.
        assert!(mgr.prune_vanished(&fabric).is_empty());
        fabric.restart(1);
        assert_eq!(mgr.installed_rules(), 2); // stale bookkeeping
        assert_eq!(mgr.prune_vanished(&fabric), vec![1, 2]);
        assert_eq!(mgr.installed_rules(), 0);
        // Re-adding the same ids now succeeds.
        mgr.apply(&mut fabric, &rule(1, 64500), 2).unwrap();
        assert_eq!(fabric.total_rules(), 1);
    }

    #[test]
    fn per_port_limit_maps_to_admission_error() {
        let (mut fabric, mut mgr) = setup(); // lab: 8 rules/port
        for i in 0..8 {
            let ch = AbstractChange::AddRule(BlackholingRule::from_signal(
                i,
                Asn(64500),
                "100.10.10.10/32".parse().unwrap(),
                StellarSignal::drop_udp_src(i as u16),
            ));
            mgr.apply(&mut fabric, &ch, 0).unwrap();
        }
        assert_eq!(
            mgr.apply(&mut fabric, &rule(99, 64500), 0),
            Err(AdmissionError::PerPortLimit)
        );
        // Fabric untouched by the refused change.
        assert_eq!(fabric.total_rules(), 8);
        assert_eq!(mgr.installed_rules(), 8);
    }
}
