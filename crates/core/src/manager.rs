//! The network-manager abstraction (§4.4): compiles abstract
//! configuration changes into hardware-specific ones, while doing
//! "admission control" against the hardware information base so "the
//! hardware resource limitations of the IXP's forwarding hardware are
//! respected" (§4.1.2).

use crate::controller::AbstractChange;

/// Why a change was refused by admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The vendor's per-port rule limit would be exceeded.
    PerPortLimit,
    /// The L3–L4 TCAM criteria pool would be exceeded (Fig. 9's F1).
    TcamL34Exhausted,
    /// The MAC filter pool would be exceeded (Fig. 9's F2).
    TcamMacExhausted,
    /// The rule's owner has no port on this fabric.
    UnknownOwner,
    /// Removal referenced a rule that is not installed.
    NoSuchRule,
    /// The SDN flow table is full.
    TableFull,
    /// The switch's configuration interface was momentarily unavailable
    /// (management-session brownout): the change failed without touching
    /// the fabric and will succeed when retried.
    Transient,
}

impl AdmissionError {
    /// Human-readable description.
    pub fn describe(&self) -> &'static str {
        match self {
            AdmissionError::PerPortLimit => "per-port rule limit reached",
            AdmissionError::TcamL34Exhausted => "L3-L4 TCAM criteria pool exhausted (F1)",
            AdmissionError::TcamMacExhausted => "MAC filter pool exhausted (F2)",
            AdmissionError::UnknownOwner => "rule owner has no port on this fabric",
            AdmissionError::NoSuchRule => "rule not installed",
            AdmissionError::TableFull => "SDN flow table full",
            AdmissionError::Transient => "switch configuration interface unavailable",
        }
    }

    /// A fault that clears by itself — retry unconditionally.
    pub fn is_transient(&self) -> bool {
        matches!(self, AdmissionError::Transient)
    }

    /// A capacity refusal that concurrent removals may clear — worth a
    /// bounded number of retries, then a dead letter.
    pub fn is_capacity(&self) -> bool {
        matches!(
            self,
            AdmissionError::PerPortLimit | AdmissionError::TableFull
        )
    }

    /// A TCAM exhaustion verdict (Fig. 9's F1/F2) — the degradation
    /// ladder can trade match precision for fewer criteria.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            AdmissionError::TcamL34Exhausted | AdmissionError::TcamMacExhausted
        )
    }
}

/// A network manager: one hardware-specific compilation backend
/// (§4.4 names two realized options — vendor QoS and SDN).
pub trait NetworkManager {
    /// The fabric this manager programs.
    type Fabric;

    /// Compiles and applies one abstract change. Must be all-or-nothing:
    /// a refused change leaves the fabric untouched (traffic keeps
    /// forwarding — availability first).
    fn apply(
        &mut self,
        fabric: &mut Self::Fabric,
        change: &AbstractChange,
        now_us: u64,
    ) -> Result<(), AdmissionError>;

    /// Rules currently installed through this manager.
    fn installed_rules(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_have_descriptions() {
        for e in [
            AdmissionError::PerPortLimit,
            AdmissionError::TcamL34Exhausted,
            AdmissionError::TcamMacExhausted,
            AdmissionError::UnknownOwner,
            AdmissionError::NoSuchRule,
            AdmissionError::TableFull,
            AdmissionError::Transient,
        ] {
            assert!(!e.describe().is_empty());
        }
    }

    #[test]
    fn error_classes_partition_sensibly() {
        assert!(AdmissionError::Transient.is_transient());
        assert!(AdmissionError::PerPortLimit.is_capacity());
        assert!(AdmissionError::TableFull.is_capacity());
        assert!(AdmissionError::TcamL34Exhausted.is_degradable());
        assert!(AdmissionError::TcamMacExhausted.is_degradable());
        for permanent in [AdmissionError::UnknownOwner, AdmissionError::NoSuchRule] {
            assert!(!permanent.is_transient());
            assert!(!permanent.is_capacity());
            assert!(!permanent.is_degradable());
        }
    }
}
