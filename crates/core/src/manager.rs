//! The network-manager abstraction (§4.4): compiles abstract
//! configuration changes into hardware-specific ones, while doing
//! "admission control" against the hardware information base so "the
//! hardware resource limitations of the IXP's forwarding hardware are
//! respected" (§4.1.2).

use std::collections::VecDeque;

use crate::controller::AbstractChange;
use crate::faults::DeadLetter;

/// Why a change was refused by admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The vendor's per-port rule limit would be exceeded.
    PerPortLimit,
    /// The L3–L4 TCAM criteria pool would be exceeded (Fig. 9's F1).
    TcamL34Exhausted,
    /// The MAC filter pool would be exceeded (Fig. 9's F2).
    TcamMacExhausted,
    /// The rule's owner has no port on this fabric.
    UnknownOwner,
    /// Removal referenced a rule that is not installed.
    NoSuchRule,
    /// The SDN flow table is full.
    TableFull,
    /// The switch's configuration interface was momentarily unavailable
    /// (management-session brownout): the change failed without touching
    /// the fabric and will succeed when retried.
    Transient,
}

impl AdmissionError {
    /// Human-readable description.
    pub fn describe(&self) -> &'static str {
        match self {
            AdmissionError::PerPortLimit => "per-port rule limit reached",
            AdmissionError::TcamL34Exhausted => "L3-L4 TCAM criteria pool exhausted (F1)",
            AdmissionError::TcamMacExhausted => "MAC filter pool exhausted (F2)",
            AdmissionError::UnknownOwner => "rule owner has no port on this fabric",
            AdmissionError::NoSuchRule => "rule not installed",
            AdmissionError::TableFull => "SDN flow table full",
            AdmissionError::Transient => "switch configuration interface unavailable",
        }
    }

    /// A fault that clears by itself — retry unconditionally.
    pub fn is_transient(&self) -> bool {
        matches!(self, AdmissionError::Transient)
    }

    /// A capacity refusal that concurrent removals may clear — worth a
    /// bounded number of retries, then a dead letter.
    pub fn is_capacity(&self) -> bool {
        matches!(
            self,
            AdmissionError::PerPortLimit | AdmissionError::TableFull
        )
    }

    /// A TCAM exhaustion verdict (Fig. 9's F1/F2) — the degradation
    /// ladder can trade match precision for fewer criteria.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            AdmissionError::TcamL34Exhausted | AdmissionError::TcamMacExhausted
        )
    }
}

/// Bounded dead-letter log: a ring buffer that drops its oldest entry
/// once full, so a long chaos soak cannot grow the give-up log without
/// limit. Evictions are counted (and surfaced as `deadletter.evicted`)
/// rather than silent — losing history is a capacity decision, not an
/// accident.
#[derive(Debug)]
pub struct DeadLetterLog {
    letters: VecDeque<DeadLetter>,
    capacity: usize,
    evicted: u64,
}

impl DeadLetterLog {
    /// Default ring capacity; override with [`DeadLetterLog::set_capacity`]
    /// (wired to `STELLAR_DEADLETTER_CAP`).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A log bounded to `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        DeadLetterLog {
            letters: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Rebounds the ring, evicting oldest entries if it shrank below the
    /// current length. Returns how many entries were evicted.
    pub fn set_capacity(&mut self, capacity: usize) -> u64 {
        self.capacity = capacity.max(1);
        let mut dropped = 0;
        while self.letters.len() > self.capacity {
            self.letters.pop_front();
            dropped += 1;
        }
        self.evicted += dropped;
        dropped
    }

    /// Appends a dead letter, dropping the oldest entry when full.
    /// Returns the number of evictions this push caused (0 or 1).
    pub fn push(&mut self, letter: DeadLetter) -> u64 {
        let mut dropped = 0;
        while self.letters.len() >= self.capacity {
            self.letters.pop_front();
            dropped += 1;
        }
        self.letters.push_back(letter);
        self.evicted += dropped;
        dropped
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// True when nothing has been given up on (or everything retained
    /// was drained).
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// Oldest-first iteration over retained letters.
    pub fn iter(&self) -> impl Iterator<Item = &DeadLetter> {
        self.letters.iter()
    }

    /// Total entries ever evicted to keep the ring bounded.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

impl Default for DeadLetterLog {
    fn default() -> Self {
        DeadLetterLog::new(DeadLetterLog::DEFAULT_CAPACITY)
    }
}

/// A network manager: one hardware-specific compilation backend
/// (§4.4 names two realized options — vendor QoS and SDN).
pub trait NetworkManager {
    /// The fabric this manager programs.
    type Fabric;

    /// Compiles and applies one abstract change. Must be all-or-nothing:
    /// a refused change leaves the fabric untouched (traffic keeps
    /// forwarding — availability first).
    fn apply(
        &mut self,
        fabric: &mut Self::Fabric,
        change: &AbstractChange,
        now_us: u64,
    ) -> Result<(), AdmissionError>;

    /// Rules currently installed through this manager.
    fn installed_rules(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter(at_us: u64) -> DeadLetter {
        DeadLetter {
            change: AbstractChange::RemoveRule {
                rule_id: at_us,
                owner: stellar_bgp::types::Asn(64500),
            },
            error: AdmissionError::PerPortLimit,
            attempts: 3,
            at_us,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts_evictions() {
        let mut log = DeadLetterLog::new(3);
        for i in 0..3 {
            assert_eq!(log.push(letter(i)), 0);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.push(letter(3)), 1);
        assert_eq!(log.push(letter(4)), 1);
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let retained: Vec<u64> = log.iter().map(|d| d.at_us).collect();
        assert_eq!(retained, vec![2, 3, 4], "oldest entries dropped first");
    }

    #[test]
    fn shrinking_capacity_evicts_excess() {
        let mut log = DeadLetterLog::new(4);
        for i in 0..4 {
            log.push(letter(i));
        }
        assert_eq!(log.set_capacity(2), 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.evicted(), 2);
        assert_eq!(log.iter().next().map(|d| d.at_us), Some(2));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut log = DeadLetterLog::new(0);
        log.push(letter(1));
        log.push(letter(2));
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
        assert_eq!(log.iter().next().map(|d| d.at_us), Some(2));
    }

    #[test]
    fn errors_have_descriptions() {
        for e in [
            AdmissionError::PerPortLimit,
            AdmissionError::TcamL34Exhausted,
            AdmissionError::TcamMacExhausted,
            AdmissionError::UnknownOwner,
            AdmissionError::NoSuchRule,
            AdmissionError::TableFull,
            AdmissionError::Transient,
        ] {
            assert!(!e.describe().is_empty());
        }
    }

    #[test]
    fn error_classes_partition_sensibly() {
        assert!(AdmissionError::Transient.is_transient());
        assert!(AdmissionError::PerPortLimit.is_capacity());
        assert!(AdmissionError::TableFull.is_capacity());
        assert!(AdmissionError::TcamL34Exhausted.is_degradable());
        assert!(AdmissionError::TcamMacExhausted.is_degradable());
        for permanent in [AdmissionError::UnknownOwner, AdmissionError::NoSuchRule] {
            assert!(!permanent.is_transient());
            assert!(!permanent.is_capacity());
            assert!(!permanent.is_degradable());
        }
    }
}
