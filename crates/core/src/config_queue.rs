//! The blackholing manager's configuration-change queue (§4.4).
//!
//! "To limit the number of configuration changes within any time interval
//! to a rate that is manageable by the switch hardware, the queue uses a
//! Token Bucket algorithm. This ensures that the configurable Maximum
//! Burst Size (MBS) and a reasonable long-term rate limit is never
//! exceeded." Fig. 10(b) measures the waiting time this queue induces at
//! dequeue rates of 4/s and 5/s.

use crate::controller::AbstractChange;
use std::collections::VecDeque;
use stellar_dataplane::shaper::WorkBucket;

/// A change waiting in the queue.
#[derive(Debug, Clone)]
pub struct QueuedChange {
    /// The abstract configuration change.
    pub change: AbstractChange,
    /// When it was enqueued.
    pub enqueued_us: u64,
}

/// The token-bucket change queue.
#[derive(Debug)]
pub struct ConfigChangeQueue {
    bucket: WorkBucket,
    queue: VecDeque<QueuedChange>,
    wait_log_us: Vec<u64>,
}

impl ConfigChangeQueue {
    /// A queue dequeuing at `rate_per_s` with maximum burst size `mbs`.
    pub fn new(rate_per_s: f64, mbs: u32) -> Self {
        ConfigChangeQueue {
            bucket: WorkBucket::new(rate_per_s, mbs),
            queue: VecDeque::new(),
            wait_log_us: Vec::new(),
        }
    }

    /// The production configuration at the paper's measured sustainable
    /// rate (4.33 updates/s fits under the 15 % CPU cap; the bench sweeps
    /// 4/s and 5/s as Fig. 10b does).
    pub fn production(rate_per_s: f64) -> Self {
        ConfigChangeQueue::new(rate_per_s, 2)
    }

    /// Enqueues a change at `now_us`.
    pub fn enqueue(&mut self, change: AbstractChange, now_us: u64) {
        self.queue.push_back(QueuedChange {
            change,
            enqueued_us: now_us,
        });
    }

    /// Dequeues every change the token bucket allows at `now_us`,
    /// returning each with the time it waited.
    pub fn dequeue_ready(&mut self, now_us: u64) -> Vec<(AbstractChange, u64)> {
        let mut out = Vec::new();
        while let Some(front) = self.queue.front() {
            debug_assert!(front.enqueued_us <= now_us);
            if !self.bucket.try_take(now_us) {
                break;
            }
            let qc = self.queue.pop_front().expect("front exists");
            let waited = now_us - qc.enqueued_us;
            self.wait_log_us.push(waited);
            out.push((qc.change, waited));
        }
        out
    }

    /// Changes currently waiting.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// All recorded waiting times (µs) — the Fig. 10(b) sample.
    pub fn wait_log_us(&self) -> &[u64] {
        &self.wait_log_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::StellarSignal;
    use stellar_bgp::types::Asn;

    fn change(i: u64) -> AbstractChange {
        AbstractChange::RemoveRule {
            rule_id: i,
            owner: Asn(64500),
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = ConfigChangeQueue::new(100.0, 100);
        for i in 0..5 {
            q.enqueue(change(i), 0);
        }
        let got = q.dequeue_ready(1);
        let ids: Vec<u64> = got
            .iter()
            .map(|(c, _)| match c {
                AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn rate_limit_throttles_bursts() {
        // 4/s, MBS 2: a burst of 10 drains 2 immediately, then 4/s.
        let mut q = ConfigChangeQueue::production(4.0);
        for i in 0..10 {
            q.enqueue(change(i), 0);
        }
        assert_eq!(q.dequeue_ready(0).len(), 2);
        assert_eq!(q.backlog(), 8);
        // After 1 s, four more.
        assert_eq!(q.dequeue_ready(1_000_000).len(), 4);
        // After another second the rest drain.
        assert_eq!(q.dequeue_ready(2_000_000).len(), 4);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn waiting_times_are_recorded() {
        let mut q = ConfigChangeQueue::new(1.0, 1);
        q.enqueue(change(0), 0);
        q.enqueue(change(1), 0);
        assert_eq!(q.dequeue_ready(0).len(), 1);
        assert!(q.dequeue_ready(500_000).is_empty());
        let got = q.dequeue_ready(1_000_000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 1_000_000);
        assert_eq!(q.wait_log_us(), &[0, 1_000_000]);
    }

    #[test]
    fn add_changes_flow_through_too() {
        let mut q = ConfigChangeQueue::new(10.0, 10);
        let rule = crate::rule::BlackholingRule {
            id: 1,
            owner: Asn(64500),
            victim: "100.10.10.10/32".parse().unwrap(),
            signal: StellarSignal::drop_udp_src(123),
        };
        q.enqueue(AbstractChange::AddRule(rule.clone()), 5);
        let got = q.dequeue_ready(10);
        assert_eq!(got.len(), 1);
        match &got[0].0 {
            AbstractChange::AddRule(r) => assert_eq!(*r, rule),
            _ => panic!(),
        }
    }
}
