//! The blackholing manager's configuration-change queue (§4.4).
//!
//! "To limit the number of configuration changes within any time interval
//! to a rate that is manageable by the switch hardware, the queue uses a
//! Token Bucket algorithm. This ensures that the configurable Maximum
//! Burst Size (MBS) and a reasonable long-term rate limit is never
//! exceeded." Fig. 10(b) measures the waiting time this queue induces at
//! dequeue rates of 4/s and 5/s.
//!
//! Beyond the paper's metering, the queue carries the control plane's
//! self-healing machinery:
//!
//! - **Swap-pair atomicity** — a shape→drop escalation emits a
//!   Remove/Add pair for the same path; dequeuing the Remove in one
//!   token-bucket tick and the Add a tick later would leave the victim
//!   unprotected in between. [`ConfigChangeQueue::enqueue_group`] marks
//!   such pairs and the dequeue path takes their tokens all-or-nothing.
//! - **Retry with backoff** — [`ConfigChangeQueue::requeue`] parks a
//!   failed change in a deferred list until its backoff expires, then it
//!   re-enters the FIFO (at the back, so a repeatedly failing change
//!   never head-of-line-blocks fresh work).
//! - **Bounded wait log** — the Fig. 10(b) sample is capped; past the
//!   cap it decimates deterministically (keep-every-other, doubling
//!   stride) so fault-soak runs do not grow memory linearly.

use crate::controller::AbstractChange;
use std::collections::VecDeque;
use stellar_dataplane::shaper::WorkBucket;

/// A change waiting in the queue.
#[derive(Debug, Clone)]
pub struct QueuedChange {
    /// The abstract configuration change.
    pub change: AbstractChange,
    /// When it was first enqueued (retries keep the original time, so
    /// waiting-time telemetry measures end-to-end latency).
    pub enqueued_us: u64,
    /// Failed apply attempts so far.
    pub attempts: u32,
    /// Earliest dequeue time (backoff); 0 for fresh changes.
    pub not_before_us: u64,
    /// Same-path swap-pair marker: members of one group dequeue
    /// atomically.
    pub group: Option<u64>,
    /// Times this change came back from the dead-letter ladder (bounded
    /// requeue-with-backoff; distinct from per-pass `attempts`, which
    /// reset on requeue).
    pub requeues: u32,
}

/// Deterministically bounded sample of waiting times: records every
/// `stride`-th sample; when the buffer hits its cap it drops every other
/// retained sample and doubles the stride. No RNG, so fault-soak runs
/// stay reproducible and the retained sample remains uniformly spaced.
#[derive(Debug)]
struct WaitLog {
    samples: Vec<u64>,
    cap: usize,
    stride: u64,
    seen: u64,
}

impl WaitLog {
    fn new(cap: usize) -> Self {
        WaitLog {
            samples: Vec::new(),
            cap: cap.max(2),
            stride: 1,
            seen: 0,
        }
    }

    fn record(&mut self, wait_us: u64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.samples.len() == self.cap {
                let mut keep = 0;
                self.samples.retain(|_| {
                    keep += 1;
                    keep % 2 == 1
                });
                self.stride *= 2;
            }
            if self.seen.is_multiple_of(self.stride) {
                self.samples.push(wait_us);
            }
        }
        self.seen += 1;
    }
}

/// The token-bucket change queue.
#[derive(Debug)]
pub struct ConfigChangeQueue {
    bucket: WorkBucket,
    queue: VecDeque<QueuedChange>,
    /// Backoff parking lot, sorted by `not_before_us` (stable: ties keep
    /// insertion order).
    deferred: VecDeque<QueuedChange>,
    wait_log: WaitLog,
    next_group: u64,
}

/// Default wait-log capacity: comfortably above the Fig. 10(b) trace
/// (~3.5k arrivals) so the bench sees every sample, bounded for soaks.
const DEFAULT_WAIT_LOG_CAP: usize = 65_536;

impl ConfigChangeQueue {
    /// A queue dequeuing at `rate_per_s` with maximum burst size `mbs`.
    pub fn new(rate_per_s: f64, mbs: u32) -> Self {
        ConfigChangeQueue {
            bucket: WorkBucket::new(rate_per_s, mbs),
            queue: VecDeque::new(),
            deferred: VecDeque::new(),
            wait_log: WaitLog::new(DEFAULT_WAIT_LOG_CAP),
            next_group: 1,
        }
    }

    /// The production configuration at the paper's measured sustainable
    /// rate (4.33 updates/s fits under the 15 % CPU cap; the bench sweeps
    /// 4/s and 5/s as Fig. 10b does).
    pub fn production(rate_per_s: f64) -> Self {
        ConfigChangeQueue::new(rate_per_s, 2)
    }

    /// Overrides the wait-log capacity (minimum 2).
    pub fn with_wait_log_capacity(mut self, cap: usize) -> Self {
        self.wait_log = WaitLog::new(cap);
        self
    }

    /// Enqueues a change at `now_us`.
    pub fn enqueue(&mut self, change: AbstractChange, now_us: u64) {
        self.queue.push_back(QueuedChange {
            change,
            enqueued_us: now_us,
            attempts: 0,
            not_before_us: 0,
            group: None,
            requeues: 0,
        });
    }

    /// Enqueues the changes one diff emission produced. Two or more
    /// changes from one emission are a same-path swap (e.g. Remove old
    /// shape rule + Add drop rule) and are marked as an atomic group; a
    /// single change degenerates to a plain enqueue.
    pub fn enqueue_group(&mut self, changes: Vec<AbstractChange>, now_us: u64) {
        let group = if changes.len() >= 2 {
            let g = self.next_group;
            self.next_group += 1;
            Some(g)
        } else {
            None
        };
        for change in changes {
            self.queue.push_back(QueuedChange {
                change,
                enqueued_us: now_us,
                attempts: 0,
                not_before_us: 0,
                group,
                requeues: 0,
            });
        }
    }

    /// Like [`ConfigChangeQueue::enqueue_group`], but the changes only
    /// become dequeueable at `not_before_us` — the delivery-chaos fault
    /// injects announcement delay here, after validation but before the
    /// token bucket. Delayed emissions land in the backoff lot, so two
    /// emissions with different delays reorder against each other while
    /// each group still dequeues atomically.
    pub fn enqueue_group_delayed(
        &mut self,
        changes: Vec<AbstractChange>,
        now_us: u64,
        not_before_us: u64,
    ) {
        if not_before_us <= now_us {
            self.enqueue_group(changes, now_us);
            return;
        }
        let group = if changes.len() >= 2 {
            let g = self.next_group;
            self.next_group += 1;
            Some(g)
        } else {
            None
        };
        // One insertion point for the whole emission keeps the group
        // adjacent in the lot, so it later promotes (and dequeues)
        // together.
        let at = self
            .deferred
            .iter()
            .position(|d| d.not_before_us > not_before_us)
            .unwrap_or(self.deferred.len());
        for (i, change) in changes.into_iter().enumerate() {
            self.deferred.insert(
                at + i,
                QueuedChange {
                    change,
                    enqueued_us: now_us,
                    attempts: 0,
                    not_before_us,
                    group,
                    requeues: 0,
                },
            );
        }
    }

    /// Readmits a dead-letter-ladder survivor as fresh work: per-pass
    /// attempts reset, the bounded `requeues` odometer advances, and the
    /// change re-enters the FIFO at the back.
    pub fn readmit(&mut self, mut qc: QueuedChange, now_us: u64) {
        qc.attempts = 0;
        qc.requeues += 1;
        qc.not_before_us = 0;
        qc.group = None;
        qc.enqueued_us = now_us;
        self.queue.push_back(qc);
    }

    /// Parks a failed change until `not_before_us`, counting the attempt.
    /// It re-enters the FIFO (at the back) once the backoff expires. The
    /// group marker is dropped: a retried member rejoins alone, its
    /// partner already applied.
    pub fn requeue(&mut self, mut qc: QueuedChange, not_before_us: u64) {
        qc.attempts += 1;
        qc.not_before_us = not_before_us;
        qc.group = None;
        let at = self
            .deferred
            .iter()
            .position(|d| d.not_before_us > not_before_us)
            .unwrap_or(self.deferred.len());
        self.deferred.insert(at, qc);
    }

    /// Dequeues every change the token bucket allows at `now_us`. Expired
    /// deferred changes are promoted first; groups leave all-or-nothing
    /// (a group wider than the bucket's burst size could never fit and
    /// falls back to per-item dequeue rather than wedging the queue).
    pub fn dequeue_ready_queued(&mut self, now_us: u64) -> Vec<QueuedChange> {
        while self
            .deferred
            .front()
            .is_some_and(|d| d.not_before_us <= now_us)
        {
            if let Some(qc) = self.deferred.pop_front() {
                self.queue.push_back(qc);
            }
        }
        let mut out = Vec::new();
        while let Some(front_group) = self.queue.front().map(|qc| qc.group) {
            let take = match front_group {
                Some(g) => {
                    let run = self
                        .queue
                        .iter()
                        .take_while(|qc| qc.group == Some(g))
                        .count();
                    if run as u32 > self.bucket.max_burst() {
                        // Could never fit atomically: demote the whole
                        // run to per-item so it drains instead of
                        // wedging the queue.
                        for qc in self.queue.iter_mut().take(run) {
                            qc.group = None;
                        }
                        1
                    } else {
                        run as u32
                    }
                }
                None => 1,
            };
            if !self.bucket.try_take_n(take, now_us) {
                break;
            }
            for _ in 0..take {
                let Some(qc) = self.queue.pop_front() else {
                    break;
                };
                if qc.attempts == 0 && qc.requeues == 0 {
                    // Retries and dead-letter requeues would distort the
                    // Fig. 10(b) queue-wait sample with backoff time; log
                    // first passes only.
                    self.wait_log.record(now_us - qc.enqueued_us);
                }
                out.push(qc);
            }
        }
        out
    }

    /// Dequeues every change the token bucket allows at `now_us`,
    /// returning each with the time it waited since first enqueue.
    pub fn dequeue_ready(&mut self, now_us: u64) -> Vec<(AbstractChange, u64)> {
        self.dequeue_ready_queued(now_us)
            .into_iter()
            .map(|qc| {
                let waited = now_us - qc.enqueued_us;
                (qc.change, waited)
            })
            .collect()
    }

    /// Changes currently waiting (ready FIFO plus deferred retries).
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.deferred.len()
    }

    /// Changes parked in the backoff lot only.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Every change still in flight — the reconciler consults this so it
    /// does not queue a repair for work that is already on its way.
    pub fn pending(&self) -> impl Iterator<Item = &AbstractChange> {
        self.queue
            .iter()
            .chain(self.deferred.iter())
            .map(|qc| &qc.change)
    }

    /// The recorded waiting-time sample (µs) — Fig. 10(b)'s input. Past
    /// the capacity this is a deterministic every-`stride`-th decimation,
    /// not the full population.
    pub fn wait_log_us(&self) -> &[u64] {
        &self.wait_log.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::BlackholingRule;
    use crate::signal::StellarSignal;
    use stellar_bgp::types::Asn;

    fn change(i: u64) -> AbstractChange {
        AbstractChange::RemoveRule {
            rule_id: i,
            owner: Asn(64500),
        }
    }

    fn add(i: u64) -> AbstractChange {
        AbstractChange::AddRule(BlackholingRule::from_signal(
            i,
            Asn(64500),
            "100.10.10.10/32".parse().unwrap(),
            StellarSignal::drop_udp_src(123),
        ))
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = ConfigChangeQueue::new(100.0, 100);
        for i in 0..5 {
            q.enqueue(change(i), 0);
        }
        let got = q.dequeue_ready(1);
        let ids: Vec<u64> = got
            .iter()
            .map(|(c, _)| match c {
                AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn rate_limit_throttles_bursts() {
        // 4/s, MBS 2: a burst of 10 drains 2 immediately, then 4/s.
        let mut q = ConfigChangeQueue::production(4.0);
        for i in 0..10 {
            q.enqueue(change(i), 0);
        }
        assert_eq!(q.dequeue_ready(0).len(), 2);
        assert_eq!(q.backlog(), 8);
        // After 1 s, four more.
        assert_eq!(q.dequeue_ready(1_000_000).len(), 4);
        // After another second the rest drain.
        assert_eq!(q.dequeue_ready(2_000_000).len(), 4);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn waiting_times_are_recorded() {
        let mut q = ConfigChangeQueue::new(1.0, 1);
        q.enqueue(change(0), 0);
        q.enqueue(change(1), 0);
        assert_eq!(q.dequeue_ready(0).len(), 1);
        assert!(q.dequeue_ready(500_000).is_empty());
        let got = q.dequeue_ready(1_000_000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 1_000_000);
        assert_eq!(q.wait_log_us(), &[0, 1_000_000]);
    }

    #[test]
    fn add_changes_flow_through_too() {
        let mut q = ConfigChangeQueue::new(10.0, 10);
        let rule = crate::rule::BlackholingRule::from_signal(
            1,
            Asn(64500),
            "100.10.10.10/32".parse().unwrap(),
            StellarSignal::drop_udp_src(123),
        );
        q.enqueue(AbstractChange::AddRule(rule.clone()), 5);
        let got = q.dequeue_ready(10);
        assert_eq!(got.len(), 1);
        match &got[0].0 {
            AbstractChange::AddRule(r) => assert_eq!(*r, rule),
            _ => panic!(),
        }
    }

    #[test]
    fn swap_pair_dequeues_atomically() {
        // 1/s, MBS 2: after the initial burst is spent, tokens arrive one
        // per second — the exact splitting hazard from the issue.
        let mut q = ConfigChangeQueue::new(1.0, 2);
        q.enqueue(change(99), 0);
        assert_eq!(q.dequeue_ready(0).len(), 1); // 1 token left
        q.enqueue_group(vec![change(1), add(2)], 0);
        // One token is not enough for the pair: nothing comes out — the
        // victim keeps its old rule instead of losing protection.
        assert!(q.dequeue_ready(0).is_empty());
        assert!(q.dequeue_ready(500_000).is_empty());
        // Once two tokens are available the pair leaves together.
        let got = q.dequeue_ready(1_000_000);
        assert_eq!(got.len(), 2);
        assert!(matches!(
            got[0].0,
            AbstractChange::RemoveRule { rule_id: 1, .. }
        ));
        assert!(matches!(&got[1].0, AbstractChange::AddRule(r) if r.id == 2));
    }

    #[test]
    fn oversized_group_falls_back_to_per_item() {
        // A group wider than the MBS can never fit atomically; it must
        // drain item-by-item rather than wedge the queue forever.
        let mut q = ConfigChangeQueue::new(1.0, 2);
        q.enqueue_group(vec![change(1), change(2), change(3)], 0);
        assert_eq!(q.dequeue_ready(0).len(), 2);
        assert_eq!(q.dequeue_ready(1_000_000).len(), 1);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn requeue_defers_until_backoff_expires() {
        let mut q = ConfigChangeQueue::new(100.0, 100);
        q.enqueue(add(1), 0);
        let mut got = q.dequeue_ready_queued(0);
        assert_eq!(got.len(), 1);
        let qc = got.pop().unwrap();
        assert_eq!(qc.attempts, 0);
        q.requeue(qc, 500_000);
        assert_eq!(q.backlog(), 1);
        // Still parked before the backoff expires.
        assert!(q.dequeue_ready_queued(250_000).is_empty());
        let got = q.dequeue_ready_queued(500_000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].attempts, 1);
        // Retries keep the original enqueue time...
        assert_eq!(got[0].enqueued_us, 0);
        // ...but only first passes feed the Fig. 10b sample.
        assert_eq!(q.wait_log_us(), &[0]);
    }

    #[test]
    fn retries_rejoin_behind_fresh_work() {
        let mut q = ConfigChangeQueue::new(100.0, 100);
        q.enqueue(add(1), 0);
        let qc = q.dequeue_ready_queued(0).pop().unwrap();
        q.requeue(qc, 100_000);
        q.enqueue(change(2), 50_000);
        let got = q.dequeue_ready_queued(200_000);
        assert_eq!(got.len(), 2);
        // The fresh change was already in the FIFO when the retry was
        // promoted, so it goes first: no head-of-line blocking.
        assert!(matches!(
            got[0].change,
            AbstractChange::RemoveRule { rule_id: 2, .. }
        ));
        assert!(matches!(&got[1].change, AbstractChange::AddRule(r) if r.id == 1));
    }

    #[test]
    fn pending_spans_fifo_and_deferred() {
        let mut q = ConfigChangeQueue::new(100.0, 100);
        q.enqueue(add(1), 0);
        let qc = q.dequeue_ready_queued(0).pop().unwrap();
        q.requeue(qc, 1_000_000);
        q.enqueue(change(2), 0);
        let pending: Vec<_> = q.pending().collect();
        assert_eq!(pending.len(), 2);
        assert_eq!(q.backlog(), 2);
    }

    #[test]
    fn delayed_groups_reorder_but_stay_atomic() {
        let mut q = ConfigChangeQueue::new(100.0, 100);
        // Emission A delayed further than emission B: B overtakes A.
        q.enqueue_group_delayed(vec![change(1), add(2)], 0, 900_000);
        q.enqueue_group_delayed(vec![change(3), add(4)], 0, 300_000);
        assert!(q.dequeue_ready_queued(100_000).is_empty());
        let got = q.dequeue_ready_queued(1_000_000);
        let ids: Vec<u64> = got
            .iter()
            .map(|qc| match &qc.change {
                AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
                AbstractChange::AddRule(r) => r.id,
            })
            .collect();
        assert_eq!(ids, vec![3, 4, 1, 2], "later emission delivered first");
        // Pair adjacency survived the delay (same group markers).
        assert_eq!(got[0].group, got[1].group);
        assert!(got[0].group.is_some());
    }

    #[test]
    fn undelayed_emission_degenerates_to_plain_enqueue() {
        let mut q = ConfigChangeQueue::new(100.0, 100);
        q.enqueue_group_delayed(vec![change(1)], 50, 50);
        assert_eq!(q.deferred_len(), 0);
        assert_eq!(q.dequeue_ready_queued(50).len(), 1);
    }

    #[test]
    fn readmit_resets_attempts_and_counts_requeues() {
        let mut q = ConfigChangeQueue::new(100.0, 100);
        q.enqueue(add(1), 0);
        let qc = q.dequeue_ready_queued(0).pop().unwrap();
        q.requeue(qc, 100_000);
        let qc = q.dequeue_ready_queued(100_000).pop().unwrap();
        assert_eq!(qc.attempts, 1);
        q.readmit(qc, 200_000);
        let got = q.dequeue_ready_queued(200_000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].attempts, 0, "fresh retry budget after readmit");
        assert_eq!(got[0].requeues, 1);
        // Neither the retry pass nor the readmitted pass fed the wait
        // log — only the first dequeue did.
        assert_eq!(q.wait_log_us(), &[0]);
    }

    #[test]
    fn wait_log_is_bounded_and_decimates_deterministically() {
        let mut q = ConfigChangeQueue::new(1e9, u32::MAX).with_wait_log_capacity(8);
        for i in 0..1000u64 {
            q.enqueue(change(i), i);
            q.dequeue_ready(i);
        }
        assert!(q.wait_log_us().len() <= 8);
        assert!(!q.wait_log_us().is_empty());
        // Same workload, same retained sample: determinism.
        let mut q2 = ConfigChangeQueue::new(1e9, u32::MAX).with_wait_log_capacity(8);
        for i in 0..1000u64 {
            q2.enqueue(change(i), i);
            q2.dequeue_ready(i);
        }
        assert_eq!(q.wait_log_us(), q2.wait_log_us());
    }
}
