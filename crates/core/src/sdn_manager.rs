//! The SDN network manager (§4.4 "Option 2"): compiles abstract changes
//! into OpenFlow match-action entries, as demonstrated on the SDX
//! platform \[25\]. Functionally equivalent to the QoS backend; the
//! ablation bench compares the two.

use crate::controller::AbstractChange;
use crate::manager::{AdmissionError, NetworkManager};
use std::collections::HashSet;
use stellar_dataplane::openflow::{FlowError, FlowTable};

/// The OpenFlow compilation backend.
#[derive(Debug, Default)]
pub struct SdnNetworkManager {
    installed: HashSet<u64>,
}

impl SdnNetworkManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NetworkManager for SdnNetworkManager {
    type Fabric = FlowTable;

    fn apply(
        &mut self,
        table: &mut FlowTable,
        change: &AbstractChange,
        _now_us: u64,
    ) -> Result<(), AdmissionError> {
        match change {
            AbstractChange::AddRule(rule) => match table.install_rule(&rule.to_filter_rule()) {
                Ok(()) => {
                    self.installed.insert(rule.id);
                    Ok(())
                }
                Err(FlowError::TableFull) => Err(AdmissionError::TableFull),
            },
            AbstractChange::RemoveRule { rule_id, .. } => {
                if self.installed.remove(rule_id) && table.remove(*rule_id) {
                    Ok(())
                } else {
                    Err(AdmissionError::NoSuchRule)
                }
            }
        }
    }

    fn installed_rules(&self) -> usize {
        self.installed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::BlackholingRule;
    use crate::signal::StellarSignal;
    use stellar_bgp::types::Asn;
    use stellar_dataplane::filter::Action;
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::flow::FlowKey;
    use stellar_net::mac::MacAddr;
    use stellar_net::proto::IpProtocol;

    fn add(id: u64) -> AbstractChange {
        AbstractChange::AddRule(BlackholingRule::from_signal(
            id,
            Asn(64500),
            "100.10.10.10/32".parse().unwrap(),
            StellarSignal::drop_udp_src(123),
        ))
    }

    #[test]
    fn sdn_backend_installs_and_matches() {
        let mut table = FlowTable::new(16);
        let mut mgr = SdnNetworkManager::new();
        mgr.apply(&mut table, &add(1), 0).unwrap();
        assert_eq!(mgr.installed_rules(), 1);
        let key = FlowKey {
            src_mac: MacAddr::for_member(1, 1),
            dst_mac: MacAddr::for_member(64500, 1),
            src_ip: IpAddress::V4(Ipv4Address::new(203, 0, 113, 7)),
            dst_ip: IpAddress::V4(Ipv4Address::new(100, 10, 10, 10)),
            protocol: IpProtocol::UDP,
            src_port: 123,
            dst_port: 40000,
            ..FlowKey::default()
        };
        assert_eq!(table.apply(&key, 100, 1), Action::Drop);
        // Per-flow counters provide telemetry (§4.2.2).
        assert_eq!(table.counters(1).unwrap().discarded_bytes, 100);
        mgr.apply(
            &mut table,
            &AbstractChange::RemoveRule {
                rule_id: 1,
                owner: Asn(64500),
            },
            1,
        )
        .unwrap();
        assert_eq!(table.apply(&key, 100, 1), Action::Forward);
    }

    #[test]
    fn table_capacity_is_admission_controlled() {
        let mut table = FlowTable::new(2);
        let mut mgr = SdnNetworkManager::new();
        mgr.apply(&mut table, &add(1), 0).unwrap();
        mgr.apply(&mut table, &add(2), 0).unwrap();
        assert_eq!(
            mgr.apply(&mut table, &add(3), 0),
            Err(AdmissionError::TableFull)
        );
        assert_eq!(mgr.installed_rules(), 2);
    }

    #[test]
    fn removing_unknown_rule_fails() {
        let mut table = FlowTable::new(2);
        let mut mgr = SdnNetworkManager::new();
        assert_eq!(
            mgr.apply(
                &mut table,
                &AbstractChange::RemoveRule {
                    rule_id: 9,
                    owner: Asn(1)
                },
                0
            ),
            Err(AdmissionError::NoSuchRule)
        );
    }
}
