//! # stellar-core
//!
//! Advanced Blackholing and its system realization **Stellar** (§3–§4):
//! the paper's primary contribution.
//!
//! The three layers of Fig. 5:
//!
//! - **Signaling** — [`signal`] defines the extended-community grammar
//!   members use to express blackholing rules over plain BGP (§4.2.1,
//!   §4.3), [`portal`] the self-service catalog of predefined and custom
//!   rules, and [`flowspec`] the lowering of validated BGP FlowSpec
//!   rules (the standards-based second signaling plane, RFC 8955/9117)
//!   into classifier match specs with their own admission plane;
//! - **Management** — [`controller`] (the blackholing controller: a
//!   passive iBGP + ADD-PATH listener that diffs RIB snapshots into
//!   abstract configuration changes), [`config_queue`] (the token-bucket
//!   change queue of §4.4), and [`manager`] / [`qos_manager`] /
//!   [`sdn_manager`] (compilation to hardware-specific configuration,
//!   with admission control against the hardware information base);
//! - **Filtering** — realized by `stellar-dataplane`; [`telemetry`]
//!   surfaces its counters back to members.
//!
//! [`rtbh`] implements the classic RTBH baseline the paper measures
//! against, [`mitigation`] the qualitative comparison models behind
//! Table 1, [`system`] the end-to-end facade, and [`scenario`] the
//! reusable attack/mitigation experiments behind Figs. 2c, 3c and 10c.
//! [`faults`] is the deterministic fault-injection harness behind the
//! self-healing control plane (retry, reconciliation, graceful
//! degradation — the §4.1.2 availability claim under test), and
//! [`watchdog`] the runtime invariant monitor that checks the
//! self-healing machinery's work while those faults are flying.

pub mod audit;
pub mod config_queue;
pub mod controller;
pub mod detector;
pub mod faults;
pub mod flowspec;
pub mod manager;
pub mod mitigation;
pub mod placement;
pub mod portal;
pub mod proof;
pub mod qos_manager;
pub mod rtbh;
pub mod rule;
pub mod scenario;
pub mod sdn_manager;
pub mod signal;
pub mod system;
pub mod telemetry;
pub mod watchdog;

pub use config_queue::{ConfigChangeQueue, QueuedChange};
pub use controller::{AbstractChange, BlackholingController, DegradeOutcome};
pub use detector::{Detection, DetectorConfig, SignatureDetector};
pub use faults::{
    ControlTuning, DeadLetter, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultPlanConfig,
    RecoveryEvent, RetryPolicy,
};
pub use flowspec::{FlowSpecPlane, LowerError, FLOWSPEC_RULE_ID_BASE};
pub use manager::{AdmissionError, DeadLetterLog, NetworkManager};
pub use portal::CustomerPortal;
pub use qos_manager::QosNetworkManager;
pub use rule::{BlackholingRule, RuleAction, RuleMatcher};
pub use sdn_manager::SdnNetworkManager;
pub use signal::{MatchKind, StellarSignal};
pub use system::{ReconcileReport, StellarSystem};
pub use watchdog::{Invariant, Violation, Watchdog, WatchdogConfig};
