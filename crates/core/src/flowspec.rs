//! Lowering accepted FlowSpec rules into classifier match specs.
//!
//! FlowSpec NLRIs that survive the route server's RFC 9117 validation
//! are translated here into [`MatchSpec`]s and admitted through the same
//! audit pipeline as signal-derived rules. Lowering is *exact*: a flow
//! specification either translates to a **minimal** set of match specs
//! covering precisely the packets the components describe, or it is
//! rejected with a typed [`LowerError`]. Nothing is ever silently
//! widened — installing a filter that matches traffic the member never
//! asked to touch would break the isolation argument of §4.5.

use crate::controller::AbstractChange;
use crate::rule::{BlackholingRule, RuleAction, RuleMatcher};
use std::collections::BTreeMap;
use stellar_bgp::extcommunity::ExtendedCommunity;
use stellar_bgp::flowspec::{numeric_match_intervals, Component, FlowSpec, NumericOp};
use stellar_bgp::types::Asn;
use stellar_dataplane::filter::{MatchSpec, PortMatch};
use stellar_net::proto::IpProtocol;
use stellar_routeserver::AcceptedFlowSpec;

/// First rule id in the FlowSpec id space. Signal-derived rule ids count
/// up from 1; keeping the planes disjoint lets every consumer (failure
/// ladder, telemetry, reconciler) tell at a glance which plane owns an
/// id.
pub const FLOWSPEC_RULE_ID_BASE: u64 = 1 << 32;

/// Hard cap on the match specs one NLRI may lower to. A protocol range
/// like `>= 6` would otherwise expand to hundreds of per-protocol specs
/// and swallow a member's whole TCAM share.
pub const MAX_LOWERED_SPECS: usize = 64;

/// Why a validated FlowSpec rule could not be lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerError {
    /// The component type has no classifier equivalent (ICMP fields,
    /// TCP flags, packet length, DSCP, fragment bits, flow label).
    UnsupportedComponent(&'static str),
    /// An operator sequence matches no value at all, so the rule as a
    /// whole matches no packet.
    EmptyMatch(&'static str),
    /// The minimal exact lowering needs more than
    /// [`MAX_LOWERED_SPECS`] specs.
    TooManySpecs(usize),
    /// No destination prefix (cannot happen post-validation; kept so
    /// lowering stands alone).
    MissingDestPrefix,
    /// The update carried no traffic-rate action to realize.
    NoAction,
    /// The action communities ask for something the dataplane cannot do
    /// (redirect, marking, non-finite rate).
    UnsupportedAction(&'static str),
}

impl LowerError {
    /// Stable metric-key token for this error.
    pub fn describe(&self) -> &'static str {
        match self {
            LowerError::UnsupportedComponent(name) => name,
            LowerError::EmptyMatch(_) => "empty-match",
            LowerError::TooManySpecs(_) => "too-many-specs",
            LowerError::MissingDestPrefix => "missing-dest-prefix",
            LowerError::NoAction => "no-action",
            LowerError::UnsupportedAction(what) => what,
        }
    }
}

/// Lowers the action extended communities of a FlowSpec update to a
/// [`RuleAction`]. `traffic-rate 0` is a drop, a positive rate shapes
/// (the community carries bytes/s, the shaper thinks in bits/s);
/// `traffic-action` bits are tolerated but change nothing here;
/// redirect and marking have no dataplane analogue and are refused.
pub fn lower_action(actions: &[ExtendedCommunity]) -> Result<RuleAction, LowerError> {
    let mut lowered: Option<RuleAction> = None;
    for ec in actions {
        match ec {
            ExtendedCommunity::TrafficRate { .. } => {
                let Some(bytes_per_sec) = ec.rate_bytes_per_sec() else {
                    return Err(LowerError::UnsupportedAction("bad-traffic-rate"));
                };
                let action = if bytes_per_sec == 0.0 {
                    RuleAction::Drop
                } else {
                    RuleAction::Shape {
                        rate_bps: (f64::from(bytes_per_sec) * 8.0).round() as u64,
                    }
                };
                // RFC 8955 §7: at most one traffic-rate is meaningful;
                // the first wins, as in announcement order.
                lowered.get_or_insert(action);
            }
            ExtendedCommunity::TrafficAction { .. } => {}
            ExtendedCommunity::RedirectAs2 { .. } => {
                return Err(LowerError::UnsupportedAction("redirect"));
            }
            ExtendedCommunity::TrafficMarking { .. } => {
                return Err(LowerError::UnsupportedAction("traffic-marking"));
            }
            _ => {}
        }
    }
    lowered.ok_or(LowerError::NoAction)
}

/// The minimal interval set a port operator sequence matches.
fn port_intervals(ops: &[NumericOp], what: &'static str) -> Result<Vec<(u16, u16)>, LowerError> {
    let iv = numeric_match_intervals(ops, 65_535);
    if iv.is_empty() {
        return Err(LowerError::EmptyMatch(what));
    }
    Ok(iv
        .into_iter()
        .map(|(lo, hi)| (lo as u16, hi as u16))
        .collect())
}

/// One port interval as a classifier match (`Exact` when degenerate).
fn to_port_match((lo, hi): (u16, u16)) -> PortMatch {
    if lo == hi {
        PortMatch::Exact(lo)
    } else {
        PortMatch::Range(lo, hi)
    }
}

/// Intersects an optional constraint with a type-4 port interval.
fn intersect(a: Option<(u16, u16)>, b: (u16, u16)) -> Option<(u16, u16)> {
    match a {
        None => Some(b),
        Some((alo, ahi)) => {
            let lo = alo.max(b.0);
            let hi = ahi.min(b.1);
            (lo <= hi).then_some((lo, hi))
        }
    }
}

/// Lowers a flow specification to the minimal set of [`MatchSpec`]s
/// matching exactly the packets its components describe.
///
/// Supported components: destination/source prefix, IP protocol and the
/// three port types. An operator sequence with several disjoint
/// intervals multiplies out (one spec per interval combination) because
/// the classifier matches a single value-or-range per field. The type-4
/// `port` component means "source *or* destination port" (RFC 8955
/// §4.2.4), so each of its intervals contributes a source variant and a
/// destination variant, intersected with any explicit src-port/dst-port
/// constraint.
pub fn lower_flowspec(flow: &FlowSpec) -> Result<Vec<MatchSpec>, LowerError> {
    let mut dst_ip = None;
    let mut src_ip = None;
    let mut protocols: Option<Vec<u8>> = None;
    let mut src_ports: Option<Vec<(u16, u16)>> = None;
    let mut dst_ports: Option<Vec<(u16, u16)>> = None;
    let mut either_ports: Option<Vec<(u16, u16)>> = None;
    for c in &flow.components {
        match c {
            Component::DstPrefix(p) => dst_ip = Some(*p),
            Component::SrcPrefix(p) => src_ip = Some(*p),
            Component::IpProtocol(ops) => {
                let iv = numeric_match_intervals(ops, 255);
                if iv.is_empty() {
                    return Err(LowerError::EmptyMatch("ip-protocol"));
                }
                if iv == [(0, 255)] {
                    // Matches every protocol: equivalent to omitting it.
                    continue;
                }
                let count: u64 = iv.iter().map(|&(lo, hi)| hi - lo + 1).sum();
                if count as usize > MAX_LOWERED_SPECS {
                    return Err(LowerError::TooManySpecs(count as usize));
                }
                protocols = Some(
                    iv.iter()
                        .flat_map(|&(lo, hi)| lo..=hi)
                        .map(|v| v as u8)
                        .collect(),
                );
            }
            Component::Port(ops) => either_ports = Some(port_intervals(ops, "port")?),
            Component::DstPort(ops) => dst_ports = Some(port_intervals(ops, "dst-port")?),
            Component::SrcPort(ops) => src_ports = Some(port_intervals(ops, "src-port")?),
            other => return Err(LowerError::UnsupportedComponent(other.name())),
        }
    }
    if dst_ip.is_none() {
        return Err(LowerError::MissingDestPrefix);
    }
    let protocols: Vec<Option<IpProtocol>> = match protocols {
        None => vec![None],
        Some(vs) => vs.into_iter().map(|v| Some(IpProtocol(v))).collect(),
    };
    let opt = |ivs: Option<Vec<(u16, u16)>>| -> Vec<Option<(u16, u16)>> {
        match ivs {
            None => vec![None],
            Some(v) => v.into_iter().map(Some).collect(),
        }
    };
    let srcs = opt(src_ports);
    let dsts = opt(dst_ports);
    let mut specs: Vec<MatchSpec> = Vec::new();
    let push = |specs: &mut Vec<MatchSpec>,
                protocol: Option<IpProtocol>,
                src: Option<(u16, u16)>,
                dst: Option<(u16, u16)>| {
        let spec = MatchSpec {
            src_ip,
            dst_ip,
            protocol,
            src_port: src.map(to_port_match),
            dst_port: dst.map(to_port_match),
            ..Default::default()
        };
        if !specs.contains(&spec) {
            specs.push(spec);
        }
    };
    for &protocol in &protocols {
        for &s in &srcs {
            for &d in &dsts {
                match &either_ports {
                    None => push(&mut specs, protocol, s, d),
                    Some(eps) => {
                        for &e in eps {
                            if let Some(s2) = intersect(s, e) {
                                push(&mut specs, protocol, Some(s2), d);
                            }
                            if let Some(d2) = intersect(d, e) {
                                push(&mut specs, protocol, s, Some(d2));
                            }
                        }
                    }
                }
            }
        }
    }
    if specs.is_empty() {
        // Every either-port variant intersected to nothing.
        return Err(LowerError::EmptyMatch("port"));
    }
    if specs.len() > MAX_LOWERED_SPECS {
        return Err(LowerError::TooManySpecs(specs.len()));
    }
    Ok(specs)
}

/// Desired state of the FlowSpec admission plane: every accepted and
/// lowered FlowSpec rule, keyed by `(owner, canonical NLRI bytes)` the
/// same way the route server's FlowSpec RIB is, so announcements,
/// implicit withdraws and explicit withdraws line up one-to-one.
#[derive(Debug, Default)]
pub struct FlowSpecPlane {
    entries: BTreeMap<(Asn, Vec<u8>), Vec<BlackholingRule>>,
    next_rule_id: u64,
}

impl FlowSpecPlane {
    /// An empty plane; rule ids count up from
    /// [`FLOWSPEC_RULE_ID_BASE`].
    pub fn new() -> Self {
        FlowSpecPlane {
            entries: BTreeMap::new(),
            next_rule_id: FLOWSPEC_RULE_ID_BASE,
        }
    }

    /// Lowers an accepted FlowSpec rule and diffs it into desired state.
    /// Re-announcing an identical rule is a no-op; a re-announcement
    /// with different actions or components replaces the old lowering
    /// (BGP implicit withdraw). Returns the abstract changes to enqueue.
    pub fn install(&mut self, acc: &AcceptedFlowSpec) -> Result<Vec<AbstractChange>, LowerError> {
        let action = lower_action(&acc.actions)?;
        let specs = lower_flowspec(&acc.flow)?;
        let Some(victim) = acc.flow.dst_prefix() else {
            return Err(LowerError::MissingDestPrefix);
        };
        let Ok(wire) = acc.flow.to_wire() else {
            // A decoded flowspec always re-encodes; treat the
            // impossible as unanchorable rather than panicking.
            return Err(LowerError::MissingDestPrefix);
        };
        let owner = acc.owner;
        let key = (owner, wire);
        let mut rules = self.entries.remove(&key).unwrap_or_default();
        let mut changes = Vec::new();
        let desired: Vec<(MatchSpec, RuleAction)> =
            specs.iter().map(|s| (s.clone(), action)).collect();
        rules.retain(|r| {
            let keep = matches!(
                &r.matcher,
                RuleMatcher::FlowSpec { spec, action: a }
                    if desired.iter().any(|(s, da)| s == spec && da == a)
            );
            if !keep {
                changes.push(AbstractChange::RemoveRule {
                    rule_id: r.id,
                    owner,
                });
            }
            keep
        });
        for spec in specs {
            let exists = rules.iter().any(|r| {
                matches!(
                    &r.matcher,
                    RuleMatcher::FlowSpec { spec: s, action: a } if *s == spec && *a == action
                )
            });
            if exists {
                continue;
            }
            let id = self.next_rule_id;
            self.next_rule_id += 1;
            let rule = BlackholingRule::from_flowspec(id, owner, victim, spec, action);
            rules.push(rule.clone());
            changes.push(AbstractChange::AddRule(rule));
        }
        self.entries.insert(key, rules);
        Ok(changes)
    }

    /// Withdraws one flow's rules (explicit MP_UNREACH or a session-down
    /// flush upstream). Unknown flows remove nothing.
    pub fn withdraw(&mut self, owner: Asn, flow: &FlowSpec) -> Vec<AbstractChange> {
        let Ok(wire) = flow.to_wire() else {
            return Vec::new();
        };
        let Some(rules) = self.entries.remove(&(owner, wire)) else {
            return Vec::new();
        };
        rules
            .into_iter()
            .map(|r| AbstractChange::RemoveRule {
                rule_id: r.id,
                owner,
            })
            .collect()
    }

    /// Flushes the whole plane (iBGP session loss: availability first,
    /// like the controller's `session_down`). Removals come out in rule
    /// id order.
    pub fn flush(&mut self) -> Vec<AbstractChange> {
        let mut out = Vec::new();
        for ((owner, _), rules) in std::mem::take(&mut self.entries) {
            for r in rules {
                out.push(AbstractChange::RemoveRule {
                    rule_id: r.id,
                    owner,
                });
            }
        }
        out.sort_by_key(|c| match c {
            AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
            AbstractChange::AddRule(r) => r.id,
        });
        out
    }

    /// Every rule the plane wants installed, sorted by id — the
    /// FlowSpec half of the reconciliation diff.
    pub fn desired_rules(&self) -> Vec<BlackholingRule> {
        let mut out: Vec<BlackholingRule> = self.entries.values().flatten().cloned().collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Admission permanently refused `rule_id`: drop it from desired
    /// state. Returns whether the id was known.
    pub fn rule_refused(&mut self, rule_id: u64) -> bool {
        let mut found = false;
        self.entries.retain(|_, rules| {
            rules.retain(|r| {
                let hit = r.id == rule_id;
                found |= hit;
                !hit
            });
            !rules.is_empty()
        });
        found
    }

    /// Number of lowered rules currently desired.
    pub fn rule_count(&self) -> usize {
        self.entries.values().map(|v| v.len()).sum()
    }

    /// The `(owner, canonical NLRI)` keys currently desired, in RIB
    /// order — the watchdog checks each against the route server's
    /// FlowSpec RIB.
    pub fn keys(&self) -> impl Iterator<Item = &(Asn, Vec<u8>)> {
        self.entries.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_bgp::flowspec::numeric_seq_matches;
    use stellar_bgp::types::Afi;
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::flow::FlowKey;
    use stellar_net::mac::MacAddr;
    use stellar_net::prefix::Prefix;

    const OWNER: Asn = Asn(64500);

    fn victim() -> Prefix {
        "100.10.10.10/32".parse().unwrap()
    }

    fn flow(components: Vec<Component>) -> FlowSpec {
        FlowSpec::new(Afi::Ipv4, components).unwrap()
    }

    fn key(protocol: IpProtocol, src_port: u16, dst_port: u16, dst_last: u8) -> FlowKey {
        FlowKey {
            src_mac: MacAddr::for_member(65000, 1),
            dst_mac: MacAddr::for_member(64500, 1),
            src_ip: IpAddress::V4(Ipv4Address::new(198, 51, 100, 7)),
            dst_ip: IpAddress::V4(Ipv4Address::new(100, 10, 10, dst_last)),
            protocol,
            src_port,
            dst_port,
        }
    }

    /// Direct RFC 8955 evaluation of the flow against a packet, used as
    /// the oracle the lowering must agree with exactly.
    fn flow_matches(f: &FlowSpec, k: &FlowKey) -> bool {
        f.components.iter().all(|c| match c {
            Component::DstPrefix(p) => p.contains(k.dst_ip),
            Component::SrcPrefix(p) => p.contains(k.src_ip),
            Component::IpProtocol(ops) => numeric_seq_matches(ops, k.protocol.0 as u64),
            Component::Port(ops) => {
                k.protocol.has_ports()
                    && (numeric_seq_matches(ops, k.src_port as u64)
                        || numeric_seq_matches(ops, k.dst_port as u64))
            }
            Component::DstPort(ops) => {
                k.protocol.has_ports() && numeric_seq_matches(ops, k.dst_port as u64)
            }
            Component::SrcPort(ops) => {
                k.protocol.has_ports() && numeric_seq_matches(ops, k.src_port as u64)
            }
            _ => false,
        })
    }

    /// Exhaustively compares the lowered spec set against the oracle
    /// over a probe grid chosen to hit every interval boundary.
    fn assert_exact(f: &FlowSpec, probe_ports: &[u16]) {
        let specs = lower_flowspec(f).expect("lowers");
        for protocol in [IpProtocol::UDP, IpProtocol::TCP, IpProtocol::ICMP] {
            for &sp in probe_ports {
                for &dp in probe_ports {
                    for dst_last in [10u8, 11] {
                        let k = key(protocol, sp, dp, dst_last);
                        let lowered = specs.iter().any(|s| s.matches(&k));
                        assert_eq!(
                            lowered,
                            flow_matches(f, &k),
                            "disagreement on {k} against {specs:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn amplification_flow_lowers_to_one_spec() {
        // UDP source port 123 toward the victim: the NTP reflection
        // pattern, one spec, no widening.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::SrcPort(vec![NumericOp::equals(123)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].dst_ip, Some(victim()));
        assert_eq!(specs[0].protocol, Some(IpProtocol::UDP));
        assert_eq!(specs[0].src_port, Some(PortMatch::Exact(123)));
        assert_exact(&f, &[0, 53, 122, 123, 124, 65535]);
    }

    #[test]
    fn disjoint_port_set_lowers_to_minimal_spec_set() {
        // src-port in {53, 123}: two disjoint intervals, exactly two
        // specs — not one widened range covering 53..=123.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::SrcPort(vec![NumericOp::equals(53), NumericOp::equals(123)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs
            .iter()
            .all(|s| matches!(s.src_port, Some(PortMatch::Exact(53 | 123)))));
        assert_exact(&f, &[0, 52, 53, 54, 88, 122, 123, 124, 65535]);
    }

    #[test]
    fn contiguous_range_lowers_to_single_range_spec() {
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::DstPort(vec![NumericOp::ge(1000), NumericOp::and_le(2000)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].dst_port, Some(PortMatch::Range(1000, 2000)));
        assert_exact(&f, &[0, 999, 1000, 1500, 2000, 2001, 65535]);
    }

    #[test]
    fn either_port_lowers_to_src_and_dst_variants() {
        // Type-4 "port" means src OR dst (RFC 8955 §4.2.4): two specs.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::Port(vec![NumericOp::equals(123)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs
            .iter()
            .any(|s| s.src_port == Some(PortMatch::Exact(123)) && s.dst_port.is_none()));
        assert!(specs
            .iter()
            .any(|s| s.dst_port == Some(PortMatch::Exact(123)) && s.src_port.is_none()));
        assert_exact(&f, &[0, 122, 123, 124, 65535]);
    }

    #[test]
    fn either_port_intersects_explicit_port_constraints() {
        // port=123 AND src-port=123: the dst variant keeps the explicit
        // src constraint, the src variant collapses into it.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::Port(vec![NumericOp::equals(123)]),
            Component::SrcPort(vec![NumericOp::equals(123)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_exact(&f, &[0, 122, 123, 124, 65535]);
        // And a disjoint intersection is an empty match, not a
        // widened one.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::Port(vec![NumericOp::equals(123)]),
            Component::SrcPort(vec![NumericOp::equals(53)]),
        ]);
        let specs2 = lower_flowspec(&f).unwrap();
        // Only the dst-variant (src=53, dst=123) survives.
        assert_eq!(specs2.len(), 1);
        assert_eq!(specs2[0].src_port, Some(PortMatch::Exact(53)));
        assert_eq!(specs2[0].dst_port, Some(PortMatch::Exact(123)));
        assert_exact(&f, &[0, 52, 53, 54, 122, 123, 124]);
        let _ = specs;
    }

    #[test]
    fn protocol_interval_expands_exactly() {
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(6), NumericOp::equals(17)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert_exact(&f, &[0, 80]);
    }

    #[test]
    fn full_range_protocol_is_wildcard_not_enumeration() {
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::ge(0)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].protocol, None);
    }

    #[test]
    fn oversized_protocol_expansion_is_refused_not_widened() {
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::ge(6)]),
        ]);
        assert_eq!(lower_flowspec(&f), Err(LowerError::TooManySpecs(250)));
    }

    #[test]
    fn unsupported_components_are_refused() {
        use stellar_bgp::flowspec::BitmaskOp;
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::TcpFlags(vec![BitmaskOp::new(false, false, true, 0x02)]),
        ]);
        assert_eq!(
            lower_flowspec(&f),
            Err(LowerError::UnsupportedComponent("tcp-flags"))
        );
    }

    #[test]
    fn actions_lower_to_drop_and_shape() {
        assert_eq!(
            lower_action(&[ExtendedCommunity::traffic_rate(64500, 0.0)]),
            Ok(RuleAction::Drop)
        );
        assert_eq!(
            lower_action(&[ExtendedCommunity::traffic_rate(64500, 25_000_000.0)]),
            Ok(RuleAction::Shape {
                rate_bps: 200_000_000
            })
        );
        assert_eq!(lower_action(&[]), Err(LowerError::NoAction));
        assert_eq!(
            lower_action(&[ExtendedCommunity::RedirectAs2 {
                asn: 64999,
                local: 1
            }]),
            Err(LowerError::UnsupportedAction("redirect"))
        );
    }

    fn accepted(f: FlowSpec, rate: f32) -> AcceptedFlowSpec {
        AcceptedFlowSpec {
            owner: OWNER,
            flow: f,
            actions: vec![ExtendedCommunity::traffic_rate(64500, rate)],
        }
    }

    fn drop_flow() -> FlowSpec {
        flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::SrcPort(vec![NumericOp::equals(123)]),
        ])
    }

    #[test]
    fn plane_install_is_idempotent_and_replaces_on_change() {
        let mut plane = FlowSpecPlane::new();
        let changes = plane.install(&accepted(drop_flow(), 0.0)).unwrap();
        assert_eq!(changes.len(), 1);
        let first_id = match &changes[0] {
            AbstractChange::AddRule(r) => {
                assert!(r.id >= FLOWSPEC_RULE_ID_BASE);
                assert_eq!(r.action(), RuleAction::Drop);
                r.id
            }
            other => panic!("expected add, got {other:?}"),
        };
        // Identical re-announcement: implicit withdraw replaces with
        // itself, nothing to do.
        assert!(plane
            .install(&accepted(drop_flow(), 0.0))
            .unwrap()
            .is_empty());
        assert_eq!(plane.rule_count(), 1);
        // Same NLRI, new action: the old rule goes, a new one comes.
        let changes = plane.install(&accepted(drop_flow(), 25_000_000.0)).unwrap();
        assert_eq!(changes.len(), 2);
        assert!(
            matches!(changes[0], AbstractChange::RemoveRule { rule_id, .. } if rule_id == first_id)
        );
        assert!(matches!(
            &changes[1],
            AbstractChange::AddRule(r)
                if r.id > first_id && r.action() == (RuleAction::Shape { rate_bps: 200_000_000 })
        ));
        assert_eq!(plane.rule_count(), 1);
    }

    #[test]
    fn plane_withdraw_and_flush_remove_rules() {
        let mut plane = FlowSpecPlane::new();
        plane.install(&accepted(drop_flow(), 0.0)).unwrap();
        let removals = plane.withdraw(OWNER, &drop_flow());
        assert_eq!(removals.len(), 1);
        assert_eq!(plane.rule_count(), 0);
        // Withdrawing again is inert.
        assert!(plane.withdraw(OWNER, &drop_flow()).is_empty());

        plane.install(&accepted(drop_flow(), 0.0)).unwrap();
        assert_eq!(plane.flush().len(), 1);
        assert_eq!(plane.rule_count(), 0);
    }

    #[test]
    fn plane_refusal_drops_desired_state() {
        let mut plane = FlowSpecPlane::new();
        let changes = plane.install(&accepted(drop_flow(), 0.0)).unwrap();
        let id = match &changes[0] {
            AbstractChange::AddRule(r) => r.id,
            other => panic!("expected add, got {other:?}"),
        };
        assert!(plane.rule_refused(id));
        assert_eq!(plane.rule_count(), 0);
        assert!(!plane.rule_refused(id));
        assert!(plane.desired_rules().is_empty());
    }
}
