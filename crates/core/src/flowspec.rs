//! Lowering accepted FlowSpec rules into classifier match specs.
//!
//! FlowSpec NLRIs that survive the route server's RFC 9117 validation
//! are translated here into [`MatchSpec`]s and admitted through the same
//! audit pipeline as signal-derived rules. Lowering is *exact*: a flow
//! specification either translates to a **minimal** set of match specs
//! covering precisely the packets the components describe, or it is
//! rejected with a typed [`LowerError`]. Nothing is ever silently
//! widened — installing a filter that matches traffic the member never
//! asked to touch would break the isolation argument of §4.5.

use crate::controller::AbstractChange;
use crate::rule::{BlackholingRule, RuleAction, RuleMatcher};
use std::collections::BTreeMap;
use stellar_bgp::extcommunity::ExtendedCommunity;
use stellar_bgp::flowspec::{numeric_match_intervals, BitmaskOp, Component, FlowSpec, NumericOp};
use stellar_bgp::types::{Afi, Asn};
use stellar_classify::spec::is_icmp;
use stellar_dataplane::filter::{BitsMatch, MatchSpec, PortMatch, RangeMatch};
use stellar_net::flow::frag;
use stellar_net::proto::IpProtocol;
use stellar_routeserver::AcceptedFlowSpec;

/// First rule id in the FlowSpec id space. Signal-derived rule ids count
/// up from 1; keeping the planes disjoint lets every consumer (failure
/// ladder, telemetry, reconciler) tell at a glance which plane owns an
/// id.
pub const FLOWSPEC_RULE_ID_BASE: u64 = 1 << 32;

/// Hard cap on the match specs one NLRI may lower to. A protocol range
/// like `>= 6` would otherwise expand to hundreds of per-protocol specs
/// and swallow a member's whole TCAM share.
pub const MAX_LOWERED_SPECS: usize = 64;

/// Why a validated FlowSpec rule could not be lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerError {
    /// The component has no classifier equivalent in this flow's
    /// address family (today only: `flow-label` outside IPv6).
    UnsupportedComponent(&'static str),
    /// An operator sequence matches no value at all, so the rule as a
    /// whole matches no packet.
    EmptyMatch(&'static str),
    /// The minimal exact lowering needs more than
    /// [`MAX_LOWERED_SPECS`] specs.
    TooManySpecs(usize),
    /// No destination prefix (cannot happen post-validation; kept so
    /// lowering stands alone).
    MissingDestPrefix,
    /// The update carried no traffic-rate action to realize.
    NoAction,
    /// The action communities ask for something the dataplane cannot do
    /// (redirect, marking, non-finite rate).
    UnsupportedAction(&'static str),
    /// The exactness proof ([`crate::proof::check_lowering`]) *proved*
    /// the lowered specs disagree with the NLRI's packet set
    /// (`"over-match"` or `"under-match"`). Installing a filter whose
    /// semantics we can refute would break the isolation argument, so
    /// the rule is refused. This indicates a lowering bug, never an
    /// operator error.
    Inexact(&'static str),
}

impl LowerError {
    /// Stable metric-key token for this error.
    pub fn describe(&self) -> &'static str {
        match self {
            LowerError::UnsupportedComponent(name) => name,
            LowerError::EmptyMatch(_) => "empty-match",
            LowerError::TooManySpecs(_) => "too-many-specs",
            LowerError::MissingDestPrefix => "missing-dest-prefix",
            LowerError::NoAction => "no-action",
            LowerError::UnsupportedAction(what) => what,
            LowerError::Inexact(_) => "inexact-lowering",
        }
    }
}

/// Lowers the action extended communities of a FlowSpec update to a
/// [`RuleAction`]. `traffic-rate 0` is a drop, a positive rate shapes
/// (the community carries bytes/s, the shaper thinks in bits/s);
/// `traffic-action` bits are tolerated but change nothing here;
/// redirect and marking have no dataplane analogue and are refused.
pub fn lower_action(actions: &[ExtendedCommunity]) -> Result<RuleAction, LowerError> {
    let mut lowered: Option<RuleAction> = None;
    for ec in actions {
        match ec {
            ExtendedCommunity::TrafficRate { .. } => {
                let Some(bytes_per_sec) = ec.rate_bytes_per_sec() else {
                    return Err(LowerError::UnsupportedAction("bad-traffic-rate"));
                };
                let action = if bytes_per_sec == 0.0 {
                    RuleAction::Drop
                } else {
                    RuleAction::Shape {
                        rate_bps: (f64::from(bytes_per_sec) * 8.0).round() as u64,
                    }
                };
                // RFC 8955 §7: at most one traffic-rate is meaningful;
                // the first wins, as in announcement order.
                lowered.get_or_insert(action);
            }
            ExtendedCommunity::TrafficAction { .. } => {}
            ExtendedCommunity::RedirectAs2 { .. } => {
                return Err(LowerError::UnsupportedAction("redirect"));
            }
            ExtendedCommunity::TrafficMarking { .. } => {
                return Err(LowerError::UnsupportedAction("traffic-marking"));
            }
            _ => {}
        }
    }
    lowered.ok_or(LowerError::NoAction)
}

/// The minimal interval set a port operator sequence matches.
fn port_intervals(ops: &[NumericOp], what: &'static str) -> Result<Vec<(u16, u16)>, LowerError> {
    let iv = numeric_match_intervals(ops, 65_535);
    if iv.is_empty() {
        return Err(LowerError::EmptyMatch(what));
    }
    Ok(iv
        .into_iter()
        .map(|(lo, hi)| (lo as u16, hi as u16))
        .collect())
}

/// One port interval as a classifier match (`Exact` when degenerate).
fn to_port_match((lo, hi): (u16, u16)) -> PortMatch {
    if lo == hi {
        PortMatch::Exact(lo)
    } else {
        PortMatch::Range(lo, hi)
    }
}

/// Intersects an optional constraint with a type-4 port interval.
fn intersect(a: Option<(u16, u16)>, b: (u16, u16)) -> Option<(u16, u16)> {
    match a {
        None => Some(b),
        Some((alo, ahi)) => {
            let lo = alo.max(b.0);
            let hi = ahi.min(b.1);
            (lo <= hi).then_some((lo, hi))
        }
    }
}

/// Total number of values a sorted interval set covers, saturating at
/// `u64::MAX`. A full-domain interval like `(0, u64::MAX)` has a
/// cardinality of 2^64, which the naive `hi - lo + 1` sum wraps to
/// zero — and a zero count would sail straight past the expansion cap.
fn interval_cardinality(iv: &[(u64, u64)]) -> u64 {
    iv.iter().fold(0u64, |acc, &(lo, hi)| {
        acc.saturating_add((hi - lo).saturating_add(1))
    })
}

/// The interval alternatives one numeric component contributes: `None`
/// when the sequence covers its whole `0..=max` domain (matching it
/// costs no criterion — same as omitting the component), the minimal
/// interval list otherwise, [`LowerError::EmptyMatch`] when it matches
/// no value at all.
fn numeric_dim(
    ops: &[NumericOp],
    max: u64,
    what: &'static str,
) -> Result<Option<Vec<(u64, u64)>>, LowerError> {
    let iv = numeric_match_intervals(ops, max);
    if iv.is_empty() {
        return Err(LowerError::EmptyMatch(what));
    }
    if iv == [(0, max)] {
        return Ok(None);
    }
    Ok(Some(iv))
}

/// The cube set one bitmask operator denotes over a field whose keys
/// only ever carry `domain` bits. `match_all` is a single cube,
/// `any-bit` an OR over one-bit cubes, and the negations follow by
/// De Morgan — `NOT(all of v)` is "some bit of v clear", `NOT(any of
/// v)` is "all bits of v clear". Bits outside the domain are constant
/// zero in every key, which collapses some operators to always-true
/// (the `(0, 0)` tautology cube) or always-false (no cubes).
fn op_cubes(op: &BitmaskOp, domain: u8) -> Vec<BitsMatch> {
    let dom = u64::from(domain);
    let one_bit_cubes = |bits: u8, value_of: fn(u8) -> u8| -> Vec<BitsMatch> {
        (0..8)
            .map(|i| 1u8 << i)
            .filter(|b| bits & b != 0)
            .map(|b| BitsMatch::new(b, value_of(b)))
            .collect()
    };
    match (op.match_all, op.not) {
        (true, false) => {
            if op.value == 0 {
                vec![BitsMatch::new(0, 0)]
            } else if op.value & !dom != 0 {
                Vec::new()
            } else {
                vec![BitsMatch::new(op.value as u8, op.value as u8)]
            }
        }
        (false, false) => one_bit_cubes((op.value & dom) as u8, |b| b),
        (true, true) => {
            if op.value & !dom != 0 {
                vec![BitsMatch::new(0, 0)]
            } else if op.value == 0 {
                Vec::new()
            } else {
                one_bit_cubes(op.value as u8, |_| 0)
            }
        }
        (false, true) => {
            let bits = (op.value & dom) as u8;
            if bits == 0 {
                vec![BitsMatch::new(0, 0)]
            } else {
                vec![BitsMatch::new(bits, 0)]
            }
        }
    }
}

/// Intersects two cubes: compatible iff they agree on every shared mask
/// bit, in which case the constraints simply union.
fn cube_and(a: BitsMatch, b: BitsMatch) -> Option<BitsMatch> {
    if a.value & b.mask != b.value & a.mask {
        return None;
    }
    Some(BitsMatch::new(a.mask | b.mask, a.value | b.value))
}

/// Lowers a bitmask operator sequence to a non-redundant OR-of-cubes
/// over the field's `domain` bits — the exact value set of
/// [`stellar_bgp::flowspec::bitmask_seq_matches`] restricted to keys
/// the dataplane can produce. `Ok(None)` means the sequence matches the
/// whole domain (no criterion needed; the caller still applies any
/// protocol gate the component implies).
fn bitmask_cubes(
    ops: &[BitmaskOp],
    domain: u8,
    what: &'static str,
) -> Result<Option<Vec<BitsMatch>>, LowerError> {
    let push_unique = |out: &mut Vec<BitsMatch>, c: BitsMatch| {
        if !out.contains(&c) {
            out.push(c);
        }
    };
    // Same OR-of-AND-groups fold as the evaluator, lifted to cube sets.
    let mut union: Vec<BitsMatch> = Vec::new();
    let mut group: Option<Vec<BitsMatch>> = None;
    for op in ops {
        let set = op_cubes(op, domain);
        group = Some(match group {
            Some(prev) if op.and => {
                let mut out = Vec::new();
                for &a in &prev {
                    for &b in &set {
                        if let Some(c) = cube_and(a, b) {
                            push_unique(&mut out, c);
                        }
                    }
                }
                out
            }
            Some(prev) => {
                for c in prev {
                    push_unique(&mut union, c);
                }
                set
            }
            None => set,
        });
    }
    if let Some(last) = group {
        for c in last {
            push_unique(&mut union, c);
        }
    }
    // Weakest cubes (fewest constrained bits) first, then drop every
    // cube a weaker one already covers.
    union.sort_by_key(|c| (c.mask.count_ones(), c.mask, c.value));
    let mut cubes: Vec<BitsMatch> = Vec::new();
    for c in union {
        let covered = cubes
            .iter()
            .any(|a| a.mask & c.mask == a.mask && c.value & a.mask == a.value);
        if !covered {
            cubes.push(c);
        }
    }
    if cubes.is_empty() {
        return Err(LowerError::EmptyMatch(what));
    }
    if cubes.iter().any(|c| c.mask == 0) {
        return Ok(None);
    }
    Ok(Some(cubes))
}

/// Multiplies the spec set by one more component dimension's
/// alternatives (`None`: the dimension is absent or full-domain —
/// nothing to do), refusing before the cross product can exceed
/// [`MAX_LOWERED_SPECS`].
fn expand<T: Clone>(
    specs: Vec<MatchSpec>,
    alts: Option<Vec<T>>,
    set: impl Fn(&mut MatchSpec, T),
) -> Result<Vec<MatchSpec>, LowerError> {
    let Some(alts) = alts else {
        return Ok(specs);
    };
    let product = specs.len().saturating_mul(alts.len());
    if product > MAX_LOWERED_SPECS {
        return Err(LowerError::TooManySpecs(product));
    }
    let mut out = Vec::with_capacity(product);
    for s in &specs {
        for a in &alts {
            let mut s2 = s.clone();
            set(&mut s2, a.clone());
            if !out.contains(&s2) {
                out.push(s2);
            }
        }
    }
    Ok(out)
}

/// Lowers a flow specification to the minimal set of [`MatchSpec`]s
/// matching exactly the packets its components describe.
///
/// All thirteen RFC 8955/8956 component types lower. An operator
/// sequence with several disjoint intervals (or bitmask alternatives)
/// multiplies out — one spec per combination — because the classifier
/// matches a single value, range or cube per field. The type-4 `port`
/// component means "source *or* destination port" (RFC 8955 §4.2.4),
/// so each of its intervals contributes a source variant and a
/// destination variant, intersected with any explicit
/// src-port/dst-port constraint. Components only some protocols can
/// satisfy (tcp-flags, the ICMP fields, the port types) narrow the
/// protocol set instead of being silently dropped, so a contradictory
/// combination (`tcp-flags` + `icmp-type`, ports + an ICMP-only
/// protocol) is refused as an empty match rather than lowered to a
/// dead rule. `flow-label` is IPv6-only (RFC 8956 §3.7) and refused
/// for IPv4 flows.
pub fn lower_flowspec(flow: &FlowSpec) -> Result<Vec<MatchSpec>, LowerError> {
    let mut dst_ip = None;
    let mut src_ip = None;
    let mut protocols: Option<Vec<u8>> = None;
    let mut src_ports: Option<Vec<(u16, u16)>> = None;
    let mut dst_ports: Option<Vec<(u16, u16)>> = None;
    let mut either_ports: Option<Vec<(u16, u16)>> = None;
    let mut has_tcp_flags = false;
    let mut tcp_cubes: Option<Vec<BitsMatch>> = None;
    let mut has_icmp = None::<&'static str>;
    let mut icmp_types: Option<Vec<(u64, u64)>> = None;
    let mut icmp_codes: Option<Vec<(u64, u64)>> = None;
    let mut packet_lens: Option<Vec<(u64, u64)>> = None;
    let mut dscps: Option<Vec<(u64, u64)>> = None;
    let mut frag_cubes: Option<Vec<BitsMatch>> = None;
    let mut flow_labels: Option<Vec<(u64, u64)>> = None;
    for c in &flow.components {
        match c {
            Component::DstPrefix(p) => dst_ip = Some(*p),
            Component::SrcPrefix(p) => src_ip = Some(*p),
            Component::IpProtocol(ops) => {
                let iv = numeric_match_intervals(ops, 255);
                if iv.is_empty() {
                    return Err(LowerError::EmptyMatch("ip-protocol"));
                }
                if iv == [(0, 255)] {
                    // Matches every protocol: equivalent to omitting it.
                    continue;
                }
                let count = interval_cardinality(&iv);
                if count > MAX_LOWERED_SPECS as u64 {
                    return Err(LowerError::TooManySpecs(count as usize));
                }
                protocols = Some(
                    iv.iter()
                        .flat_map(|&(lo, hi)| lo..=hi)
                        .map(|v| v as u8)
                        .collect(),
                );
            }
            Component::Port(ops) => either_ports = Some(port_intervals(ops, "port")?),
            Component::DstPort(ops) => dst_ports = Some(port_intervals(ops, "dst-port")?),
            Component::SrcPort(ops) => src_ports = Some(port_intervals(ops, "src-port")?),
            Component::IcmpType(ops) => {
                has_icmp.get_or_insert("icmp-type");
                icmp_types = numeric_dim(ops, 255, "icmp-type")?;
            }
            Component::IcmpCode(ops) => {
                has_icmp.get_or_insert("icmp-code");
                icmp_codes = numeric_dim(ops, 255, "icmp-code")?;
            }
            Component::TcpFlags(ops) => {
                has_tcp_flags = true;
                // Keys carry the raw TCP flags byte: the full u8 domain.
                tcp_cubes = bitmask_cubes(ops, 0xff, "tcp-flags")?;
            }
            Component::PacketLength(ops) => {
                packet_lens = numeric_dim(ops, 65_535, "packet-length")?;
            }
            Component::Dscp(ops) => dscps = numeric_dim(ops, 63, "dscp")?,
            Component::Fragment(ops) => {
                frag_cubes = bitmask_cubes(ops, frag::DOMAIN, "fragment")?;
            }
            Component::FlowLabel(ops) => {
                if flow.afi != Afi::Ipv6 {
                    return Err(LowerError::UnsupportedComponent("flow-label"));
                }
                flow_labels = numeric_dim(ops, 0xf_ffff, "flow-label")?;
            }
        }
    }
    if dst_ip.is_none() {
        return Err(LowerError::MissingDestPrefix);
    }
    // Components only some protocols can satisfy narrow the protocol
    // set. An ICMP field pins the protocol to ICMP/ICMPv6 even when its
    // value range is a wildcard; tcp-flags pins it to TCP; ports need a
    // ported protocol. An intersection that empties the set means the
    // rule can match no packet — refuse, never install a dead filter.
    if let Some(what) = has_icmp {
        match &mut protocols {
            None => {
                protocols = Some((0..=255u8).filter(|&p| is_icmp(IpProtocol(p))).collect());
            }
            Some(ps) => {
                ps.retain(|&p| is_icmp(IpProtocol(p)));
                if ps.is_empty() {
                    return Err(LowerError::EmptyMatch(what));
                }
            }
        }
    }
    if has_tcp_flags {
        match &mut protocols {
            None => protocols = Some(vec![IpProtocol::TCP.0]),
            Some(ps) => {
                ps.retain(|&p| p == IpProtocol::TCP.0);
                if ps.is_empty() {
                    return Err(LowerError::EmptyMatch("tcp-flags"));
                }
            }
        }
    }
    if src_ports.is_some() || dst_ports.is_some() || either_ports.is_some() {
        if let Some(ps) = &mut protocols {
            ps.retain(|&p| IpProtocol(p).has_ports());
            if ps.is_empty() {
                return Err(LowerError::EmptyMatch("port"));
            }
        }
    }
    let protocols: Vec<Option<IpProtocol>> = match protocols {
        None => vec![None],
        Some(vs) => vs.into_iter().map(|v| Some(IpProtocol(v))).collect(),
    };
    let opt = |ivs: Option<Vec<(u16, u16)>>| -> Vec<Option<(u16, u16)>> {
        match ivs {
            None => vec![None],
            Some(v) => v.into_iter().map(Some).collect(),
        }
    };
    let srcs = opt(src_ports);
    let dsts = opt(dst_ports);
    let mut specs: Vec<MatchSpec> = Vec::new();
    let push = |specs: &mut Vec<MatchSpec>,
                protocol: Option<IpProtocol>,
                src: Option<(u16, u16)>,
                dst: Option<(u16, u16)>| {
        let spec = MatchSpec {
            src_ip,
            dst_ip,
            protocol,
            src_port: src.map(to_port_match),
            dst_port: dst.map(to_port_match),
            ..Default::default()
        };
        if !specs.contains(&spec) {
            specs.push(spec);
        }
    };
    for &protocol in &protocols {
        for &s in &srcs {
            for &d in &dsts {
                match &either_ports {
                    None => push(&mut specs, protocol, s, d),
                    Some(eps) => {
                        for &e in eps {
                            if let Some(s2) = intersect(s, e) {
                                push(&mut specs, protocol, Some(s2), d);
                            }
                            if let Some(d2) = intersect(d, e) {
                                push(&mut specs, protocol, s, Some(d2));
                            }
                        }
                    }
                }
            }
        }
    }
    if specs.is_empty() {
        // Every either-port variant intersected to nothing.
        return Err(LowerError::EmptyMatch("port"));
    }
    if specs.len() > MAX_LOWERED_SPECS {
        return Err(LowerError::TooManySpecs(specs.len()));
    }
    let u8_ranges = |iv: Vec<(u64, u64)>| -> Vec<RangeMatch<u8>> {
        iv.into_iter()
            .map(|(lo, hi)| RangeMatch::new(lo as u8, hi as u8))
            .collect()
    };
    let specs = expand(specs, tcp_cubes, |s, c| s.tcp_flags = Some(c))?;
    let specs = expand(
        specs,
        packet_lens.map(|iv| {
            iv.into_iter()
                .map(|(lo, hi)| RangeMatch::new(lo as u16, hi as u16))
                .collect::<Vec<_>>()
        }),
        |s, r| s.packet_len = Some(r),
    )?;
    let specs = expand(specs, dscps.map(u8_ranges), |s, r| s.dscp = Some(r))?;
    let specs = expand(specs, frag_cubes, |s, c| s.fragment = Some(c))?;
    let specs = expand(specs, icmp_types.map(u8_ranges), |s, r| {
        s.icmp_type = Some(r)
    })?;
    let specs = expand(specs, icmp_codes.map(u8_ranges), |s, r| {
        s.icmp_code = Some(r)
    })?;
    let specs = expand(
        specs,
        flow_labels.map(|iv| {
            iv.into_iter()
                .map(|(lo, hi)| RangeMatch::new(lo as u32, hi as u32))
                .collect::<Vec<_>>()
        }),
        |s, r| s.flow_label = Some(r),
    )?;
    Ok(specs)
}

/// Desired state of the FlowSpec admission plane: every accepted and
/// lowered FlowSpec rule, keyed by `(owner, canonical NLRI bytes)` the
/// same way the route server's FlowSpec RIB is, so announcements,
/// implicit withdraws and explicit withdraws line up one-to-one.
#[derive(Debug, Default)]
pub struct FlowSpecPlane {
    entries: BTreeMap<(Asn, Vec<u8>), Vec<BlackholingRule>>,
    next_rule_id: u64,
}

impl FlowSpecPlane {
    /// An empty plane; rule ids count up from
    /// [`FLOWSPEC_RULE_ID_BASE`].
    pub fn new() -> Self {
        FlowSpecPlane {
            entries: BTreeMap::new(),
            next_rule_id: FLOWSPEC_RULE_ID_BASE,
        }
    }

    /// Lowers an accepted FlowSpec rule and diffs it into desired state.
    /// Re-announcing an identical rule is a no-op; a re-announcement
    /// with different actions or components replaces the old lowering
    /// (BGP implicit withdraw). Returns the abstract changes to enqueue.
    pub fn install(&mut self, acc: &AcceptedFlowSpec) -> Result<Vec<AbstractChange>, LowerError> {
        let action = lower_action(&acc.actions)?;
        let specs = lower_flowspec(&acc.flow)?;
        // Obligation (a): before anything reaches desired state, prove
        // the lowering exact against the independently built oracle.
        // `Unverified` (oracle/budget overflow) installs anyway —
        // refusal demands a *proven* violation, never a shrug.
        if let Some(kind) = crate::proof::check_lowering(&acc.flow, &specs).violation_kind() {
            return Err(LowerError::Inexact(kind));
        }
        let Some(victim) = acc.flow.dst_prefix() else {
            return Err(LowerError::MissingDestPrefix);
        };
        let Ok(wire) = acc.flow.to_wire() else {
            // A decoded flowspec always re-encodes; treat the
            // impossible as unanchorable rather than panicking.
            return Err(LowerError::MissingDestPrefix);
        };
        let owner = acc.owner;
        let key = (owner, wire);
        let mut rules = self.entries.remove(&key).unwrap_or_default();
        let mut changes = Vec::new();
        let desired: Vec<(MatchSpec, RuleAction)> =
            specs.iter().map(|s| (s.clone(), action)).collect();
        rules.retain(|r| {
            let keep = matches!(
                &r.matcher,
                RuleMatcher::FlowSpec { spec, action: a }
                    if desired.iter().any(|(s, da)| s == spec && da == a)
            );
            if !keep {
                changes.push(AbstractChange::RemoveRule {
                    rule_id: r.id,
                    owner,
                });
            }
            keep
        });
        for spec in specs {
            let exists = rules.iter().any(|r| {
                matches!(
                    &r.matcher,
                    RuleMatcher::FlowSpec { spec: s, action: a } if *s == spec && *a == action
                )
            });
            if exists {
                continue;
            }
            let id = self.next_rule_id;
            self.next_rule_id += 1;
            let rule = BlackholingRule::from_flowspec(id, owner, victim, spec, action);
            rules.push(rule.clone());
            changes.push(AbstractChange::AddRule(rule));
        }
        self.entries.insert(key, rules);
        Ok(changes)
    }

    /// Withdraws one flow's rules (explicit MP_UNREACH or a session-down
    /// flush upstream). Unknown flows remove nothing.
    pub fn withdraw(&mut self, owner: Asn, flow: &FlowSpec) -> Vec<AbstractChange> {
        let Ok(wire) = flow.to_wire() else {
            return Vec::new();
        };
        let Some(rules) = self.entries.remove(&(owner, wire)) else {
            return Vec::new();
        };
        rules
            .into_iter()
            .map(|r| AbstractChange::RemoveRule {
                rule_id: r.id,
                owner,
            })
            .collect()
    }

    /// Flushes the whole plane (iBGP session loss: availability first,
    /// like the controller's `session_down`). Removals come out in rule
    /// id order.
    pub fn flush(&mut self) -> Vec<AbstractChange> {
        let mut out = Vec::new();
        for ((owner, _), rules) in std::mem::take(&mut self.entries) {
            for r in rules {
                out.push(AbstractChange::RemoveRule {
                    rule_id: r.id,
                    owner,
                });
            }
        }
        out.sort_by_key(|c| match c {
            AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
            AbstractChange::AddRule(r) => r.id,
        });
        out
    }

    /// Every rule the plane wants installed, sorted by id — the
    /// FlowSpec half of the reconciliation diff.
    pub fn desired_rules(&self) -> Vec<BlackholingRule> {
        let mut out: Vec<BlackholingRule> = self.entries.values().flatten().cloned().collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Admission permanently refused `rule_id`: drop it from desired
    /// state. Returns whether the id was known.
    pub fn rule_refused(&mut self, rule_id: u64) -> bool {
        let mut found = false;
        self.entries.retain(|_, rules| {
            rules.retain(|r| {
                let hit = r.id == rule_id;
                found |= hit;
                !hit
            });
            !rules.is_empty()
        });
        found
    }

    /// Number of lowered rules currently desired.
    pub fn rule_count(&self) -> usize {
        self.entries.values().map(|v| v.len()).sum()
    }

    /// The `(owner, canonical NLRI)` keys currently desired, in RIB
    /// order — the watchdog checks each against the route server's
    /// FlowSpec RIB.
    pub fn keys(&self) -> impl Iterator<Item = &(Asn, Vec<u8>)> {
        self.entries.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_bgp::flowspec::{bitmask_seq_matches, numeric_seq_matches};
    use stellar_net::addr::{IpAddress, Ipv4Address, Ipv6Address};
    use stellar_net::flow::FlowKey;
    use stellar_net::mac::MacAddr;
    use stellar_net::prefix::Prefix;
    use stellar_net::tcp::TcpFlags;

    const OWNER: Asn = Asn(64500);

    fn victim() -> Prefix {
        "100.10.10.10/32".parse().unwrap()
    }

    fn flow(components: Vec<Component>) -> FlowSpec {
        FlowSpec::new(Afi::Ipv4, components).unwrap()
    }

    fn key(protocol: IpProtocol, src_port: u16, dst_port: u16, dst_last: u8) -> FlowKey {
        FlowKey {
            src_mac: MacAddr::for_member(65000, 1),
            dst_mac: MacAddr::for_member(64500, 1),
            src_ip: IpAddress::V4(Ipv4Address::new(198, 51, 100, 7)),
            dst_ip: IpAddress::V4(Ipv4Address::new(100, 10, 10, dst_last)),
            protocol,
            src_port,
            dst_port,
            ..FlowKey::default()
        }
    }

    /// Direct RFC 8955 evaluation of the flow against a packet, used as
    /// the oracle the lowering must agree with exactly.
    fn flow_matches(f: &FlowSpec, k: &FlowKey) -> bool {
        f.components.iter().all(|c| match c {
            Component::DstPrefix(p) => p.contains(k.dst_ip),
            Component::SrcPrefix(p) => p.contains(k.src_ip),
            Component::IpProtocol(ops) => numeric_seq_matches(ops, k.protocol.0 as u64),
            Component::Port(ops) => {
                k.protocol.has_ports()
                    && (numeric_seq_matches(ops, k.src_port as u64)
                        || numeric_seq_matches(ops, k.dst_port as u64))
            }
            Component::DstPort(ops) => {
                k.protocol.has_ports() && numeric_seq_matches(ops, k.dst_port as u64)
            }
            Component::SrcPort(ops) => {
                k.protocol.has_ports() && numeric_seq_matches(ops, k.src_port as u64)
            }
            Component::IcmpType(ops) => {
                is_icmp(k.protocol) && numeric_seq_matches(ops, k.icmp_type as u64)
            }
            Component::IcmpCode(ops) => {
                is_icmp(k.protocol) && numeric_seq_matches(ops, k.icmp_code as u64)
            }
            Component::TcpFlags(ops) => {
                k.protocol == IpProtocol::TCP && bitmask_seq_matches(ops, k.tcp_flags as u64)
            }
            Component::PacketLength(ops) => numeric_seq_matches(ops, k.packet_len as u64),
            Component::Dscp(ops) => numeric_seq_matches(ops, k.dscp as u64),
            Component::Fragment(ops) => bitmask_seq_matches(ops, k.fragment as u64),
            Component::FlowLabel(ops) => {
                matches!(k.dst_ip, IpAddress::V6(_))
                    && numeric_seq_matches(ops, k.flow_label as u64)
            }
        })
    }

    /// Compares the lowered spec set against the oracle on every probe
    /// key: lowering is exact iff "some spec matches" equals the direct
    /// RFC evaluation, everywhere.
    fn assert_exact_keys(f: &FlowSpec, keys: impl IntoIterator<Item = FlowKey>) {
        let specs = lower_flowspec(f).expect("lowers");
        for k in keys {
            let lowered = specs.iter().any(|s| s.matches(&k));
            assert_eq!(
                lowered,
                flow_matches(f, &k),
                "disagreement on {k} against {specs:?}"
            );
        }
    }

    /// Exhaustively compares the lowered spec set against the oracle
    /// over a probe grid chosen to hit every interval boundary.
    fn assert_exact(f: &FlowSpec, probe_ports: &[u16]) {
        let mut keys = Vec::new();
        for protocol in [IpProtocol::UDP, IpProtocol::TCP, IpProtocol::ICMP] {
            for &sp in probe_ports {
                for &dp in probe_ports {
                    for dst_last in [10u8, 11] {
                        keys.push(key(protocol, sp, dp, dst_last));
                    }
                }
            }
        }
        assert_exact_keys(f, keys);
    }

    #[test]
    fn amplification_flow_lowers_to_one_spec() {
        // UDP source port 123 toward the victim: the NTP reflection
        // pattern, one spec, no widening.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::SrcPort(vec![NumericOp::equals(123)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].dst_ip, Some(victim()));
        assert_eq!(specs[0].protocol, Some(IpProtocol::UDP));
        assert_eq!(specs[0].src_port, Some(PortMatch::Exact(123)));
        assert_exact(&f, &[0, 53, 122, 123, 124, 65535]);
    }

    #[test]
    fn disjoint_port_set_lowers_to_minimal_spec_set() {
        // src-port in {53, 123}: two disjoint intervals, exactly two
        // specs — not one widened range covering 53..=123.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::SrcPort(vec![NumericOp::equals(53), NumericOp::equals(123)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs
            .iter()
            .all(|s| matches!(s.src_port, Some(PortMatch::Exact(53 | 123)))));
        assert_exact(&f, &[0, 52, 53, 54, 88, 122, 123, 124, 65535]);
    }

    #[test]
    fn contiguous_range_lowers_to_single_range_spec() {
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::DstPort(vec![NumericOp::ge(1000), NumericOp::and_le(2000)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].dst_port, Some(PortMatch::Range(1000, 2000)));
        assert_exact(&f, &[0, 999, 1000, 1500, 2000, 2001, 65535]);
    }

    #[test]
    fn either_port_lowers_to_src_and_dst_variants() {
        // Type-4 "port" means src OR dst (RFC 8955 §4.2.4): two specs.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::Port(vec![NumericOp::equals(123)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs
            .iter()
            .any(|s| s.src_port == Some(PortMatch::Exact(123)) && s.dst_port.is_none()));
        assert!(specs
            .iter()
            .any(|s| s.dst_port == Some(PortMatch::Exact(123)) && s.src_port.is_none()));
        assert_exact(&f, &[0, 122, 123, 124, 65535]);
    }

    #[test]
    fn either_port_intersects_explicit_port_constraints() {
        // port=123 AND src-port=123: the dst variant keeps the explicit
        // src constraint, the src variant collapses into it.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::Port(vec![NumericOp::equals(123)]),
            Component::SrcPort(vec![NumericOp::equals(123)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_exact(&f, &[0, 122, 123, 124, 65535]);
        // And a disjoint intersection is an empty match, not a
        // widened one.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::Port(vec![NumericOp::equals(123)]),
            Component::SrcPort(vec![NumericOp::equals(53)]),
        ]);
        let specs2 = lower_flowspec(&f).unwrap();
        // Only the dst-variant (src=53, dst=123) survives.
        assert_eq!(specs2.len(), 1);
        assert_eq!(specs2[0].src_port, Some(PortMatch::Exact(53)));
        assert_eq!(specs2[0].dst_port, Some(PortMatch::Exact(123)));
        assert_exact(&f, &[0, 52, 53, 54, 122, 123, 124]);
        let _ = specs;
    }

    #[test]
    fn protocol_interval_expands_exactly() {
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(6), NumericOp::equals(17)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert_exact(&f, &[0, 80]);
    }

    #[test]
    fn full_range_protocol_is_wildcard_not_enumeration() {
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::ge(0)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].protocol, None);
    }

    #[test]
    fn oversized_protocol_expansion_is_refused_not_widened() {
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::ge(6)]),
        ]);
        assert_eq!(lower_flowspec(&f), Err(LowerError::TooManySpecs(250)));
    }

    #[test]
    fn interval_cardinality_saturates_on_full_domain() {
        // `hi - lo + 1` on the full u64 domain wraps to zero, which
        // would slip under the expansion cap; the saturating fold
        // reports "effectively infinite" instead.
        assert_eq!(interval_cardinality(&[(0, u64::MAX)]), u64::MAX);
        assert_eq!(interval_cardinality(&[(0, 255)]), 256);
        assert_eq!(interval_cardinality(&[(0, 9), (20, 29)]), 20);
        // A full-range numeric component still lowers as a wildcard
        // rather than tripping (or dodging) the cap.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::new(false, true, true, true, 7)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].protocol, None);
    }

    /// Probe grid over the extension fields: every combination of a
    /// few protocols, flag bytes, fragment bits, lengths, DSCPs and
    /// ICMP types, toward both the victim and its neighbor.
    fn ext_keys() -> Vec<FlowKey> {
        let mut keys = Vec::new();
        for protocol in [IpProtocol::TCP, IpProtocol::UDP, IpProtocol::ICMP] {
            for tcp_flags in [0u8, TcpFlags::SYN, TcpFlags::SYN | TcpFlags::ACK, 0xff] {
                for fragment in [0u8, frag::IS_FRAGMENT | frag::FIRST_FRAGMENT, frag::DOMAIN] {
                    for packet_len in [0u16, 999, 1000, 1500, 1501] {
                        for (dscp, icmp_type) in [(0u8, 0u8), (46, 8), (63, 3)] {
                            keys.push(FlowKey {
                                tcp_flags,
                                fragment,
                                packet_len,
                                dscp,
                                icmp_type,
                                icmp_code: icmp_type / 2,
                                ..key(protocol, 123, 443, 10)
                            });
                        }
                    }
                }
            }
        }
        keys
    }

    #[test]
    fn tcp_syn_only_lowers_to_one_cube_pinned_to_tcp() {
        // "SYN set AND ACK clear" — the classic SYN-flood filter. The
        // AND-group folds to a single cube and the component pins the
        // protocol to TCP even though the NLRI never names it.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::TcpFlags(vec![
                BitmaskOp::new(false, false, true, TcpFlags::SYN as u64),
                BitmaskOp::new(true, true, false, TcpFlags::ACK as u64),
            ]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].protocol, Some(IpProtocol::TCP));
        assert_eq!(
            specs[0].tcp_flags,
            Some(BitsMatch::new(TcpFlags::SYN | TcpFlags::ACK, TcpFlags::SYN))
        );
        assert_exact_keys(&f, ext_keys());
    }

    #[test]
    fn tcp_flags_tautology_still_pins_protocol() {
        // "all bits of 0x00 set" is vacuously true for every flags
        // byte, so the cube criterion disappears — but the component
        // still means "this is TCP traffic" and must not widen to
        // other protocols.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::TcpFlags(vec![BitmaskOp::new(false, false, true, 0)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].protocol, Some(IpProtocol::TCP));
        assert_eq!(specs[0].tcp_flags, None);
        assert_exact_keys(&f, ext_keys());
    }

    #[test]
    fn contradictory_protocol_pins_are_refused_as_empty() {
        // tcp-flags on an explicitly-UDP flow can match no packet.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::TcpFlags(vec![BitmaskOp::new(
                false,
                false,
                true,
                TcpFlags::SYN as u64,
            )]),
        ]);
        assert_eq!(lower_flowspec(&f), Err(LowerError::EmptyMatch("tcp-flags")));
        // Ports on an ICMP-only protocol set, likewise.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(1)]),
            Component::DstPort(vec![NumericOp::equals(53)]),
        ]);
        assert_eq!(lower_flowspec(&f), Err(LowerError::EmptyMatch("port")));
        // And icmp-type intersected with tcp-flags.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IcmpType(vec![NumericOp::equals(8)]),
            Component::TcpFlags(vec![BitmaskOp::new(
                false,
                false,
                true,
                TcpFlags::SYN as u64,
            )]),
        ]);
        assert_eq!(lower_flowspec(&f), Err(LowerError::EmptyMatch("tcp-flags")));
    }

    #[test]
    fn icmp_fields_lower_with_protocol_pinned_to_icmp() {
        // echo-request floods: icmp-type 8, code 0. The protocol set
        // narrows to ICMP/ICMPv6 without an explicit ip-protocol
        // component.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IcmpType(vec![NumericOp::equals(8)]),
            Component::IcmpCode(vec![NumericOp::equals(0)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| {
            is_icmp(s.protocol.unwrap())
                && s.icmp_type == Some(RangeMatch::exact(8))
                && s.icmp_code == Some(RangeMatch::exact(0))
        }));
        assert_exact_keys(&f, ext_keys());
        // A full-range icmp-type keeps the pin but spends no criterion.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IcmpType(vec![NumericOp::ge(0)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs
            .iter()
            .all(|s| is_icmp(s.protocol.unwrap()) && s.icmp_type.is_none()));
        assert_exact_keys(&f, ext_keys());
    }

    #[test]
    fn packet_length_and_dscp_lower_to_ranges() {
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::PacketLength(vec![NumericOp::ge(1000), NumericOp::and_le(1500)]),
            Component::Dscp(vec![NumericOp::equals(46)]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].protocol, None);
        assert_eq!(specs[0].packet_len, Some(RangeMatch::new(1000, 1500)));
        assert_eq!(specs[0].dscp, Some(RangeMatch::exact(46)));
        assert_exact_keys(&f, ext_keys());
        // Disjoint length intervals multiply out, minimally.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::PacketLength(vec![
                NumericOp::equals(64),
                NumericOp::ge(1000),
                NumericOp::and_le(1500),
            ]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert_exact_keys(&f, ext_keys());
    }

    #[test]
    fn fragment_bits_lower_to_cubes_over_the_frag_domain() {
        // "is a fragment" — any-bit on IS_FRAGMENT.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::Fragment(vec![BitmaskOp::new(
                false,
                false,
                false,
                frag::IS_FRAGMENT as u64,
            )]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(
            specs[0].fragment,
            Some(BitsMatch::new(frag::IS_FRAGMENT, frag::IS_FRAGMENT))
        );
        assert_exact_keys(&f, ext_keys());
        // "not a fragment" — NOT any-bit: one all-clear cube, and no
        // protocol pin (fragment bits exist on every v4 packet).
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::Fragment(vec![BitmaskOp::new(
                false,
                true,
                false,
                frag::IS_FRAGMENT as u64,
            )]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].protocol, None);
        assert_eq!(
            specs[0].fragment,
            Some(BitsMatch::new(frag::IS_FRAGMENT, 0))
        );
        assert_exact_keys(&f, ext_keys());
    }

    #[test]
    fn bitmask_any_bit_lowers_to_or_of_one_bit_cubes() {
        // any-of {SYN, ACK}: two cubes, exact — not one widened cube
        // requiring both bits.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::TcpFlags(vec![BitmaskOp::new(
                false,
                false,
                false,
                (TcpFlags::SYN | TcpFlags::ACK) as u64,
            )]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert_exact_keys(&f, ext_keys());
        // NOT(all of {SYN, ACK}): some bit clear — two all-clear cubes.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::TcpFlags(vec![BitmaskOp::new(
                false,
                true,
                true,
                (TcpFlags::SYN | TcpFlags::ACK) as u64,
            )]),
        ]);
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 2);
        assert_exact_keys(&f, ext_keys());
    }

    fn victim6() -> Prefix {
        "2001:db8:100::10/128".parse().unwrap()
    }

    fn key6(flow_label: u32, last: u16) -> FlowKey {
        FlowKey {
            src_mac: MacAddr::for_member(65000, 1),
            dst_mac: MacAddr::for_member(64500, 1),
            src_ip: IpAddress::V6(Ipv6Address::from_groups([
                0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 1,
            ])),
            dst_ip: IpAddress::V6(Ipv6Address::from_groups([
                0x2001, 0xdb8, 0x100, 0, 0, 0, 0, last,
            ])),
            protocol: IpProtocol::UDP,
            src_port: 123,
            dst_port: 443,
            flow_label,
            ..FlowKey::default()
        }
    }

    #[test]
    fn flow_label_lowers_for_ipv6_and_is_refused_for_ipv4() {
        let f = FlowSpec::new(
            Afi::Ipv6,
            vec![
                Component::DstPrefix(victim6()),
                Component::FlowLabel(vec![NumericOp::equals(0x12345)]),
            ],
        )
        .unwrap();
        let specs = lower_flowspec(&f).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].flow_label, Some(RangeMatch::exact(0x12345)));
        let keys = [0u32, 0x12345, 0x12346, 0xf_ffff]
            .into_iter()
            .flat_map(|l| [key6(l, 0x10), key6(l, 0x11)]);
        assert_exact_keys(&f, keys);
        // The same component under IPv4 has nothing to match against.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::FlowLabel(vec![NumericOp::equals(0x12345)]),
        ]);
        assert_eq!(
            lower_flowspec(&f),
            Err(LowerError::UnsupportedComponent("flow-label"))
        );
    }

    #[test]
    fn empty_bitmask_and_numeric_sequences_are_refused() {
        // match-all over bits the flags byte can never carry (the
        // value is wider than the u8 domain): unsatisfiable.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::TcpFlags(vec![BitmaskOp::new(false, false, true, 0x100)]),
        ]);
        assert_eq!(lower_flowspec(&f), Err(LowerError::EmptyMatch("tcp-flags")));
        // dscp > 63 is outside the 6-bit domain.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::Dscp(vec![NumericOp::new(false, false, true, false, 63)]),
        ]);
        assert_eq!(lower_flowspec(&f), Err(LowerError::EmptyMatch("dscp")));
    }

    #[test]
    fn combined_extension_components_stay_exact() {
        // Everything at once: fragmented large UDP toward the victim
        // with a DSCP band — the shape of a carpet-bombing filter.
        let f = flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::PacketLength(vec![NumericOp::ge(1000)]),
            Component::Dscp(vec![NumericOp::new(false, true, false, true, 46)]),
            Component::Fragment(vec![BitmaskOp::new(
                false,
                false,
                false,
                frag::IS_FRAGMENT as u64,
            )]),
        ]);
        assert_exact_keys(&f, ext_keys());
    }

    #[test]
    fn actions_lower_to_drop_and_shape() {
        assert_eq!(
            lower_action(&[ExtendedCommunity::traffic_rate(64500, 0.0)]),
            Ok(RuleAction::Drop)
        );
        assert_eq!(
            lower_action(&[ExtendedCommunity::traffic_rate(64500, 25_000_000.0)]),
            Ok(RuleAction::Shape {
                rate_bps: 200_000_000
            })
        );
        assert_eq!(lower_action(&[]), Err(LowerError::NoAction));
        assert_eq!(
            lower_action(&[ExtendedCommunity::RedirectAs2 {
                asn: 64999,
                local: 1
            }]),
            Err(LowerError::UnsupportedAction("redirect"))
        );
    }

    fn accepted(f: FlowSpec, rate: f32) -> AcceptedFlowSpec {
        AcceptedFlowSpec {
            owner: OWNER,
            flow: f,
            actions: vec![ExtendedCommunity::traffic_rate(64500, rate)],
        }
    }

    fn drop_flow() -> FlowSpec {
        flow(vec![
            Component::DstPrefix(victim()),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::SrcPort(vec![NumericOp::equals(123)]),
        ])
    }

    #[test]
    fn plane_install_is_idempotent_and_replaces_on_change() {
        let mut plane = FlowSpecPlane::new();
        let changes = plane.install(&accepted(drop_flow(), 0.0)).unwrap();
        assert_eq!(changes.len(), 1);
        let first_id = match &changes[0] {
            AbstractChange::AddRule(r) => {
                assert!(r.id >= FLOWSPEC_RULE_ID_BASE);
                assert_eq!(r.action(), RuleAction::Drop);
                r.id
            }
            other => panic!("expected add, got {other:?}"),
        };
        // Identical re-announcement: implicit withdraw replaces with
        // itself, nothing to do.
        assert!(plane
            .install(&accepted(drop_flow(), 0.0))
            .unwrap()
            .is_empty());
        assert_eq!(plane.rule_count(), 1);
        // Same NLRI, new action: the old rule goes, a new one comes.
        let changes = plane.install(&accepted(drop_flow(), 25_000_000.0)).unwrap();
        assert_eq!(changes.len(), 2);
        assert!(
            matches!(changes[0], AbstractChange::RemoveRule { rule_id, .. } if rule_id == first_id)
        );
        assert!(matches!(
            &changes[1],
            AbstractChange::AddRule(r)
                if r.id > first_id && r.action() == (RuleAction::Shape { rate_bps: 200_000_000 })
        ));
        assert_eq!(plane.rule_count(), 1);
    }

    #[test]
    fn plane_withdraw_and_flush_remove_rules() {
        let mut plane = FlowSpecPlane::new();
        plane.install(&accepted(drop_flow(), 0.0)).unwrap();
        let removals = plane.withdraw(OWNER, &drop_flow());
        assert_eq!(removals.len(), 1);
        assert_eq!(plane.rule_count(), 0);
        // Withdrawing again is inert.
        assert!(plane.withdraw(OWNER, &drop_flow()).is_empty());

        plane.install(&accepted(drop_flow(), 0.0)).unwrap();
        assert_eq!(plane.flush().len(), 1);
        assert_eq!(plane.rule_count(), 0);
    }

    #[test]
    fn plane_refusal_drops_desired_state() {
        let mut plane = FlowSpecPlane::new();
        let changes = plane.install(&accepted(drop_flow(), 0.0)).unwrap();
        let id = match &changes[0] {
            AbstractChange::AddRule(r) => r.id,
            other => panic!("expected add, got {other:?}"),
        };
        assert!(plane.rule_refused(id));
        assert_eq!(plane.rule_count(), 0);
        assert!(!plane.rule_refused(id));
        assert!(plane.desired_rules().is_empty());
    }
}
