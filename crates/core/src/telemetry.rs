//! Member-facing telemetry (§3.1): "a well-designed DDoS mitigation
//! system should enable the network under attack to still receive
//! telemetry information about the status of the attack", both via the
//! shaped traffic sample and via statistics about discarded traffic.

use crate::qos_manager::QosNetworkManager;
use stellar_sim::fabric::Fabric;

/// Telemetry for one installed blackholing rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleTelemetry {
    /// The rule id.
    pub rule_id: u64,
    /// Bytes that matched the rule so far.
    pub matched_bytes: u64,
    /// Bytes discarded.
    pub discarded_bytes: u64,
    /// Bytes passed through (the shaped sample).
    pub passed_bytes: u64,
}

impl RuleTelemetry {
    /// The attack-activity heuristic a victim uses to decide whether the
    /// attack is over: traffic is still matching the rule.
    pub fn attack_active(&self, prev_matched_bytes: u64) -> bool {
        self.matched_bytes > prev_matched_bytes
    }
}

/// Reads telemetry for a set of rule ids owned by one member.
pub fn rule_telemetry(
    fabric: &Fabric,
    manager: &QosNetworkManager,
    rule_ids: &[u64],
) -> Vec<RuleTelemetry> {
    let mut out = Vec::new();
    for &rule_id in rule_ids {
        let Some(port) = manager.port_of_rule(rule_id) else {
            continue;
        };
        let Some(port_ref) = fabric.port(port) else {
            continue;
        };
        if let Some(c) = port_ref.policy.rule_counters(rule_id) {
            out.push(RuleTelemetry {
                rule_id,
                matched_bytes: c.matched_bytes,
                discarded_bytes: c.discarded_bytes,
                passed_bytes: c.passed_bytes,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::AbstractChange;
    use crate::manager::NetworkManager;
    use crate::rule::BlackholingRule;
    use crate::signal::StellarSignal;
    use stellar_bgp::types::Asn;
    use stellar_dataplane::hardware::HardwareInfoBase;
    use stellar_dataplane::port::MemberPort;
    use stellar_dataplane::switch::{OfferedAggregate, PortId};
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::flow::FlowKey;
    use stellar_net::mac::MacAddr;
    use stellar_net::proto::IpProtocol;

    #[test]
    fn telemetry_reflects_shaped_sample_and_discards() {
        let mut fabric = Fabric::single(HardwareInfoBase::lab_switch());
        fabric.add_port(
            stellar_sim::fabric::PopId(0),
            PortId(1),
            MemberPort::new(64500, MacAddr::for_member(64500, 1), 1_000_000_000),
        );
        let mut mgr = QosNetworkManager::default();
        mgr.register_owner(Asn(64500), PortId(1));
        mgr.apply(
            &mut fabric,
            &AbstractChange::AddRule(BlackholingRule::from_signal(
                1,
                Asn(64500),
                "100.10.10.10/32".parse().unwrap(),
                StellarSignal::shape_udp_src(123, 200),
            )),
            0,
        )
        .unwrap();

        let offer = OfferedAggregate {
            key: FlowKey {
                src_mac: MacAddr::for_member(65000, 1),
                dst_mac: MacAddr::for_member(64500, 1),
                src_ip: IpAddress::V4(Ipv4Address::new(198, 51, 100, 1)),
                dst_ip: IpAddress::V4(Ipv4Address::new(100, 10, 10, 10)),
                protocol: IpProtocol::UDP,
                src_port: 123,
                dst_port: 40000,
                ..FlowKey::default()
            },
            bytes: 125_000_000, // 1 Gbps over 1 s
            packets: 100_000,
        };
        fabric.process_tick(&[offer], 1_000_000, 1_000_000);

        let t = rule_telemetry(&fabric, &mgr, &[1]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].matched_bytes, 125_000_000);
        // Shaped to 200 Mbps: ~25 MB passed, rest discarded.
        assert!(t[0].passed_bytes > 20_000_000 && t[0].passed_bytes < 30_000_000);
        assert_eq!(t[0].matched_bytes, t[0].passed_bytes + t[0].discarded_bytes);
        assert!(t[0].attack_active(0));
        assert!(!t[0].attack_active(t[0].matched_bytes));
    }

    #[test]
    fn unknown_rules_yield_no_telemetry() {
        let fabric = Fabric::single(HardwareInfoBase::lab_switch());
        let mgr = QosNetworkManager::default();
        assert!(rule_telemetry(&fabric, &mgr, &[1, 2, 3]).is_empty());
    }
}
