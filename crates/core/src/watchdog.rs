//! Runtime invariant watchdog.
//!
//! The self-healing machinery (retry ladder, reconciler, dead-letter
//! requeue) is only trustworthy if something *checks its work* while
//! faults are flying. The watchdog evaluates a small catalogue of
//! whole-system invariants on a fixed cadence against live state and
//! records every violation with a deterministic label — to the obs
//! flight recorder for post-mortems and as `watchdog.*` counters for
//! dashboards and CI gates. A chaos soak that ends "converged" but with
//! a non-zero violation count still fails: the system passed through a
//! state it should never have been in.
//!
//! The checks themselves live in `system.rs` (they need simultaneous
//! read access to controller, dataplane, FlowSpec plane and route
//! server); this module owns the cadence, the grace-period arithmetic
//! and the bounded violation record.

/// One invariant the watchdog evaluates. Labels are stable metric-key
/// tokens: `watchdog.violations.<label>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// After the last fault (plus the configured grace bound) desired
    /// state must equal installed state with an empty queue.
    Convergence,
    /// `rule_installs - rule_removals` must equal the rules in hardware,
    /// and with nothing installed the TCAM pools must be empty.
    LedgerConservation,
    /// Every `(owner, wire-bytes)` key the FlowSpec plane wants lowered
    /// must still be present in the route server's FlowSpec RIB.
    RibPlaneConsistency,
    /// No hardware rule may survive without a desired-state owner once
    /// the system is quiet (withdraw/flush/restart leftovers).
    OrphanRule,
    /// Dead-letter requeues must drain: nothing may stay parked past its
    /// release time plus the grace bound.
    DeadLetterDrain,
    /// A degradation-ladder step must be monotone: the dropped set may
    /// only widen, and shaped traffic the old spec didn't cover must be
    /// untouched (proved exactly by `classify::verify::check_ladder_step`
    /// at each degrade).
    LadderMonotone,
    /// Once quiet and converged, every occupied egress port's installed
    /// filter table must be semantically equal to its owner's desired
    /// table over that port's traffic (proved exactly by
    /// `proof::check_placement`); the union over ports then equals the
    /// global intent.
    PlacementSound,
}

impl Invariant {
    /// Stable metric-key token for this invariant.
    pub fn label(&self) -> &'static str {
        match self {
            Invariant::Convergence => "convergence",
            Invariant::LedgerConservation => "ledger_conservation",
            Invariant::RibPlaneConsistency => "rib_plane",
            Invariant::OrphanRule => "orphan_rules",
            Invariant::DeadLetterDrain => "deadletter_drain",
            Invariant::LadderMonotone => "ladder_monotone",
            Invariant::PlacementSound => "placement_sound",
        }
    }

    /// Every invariant, in label order (catalogue iteration for docs,
    /// tests and zeroed counter initialisation).
    pub fn all() -> [Invariant; 7] {
        [
            Invariant::Convergence,
            Invariant::DeadLetterDrain,
            Invariant::LadderMonotone,
            Invariant::LedgerConservation,
            Invariant::OrphanRule,
            Invariant::PlacementSound,
            Invariant::RibPlaneConsistency,
        ]
    }
}

/// One recorded violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// When the check observed it.
    pub at_us: u64,
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Deterministic human-readable detail (no addresses, no wall-clock
    /// times — two runs under one seed must record identical details).
    pub detail: String,
}

/// Watchdog tuning.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// How long after the last control-plane activity (fault or
    /// enqueued repair) the quiet-state invariants (convergence, orphan
    /// rules, drainage) are allowed to still be violated. Must cover the
    /// retry ladder's worst case: attempts × max backoff plus a
    /// reconciliation round.
    pub convergence_grace_us: u64,
    /// Evaluation cadence.
    pub check_interval_us: u64,
    /// Violations retained verbatim; past this the record keeps counting
    /// but stops storing (the counters and flight recorder still see
    /// every one).
    pub max_recorded: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            // 3 attempts × 8 s capped backoff + a 1 s reconcile round,
            // rounded up generously: chaos soaks measure MTTR well under
            // this; the watchdog only flags pathological non-recovery.
            convergence_grace_us: 30_000_000,
            check_interval_us: 250_000,
            max_recorded: 256,
        }
    }
}

/// The runtime invariant monitor: cadence, quiet-period tracking and the
/// bounded violation record.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    last_activity_us: u64,
    last_check_us: Option<u64>,
    checks: u64,
    violations: Vec<Violation>,
    total_violations: u64,
}

impl Watchdog {
    /// A watchdog with the given tuning.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            last_activity_us: 0,
            last_check_us: None,
            checks: 0,
            violations: Vec::new(),
            total_violations: 0,
        }
    }

    /// The active tuning.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Control-plane activity happened (fault fired, change enqueued,
    /// dead letter requeued): the quiet-period clock restarts and the
    /// quiet-state invariants stand down until it expires again.
    pub fn note_activity(&mut self, now_us: u64) {
        self.last_activity_us = self.last_activity_us.max(now_us);
    }

    /// When the last activity was noted.
    pub fn last_activity_us(&self) -> u64 {
        self.last_activity_us
    }

    /// True when the system has been quiet long enough that the
    /// quiet-state invariants (convergence, orphans, drainage) apply.
    pub fn quiet(&self, now_us: u64) -> bool {
        now_us
            >= self
                .last_activity_us
                .saturating_add(self.cfg.convergence_grace_us)
    }

    /// True when the cadence says a check is due at `now_us`.
    pub fn due(&self, now_us: u64) -> bool {
        match self.last_check_us {
            None => true,
            Some(last) => now_us >= last.saturating_add(self.cfg.check_interval_us),
        }
    }

    /// Starts a check pass at `now_us` (advances the cadence clock and
    /// the check counter).
    pub fn begin_check(&mut self, now_us: u64) {
        self.last_check_us = Some(now_us);
        self.checks += 1;
    }

    /// Records one violation, returning it back for the caller to feed
    /// the flight recorder. Past `max_recorded` the record keeps
    /// counting but stops storing.
    pub fn record(&mut self, at_us: u64, invariant: Invariant, detail: String) -> Violation {
        let v = Violation {
            at_us,
            invariant,
            detail,
        };
        self.total_violations += 1;
        if self.violations.len() < self.cfg.max_recorded {
            self.violations.push(v.clone());
        }
        v
    }

    /// Check passes run so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Violations recorded verbatim (bounded by `max_recorded`).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Every violation ever, including ones past the storage bound.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// True when no invariant has ever been observed broken.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new(WatchdogConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_metric_tokens() {
        for inv in Invariant::all() {
            assert!(!inv.label().is_empty());
            assert!(!inv.label().contains(' '));
            assert!(!inv.label().contains('.'));
        }
        let labels: Vec<&str> = Invariant::all().iter().map(|i| i.label()).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(labels, sorted, "catalogue iterates in label order");
    }

    #[test]
    fn quiet_period_tracks_latest_activity() {
        let mut wd = Watchdog::new(WatchdogConfig {
            convergence_grace_us: 1_000,
            ..Default::default()
        });
        assert!(wd.quiet(1_000));
        wd.note_activity(500);
        assert!(!wd.quiet(1_000));
        assert!(wd.quiet(1_500));
        // Activity timestamps never move backwards.
        wd.note_activity(200);
        assert_eq!(wd.last_activity_us(), 500);
    }

    #[test]
    fn cadence_gates_checks() {
        let mut wd = Watchdog::new(WatchdogConfig {
            check_interval_us: 100,
            ..Default::default()
        });
        assert!(wd.due(0));
        wd.begin_check(0);
        assert!(!wd.due(99));
        assert!(wd.due(100));
        wd.begin_check(100);
        assert_eq!(wd.checks(), 2);
    }

    #[test]
    fn violation_record_is_bounded_but_counts_everything() {
        let mut wd = Watchdog::new(WatchdogConfig {
            max_recorded: 2,
            ..Default::default()
        });
        assert!(wd.is_clean());
        for i in 0..5 {
            wd.record(i, Invariant::Convergence, format!("v{i}"));
        }
        assert_eq!(wd.violations().len(), 2);
        assert_eq!(wd.total_violations(), 5);
        assert!(!wd.is_clean());
        assert_eq!(wd.violations()[0].detail, "v0");
    }
}
