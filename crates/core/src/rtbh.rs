//! Classic Remotely Triggered Black Hole — the baseline Stellar is
//! measured against (§2).
//!
//! The victim announces its /32 with the blackhole community; the route
//! server reflects it to *all* members with the next hop rewritten to the
//! IXP's null interface. Only members that honor the signal (accept the
//! more-specific and act on the community) stop delivering traffic —
//! which is why RTBH removes only ~25–40 % of the attack in §2.4.

use std::collections::BTreeSet;
use stellar_bgp::community::Community;
use stellar_bgp::types::Asn;
use stellar_bgp::update::UpdateMessage;
use stellar_dataplane::switch::OfferedAggregate;
use stellar_net::mac::MacAddr;
use stellar_net::prefix::Prefix;
use stellar_sim::honoring::HonoringModel;
use stellar_sim::topology::IxpTopology;

/// The data-plane effect of an active RTBH: traffic towards `victim`
/// from honoring source members is discarded at the null interface.
#[derive(Debug, Clone)]
pub struct RtbhFilter {
    /// The blackholed prefix.
    pub victim: Prefix,
    /// Source member MACs whose traffic is nulled.
    honoring_macs: BTreeSet<[u8; 6]>,
}

impl RtbhFilter {
    /// Builds the filter for a blackhole announced by `victim_asn` over
    /// `topology`, applying its honoring model to every other member plus
    /// the given set of non-member reflector MACs (booter reflectors
    /// reach the IXP through member ports too).
    pub fn build(
        topology: &IxpTopology,
        victim_asn: Asn,
        victim: Prefix,
        extra_source_asns: &[u32],
    ) -> Self {
        let mut honoring_macs = BTreeSet::new();
        for asn in topology.honoring_members(victim_asn) {
            if let Some(info) = topology.member(asn) {
                honoring_macs.insert(info.mac.octets());
            }
        }
        for &asn in extra_source_asns {
            if topology.honoring.honors(Asn(asn)) {
                honoring_macs.insert(MacAddr::for_member(asn, 1).octets());
            }
        }
        RtbhFilter {
            victim,
            honoring_macs,
        }
    }

    /// Builds a filter directly from a honoring model over a source list
    /// (for scenarios without a full topology).
    pub fn from_sources(victim: Prefix, source_asns: &[u32], honoring: &HonoringModel) -> Self {
        let honoring_macs = source_asns
            .iter()
            .filter(|a| honoring.honors(Asn(**a)))
            .map(|a| MacAddr::for_member(*a, 1).octets())
            .collect();
        RtbhFilter {
            victim,
            honoring_macs,
        }
    }

    /// Applies the blackhole to one offered aggregate: `None` if the
    /// traffic is discarded at the null interface, `Some` if it still
    /// reaches the victim's port.
    pub fn filter(&self, agg: &OfferedAggregate) -> Option<OfferedAggregate> {
        if self.victim.contains(agg.key.dst_ip)
            && self.honoring_macs.contains(&agg.key.src_mac.octets())
        {
            None
        } else {
            Some(*agg)
        }
    }

    /// How many of the given sources honor the signal.
    pub fn honoring_count(&self) -> usize {
        self.honoring_macs.len()
    }
}

/// Builds the BGP announcement a victim sends to trigger RTBH: the /32
/// tagged with the standardized blackhole community (§2.2).
pub fn blackhole_announcement(
    topology: &IxpTopology,
    victim_asn: Asn,
    victim: Prefix,
) -> UpdateMessage {
    let mut u = topology.announcement(victim_asn, victim);
    u.add_communities(&[Community::BLACKHOLE]);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_dataplane::hardware::HardwareInfoBase;
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::flow::FlowKey;
    use stellar_net::proto::IpProtocol;
    use stellar_sim::topology::generic_members;

    fn agg(src_asn: u32, dst_ip: Ipv4Address) -> OfferedAggregate {
        OfferedAggregate {
            key: FlowKey {
                src_mac: MacAddr::for_member(src_asn, 1),
                dst_mac: MacAddr::for_member(64500, 1),
                src_ip: IpAddress::V4(Ipv4Address::new(198, 51, 100, 1)),
                dst_ip: IpAddress::V4(dst_ip),
                protocol: IpProtocol::UDP,
                src_port: 123,
                dst_port: 40000,
                ..FlowKey::default()
            },
            bytes: 1000,
            packets: 1,
        }
    }

    #[test]
    fn honoring_sources_are_nulled_others_pass() {
        let sources: Vec<u32> = (65000..65100).collect();
        let honoring = HonoringModel::new(0.3, 7);
        let victim: Prefix = "100.10.10.10/32".parse().unwrap();
        let f = RtbhFilter::from_sources(victim, &sources, &honoring);
        let mut passed = 0;
        let mut nulled = 0;
        for s in &sources {
            match f.filter(&agg(*s, Ipv4Address::new(100, 10, 10, 10))) {
                Some(_) => passed += 1,
                None => nulled += 1,
            }
        }
        assert_eq!(passed + nulled, 100);
        assert_eq!(nulled, f.honoring_count());
        // ~30% honor: most traffic still arrives (the paper's finding).
        assert!(passed > 55, "passed {passed}");
        assert!(nulled > 15, "nulled {nulled}");
    }

    #[test]
    fn collateral_damage_all_ports_to_victim_are_nulled() {
        let honoring = HonoringModel::new(1.0, 7);
        let victim: Prefix = "100.10.10.10/32".parse().unwrap();
        let f = RtbhFilter::from_sources(victim, &[65000], &honoring);
        // HTTPS to the victim is also discarded: RTBH is all-or-nothing.
        let mut web = agg(65000, Ipv4Address::new(100, 10, 10, 10));
        web.key.protocol = IpProtocol::TCP;
        web.key.src_port = 51000;
        web.key.dst_port = 443;
        assert!(f.filter(&web).is_none());
        // Traffic to a different IP in the covering /24 passes.
        assert!(f
            .filter(&agg(65000, Ipv4Address::new(100, 10, 10, 11)))
            .is_some());
    }

    #[test]
    fn build_from_topology_and_announcement_shape() {
        let mut ixp =
            IxpTopology::build(&generic_members(64500, 20), HardwareInfoBase::lab_switch());
        ixp.honoring = HonoringModel::new(0.3, 1);
        let victim: Prefix = "100.10.10.10/32".parse().unwrap();
        let f = RtbhFilter::build(&ixp, Asn(64500), victim, &[70000, 70001]);
        assert!(f.honoring_count() <= 21);
        let u = blackhole_announcement(&ixp, Asn(64500), victim);
        assert!(u.communities().contains(&Community::BLACKHOLE));
        assert_eq!(u.nlri[0].prefix, victim);
    }
}
