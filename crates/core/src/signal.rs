//! The Stellar signaling grammar: blackholing rules encoded in BGP
//! extended communities (§4.2.1/§4.3).
//!
//! §5.3's example: "we send a BGP update for the IP (/32 prefix) tagged
//! with BGP community IXP:2:123. Hereby, 2 refers to UDP source traffic
//! and 123 to port 123."
//!
//! ## Wire encoding
//!
//! A signal is a transitive two-octet-AS-specific extended community
//! (RFC 4360) in the IXP's namespace:
//!
//! ```text
//! type 0x00 | subtype 0xBB | IXP-ASN (2 bytes) | local admin (4 bytes)
//! local admin = match_kind (1) | action (1) | port (2)
//! ```
//!
//! `match_kind` selects what the rule matches towards the signaled
//! prefix (the paper's "2" = UDP source port). `action` 0 means drop;
//! `k` in 1..=250 means shape to `k × 10 Mbps` (so `20` is the 200 Mbps
//! telemetry rate of Fig. 10c). `port` is the L4 port for port-scoped
//! kinds, or a predefined-rule catalog id for [`MatchKind::Predefined`].

use crate::rule::RuleAction;
use stellar_bgp::extcommunity::ExtendedCommunity;
use stellar_bgp::types::Asn;
use stellar_dataplane::filter::{MatchSpec, PortMatch};
use stellar_net::prefix::Prefix;
use stellar_net::proto::IpProtocol;

/// The extended-community subtype carrying Stellar blackholing rules.
pub const STELLAR_SUBTYPE: u8 = 0xbb;

/// What a blackholing rule matches, towards the signaled prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MatchKind {
    /// UDP traffic with the given destination port (1).
    UdpDstPort,
    /// UDP traffic with the given source port (2) — the amplification
    /// case from the paper's example.
    UdpSrcPort,
    /// TCP traffic with the given destination port (3).
    TcpDstPort,
    /// TCP traffic with the given source port (4).
    TcpSrcPort,
    /// All UDP traffic (5).
    AllUdp,
    /// All TCP traffic (6).
    AllTcp,
    /// All traffic — the hardware-realized equivalent of RTBH, minus the
    /// cooperation problem (7).
    AllTraffic,
    /// A predefined catalog rule; the port field carries the catalog id
    /// (8).
    Predefined,
}

impl MatchKind {
    /// Wire value.
    pub fn value(&self) -> u8 {
        match self {
            MatchKind::UdpDstPort => 1,
            MatchKind::UdpSrcPort => 2,
            MatchKind::TcpDstPort => 3,
            MatchKind::TcpSrcPort => 4,
            MatchKind::AllUdp => 5,
            MatchKind::AllTcp => 6,
            MatchKind::AllTraffic => 7,
            MatchKind::Predefined => 8,
        }
    }

    /// From wire value.
    pub fn from_value(v: u8) -> Option<Self> {
        Some(match v {
            1 => MatchKind::UdpDstPort,
            2 => MatchKind::UdpSrcPort,
            3 => MatchKind::TcpDstPort,
            4 => MatchKind::TcpSrcPort,
            5 => MatchKind::AllUdp,
            6 => MatchKind::AllTcp,
            7 => MatchKind::AllTraffic,
            8 => MatchKind::Predefined,
            _ => return None,
        })
    }
}

/// A parsed Stellar signal: one blackholing rule request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StellarSignal {
    /// What to match.
    pub kind: MatchKind,
    /// Port (or catalog id for [`MatchKind::Predefined`]).
    pub port: u16,
    /// What to do with matches.
    pub action: RuleAction,
}

impl StellarSignal {
    /// A drop rule for UDP traffic *from* `port` (the amplification
    /// pattern).
    pub fn drop_udp_src(port: u16) -> Self {
        StellarSignal {
            kind: MatchKind::UdpSrcPort,
            port,
            action: RuleAction::Drop,
        }
    }

    /// A shaping rule for UDP traffic from `port` at `rate_mbps_x10 × 10`
    /// Mbps.
    pub fn shape_udp_src(port: u16, rate_mbps: u32) -> Self {
        StellarSignal {
            kind: MatchKind::UdpSrcPort,
            port,
            action: RuleAction::Shape {
                rate_bps: u64::from(rate_mbps) * 1_000_000,
            },
        }
    }

    /// A drop-everything rule (hardware RTBH).
    pub fn drop_all() -> Self {
        StellarSignal {
            kind: MatchKind::AllTraffic,
            port: 0,
            action: RuleAction::Drop,
        }
    }

    /// Encodes to the extended community (see module docs). Shape rates
    /// round to 10 Mbps granularity; rates above 2.5 Gbps saturate.
    pub fn encode(&self, ixp_asn: Asn) -> ExtendedCommunity {
        let action_byte: u8 = match self.action {
            RuleAction::Drop => 0,
            RuleAction::Shape { rate_bps } => ((rate_bps / 10_000_000).clamp(1, 250)) as u8,
        };
        let local = (u32::from(self.kind.value()) << 24)
            | (u32::from(action_byte) << 16)
            | u32::from(self.port);
        ExtendedCommunity::TwoOctetAs {
            subtype: STELLAR_SUBTYPE,
            asn: ixp_asn.0 as u16,
            local,
            transitive: true,
        }
    }

    /// Decodes a Stellar signal from an extended community, if it is one
    /// (right subtype and IXP namespace).
    pub fn decode(ec: &ExtendedCommunity, ixp_asn: Asn) -> Option<StellarSignal> {
        let ExtendedCommunity::TwoOctetAs {
            subtype,
            asn,
            local,
            transitive: _,
        } = ec
        else {
            return None;
        };
        if *subtype != STELLAR_SUBTYPE || u32::from(*asn) != ixp_asn.0 {
            return None;
        }
        let kind = MatchKind::from_value((local >> 24) as u8)?;
        let action_byte = ((local >> 16) & 0xff) as u8;
        let port = (local & 0xffff) as u16;
        let action = if action_byte == 0 {
            RuleAction::Drop
        } else {
            RuleAction::Shape {
                rate_bps: u64::from(action_byte) * 10_000_000,
            }
        };
        Some(StellarSignal { kind, port, action })
    }

    /// Extracts all Stellar signals from an update's extended
    /// communities, resolving predefined references through `catalog`.
    pub fn extract(
        ecs: &[ExtendedCommunity],
        ixp_asn: Asn,
        catalog: &crate::portal::CustomerPortal,
        owner: Asn,
    ) -> Vec<StellarSignal> {
        let mut out = Vec::new();
        for ec in ecs {
            let Some(sig) = StellarSignal::decode(ec, ixp_asn) else {
                continue;
            };
            if sig.kind == MatchKind::Predefined {
                out.extend(catalog.resolve(owner, sig.port));
            } else {
                out.push(sig);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// One step down the degradation ladder (availability first, §4.1.2):
    /// when a signature persistently fails TCAM admission, trade match
    /// precision for fewer L3–L4 criteria rather than leave the victim
    /// unprotected. Port-scoped kinds widen to their protocol (3 → 2
    /// criteria, keeping the action); protocol-wide kinds fall back to a
    /// classic-RTBH-style drop of all traffic towards the victim (2 → 1,
    /// a shape action hardens to drop — the coarse rule exists to keep
    /// the port alive, not to preserve telemetry). A drop-all that still
    /// does not fit has nowhere coarser to go.
    pub fn degrade(&self) -> Option<StellarSignal> {
        Some(match self.kind {
            MatchKind::UdpDstPort | MatchKind::UdpSrcPort => StellarSignal {
                kind: MatchKind::AllUdp,
                port: 0,
                action: self.action,
            },
            MatchKind::TcpDstPort | MatchKind::TcpSrcPort => StellarSignal {
                kind: MatchKind::AllTcp,
                port: 0,
                action: self.action,
            },
            MatchKind::AllUdp | MatchKind::AllTcp | MatchKind::Predefined => {
                StellarSignal::drop_all()
            }
            MatchKind::AllTraffic => return None,
        })
    }

    /// Compiles the signal to a dataplane match spec scoped to traffic
    /// towards `victim`.
    pub fn to_match_spec(&self, victim: Prefix) -> MatchSpec {
        let mut spec = MatchSpec::to_destination(victim);
        match self.kind {
            MatchKind::UdpDstPort => {
                spec.protocol = Some(IpProtocol::UDP);
                spec.dst_port = Some(PortMatch::Exact(self.port));
            }
            MatchKind::UdpSrcPort => {
                spec.protocol = Some(IpProtocol::UDP);
                spec.src_port = Some(PortMatch::Exact(self.port));
            }
            MatchKind::TcpDstPort => {
                spec.protocol = Some(IpProtocol::TCP);
                spec.dst_port = Some(PortMatch::Exact(self.port));
            }
            MatchKind::TcpSrcPort => {
                spec.protocol = Some(IpProtocol::TCP);
                spec.src_port = Some(PortMatch::Exact(self.port));
            }
            MatchKind::AllUdp => {
                spec.protocol = Some(IpProtocol::UDP);
            }
            MatchKind::AllTcp => {
                spec.protocol = Some(IpProtocol::TCP);
            }
            MatchKind::AllTraffic | MatchKind::Predefined => {}
        }
        spec
    }
}

// StellarSignal ordering: by kind, then port, then action kind/rate, so
// `extract`'s dedup is stable.
impl PartialOrd for StellarSignal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for StellarSignal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = (self.kind, self.port, action_key(&self.action));
        let b = (other.kind, other.port, action_key(&other.action));
        a.cmp(&b)
    }
}

fn action_key(a: &RuleAction) -> (u8, u64) {
    match a {
        RuleAction::Drop => (0, 0),
        RuleAction::Shape { rate_bps } => (1, *rate_bps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portal::CustomerPortal;

    const IXP: Asn = Asn(6695);

    #[test]
    fn paper_example_encodes_as_ixp_2_123() {
        // IXP:2:123 — UDP source port 123.
        let sig = StellarSignal::drop_udp_src(123);
        let ec = sig.encode(IXP);
        match ec {
            ExtendedCommunity::TwoOctetAs {
                subtype,
                asn,
                local,
                transitive,
            } => {
                assert_eq!(subtype, STELLAR_SUBTYPE);
                assert_eq!(asn, 6695);
                assert_eq!(local >> 24, 2); // UDP source
                assert_eq!(local & 0xffff, 123); // port 123
                assert!(transitive);
            }
            _ => panic!("wrong community type"),
        }
        assert_eq!(StellarSignal::decode(&ec, IXP), Some(sig));
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in [
            MatchKind::UdpDstPort,
            MatchKind::UdpSrcPort,
            MatchKind::TcpDstPort,
            MatchKind::TcpSrcPort,
            MatchKind::AllUdp,
            MatchKind::AllTcp,
            MatchKind::AllTraffic,
            MatchKind::Predefined,
        ] {
            for action in [
                RuleAction::Drop,
                RuleAction::Shape {
                    rate_bps: 200_000_000,
                },
            ] {
                let sig = StellarSignal {
                    kind,
                    port: 11211,
                    action,
                };
                let dec = StellarSignal::decode(&sig.encode(IXP), IXP).unwrap();
                assert_eq!(dec, sig, "{kind:?} {action:?}");
            }
        }
    }

    #[test]
    fn shape_rate_granularity() {
        // 200 Mbps encodes exactly (action byte 20).
        let sig = StellarSignal::shape_udp_src(123, 200);
        let dec = StellarSignal::decode(&sig.encode(IXP), IXP).unwrap();
        assert_eq!(
            dec.action,
            RuleAction::Shape {
                rate_bps: 200_000_000
            }
        );
        // 3 Gbps saturates to 2.5 Gbps.
        let sig = StellarSignal {
            kind: MatchKind::AllUdp,
            port: 0,
            action: RuleAction::Shape {
                rate_bps: 3_000_000_000,
            },
        };
        let dec = StellarSignal::decode(&sig.encode(IXP), IXP).unwrap();
        assert_eq!(
            dec.action,
            RuleAction::Shape {
                rate_bps: 2_500_000_000
            }
        );
    }

    #[test]
    fn foreign_communities_are_ignored() {
        // Wrong subtype.
        let ec = ExtendedCommunity::TwoOctetAs {
            subtype: 0x02,
            asn: 6695,
            local: 0x0200_007b,
            transitive: true,
        };
        assert_eq!(StellarSignal::decode(&ec, IXP), None);
        // Wrong ASN namespace.
        let ec = StellarSignal::drop_udp_src(123).encode(Asn(9999));
        assert_eq!(StellarSignal::decode(&ec, IXP), None);
        // Unknown match kind.
        let ec = ExtendedCommunity::TwoOctetAs {
            subtype: STELLAR_SUBTYPE,
            asn: 6695,
            local: 0xff00_0000,
            transitive: true,
        };
        assert_eq!(StellarSignal::decode(&ec, IXP), None);
    }

    #[test]
    fn extract_dedups_and_resolves_predefined() {
        let mut portal = CustomerPortal::with_standard_catalog(IXP);
        let owner = Asn(64500);
        let custom = portal.define_custom(
            owner,
            vec![
                StellarSignal::drop_udp_src(53),
                StellarSignal::drop_udp_src(123),
            ],
        );
        let ecs = vec![
            StellarSignal::drop_udp_src(123).encode(IXP),
            StellarSignal::drop_udp_src(123).encode(IXP), // duplicate
            StellarSignal {
                kind: MatchKind::Predefined,
                port: custom,
                action: RuleAction::Drop,
            }
            .encode(IXP),
            ExtendedCommunity::Raw([0x43, 0, 0, 0, 0, 0, 0, 0]), // foreign
        ];
        let sigs = StellarSignal::extract(&ecs, IXP, &portal, owner);
        // 123 (deduped across direct + custom) and 53.
        assert_eq!(sigs.len(), 2);
        assert!(sigs.contains(&StellarSignal::drop_udp_src(53)));
        assert!(sigs.contains(&StellarSignal::drop_udp_src(123)));
    }

    #[test]
    fn degradation_ladder_monotonically_sheds_criteria() {
        let victim: Prefix = "100.10.10.10/32".parse().unwrap();
        for kind in [
            MatchKind::UdpDstPort,
            MatchKind::UdpSrcPort,
            MatchKind::TcpDstPort,
            MatchKind::TcpSrcPort,
            MatchKind::AllUdp,
            MatchKind::AllTcp,
        ] {
            let mut sig = StellarSignal {
                kind,
                port: 123,
                action: RuleAction::Drop,
            };
            let mut criteria = sig.to_match_spec(victim).l34_criteria();
            let mut steps = 0;
            while let Some(next) = sig.degrade() {
                let next_criteria = next.to_match_spec(victim).l34_criteria();
                assert!(
                    next_criteria < criteria,
                    "{kind:?}: {criteria} -> {next_criteria} did not shed criteria"
                );
                criteria = next_criteria;
                sig = next;
                steps += 1;
                assert!(steps <= 3, "ladder must terminate");
            }
            // Every ladder bottoms out at the RTBH-style drop-all.
            assert_eq!(sig, StellarSignal::drop_all());
        }
        // Port-scoped degradation keeps the action; the final step to
        // drop-all hardens shaping to dropping.
        let shaped = StellarSignal::shape_udp_src(123, 200);
        let coarser = shaped.degrade().unwrap();
        assert_eq!(coarser.kind, MatchKind::AllUdp);
        assert_eq!(coarser.action, shaped.action);
        assert_eq!(coarser.degrade().unwrap().action, RuleAction::Drop);
        assert_eq!(StellarSignal::drop_all().degrade(), None);
        // An unresolved Predefined reference (extract() normally resolves
        // them before the manager ever sees one) falls straight back to
        // the drop-all.
        let pre = StellarSignal {
            kind: MatchKind::Predefined,
            port: 1,
            action: RuleAction::Drop,
        };
        assert_eq!(pre.degrade(), Some(StellarSignal::drop_all()));
    }

    #[test]
    fn match_specs_scope_to_victim() {
        let victim: Prefix = "100.10.10.10/32".parse().unwrap();
        let spec = StellarSignal::drop_udp_src(123).to_match_spec(victim);
        assert_eq!(spec.dst_ip, Some(victim));
        assert_eq!(spec.protocol, Some(IpProtocol::UDP));
        assert_eq!(spec.src_port, Some(PortMatch::Exact(123)));
        assert_eq!(spec.l34_criteria(), 3);

        let spec = StellarSignal::drop_all().to_match_spec(victim);
        assert_eq!(spec.l34_criteria(), 1);
        assert_eq!(spec.protocol, None);

        let spec = StellarSignal {
            kind: MatchKind::AllTcp,
            port: 0,
            action: RuleAction::Drop,
        }
        .to_match_spec(victim);
        assert_eq!(spec.protocol, Some(IpProtocol::TCP));
        assert_eq!(spec.src_port, None);
    }
}
