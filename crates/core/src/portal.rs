//! The customer self-service portal (§4.3): "This community encodes a
//! reference to a specific blackholing rule ... predefined by the IXP or
//! by the IXP member via a customer portal. Currently, the IXP offers a
//! shared set of predefined blackholing rules for common attack patterns
//! but custom blackholing rules can be defined as well."

use crate::rule::RuleAction;
use crate::signal::{MatchKind, StellarSignal};
use std::collections::HashMap;
use stellar_bgp::types::Asn;
use stellar_net::amplification::AmpProtocol;

/// Catalog ids below this value are IXP-shared; custom per-member rules
/// get ids from here upwards.
pub const CUSTOM_ID_BASE: u16 = 1000;

/// The rule catalog: IXP-predefined entries plus per-member custom sets.
#[derive(Debug, Clone)]
pub struct CustomerPortal {
    #[allow(dead_code)]
    ixp_asn: Asn,
    predefined: HashMap<u16, Vec<StellarSignal>>,
    custom: HashMap<(Asn, u16), Vec<StellarSignal>>,
    next_custom: HashMap<Asn, u16>,
}

impl CustomerPortal {
    /// The standard catalog: one drop rule per known amplification
    /// protocol (catalog id = small index), plus a combined
    /// "all amplification ports" entry at id 100.
    pub fn with_standard_catalog(ixp_asn: Asn) -> Self {
        let mut predefined = HashMap::new();
        for (i, proto) in stellar_net::amplification::ALL.iter().enumerate() {
            predefined.insert(
                (i + 1) as u16,
                vec![StellarSignal::drop_udp_src(proto.port())],
            );
        }
        predefined.insert(
            100,
            stellar_net::amplification::ALL
                .iter()
                .map(|p| StellarSignal::drop_udp_src(p.port()))
                .collect(),
        );
        CustomerPortal {
            ixp_asn,
            predefined,
            custom: HashMap::new(),
            next_custom: HashMap::new(),
        }
    }

    /// The catalog id of the predefined drop rule for `proto`.
    pub fn predefined_id(proto: AmpProtocol) -> u16 {
        (stellar_net::amplification::ALL
            .iter()
            .position(|p| *p == proto)
            .expect("protocol is in ALL")
            + 1) as u16
    }

    /// Defines a custom rule set for a member; returns its catalog id.
    pub fn define_custom(&mut self, member: Asn, signals: Vec<StellarSignal>) -> u16 {
        let next = self.next_custom.entry(member).or_insert(CUSTOM_ID_BASE);
        let id = *next;
        *next += 1;
        self.custom.insert((member, id), signals);
        id
    }

    /// Deletes a custom rule set. Returns true if it existed.
    pub fn delete_custom(&mut self, member: Asn, id: u16) -> bool {
        self.custom.remove(&(member, id)).is_some()
    }

    /// Resolves a catalog reference for `member`: shared entries first,
    /// then the member's custom ones. Unknown ids resolve to nothing
    /// (the signal is ignored rather than guessed at).
    pub fn resolve(&self, member: Asn, id: u16) -> Vec<StellarSignal> {
        if let Some(sigs) = self.predefined.get(&id) {
            return sigs.clone();
        }
        self.custom.get(&(member, id)).cloned().unwrap_or_default()
    }

    /// The signal a member sends to invoke catalog entry `id`.
    pub fn reference_signal(id: u16) -> StellarSignal {
        StellarSignal {
            kind: MatchKind::Predefined,
            port: id,
            action: RuleAction::Drop, // action is taken from the catalog
        }
    }

    /// Number of predefined entries.
    pub fn predefined_count(&self) -> usize {
        self.predefined.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IXP: Asn = Asn(6695);

    #[test]
    fn standard_catalog_covers_amplification_protocols() {
        let portal = CustomerPortal::with_standard_catalog(IXP);
        assert_eq!(portal.predefined_count(), 7); // 6 protocols + combined
        let ntp_id = CustomerPortal::predefined_id(AmpProtocol::Ntp);
        let sigs = portal.resolve(Asn(1), ntp_id);
        assert_eq!(sigs, vec![StellarSignal::drop_udp_src(123)]);
        let all = portal.resolve(Asn(1), 100);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn custom_rules_are_member_scoped() {
        let mut portal = CustomerPortal::with_standard_catalog(IXP);
        let a = Asn(64500);
        let b = Asn(64501);
        let id = portal.define_custom(a, vec![StellarSignal::drop_udp_src(4444)]);
        assert!(id >= CUSTOM_ID_BASE);
        assert_eq!(portal.resolve(a, id).len(), 1);
        // Another member cannot reference it.
        assert!(portal.resolve(b, id).is_empty());
        assert!(portal.delete_custom(a, id));
        assert!(portal.resolve(a, id).is_empty());
        assert!(!portal.delete_custom(a, id));
    }

    #[test]
    fn custom_ids_increment_per_member() {
        let mut portal = CustomerPortal::with_standard_catalog(IXP);
        let a = Asn(64500);
        let id1 = portal.define_custom(a, vec![]);
        let id2 = portal.define_custom(a, vec![]);
        assert_eq!(id2, id1 + 1);
        // Ids are per-member: a fresh member starts at the base again.
        let id3 = portal.define_custom(Asn(64501), vec![]);
        assert_eq!(id3, CUSTOM_ID_BASE);
    }

    #[test]
    fn unknown_ids_resolve_to_nothing() {
        let portal = CustomerPortal::with_standard_catalog(IXP);
        assert!(portal.resolve(Asn(1), 999).is_empty());
    }
}
