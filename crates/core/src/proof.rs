//! Proof obligations: exact semantic checks over control-plane
//! transformations, backed by `classify::verify`.
//!
//! Every transformation between "what a member asked for" and "what the
//! fabric filters" is a place where over- or under-blocking can creep
//! in silently. This module states each transformation's correctness
//! condition as a packet-set equation and discharges it with the exact
//! algebra — no sampling, no probabilistic confidence:
//!
//! - **Lowering exactness** ([`check_lowering`]): the match specs
//!   `core::flowspec::lower_flowspec` emits for an NLRI cover *exactly*
//!   the packets the raw operator sequences describe. The oracle table
//!   is built here from first principles — elementary point evaluation
//!   of [`numeric_seq_matches`] / [`bitmask_seq_matches`] — sharing no
//!   code with the lowering pass it judges.
//! - **Placement soundness** ([`check_placement`]): per egress port,
//!   the installed filter table is semantically equal to the owner's
//!   desired table over the traffic that port actually sees
//!   (`dst_mac == port.mac`). Ports partition routed traffic by egress
//!   MAC, so per-port equality implies the fabric-union property: the
//!   union of per-PoP installed tables over routed traffic equals the
//!   global intent.
//! - **Ladder monotonicity** ([`owner_table`] + re-exported
//!   [`check_ladder_step`]): a degradation step may only widen the
//!   dropped set — never shrink it, never touch shaped traffic the old
//!   spec didn't already cover.

use crate::audit::to_audit_rule;
use crate::rule::BlackholingRule;
use std::collections::BTreeMap;
use stellar_bgp::flowspec::{
    bitmask_seq_matches, numeric_seq_matches, Component, FlowSpec, NumericOp,
};
use stellar_bgp::types::Asn;
use stellar_classify::verify::{diff_tables, DiffRegion, Domain, VerifyError};
pub use stellar_classify::{check_ladder_step, DEFAULT_VERIFY_BUDGET};
use stellar_classify::{ActionClass, AuditRule, RuleEntry};
use stellar_dataplane::filter::{Action, BitsMatch, MatchSpec, PortMatch, RangeMatch};
use stellar_dataplane::switch::PortId;
use stellar_net::flow::frag;
use stellar_net::proto::IpProtocol;
use stellar_sim::fabric::Fabric;

/// Hard cap on oracle table size. The oracle may be far less minimal
/// than the lowering it checks (singleton bitmask cubes, per-protocol
/// expansion), so this is looser than `MAX_LOWERED_SPECS`; past it the
/// check reports [`LoweringProof::Unverified`] rather than sampling.
pub const MAX_ORACLE_RULES: usize = 4096;

/// Outcome of the lowering-exactness obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoweringProof {
    /// The lowered specs match exactly the NLRI's packet set.
    Exact,
    /// Proven disagreement, with one witness-backed region. `region`
    /// has the lowered table as side A and the oracle as side B: a
    /// `(Drop, NoMatch)` region is over-match (the lowering drops
    /// traffic the NLRI never described), `(NoMatch, Drop)` is
    /// under-match.
    Violation {
        /// First disagreement region (deterministic: smallest
        /// `(outcome_a, outcome_b)` pair).
        region: DiffRegion,
        /// Exact total number of disagreeing canonical keys
        /// (saturating).
        differing_keys: u128,
    },
    /// The check could not run to completion (oracle too large or node
    /// budget exhausted). Never treated as a failure: exact-or-nothing.
    Unverified {
        /// Stable token naming why.
        reason: &'static str,
    },
}

impl LoweringProof {
    /// True iff the obligation was proven to hold.
    pub fn is_exact(&self) -> bool {
        matches!(self, LoweringProof::Exact)
    }

    /// The violation direction as a stable token, if proven.
    pub fn violation_kind(&self) -> Option<&'static str> {
        match self {
            LoweringProof::Violation { region, .. } => {
                if region.outcome_b == stellar_classify::verify::Outcome::NoMatch {
                    Some("over-match")
                } else {
                    Some("under-match")
                }
            }
            _ => None,
        }
    }
}

/// Proves (or refutes) that `lowered` covers exactly the packet set the
/// flow specification's components describe, by diffing it against an
/// independently built oracle table over the full canonical domain.
pub fn check_lowering(flow: &FlowSpec, lowered: &[MatchSpec]) -> LoweringProof {
    let oracle = match build_oracle(flow) {
        Ok(specs) => specs,
        Err(reason) => return LoweringProof::Unverified { reason },
    };
    let a: Vec<AuditRule> = lowered
        .iter()
        .enumerate()
        .map(|(i, s)| drop_rule(i as u64 + 1, s.clone()))
        .collect();
    let b: Vec<AuditRule> = oracle
        .into_iter()
        .enumerate()
        .map(|(i, s)| drop_rule(i as u64 + 1, s))
        .collect();
    let dom = Domain::canonical();
    match diff_tables(&a, &b, &dom, DEFAULT_VERIFY_BUDGET) {
        Ok(diff) if diff.is_equivalent() => LoweringProof::Exact,
        Ok(diff) => LoweringProof::Violation {
            region: diff.regions[0],
            differing_keys: diff.differing_keys,
        },
        Err(VerifyError::Budget { .. }) => LoweringProof::Unverified { reason: "budget" },
        Err(VerifyError::WitnessMismatch { .. }) => LoweringProof::Unverified {
            reason: "witness-mismatch",
        },
    }
}

fn drop_rule(id: u64, spec: MatchSpec) -> AuditRule {
    AuditRule::new(RuleEntry::new(id, 100, spec), ActionClass::Drop)
}

/// Builds the oracle: a set of match specs whose union is exactly the
/// flow's packet set, derived from raw operator-sequence evaluation.
///
/// Numeric components are reduced to intervals by evaluating
/// [`numeric_seq_matches`] at elementary cut points (every `op.value`
/// and `op.value + 1`): between consecutive cut points every relation
/// in the sequence is constant, so one point evaluation decides the
/// whole segment. Bitmask components enumerate their (small) byte
/// domain directly into singleton cubes. Couplings (ports require a
/// portful protocol, TCP flags require TCP, …) are deliberately *not*
/// encoded here: `MatchSpec::matches` applies them identically to both
/// tables inside the algebra, which keeps the oracle independent of the
/// lowering pass's coupling-narrowing code.
fn build_oracle(flow: &FlowSpec) -> Result<Vec<MatchSpec>, &'static str> {
    let mut variants = vec![MatchSpec::default()];
    for comp in &flow.components {
        variants = match comp {
            Component::DstPrefix(p) => {
                for v in &mut variants {
                    v.dst_ip = Some(*p);
                }
                variants
            }
            Component::SrcPrefix(p) => {
                for v in &mut variants {
                    v.src_ip = Some(*p);
                }
                variants
            }
            Component::IpProtocol(ops) => {
                let protos: Vec<u8> = byte_values(|x| numeric_seq_matches(ops, x));
                if protos.len() == 256 {
                    variants // unconstrained
                } else {
                    cross(variants, &protos, |v, p| {
                        v.protocol = Some(IpProtocol(p));
                    })?
                }
            }
            Component::Port(ops) => {
                // Either-port: src ∈ S or dst ∈ S — the union of a
                // src-constrained and a dst-constrained variant per
                // interval (same action, so table union is set union).
                let ivs = eval_intervals(ops, u64::from(u16::MAX));
                let mut next = Vec::new();
                for v in &variants {
                    for &(lo, hi) in &ivs {
                        let mut s = v.clone();
                        s.src_port = Some(port_match(lo, hi));
                        next.push(s);
                        let mut d = v.clone();
                        d.dst_port = Some(port_match(lo, hi));
                        next.push(d);
                    }
                }
                capped(next)?
            }
            Component::DstPort(ops) => {
                let ivs = eval_intervals(ops, u64::from(u16::MAX));
                cross(variants, &ivs, |v, (lo, hi)| {
                    v.dst_port = Some(port_match(lo, hi));
                })?
            }
            Component::SrcPort(ops) => {
                let ivs = eval_intervals(ops, u64::from(u16::MAX));
                cross(variants, &ivs, |v, (lo, hi)| {
                    v.src_port = Some(port_match(lo, hi));
                })?
            }
            Component::IcmpType(ops) => {
                let ivs = eval_intervals(ops, 255);
                cross(variants, &ivs, |v, (lo, hi)| {
                    v.icmp_type = Some(RangeMatch {
                        lo: lo as u8,
                        hi: hi as u8,
                    });
                })?
            }
            Component::IcmpCode(ops) => {
                let ivs = eval_intervals(ops, 255);
                cross(variants, &ivs, |v, (lo, hi)| {
                    v.icmp_code = Some(RangeMatch {
                        lo: lo as u8,
                        hi: hi as u8,
                    });
                })?
            }
            Component::TcpFlags(ops) => {
                let xs: Vec<u8> = byte_values(|x| bitmask_seq_matches(ops, x));
                cross(variants, &xs, |v, x| {
                    v.tcp_flags = Some(BitsMatch {
                        mask: 0xFF,
                        value: x,
                    });
                })?
            }
            Component::PacketLength(ops) => {
                let ivs = eval_intervals(ops, u64::from(u16::MAX));
                cross(variants, &ivs, |v, (lo, hi)| {
                    v.packet_len = Some(RangeMatch {
                        lo: lo as u16,
                        hi: hi as u16,
                    });
                })?
            }
            Component::Dscp(ops) => {
                let ivs = eval_intervals(ops, 63);
                cross(variants, &ivs, |v, (lo, hi)| {
                    v.dscp = Some(RangeMatch {
                        lo: lo as u8,
                        hi: hi as u8,
                    });
                })?
            }
            Component::Fragment(ops) => {
                // Canonical keys only carry bits inside `frag::DOMAIN`;
                // enumerating that subdomain is exact over the algebra's
                // universe.
                let xs: Vec<u8> =
                    byte_values(|x| (x as u8) & !frag::DOMAIN == 0 && bitmask_seq_matches(ops, x));
                cross(variants, &xs, |v, x| {
                    v.fragment = Some(BitsMatch {
                        mask: 0xFF,
                        value: x,
                    });
                })?
            }
            Component::FlowLabel(ops) => {
                let ivs = eval_intervals(ops, 0xF_FFFF);
                cross(variants, &ivs, |v, (lo, hi)| {
                    v.flow_label = Some(RangeMatch {
                        lo: lo as u32,
                        hi: hi as u32,
                    });
                })?
            }
        };
        // An empty variant set means some component matches no value at
        // all: the NLRI's packet set is empty and the oracle table is
        // legitimately empty.
        if variants.is_empty() {
            return Ok(Vec::new());
        }
    }
    Ok(variants)
}

/// The values in `0..=255` accepted by `pred`, ascending.
fn byte_values(pred: impl Fn(u64) -> bool) -> Vec<u8> {
    (0u16..=255)
        .map(|x| x as u8)
        .filter(|&x| pred(u64::from(x)))
        .collect()
}

/// Exact match set of a numeric operator sequence over `0..=max`, as
/// minimal closed intervals, using only point evaluation: between
/// consecutive elementary cut points (`op.value`, `op.value + 1`) every
/// comparison in the sequence is constant.
fn eval_intervals(ops: &[NumericOp], max: u64) -> Vec<(u64, u64)> {
    let mut cuts: Vec<u64> = vec![0];
    for op in ops {
        if op.value <= max {
            cuts.push(op.value);
        }
        if op.value < max {
            cuts.push(op.value + 1);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (i, &lo) in cuts.iter().enumerate() {
        let hi = cuts.get(i + 1).map_or(max, |&n| n - 1);
        if numeric_seq_matches(ops, lo) {
            match out.last_mut() {
                Some(last) if last.1 + 1 == lo => last.1 = hi,
                _ => out.push((lo, hi)),
            }
        }
    }
    out
}

fn port_match(lo: u64, hi: u64) -> PortMatch {
    if lo == hi {
        PortMatch::Exact(lo as u16)
    } else {
        PortMatch::Range(lo as u16, hi as u16)
    }
}

fn cross<T: Copy>(
    variants: Vec<MatchSpec>,
    choices: &[T],
    set: impl Fn(&mut MatchSpec, T),
) -> Result<Vec<MatchSpec>, &'static str> {
    let mut next = Vec::with_capacity(variants.len().saturating_mul(choices.len()));
    for v in &variants {
        for &c in choices {
            let mut s = v.clone();
            set(&mut s, c);
            next.push(s);
        }
    }
    capped(next)
}

fn capped(variants: Vec<MatchSpec>) -> Result<Vec<MatchSpec>, &'static str> {
    if variants.len() > MAX_ORACLE_RULES {
        Err("oracle-too-large")
    } else {
        Ok(variants)
    }
}

/// One port where the installed table provably disagrees with the
/// owner's desired table over that port's traffic.
#[derive(Debug, Clone, Copy)]
pub struct PortMismatch {
    /// The egress port.
    pub port: PortId,
    /// Exact number of disagreeing canonical keys on this port
    /// (saturating).
    pub differing_keys: u128,
    /// First disagreement region, witness-backed.
    pub region: DiffRegion,
}

/// Result of the placement-soundness obligation over a whole fabric.
#[derive(Debug, Clone, Default)]
pub struct PlacementCheck {
    /// Ports actually diffed (installed or intent non-empty).
    pub ports_checked: usize,
    /// Ports whose diff exhausted the node budget (not failures).
    pub unverified: usize,
    /// Desired rules that resolve to no live fabric port.
    pub unplaced: usize,
    /// Proven per-port disagreements, in port-id order.
    pub mismatches: Vec<PortMismatch>,
}

impl PlacementCheck {
    /// True iff no port disagreed with its intent (unverified ports are
    /// not counted against soundness — exact-or-nothing).
    pub fn is_sound(&self) -> bool {
        self.mismatches.is_empty() && self.unplaced == 0
    }
}

/// Proves per-port that the installed filter tables realize the global
/// desired state over routed traffic.
///
/// For every fabric port, the installed table and the owner's desired
/// table are diffed over `Domain::canonical().with_dst_mac(port.mac)` —
/// exactly the keys the egress port sees (§4.5 isolation: a member's
/// rules only ever filter traffic addressed to that member). Ports with
/// neither installed rules nor intent are skipped, which keeps the
/// check linear in *occupied* ports, not fabric size. Because egress
/// MACs partition routed traffic, per-port equality composes into the
/// fabric-wide union property of obligation (c).
pub fn check_placement(
    fabric: &Fabric,
    desired: &[BlackholingRule],
    owner_port: impl Fn(Asn) -> Option<PortId>,
    budget: usize,
) -> PlacementCheck {
    let mut intent: BTreeMap<PortId, Vec<AuditRule>> = BTreeMap::new();
    let mut check = PlacementCheck::default();
    for r in desired {
        match owner_port(r.owner) {
            Some(port) => intent.entry(port).or_default().push(to_audit_rule(r)),
            None => check.unplaced += 1,
        }
    }
    for (id, port) in fabric.ports() {
        let installed: Vec<AuditRule> = port
            .policy
            .rules()
            .iter()
            .map(|r| {
                AuditRule::new(
                    RuleEntry::new(r.id, r.priority, r.spec.clone()),
                    match r.action {
                        Action::Drop => ActionClass::Drop,
                        Action::Shape { rate_bps } => ActionClass::Shape { rate_bps },
                        Action::Forward => ActionClass::Forward,
                    },
                )
            })
            .collect();
        let want = intent.remove(&id).unwrap_or_default();
        if installed.is_empty() && want.is_empty() {
            continue;
        }
        check.ports_checked += 1;
        let dom = Domain::canonical().with_dst_mac(port.mac);
        match diff_tables(&installed, &want, &dom, budget) {
            Ok(diff) if diff.is_equivalent() => {}
            Ok(diff) => check.mismatches.push(PortMismatch {
                port: id,
                differing_keys: diff.differing_keys,
                region: diff.regions[0],
            }),
            Err(_) => check.unverified += 1,
        }
    }
    // Intent addressed to ports the fabric doesn't have is as unsound
    // as a missing rule on a live port.
    check.unplaced += intent.values().map(Vec::len).sum::<usize>();
    check
}

/// One owner's desired table in audit form — the input shape
/// [`check_ladder_step`] takes for the monotonicity obligation.
pub fn owner_table(desired: &[BlackholingRule], owner: Asn) -> Vec<AuditRule> {
    desired
        .iter()
        .filter(|r| r.owner == owner)
        .map(to_audit_rule)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowspec::lower_flowspec;
    use stellar_bgp::flowspec::BitmaskOp;
    use stellar_bgp::types::Afi;
    use stellar_net::prefix::{Ipv4Prefix, Prefix};

    fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Prefix {
        Prefix::V4(Ipv4Prefix::new(stellar_net::addr::Ipv4Address([a, b, c, d]), len).unwrap())
    }

    fn flow(components: Vec<Component>) -> FlowSpec {
        FlowSpec::new(Afi::Ipv4, components).expect("ordered components")
    }

    #[test]
    fn real_lowering_is_proven_exact() {
        // dst 203.0.113.0/24, UDP, src port 123 — the amplification
        // shape; lowering and oracle must agree exactly.
        let f = flow(vec![
            Component::DstPrefix(v4(203, 0, 113, 0, 24)),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::SrcPort(vec![NumericOp::equals(123)]),
        ]);
        let lowered = lower_flowspec(&f).expect("lowers");
        assert_eq!(check_lowering(&f, &lowered), LoweringProof::Exact);
    }

    #[test]
    fn port_range_and_either_port_lower_exactly() {
        let f = flow(vec![
            Component::DstPrefix(v4(198, 51, 100, 7, 32)),
            Component::Port(vec![NumericOp::ge(11211), NumericOp::and_le(11212)]),
        ]);
        let lowered = lower_flowspec(&f).expect("lowers");
        assert_eq!(check_lowering(&f, &lowered), LoweringProof::Exact);
    }

    #[test]
    fn dropped_spec_is_caught_as_under_match() {
        let f = flow(vec![
            Component::DstPrefix(v4(198, 51, 100, 7, 32)),
            Component::DstPort(vec![NumericOp::equals(53), NumericOp::equals(123)]),
        ]);
        let mut lowered = lower_flowspec(&f).expect("lowers");
        assert!(lowered.len() >= 2, "two port values lower to two specs");
        lowered.pop();
        let proof = check_lowering(&f, &lowered);
        assert_eq!(proof.violation_kind(), Some("under-match"));
        let LoweringProof::Violation { differing_keys, .. } = proof else {
            panic!("expected violation, got {proof:?}");
        };
        assert!(differing_keys > 0);
    }

    #[test]
    fn widened_spec_is_caught_as_over_match() {
        let f = flow(vec![
            Component::DstPrefix(v4(198, 51, 100, 7, 32)),
            Component::DstPort(vec![NumericOp::equals(53)]),
        ]);
        let mut lowered = lower_flowspec(&f).expect("lowers");
        // Sabotage: widen the port to a range the NLRI never asked for.
        lowered[0].dst_port = Some(PortMatch::Range(53, 54));
        assert_eq!(
            check_lowering(&f, &lowered).violation_kind(),
            Some("over-match")
        );
    }

    #[test]
    fn tcp_flags_and_fragment_cubes_are_proven_exact() {
        // SYN-only match (mask SYN, not-SYN negated) plus first-fragment
        // bit — exercises both bitmask dimensions and the TCP coupling.
        let f = flow(vec![
            Component::DstPrefix(v4(198, 51, 100, 0, 24)),
            Component::IpProtocol(vec![NumericOp::equals(6)]),
            Component::TcpFlags(vec![BitmaskOp::new(false, false, true, 0x02)]),
        ]);
        let lowered = lower_flowspec(&f).expect("lowers");
        assert_eq!(check_lowering(&f, &lowered), LoweringProof::Exact);
    }

    #[test]
    fn eval_intervals_matches_pointwise_semantics() {
        let ops = vec![
            NumericOp::ge(10),
            NumericOp::and_le(20),
            NumericOp::equals(35),
        ];
        let ivs = eval_intervals(&ops, 63);
        assert_eq!(ivs, vec![(10, 20), (35, 35)]);
        for x in 0..=63u64 {
            let in_ivs = ivs.iter().any(|&(lo, hi)| lo <= x && x <= hi);
            assert_eq!(in_ivs, numeric_seq_matches(&ops, x), "x = {x}");
        }
    }
}
