//! Blackholing rules: the manager-facing representation of one installed
//! filter (§3.2: "fine-grained filter rules are instantiated by the IXP
//! on behalf of a member who owns the IP address under attack").

use crate::signal::StellarSignal;
use stellar_bgp::types::Asn;
use stellar_dataplane::filter::{Action, FilterRule, MatchSpec};
use stellar_net::prefix::Prefix;

/// What to do with traffic matching a blackholing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleAction {
    /// Discard at the IXP (zero-length queue).
    Drop,
    /// Rate-limit to `rate_bps`, passing a telemetry sample through.
    Shape {
        /// Shaping rate in bits per second.
        rate_bps: u64,
    },
}

impl RuleAction {
    /// The dataplane action.
    pub fn to_dataplane(self) -> Action {
        match self {
            RuleAction::Drop => Action::Drop,
            RuleAction::Shape { rate_bps } => Action::Shape { rate_bps },
        }
    }
}

/// Where a rule's match came from — and therefore how it compiles.
///
/// The Stellar signaling grammar and BGP FlowSpec (RFC 8955) are two
/// front-ends onto the same filtering back-end: a signal names one of a
/// small set of victim-scoped patterns, while a lowered FlowSpec NLRI
/// carries an explicit match spec produced by
/// [`crate::flowspec::lower_flowspec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleMatcher {
    /// A Stellar extended-community signal (compiled against the victim
    /// prefix at spec time).
    Signal(StellarSignal),
    /// One member of a lowered FlowSpec rule's minimal match-spec set,
    /// with the action carried by the flow's extended communities.
    FlowSpec {
        /// The explicit match (already victim-scoped by lowering).
        spec: MatchSpec,
        /// The action from the traffic-rate community.
        action: RuleAction,
    },
}

/// A fully resolved blackholing rule, ready for compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackholingRule {
    /// Stable id assigned by the controller (FlowSpec-derived rules live
    /// in their own id space above
    /// [`crate::flowspec::FLOWSPEC_RULE_ID_BASE`]).
    pub id: u64,
    /// The member that owns the victim prefix (and thus the egress port
    /// the rule is installed on).
    pub owner: Asn,
    /// The victim prefix (typically a /32).
    pub victim: Prefix,
    /// What the rule matches and does.
    pub matcher: RuleMatcher,
}

impl BlackholingRule {
    /// A rule realizing a Stellar signal.
    pub fn from_signal(id: u64, owner: Asn, victim: Prefix, signal: StellarSignal) -> Self {
        BlackholingRule {
            id,
            owner,
            victim,
            matcher: RuleMatcher::Signal(signal),
        }
    }

    /// A rule realizing one spec of a lowered FlowSpec NLRI.
    pub fn from_flowspec(
        id: u64,
        owner: Asn,
        victim: Prefix,
        spec: MatchSpec,
        action: RuleAction,
    ) -> Self {
        BlackholingRule {
            id,
            owner,
            victim,
            matcher: RuleMatcher::FlowSpec { spec, action },
        }
    }

    /// The signal behind this rule, if it is signal-derived (the
    /// degradation ladder only applies to those).
    pub fn signal(&self) -> Option<StellarSignal> {
        match &self.matcher {
            RuleMatcher::Signal(s) => Some(*s),
            RuleMatcher::FlowSpec { .. } => None,
        }
    }

    /// What matching traffic gets.
    pub fn action(&self) -> RuleAction {
        match &self.matcher {
            RuleMatcher::Signal(s) => s.action,
            RuleMatcher::FlowSpec { action, .. } => *action,
        }
    }

    /// The dataplane match spec (victim-scoped).
    pub fn match_spec(&self) -> MatchSpec {
        match &self.matcher {
            RuleMatcher::Signal(s) => s.to_match_spec(self.victim),
            RuleMatcher::FlowSpec { spec, .. } => spec.clone(),
        }
    }

    /// Compiles to a dataplane filter rule. Blackholing rules evaluate
    /// before any default QoS policy (priority 100).
    pub fn to_filter_rule(&self) -> FilterRule {
        FilterRule::new(
            self.id,
            self.match_spec(),
            self.action().to_dataplane(),
            100,
        )
    }

    /// TCAM criteria this rule will consume: `(mac, l34)`.
    pub fn criteria(&self) -> (usize, usize) {
        let spec = self.match_spec();
        (spec.mac_criteria(), spec.l34_criteria())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_dataplane::filter::PortMatch;
    use stellar_net::proto::IpProtocol;

    #[test]
    fn compiles_to_victim_scoped_filter() {
        let rule = BlackholingRule::from_signal(
            7,
            Asn(64500),
            "100.10.10.10/32".parse().unwrap(),
            StellarSignal::drop_udp_src(123),
        );
        let f = rule.to_filter_rule();
        assert_eq!(f.id, 7);
        assert_eq!(f.action, Action::Drop);
        assert_eq!(f.priority, 100);
        assert_eq!(f.spec.dst_ip, Some("100.10.10.10/32".parse().unwrap()));
        assert_eq!(rule.criteria(), (0, 3));
        assert_eq!(rule.signal(), Some(StellarSignal::drop_udp_src(123)));
    }

    #[test]
    fn shape_action_carries_rate() {
        let rule = BlackholingRule::from_signal(
            1,
            Asn(64500),
            "100.10.10.10/32".parse().unwrap(),
            StellarSignal::shape_udp_src(123, 200),
        );
        assert_eq!(
            rule.to_filter_rule().action,
            Action::Shape {
                rate_bps: 200_000_000
            }
        );
    }

    #[test]
    fn flowspec_matcher_compiles_its_explicit_spec() {
        let victim: Prefix = "100.10.10.10/32".parse().unwrap();
        let spec = MatchSpec {
            dst_ip: Some(victim),
            protocol: Some(IpProtocol::UDP),
            src_port: Some(PortMatch::Range(53, 123)),
            ..Default::default()
        };
        let rule = BlackholingRule::from_flowspec(
            1 << 32,
            Asn(64500),
            victim,
            spec.clone(),
            RuleAction::Drop,
        );
        assert_eq!(rule.match_spec(), spec);
        assert_eq!(rule.signal(), None);
        assert_eq!(rule.action(), RuleAction::Drop);
        assert_eq!(rule.criteria(), (0, 3));
        assert_eq!(rule.to_filter_rule().action, Action::Drop);
    }
}
