//! Blackholing rules: the manager-facing representation of one installed
//! filter (§3.2: "fine-grained filter rules are instantiated by the IXP
//! on behalf of a member who owns the IP address under attack").

use crate::signal::StellarSignal;
use stellar_bgp::types::Asn;
use stellar_dataplane::filter::{Action, FilterRule, MatchSpec};
use stellar_net::prefix::Prefix;

/// What to do with traffic matching a blackholing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleAction {
    /// Discard at the IXP (zero-length queue).
    Drop,
    /// Rate-limit to `rate_bps`, passing a telemetry sample through.
    Shape {
        /// Shaping rate in bits per second.
        rate_bps: u64,
    },
}

impl RuleAction {
    /// The dataplane action.
    pub fn to_dataplane(self) -> Action {
        match self {
            RuleAction::Drop => Action::Drop,
            RuleAction::Shape { rate_bps } => Action::Shape { rate_bps },
        }
    }
}

/// A fully resolved blackholing rule, ready for compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackholingRule {
    /// Stable id assigned by the controller.
    pub id: u64,
    /// The member that owns the victim prefix (and thus the egress port
    /// the rule is installed on).
    pub owner: Asn,
    /// The victim prefix (typically a /32).
    pub victim: Prefix,
    /// The signal this rule realizes.
    pub signal: StellarSignal,
}

impl BlackholingRule {
    /// The dataplane match spec (victim-scoped).
    pub fn match_spec(&self) -> MatchSpec {
        self.signal.to_match_spec(self.victim)
    }

    /// Compiles to a dataplane filter rule. Blackholing rules evaluate
    /// before any default QoS policy (priority 100).
    pub fn to_filter_rule(&self) -> FilterRule {
        FilterRule::new(
            self.id,
            self.match_spec(),
            self.signal.action.to_dataplane(),
            100,
        )
    }

    /// TCAM criteria this rule will consume: `(mac, l34)`.
    pub fn criteria(&self) -> (usize, usize) {
        let spec = self.match_spec();
        (spec.mac_criteria(), spec.l34_criteria())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_to_victim_scoped_filter() {
        let rule = BlackholingRule {
            id: 7,
            owner: Asn(64500),
            victim: "100.10.10.10/32".parse().unwrap(),
            signal: StellarSignal::drop_udp_src(123),
        };
        let f = rule.to_filter_rule();
        assert_eq!(f.id, 7);
        assert_eq!(f.action, Action::Drop);
        assert_eq!(f.priority, 100);
        assert_eq!(f.spec.dst_ip, Some("100.10.10.10/32".parse().unwrap()));
        assert_eq!(rule.criteria(), (0, 3));
    }

    #[test]
    fn shape_action_carries_rate() {
        let rule = BlackholingRule {
            id: 1,
            owner: Asn(64500),
            victim: "100.10.10.10/32".parse().unwrap(),
            signal: StellarSignal::shape_udp_src(123, 200),
        };
        assert_eq!(
            rule.to_filter_rule().action,
            Action::Shape {
                rate_bps: 200_000_000
            }
        );
    }
}
