//! Deterministic fault injection and the recovery vocabulary of the
//! self-healing control plane.
//!
//! The paper's availability claim (§4.1.2) is that Stellar keeps the
//! fabric forwarding through controller crashes, iBGP session failures
//! and hardware-resource exhaustion. This module supplies the failure
//! side of that bargain as *data*: a [`FaultPlan`] is a seeded, sorted
//! script of [`FaultEvent`]s that [`crate::system::StellarSystem`]
//! consumes while pumping its configuration queue. Everything is
//! deterministic — the same seed and the same signal sequence produce
//! byte-identical [`RecoveryEvent`] logs, which is what the acceptance
//! tests diff.

use crate::controller::AbstractChange;
use crate::manager::AdmissionError;
use crate::signal::StellarSignal;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stellar_bgp::types::Asn;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The switch's configuration interface goes dark for `duration_us`:
    /// every change applied in the window fails with
    /// [`AdmissionError::Transient`] without touching the fabric.
    InstallBrownout {
        /// How long the brownout lasts.
        duration_us: u64,
    },
    /// The edge router power-cycles: TCAM and every port policy are
    /// wiped while the ports keep forwarding (fallback to plain
    /// forwarding — availability first).
    RouterRestart,
    /// The iBGP session between route server and blackholing controller
    /// drops: the controller flushes desired state and queues removals.
    SessionDown,
    /// The session comes back: the controller resynchronizes from the
    /// route server's live RIB. Flaps are scripted as a Down/Up pair so
    /// recovery timing stays explicit and deterministic.
    SessionUp,
    /// A member's eBGP session to the route server drops: the route
    /// server flushes the peer's unicast routes *and* its FlowSpec rules
    /// and emits the implicit withdrawals, so every mitigation the peer
    /// signaled is torn down.
    PeerDown {
        /// The member whose session dropped.
        peer: Asn,
    },
    /// The member's session comes back and it re-announces its prefixes.
    /// Blackholing signals do not return automatically — as on a real
    /// flap, the member must re-signal.
    PeerUp {
        /// The member whose session recovered.
        peer: Asn,
    },
    /// Corrupted/truncated FlowSpec NLRI bytes arrive on the wire from
    /// `peer`. The strict decoder must refuse them without touching the
    /// `(peer, wire-bytes)` RIB.
    FlowSpecCorrupt {
        /// The peer the garbage appears to come from.
        peer: Asn,
        /// Drives the deterministic corruption
        /// ([`stellar_bgp::flowspec::corrupt_wire`]).
        salt: u64,
    },
    /// Announcement delivery to the fabric degrades for the window:
    /// every change group enqueued while it is open picks up a
    /// deterministic pseudo-random delay in `[0, max_delay_us]`, so
    /// deliveries arrive late and out of order.
    DeliveryChaos {
        /// How long the window stays open.
        duration_us: u64,
        /// Upper bound of the per-group delivery delay.
        max_delay_us: u64,
    },
    /// The IRR/RPKI validation oracle is unreachable for the window:
    /// RFC 9117 checks fail closed, and the refused announcements are
    /// parked for retry with backoff instead of being silently rejected.
    ValidationBrownout {
        /// How long the oracle stays dark.
        duration_us: u64,
    },
}

impl FaultKind {
    /// A stable metric/event label for this fault kind.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::InstallBrownout { .. } => "install_brownout",
            FaultKind::RouterRestart => "router_restart",
            FaultKind::SessionDown => "session_down",
            FaultKind::SessionUp => "session_up",
            FaultKind::PeerDown { .. } => "peer_down",
            FaultKind::PeerUp { .. } => "peer_up",
            FaultKind::FlowSpecCorrupt { .. } => "flowspec_corrupt",
            FaultKind::DeliveryChaos { .. } => "delivery_chaos",
            FaultKind::ValidationBrownout { .. } => "validation_brownout",
        }
    }
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at_us: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Shape of a generated fault plan.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Faults are scheduled in `[0, horizon_us)`.
    pub horizon_us: u64,
    /// Number of edge-router restarts.
    pub restarts: u32,
    /// Number of iBGP session flaps (each a Down/Up pair).
    pub flaps: u32,
    /// Number of install brownouts.
    pub brownouts: u32,
    /// Brownout durations are drawn from `[1, max_brownout_us]`.
    pub max_brownout_us: u64,
    /// Session flap outages are drawn from `[1, max_flap_us]`.
    pub max_flap_us: u64,
    /// Number of member eBGP session flaps (each a PeerDown/PeerUp pair;
    /// needs a non-empty `peers` pool).
    pub peer_flaps: u32,
    /// Number of corrupted FlowSpec NLRI injections (needs `peers`).
    pub corruptions: u32,
    /// Number of delayed/reordered delivery windows.
    pub delivery_windows: u32,
    /// Number of IRR/RPKI validation-oracle brownouts.
    pub validation_brownouts: u32,
    /// Upper bound of the per-group delivery delay in a chaos window.
    pub max_delivery_delay_us: u64,
    /// Candidate members for peer-scoped faults; drawn uniformly.
    pub peers: Vec<Asn>,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            horizon_us: 10_000_000,
            restarts: 1,
            flaps: 1,
            brownouts: 2,
            max_brownout_us: 1_000_000,
            max_flap_us: 2_000_000,
            peer_flaps: 0,
            corruptions: 0,
            delivery_windows: 0,
            validation_brownouts: 0,
            max_delivery_delay_us: 1_500_000,
            peers: Vec::new(),
        }
    }
}

/// A sorted, deterministic script of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A hand-written plan; events are stably sorted by time (ties keep
    /// the order given).
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_us);
        FaultPlan { events }
    }

    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Generates a plan from a seed. Identical `(seed, cfg)` pairs yield
    /// identical plans on every platform (the vendored `SmallRng` is
    /// stable).
    pub fn generate(seed: u64, cfg: &FaultPlanConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let horizon = cfg.horizon_us.max(1);
        for _ in 0..cfg.restarts {
            events.push(FaultEvent {
                at_us: rng.random_range(0..horizon),
                kind: FaultKind::RouterRestart,
            });
        }
        for _ in 0..cfg.flaps {
            let down = rng.random_range(0..horizon);
            let outage = rng.random_range(1..=cfg.max_flap_us.max(1));
            events.push(FaultEvent {
                at_us: down,
                kind: FaultKind::SessionDown,
            });
            events.push(FaultEvent {
                at_us: down.saturating_add(outage),
                kind: FaultKind::SessionUp,
            });
        }
        for _ in 0..cfg.brownouts {
            events.push(FaultEvent {
                at_us: rng.random_range(0..horizon),
                kind: FaultKind::InstallBrownout {
                    duration_us: rng.random_range(1..=cfg.max_brownout_us.max(1)),
                },
            });
        }
        if !cfg.peers.is_empty() {
            for _ in 0..cfg.peer_flaps {
                let peer = cfg.peers[rng.random_range(0..cfg.peers.len())];
                let down = rng.random_range(0..horizon);
                let outage = rng.random_range(1..=cfg.max_flap_us.max(1));
                events.push(FaultEvent {
                    at_us: down,
                    kind: FaultKind::PeerDown { peer },
                });
                events.push(FaultEvent {
                    at_us: down.saturating_add(outage),
                    kind: FaultKind::PeerUp { peer },
                });
            }
            for _ in 0..cfg.corruptions {
                let peer = cfg.peers[rng.random_range(0..cfg.peers.len())];
                events.push(FaultEvent {
                    at_us: rng.random_range(0..horizon),
                    kind: FaultKind::FlowSpecCorrupt {
                        peer,
                        salt: rng.random::<u64>(),
                    },
                });
            }
        }
        for _ in 0..cfg.delivery_windows {
            events.push(FaultEvent {
                at_us: rng.random_range(0..horizon),
                kind: FaultKind::DeliveryChaos {
                    duration_us: rng.random_range(1..=cfg.max_brownout_us.max(1)),
                    max_delay_us: cfg.max_delivery_delay_us.max(1),
                },
            });
        }
        for _ in 0..cfg.validation_brownouts {
            events.push(FaultEvent {
                at_us: rng.random_range(0..horizon),
                kind: FaultKind::ValidationBrownout {
                    duration_us: rng.random_range(1..=cfg.max_brownout_us.max(1)),
                },
            });
        }
        FaultPlan::scripted(events)
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The time after which no scripted fault is active any more: the
    /// last event time plus any open window's tail (brownouts, delivery
    /// chaos including its maximum injected delay, oracle outages).
    /// Reconciliation after this point must converge.
    pub fn quiescent_after_us(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::InstallBrownout { duration_us }
                | FaultKind::ValidationBrownout { duration_us } => {
                    e.at_us.saturating_add(duration_us)
                }
                FaultKind::DeliveryChaos {
                    duration_us,
                    max_delay_us,
                } => e
                    .at_us
                    .saturating_add(duration_us)
                    .saturating_add(max_delay_us),
                _ => e.at_us,
            })
            .max()
            .unwrap_or(0)
    }
}

/// A fixed-increment splitmix64 step: the deterministic, stateless
/// pseudo-random source behind delivery-chaos delays (no RNG object to
/// seed, so scripted plans and generated plans behave identically).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Walks a [`FaultPlan`] as simulation time advances and tracks which
/// faults are currently active.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    brownout_until_us: u64,
    delivery_until_us: u64,
    delivery_max_delay_us: u64,
    delivery_seq: u64,
    validation_until_us: u64,
}

impl FaultInjector {
    /// An injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            ..FaultInjector::default()
        }
    }

    /// An injector that never faults.
    pub fn idle() -> Self {
        FaultInjector::default()
    }

    /// Returns the events due at or before `now_us` (at most once each)
    /// and arms any fault windows they open (install brownouts, delivery
    /// chaos, validation-oracle outages).
    pub fn poll(&mut self, now_us: u64) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while let Some(ev) = self.plan.events.get(self.cursor) {
            if ev.at_us > now_us {
                break;
            }
            match ev.kind {
                FaultKind::InstallBrownout { duration_us } => {
                    self.brownout_until_us = self
                        .brownout_until_us
                        .max(ev.at_us.saturating_add(duration_us));
                }
                FaultKind::DeliveryChaos {
                    duration_us,
                    max_delay_us,
                } => {
                    self.delivery_until_us = self
                        .delivery_until_us
                        .max(ev.at_us.saturating_add(duration_us));
                    self.delivery_max_delay_us = self.delivery_max_delay_us.max(max_delay_us);
                }
                FaultKind::ValidationBrownout { duration_us } => {
                    self.validation_until_us = self
                        .validation_until_us
                        .max(ev.at_us.saturating_add(duration_us));
                }
                _ => {}
            }
            fired.push(*ev);
            self.cursor += 1;
        }
        fired
    }

    /// Whether a configuration change applied at `now_us` hits a
    /// brownout window.
    pub fn install_faulted(&self, now_us: u64) -> bool {
        now_us < self.brownout_until_us
    }

    /// While a delivery-chaos window is open, yields the deterministic
    /// delivery delay for the next change group; `None` outside windows.
    /// Consecutive calls draw different delays, which is what reorders
    /// delivery.
    pub fn delivery_delay(&mut self, now_us: u64) -> Option<u64> {
        if now_us >= self.delivery_until_us {
            return None;
        }
        self.delivery_seq = self.delivery_seq.wrapping_add(1);
        Some(splitmix64(self.delivery_seq) % (self.delivery_max_delay_us.max(1) + 1))
    }

    /// Whether the IRR/RPKI validation oracle is dark at `now_us`.
    pub fn validation_faulted(&self, now_us: u64) -> bool {
        now_us < self.validation_until_us
    }

    /// Whether every scripted event has fired.
    pub fn drained(&self) -> bool {
        self.cursor == self.plan.events.len()
    }

    /// See [`FaultPlan::quiescent_after_us`].
    pub fn quiescent_after_us(&self) -> u64 {
        self.plan.quiescent_after_us()
    }
}

/// Retry policy for refused configuration changes: exponential backoff
/// with bounded attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Backoff after the first failed attempt.
    pub base_backoff_us: u64,
    /// Backoff ceiling.
    pub max_backoff_us: u64,
    /// Total apply attempts before a change is dead-lettered (or
    /// degraded, for TCAM exhaustion).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    /// Defaults sized for the production queue (≈4.33 changes/s): first
    /// retry after 250 ms (about one token), doubling to a 8 s ceiling,
    /// five attempts total.
    fn default() -> Self {
        RetryPolicy {
            base_backoff_us: 250_000,
            max_backoff_us: 8_000_000,
            max_attempts: 5,
        }
    }
}

impl RetryPolicy {
    /// The backoff after `attempt` failures (1-based): `base × 2^(n-1)`,
    /// capped.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.base_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us)
    }
}

/// Reads a `u64` tuning knob from the environment, falling back to
/// `default` when unset or unparsable.
fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Tunables of the self-healing control plane. Every knob has a
/// `STELLAR_*` environment override (recorded in bench host metadata
/// like `STELLAR_TICK_WORKERS`), so soak drivers can reshape the retry
/// ladder without a rebuild. Unset knobs keep the defaults, which is
/// what the deterministic CI gates run with.
#[derive(Debug, Clone)]
pub struct ControlTuning {
    /// Retry/backoff shape (`STELLAR_RETRY_BASE_US`,
    /// `STELLAR_RETRY_MAX_US`, `STELLAR_RETRY_ATTEMPTS`).
    pub retry: RetryPolicy,
    /// How often drivers should run reconciliation
    /// (`STELLAR_RECONCILE_US`).
    pub reconcile_interval_us: u64,
    /// Ring-buffer capacity of the dead-letter log, drop-oldest
    /// (`STELLAR_DEADLETTER_CAP`).
    pub deadletter_capacity: usize,
    /// How many times a FlowSpec overload refusal is re-admitted from
    /// the dead-letter parking lot before it is terminal
    /// (`STELLAR_DEADLETTER_REQUEUES`).
    pub deadletter_requeues: u32,
}

impl Default for ControlTuning {
    fn default() -> Self {
        ControlTuning {
            retry: RetryPolicy::default(),
            reconcile_interval_us: 1_000_000,
            deadletter_capacity: 1024,
            deadletter_requeues: 2,
        }
    }
}

impl ControlTuning {
    /// The environment knobs this struct reads, for bench host metadata.
    pub const ENV_KNOBS: [&'static str; 6] = [
        "STELLAR_RETRY_BASE_US",
        "STELLAR_RETRY_MAX_US",
        "STELLAR_RETRY_ATTEMPTS",
        "STELLAR_RECONCILE_US",
        "STELLAR_DEADLETTER_CAP",
        "STELLAR_DEADLETTER_REQUEUES",
    ];

    /// Defaults overridden by whatever `STELLAR_*` knobs are set.
    pub fn from_env() -> Self {
        let d = ControlTuning::default();
        ControlTuning {
            retry: RetryPolicy {
                base_backoff_us: env_u64("STELLAR_RETRY_BASE_US", d.retry.base_backoff_us),
                max_backoff_us: env_u64("STELLAR_RETRY_MAX_US", d.retry.max_backoff_us),
                max_attempts: env_u64("STELLAR_RETRY_ATTEMPTS", d.retry.max_attempts as u64) as u32,
            },
            reconcile_interval_us: env_u64("STELLAR_RECONCILE_US", d.reconcile_interval_us),
            deadletter_capacity: env_u64("STELLAR_DEADLETTER_CAP", d.deadletter_capacity as u64)
                as usize,
            deadletter_requeues: env_u64(
                "STELLAR_DEADLETTER_REQUEUES",
                d.deadletter_requeues as u64,
            ) as u32,
        }
    }
}

/// A change that permanently failed: kept for operator review with the
/// reason and the effort spent.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// The refused change.
    pub change: AbstractChange,
    /// The final refusal.
    pub error: AdmissionError,
    /// Apply attempts made.
    pub attempts: u32,
    /// When it was given up on.
    pub at_us: u64,
}

/// One entry in the system's recovery log. The log is plain data so two
/// runs under the same seed can be compared for equality — the
/// determinism acceptance criterion.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// A scripted fault fired.
    FaultInjected {
        /// When it was scheduled.
        at_us: u64,
        /// What it was.
        kind: FaultKind,
    },
    /// The edge router restarted, losing this many installed rules.
    RouterRestarted {
        /// When.
        at_us: u64,
        /// Hardware rules wiped.
        rules_lost: usize,
    },
    /// A failed change was parked for retry.
    Retried {
        /// When the attempt failed.
        at_us: u64,
        /// Rule id the change concerns.
        rule_id: u64,
        /// Failed attempts so far.
        attempt: u32,
        /// Why it failed.
        error: AdmissionError,
    },
    /// A rule was stepped down the degradation ladder.
    Degraded {
        /// When.
        at_us: u64,
        /// The rule (id preserved across the step).
        rule_id: u64,
        /// The coarser replacement signature.
        to: StellarSignal,
    },
    /// A change was given up on.
    DeadLettered {
        /// When.
        at_us: u64,
        /// Rule id the change concerns.
        rule_id: u64,
        /// The final refusal.
        error: AdmissionError,
    },
    /// A FlowSpec overload refusal was parked in the dead-letter lot
    /// with a cool-off instead of being terminally dead-lettered; it
    /// re-enters the queue with a fresh attempt budget when the cool-off
    /// expires.
    Requeued {
        /// When it was parked.
        at_us: u64,
        /// Rule id the change concerns.
        rule_id: u64,
        /// Which re-admission this will be (1-based).
        requeue: u32,
    },
    /// The controller resynchronized from the route server after a
    /// session came back.
    Resynced {
        /// When.
        at_us: u64,
        /// Configuration changes the resync produced.
        changes: usize,
    },
    /// A reconciliation pass queued repairs.
    RepairsQueued {
        /// When.
        at_us: u64,
        /// Missing desired rules re-queued for install.
        adds: usize,
        /// Undesired installed rules queued for removal.
        removes: usize,
        /// Manager bookkeeping entries pruned (vanished from hardware).
        pruned: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_are_deterministic_and_sorted() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(42, &cfg);
        let b = FaultPlan::generate(42, &cfg);
        assert_eq!(a.events(), b.events());
        assert!(a.events().windows(2).all(|w| w[0].at_us <= w[1].at_us));
        let c = FaultPlan::generate(43, &cfg);
        assert_ne!(a.events(), c.events(), "different seeds differ");
        // 1 restart + 1 flap (two events) + 2 brownouts.
        assert_eq!(a.events().len(), 5);
    }

    #[test]
    fn flaps_pair_down_before_up() {
        let cfg = FaultPlanConfig {
            restarts: 0,
            brownouts: 0,
            flaps: 3,
            ..Default::default()
        };
        let plan = FaultPlan::generate(7, &cfg);
        let downs = plan
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::SessionDown)
            .count();
        let ups = plan
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::SessionUp)
            .count();
        assert_eq!(downs, 3);
        assert_eq!(ups, 3);
        // At any prefix of the timeline, downs >= ups.
        let mut balance = 0i32;
        for e in plan.events() {
            match e.kind {
                FaultKind::SessionDown => balance += 1,
                FaultKind::SessionUp => balance -= 1,
                _ => {}
            }
            assert!(balance >= 0, "an Up fired before its Down");
        }
    }

    #[test]
    fn injector_fires_each_event_once_and_tracks_brownouts() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                at_us: 100,
                kind: FaultKind::InstallBrownout { duration_us: 50 },
            },
            FaultEvent {
                at_us: 200,
                kind: FaultKind::RouterRestart,
            },
        ]);
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.install_faulted(100));
        assert!(inj.poll(99).is_empty());
        assert_eq!(inj.poll(100).len(), 1);
        assert!(inj.install_faulted(100));
        assert!(inj.install_faulted(149));
        assert!(!inj.install_faulted(150));
        assert!(!inj.drained());
        assert_eq!(inj.poll(1000).len(), 1);
        assert!(inj.poll(2000).is_empty());
        assert!(inj.drained());
        assert_eq!(inj.quiescent_after_us(), 200);
    }

    #[test]
    fn expanded_fault_classes_generate_deterministically() {
        let cfg = FaultPlanConfig {
            restarts: 0,
            flaps: 0,
            brownouts: 0,
            peer_flaps: 2,
            corruptions: 2,
            delivery_windows: 1,
            validation_brownouts: 1,
            peers: vec![Asn(64500), Asn(64501)],
            ..Default::default()
        };
        let a = FaultPlan::generate(9, &cfg);
        let b = FaultPlan::generate(9, &cfg);
        assert_eq!(a.events(), b.events());
        // 2 peer flaps (2 events each) + 2 corruptions + 1 + 1.
        assert_eq!(a.events().len(), 8);
        for e in a.events() {
            if let FaultKind::PeerDown { peer } | FaultKind::PeerUp { peer } = e.kind {
                assert!(cfg.peers.contains(&peer));
            }
        }
        // Peer-scoped classes are skipped without a peer pool.
        let no_peers = FaultPlanConfig {
            peers: vec![],
            ..cfg.clone()
        };
        assert_eq!(FaultPlan::generate(9, &no_peers).events().len(), 2);
    }

    #[test]
    fn quiescence_covers_delivery_and_validation_windows() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                at_us: 100,
                kind: FaultKind::DeliveryChaos {
                    duration_us: 50,
                    max_delay_us: 30,
                },
            },
            FaultEvent {
                at_us: 120,
                kind: FaultKind::ValidationBrownout { duration_us: 40 },
            },
        ]);
        assert_eq!(plan.quiescent_after_us(), 180);
    }

    #[test]
    fn delivery_delays_are_deterministic_bounded_and_windowed() {
        let plan = FaultPlan::scripted(vec![FaultEvent {
            at_us: 100,
            kind: FaultKind::DeliveryChaos {
                duration_us: 100,
                max_delay_us: 500,
            },
        }]);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        assert_eq!(a.delivery_delay(0), None, "window not armed yet");
        a.poll(100);
        b.poll(100);
        let da: Vec<_> = (0..8).filter_map(|_| a.delivery_delay(150)).collect();
        let db: Vec<_> = (0..8).filter_map(|_| b.delivery_delay(150)).collect();
        assert_eq!(da, db);
        assert_eq!(da.len(), 8);
        assert!(da.iter().all(|d| *d <= 500));
        // Consecutive draws differ — that is what reorders delivery.
        assert!(da.windows(2).any(|w| w[0] != w[1]));
        assert_eq!(a.delivery_delay(200), None, "window closed");
    }

    #[test]
    fn validation_window_tracks_the_scripted_outage() {
        let plan = FaultPlan::scripted(vec![FaultEvent {
            at_us: 50,
            kind: FaultKind::ValidationBrownout { duration_us: 25 },
        }]);
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.validation_faulted(60));
        inj.poll(50);
        assert!(inj.validation_faulted(60));
        assert!(!inj.validation_faulted(75));
    }

    #[test]
    fn control_tuning_defaults_match_retry_policy() {
        let t = ControlTuning::default();
        assert_eq!(
            t.retry.base_backoff_us,
            RetryPolicy::default().base_backoff_us
        );
        assert_eq!(t.reconcile_interval_us, 1_000_000);
        assert!(t.deadletter_capacity >= 2);
        assert!(t.deadletter_requeues >= 1);
        assert_eq!(env_u64("STELLAR_SURELY_UNSET_KNOB", 7), 7);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_backoff_us: 100,
            max_backoff_us: 500,
            max_attempts: 5,
        };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        assert_eq!(p.backoff_us(4), 500);
        assert_eq!(p.backoff_us(40), 500, "huge attempts do not overflow");
    }
}
