//! Deterministic fault injection and the recovery vocabulary of the
//! self-healing control plane.
//!
//! The paper's availability claim (§4.1.2) is that Stellar keeps the
//! fabric forwarding through controller crashes, iBGP session failures
//! and hardware-resource exhaustion. This module supplies the failure
//! side of that bargain as *data*: a [`FaultPlan`] is a seeded, sorted
//! script of [`FaultEvent`]s that [`crate::system::StellarSystem`]
//! consumes while pumping its configuration queue. Everything is
//! deterministic — the same seed and the same signal sequence produce
//! byte-identical [`RecoveryEvent`] logs, which is what the acceptance
//! tests diff.

use crate::controller::AbstractChange;
use crate::manager::AdmissionError;
use crate::signal::StellarSignal;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The switch's configuration interface goes dark for `duration_us`:
    /// every change applied in the window fails with
    /// [`AdmissionError::Transient`] without touching the fabric.
    InstallBrownout {
        /// How long the brownout lasts.
        duration_us: u64,
    },
    /// The edge router power-cycles: TCAM and every port policy are
    /// wiped while the ports keep forwarding (fallback to plain
    /// forwarding — availability first).
    RouterRestart,
    /// The iBGP session between route server and blackholing controller
    /// drops: the controller flushes desired state and queues removals.
    SessionDown,
    /// The session comes back: the controller resynchronizes from the
    /// route server's live RIB. Flaps are scripted as a Down/Up pair so
    /// recovery timing stays explicit and deterministic.
    SessionUp,
}

impl FaultKind {
    /// A stable metric/event label for this fault kind.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::InstallBrownout { .. } => "install_brownout",
            FaultKind::RouterRestart => "router_restart",
            FaultKind::SessionDown => "session_down",
            FaultKind::SessionUp => "session_up",
        }
    }
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at_us: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Shape of a generated fault plan.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Faults are scheduled in `[0, horizon_us)`.
    pub horizon_us: u64,
    /// Number of edge-router restarts.
    pub restarts: u32,
    /// Number of iBGP session flaps (each a Down/Up pair).
    pub flaps: u32,
    /// Number of install brownouts.
    pub brownouts: u32,
    /// Brownout durations are drawn from `[1, max_brownout_us]`.
    pub max_brownout_us: u64,
    /// Session flap outages are drawn from `[1, max_flap_us]`.
    pub max_flap_us: u64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            horizon_us: 10_000_000,
            restarts: 1,
            flaps: 1,
            brownouts: 2,
            max_brownout_us: 1_000_000,
            max_flap_us: 2_000_000,
        }
    }
}

/// A sorted, deterministic script of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A hand-written plan; events are stably sorted by time (ties keep
    /// the order given).
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_us);
        FaultPlan { events }
    }

    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Generates a plan from a seed. Identical `(seed, cfg)` pairs yield
    /// identical plans on every platform (the vendored `SmallRng` is
    /// stable).
    pub fn generate(seed: u64, cfg: &FaultPlanConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let horizon = cfg.horizon_us.max(1);
        for _ in 0..cfg.restarts {
            events.push(FaultEvent {
                at_us: rng.random_range(0..horizon),
                kind: FaultKind::RouterRestart,
            });
        }
        for _ in 0..cfg.flaps {
            let down = rng.random_range(0..horizon);
            let outage = rng.random_range(1..=cfg.max_flap_us.max(1));
            events.push(FaultEvent {
                at_us: down,
                kind: FaultKind::SessionDown,
            });
            events.push(FaultEvent {
                at_us: down.saturating_add(outage),
                kind: FaultKind::SessionUp,
            });
        }
        for _ in 0..cfg.brownouts {
            events.push(FaultEvent {
                at_us: rng.random_range(0..horizon),
                kind: FaultKind::InstallBrownout {
                    duration_us: rng.random_range(1..=cfg.max_brownout_us.max(1)),
                },
            });
        }
        FaultPlan::scripted(events)
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The time after which no scripted fault is active any more: the
    /// last event time plus any brownout tail. Reconciliation after this
    /// point must converge.
    pub fn quiescent_after_us(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::InstallBrownout { duration_us } => e.at_us.saturating_add(duration_us),
                _ => e.at_us,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Walks a [`FaultPlan`] as simulation time advances and tracks which
/// faults are currently active.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    brownout_until_us: u64,
}

impl FaultInjector {
    /// An injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            cursor: 0,
            brownout_until_us: 0,
        }
    }

    /// An injector that never faults.
    pub fn idle() -> Self {
        FaultInjector::default()
    }

    /// Returns the events due at or before `now_us` (at most once each)
    /// and arms any brownout windows they open.
    pub fn poll(&mut self, now_us: u64) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while let Some(ev) = self.plan.events.get(self.cursor) {
            if ev.at_us > now_us {
                break;
            }
            if let FaultKind::InstallBrownout { duration_us } = ev.kind {
                self.brownout_until_us = self
                    .brownout_until_us
                    .max(ev.at_us.saturating_add(duration_us));
            }
            fired.push(*ev);
            self.cursor += 1;
        }
        fired
    }

    /// Whether a configuration change applied at `now_us` hits a
    /// brownout window.
    pub fn install_faulted(&self, now_us: u64) -> bool {
        now_us < self.brownout_until_us
    }

    /// Whether every scripted event has fired.
    pub fn drained(&self) -> bool {
        self.cursor == self.plan.events.len()
    }

    /// See [`FaultPlan::quiescent_after_us`].
    pub fn quiescent_after_us(&self) -> u64 {
        self.plan.quiescent_after_us()
    }
}

/// Retry policy for refused configuration changes: exponential backoff
/// with bounded attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Backoff after the first failed attempt.
    pub base_backoff_us: u64,
    /// Backoff ceiling.
    pub max_backoff_us: u64,
    /// Total apply attempts before a change is dead-lettered (or
    /// degraded, for TCAM exhaustion).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    /// Defaults sized for the production queue (≈4.33 changes/s): first
    /// retry after 250 ms (about one token), doubling to a 8 s ceiling,
    /// five attempts total.
    fn default() -> Self {
        RetryPolicy {
            base_backoff_us: 250_000,
            max_backoff_us: 8_000_000,
            max_attempts: 5,
        }
    }
}

impl RetryPolicy {
    /// The backoff after `attempt` failures (1-based): `base × 2^(n-1)`,
    /// capped.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.base_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us)
    }
}

/// A change that permanently failed: kept for operator review with the
/// reason and the effort spent.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// The refused change.
    pub change: AbstractChange,
    /// The final refusal.
    pub error: AdmissionError,
    /// Apply attempts made.
    pub attempts: u32,
    /// When it was given up on.
    pub at_us: u64,
}

/// One entry in the system's recovery log. The log is plain data so two
/// runs under the same seed can be compared for equality — the
/// determinism acceptance criterion.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// A scripted fault fired.
    FaultInjected {
        /// When it was scheduled.
        at_us: u64,
        /// What it was.
        kind: FaultKind,
    },
    /// The edge router restarted, losing this many installed rules.
    RouterRestarted {
        /// When.
        at_us: u64,
        /// Hardware rules wiped.
        rules_lost: usize,
    },
    /// A failed change was parked for retry.
    Retried {
        /// When the attempt failed.
        at_us: u64,
        /// Rule id the change concerns.
        rule_id: u64,
        /// Failed attempts so far.
        attempt: u32,
        /// Why it failed.
        error: AdmissionError,
    },
    /// A rule was stepped down the degradation ladder.
    Degraded {
        /// When.
        at_us: u64,
        /// The rule (id preserved across the step).
        rule_id: u64,
        /// The coarser replacement signature.
        to: StellarSignal,
    },
    /// A change was given up on.
    DeadLettered {
        /// When.
        at_us: u64,
        /// Rule id the change concerns.
        rule_id: u64,
        /// The final refusal.
        error: AdmissionError,
    },
    /// The controller resynchronized from the route server after a
    /// session came back.
    Resynced {
        /// When.
        at_us: u64,
        /// Configuration changes the resync produced.
        changes: usize,
    },
    /// A reconciliation pass queued repairs.
    RepairsQueued {
        /// When.
        at_us: u64,
        /// Missing desired rules re-queued for install.
        adds: usize,
        /// Undesired installed rules queued for removal.
        removes: usize,
        /// Manager bookkeeping entries pruned (vanished from hardware).
        pruned: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_are_deterministic_and_sorted() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(42, &cfg);
        let b = FaultPlan::generate(42, &cfg);
        assert_eq!(a.events(), b.events());
        assert!(a.events().windows(2).all(|w| w[0].at_us <= w[1].at_us));
        let c = FaultPlan::generate(43, &cfg);
        assert_ne!(a.events(), c.events(), "different seeds differ");
        // 1 restart + 1 flap (two events) + 2 brownouts.
        assert_eq!(a.events().len(), 5);
    }

    #[test]
    fn flaps_pair_down_before_up() {
        let cfg = FaultPlanConfig {
            restarts: 0,
            brownouts: 0,
            flaps: 3,
            ..Default::default()
        };
        let plan = FaultPlan::generate(7, &cfg);
        let downs = plan
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::SessionDown)
            .count();
        let ups = plan
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::SessionUp)
            .count();
        assert_eq!(downs, 3);
        assert_eq!(ups, 3);
        // At any prefix of the timeline, downs >= ups.
        let mut balance = 0i32;
        for e in plan.events() {
            match e.kind {
                FaultKind::SessionDown => balance += 1,
                FaultKind::SessionUp => balance -= 1,
                _ => {}
            }
            assert!(balance >= 0, "an Up fired before its Down");
        }
    }

    #[test]
    fn injector_fires_each_event_once_and_tracks_brownouts() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                at_us: 100,
                kind: FaultKind::InstallBrownout { duration_us: 50 },
            },
            FaultEvent {
                at_us: 200,
                kind: FaultKind::RouterRestart,
            },
        ]);
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.install_faulted(100));
        assert!(inj.poll(99).is_empty());
        assert_eq!(inj.poll(100).len(), 1);
        assert!(inj.install_faulted(100));
        assert!(inj.install_faulted(149));
        assert!(!inj.install_faulted(150));
        assert!(!inj.drained());
        assert_eq!(inj.poll(1000).len(), 1);
        assert!(inj.poll(2000).is_empty());
        assert!(inj.drained());
        assert_eq!(inj.quiescent_after_us(), 200);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_backoff_us: 100,
            max_backoff_us: 500,
            max_attempts: 5,
        };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        assert_eq!(p.backoff_us(4), 500);
        assert_eq!(p.backoff_us(40), 500, "huge attempts do not overflow");
    }
}
