//! The mitigation-technique comparison behind Table 1.
//!
//! Each technique is modelled by (a) a data-plane effect on a common
//! reference attack (where is traffic dropped, at what granularity) and
//! (b) operational parameters (signaling fan-out, setup time, cost,
//! resource footprint). A common scenario is run under every technique
//! and the measured outcomes are mapped onto the paper's ✓/•/✗ symbols.

use core::fmt;

/// The five techniques of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Traffic scrubbing service.
    Tss,
    /// Router ACL filters at the victim's own border.
    Acl,
    /// Remotely triggered black hole.
    Rtbh,
    /// BGP Flowspec (inter-domain).
    Flowspec,
    /// Advanced Blackholing (Stellar).
    AdvancedBlackholing,
}

/// All techniques in the paper's column order.
pub const ALL: [Technique; 5] = [
    Technique::Tss,
    Technique::Acl,
    Technique::Rtbh,
    Technique::Flowspec,
    Technique::AdvancedBlackholing,
];

impl Technique {
    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            Technique::Tss => "TSS",
            Technique::Acl => "ACL filters",
            Technique::Rtbh => "RTBH",
            Technique::Flowspec => "Flowspec",
            Technique::AdvancedBlackholing => "Advanced BH",
        }
    }
}

/// The paper's rating symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rating {
    /// Advantage.
    Good,
    /// Neutral.
    Neutral,
    /// Disadvantage.
    Bad,
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rating::Good => "+",
            Rating::Neutral => "o",
            Rating::Bad => "-",
        })
    }
}

/// Measured/derived properties of one technique under the reference
/// scenario (1 Gbps amplification attack on a member with a 1 Gbps port,
/// 30 % of peers cooperative).
#[derive(Debug, Clone)]
pub struct TechniqueOutcome {
    /// Which technique.
    pub technique: Technique,
    /// Fraction of attack traffic removed before the victim's bottleneck.
    pub attack_removed: f64,
    /// Fraction of *legitimate* traffic lost (collateral damage).
    pub collateral: f64,
    /// Whether the technique can express L4-grade filters at all
    /// (Table 1's Granularity row rates expressiveness; RTBH cannot go
    /// below a destination prefix).
    pub fine_grained: bool,
    /// Number of parties that must act on the victim's signal.
    pub signaling_parties: usize,
    /// Number of third-party networks whose cooperation is required.
    pub cooperating_parties: usize,
    /// Whether mitigation consumes third parties' device resources.
    pub shares_third_party_resources: bool,
    /// Attack-status feedback: 1 full, 0.5 vendor-dependent, 0 none.
    pub telemetry: f64,
    /// Largest attack (bps) the approach absorbs without new investment.
    pub max_absorbable_bps: f64,
    /// Whether dedicated new hardware/subscription is needed.
    pub needs_new_resources: bool,
    /// Added forwarding-path latency (reroute penalty), seconds.
    pub added_latency_s: f64,
    /// Time from decision to active mitigation, seconds.
    pub reaction_time_s: f64,
    /// Recurring cost, arbitrary units/year (0 cheap .. 100 TSS-class).
    pub recurring_cost: f64,
}

/// Parameters of the reference scenario used to derive outcomes.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceScenario {
    /// Attack volume (bps).
    pub attack_bps: f64,
    /// Benign volume (bps).
    pub benign_bps: f64,
    /// Victim port capacity (bps).
    pub victim_port_bps: f64,
    /// Fraction of peers that honor inter-domain signals (RTBH /
    /// Flowspec).
    pub peer_compliance: f64,
    /// IXP platform spare capacity (bps).
    pub ixp_capacity_bps: f64,
}

impl Default for ReferenceScenario {
    fn default() -> Self {
        ReferenceScenario {
            attack_bps: 1e9,
            benign_bps: 200e6,
            victim_port_bps: 1e9,
            peer_compliance: 0.30,   // §2.4
            ixp_capacity_bps: 25e12, // DE-CIX connected capacity [21]
        }
    }
}

/// Congestion loss for the traffic mix that reaches a bottleneck link:
/// returns the fraction of *benign* traffic lost.
fn congestion_collateral(attack_bps: f64, benign_bps: f64, capacity_bps: f64) -> f64 {
    let offered = attack_bps + benign_bps;
    if offered <= capacity_bps {
        0.0
    } else {
        1.0 - capacity_bps / offered
    }
}

/// Evaluates one technique under the scenario.
pub fn evaluate(technique: Technique, s: &ReferenceScenario) -> TechniqueOutcome {
    match technique {
        Technique::Tss => TechniqueOutcome {
            technique,
            attack_removed: 0.98, // DPI-grade filtering once traffic arrives
            collateral: 0.01,
            fine_grained: true,
            signaling_parties: 1, // the scrubbing provider
            cooperating_parties: 0,
            shares_third_party_resources: false,
            telemetry: 1.0,
            // Scrubbing clusters top out well below Tbps ("does not cope
            // with Tbps-level attacks", §1.1).
            max_absorbable_bps: 80e9,
            needs_new_resources: true,
            added_latency_s: 0.030,  // reroute via scrubbing center
            reaction_time_s: 3600.0, // subscription + DNS/BGP diversion
            recurring_cost: 100.0,
        },
        Technique::Acl => {
            // Filtering happens at the victim's own border: precise, but
            // the attack has already crossed the congested port.
            let collateral = congestion_collateral(s.attack_bps, s.benign_bps, s.victim_port_bps);
            TechniqueOutcome {
                technique,
                attack_removed: 1.0, // at the router — too late
                collateral,
                fine_grained: true,
                signaling_parties: 1, // own NOC
                cooperating_parties: 0,
                shares_third_party_resources: false,
                telemetry: 0.0,
                // Line-rate hardware, but management "typically does
                // not scale well" (§1.1): rate as neutral.
                max_absorbable_bps: 200e9,
                needs_new_resources: true, // rule management tooling
                added_latency_s: 0.0,
                reaction_time_s: 900.0, // manual vendor-specific config
                recurring_cost: 20.0,
            }
        }
        Technique::Rtbh => TechniqueOutcome {
            technique,
            // Only honoring peers' share of the attack is removed (§2.4).
            attack_removed: s.peer_compliance,
            // Honoring peers drop *all* victim traffic: their share of
            // the benign traffic is collateral.
            collateral: s.peer_compliance,
            fine_grained: false,
            signaling_parties: 650, // one-to-all (every RS peer)
            cooperating_parties: 650,
            shares_third_party_resources: false,
            telemetry: 0.0,
            max_absorbable_bps: s.ixp_capacity_bps,
            needs_new_resources: false,
            added_latency_s: 0.0,
            reaction_time_s: 60.0,
            recurring_cost: 0.0,
        },
        Technique::Flowspec => TechniqueOutcome {
            technique,
            // Fine-grained, but only deploying peers filter; adoption in
            // the inter-domain setting is the compliance fraction.
            attack_removed: s.peer_compliance,
            collateral: 0.0,
            fine_grained: true,
            signaling_parties: 650,
            cooperating_parties: 650,
            shares_third_party_resources: true, // peers' TCAM/CPU
            telemetry: 0.5,                     // vendor-specific (§1.1)
            max_absorbable_bps: s.ixp_capacity_bps,
            needs_new_resources: true, // scarce router TCAM, not the owner's
            added_latency_s: 0.0,
            reaction_time_s: 60.0,
            recurring_cost: 5.0,
        },
        Technique::AdvancedBlackholing => TechniqueOutcome {
            technique,
            attack_removed: 1.0, // dropped at the IXP, before the port
            collateral: 0.0,     // L4-scoped rule
            fine_grained: true,
            signaling_parties: 1, // one-to-IXP (§3.2)
            cooperating_parties: 0,
            shares_third_party_resources: false,
            telemetry: 1.0, // shaping sample + discard counters
            max_absorbable_bps: s.ixp_capacity_bps,
            needs_new_resources: false, // existing ER hardware (§4.1.2)
            added_latency_s: 0.0,
            reaction_time_s: 1.0, // Fig. 10(b): 70 % < 1 s
            recurring_cost: 1.0,
        },
    }
}

/// The Table 1 criteria (rows), in the paper's order.
pub const CRITERIA: [&str; 10] = [
    "Granularity",
    "Signaling complexity",
    "Cooperation",
    "Resource sharing",
    "Telemetry",
    "Scalability",
    "Resources",
    "Performance",
    "Reaction time",
    "Costs",
];

/// Residual collateral damage under this outcome: explicit collateral
/// plus congestion loss from whatever attack share was not removed
/// before the victim's port.
pub fn effective_collateral(outcome: &TechniqueOutcome, s: &ReferenceScenario) -> f64 {
    outcome.collateral.max(congestion_collateral(
        (1.0 - outcome.attack_removed) * s.attack_bps,
        s.benign_bps,
        s.victim_port_bps,
    ))
}

/// Maps an outcome onto the paper's per-criterion symbols.
pub fn rate(outcome: &TechniqueOutcome, _s: &ReferenceScenario) -> Vec<(&'static str, Rating)> {
    vec![
        (
            "Granularity",
            if outcome.fine_grained {
                Rating::Good
            } else {
                Rating::Bad
            },
        ),
        (
            "Signaling complexity",
            if outcome.signaling_parties <= 1 && outcome.reaction_time_s <= 60.0 {
                Rating::Good
            } else {
                Rating::Bad
            },
        ),
        (
            "Cooperation",
            match outcome.cooperating_parties {
                0 if outcome.technique == Technique::AdvancedBlackholing => Rating::Good,
                0 => Rating::Neutral,
                _ => Rating::Bad,
            },
        ),
        (
            "Resource sharing",
            if outcome.shares_third_party_resources {
                Rating::Bad
            } else {
                Rating::Good
            },
        ),
        (
            "Telemetry",
            if outcome.telemetry >= 1.0 {
                Rating::Good
            } else if outcome.telemetry > 0.0 {
                Rating::Neutral
            } else {
                Rating::Bad
            },
        ),
        (
            "Scalability",
            if outcome.max_absorbable_bps >= 2e12 {
                Rating::Good
            } else if outcome.max_absorbable_bps >= 100e9 {
                Rating::Neutral
            } else {
                Rating::Bad
            },
        ),
        (
            "Resources",
            if outcome.needs_new_resources {
                Rating::Bad
            } else {
                Rating::Good
            },
        ),
        (
            "Performance",
            if outcome.added_latency_s > 0.001 {
                Rating::Bad
            } else {
                Rating::Good
            },
        ),
        (
            "Reaction time",
            if outcome.reaction_time_s <= 60.0 {
                Rating::Good
            } else {
                Rating::Bad
            },
        ),
        (
            "Costs",
            if outcome.recurring_cost <= 5.0 {
                Rating::Good
            } else if outcome.recurring_cost <= 30.0 {
                Rating::Neutral
            } else {
                Rating::Bad
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<(Technique, Vec<(&'static str, Rating)>)> {
        let s = ReferenceScenario::default();
        ALL.iter()
            .map(|t| (*t, rate(&evaluate(*t, &s), &s)))
            .collect()
    }

    fn lookup(rows: &[(&'static str, Rating)], criterion: &str) -> Rating {
        rows.iter()
            .find(|(c, _)| *c == criterion)
            .map(|(_, r)| *r)
            .expect("criterion exists")
    }

    #[test]
    fn advanced_blackholing_is_good_everywhere() {
        // Table 1's right-most column: all ✓.
        let t = table();
        let (_, advbh) = t
            .iter()
            .find(|(t, _)| *t == Technique::AdvancedBlackholing)
            .unwrap();
        for (criterion, rating) in advbh {
            assert_eq!(*rating, Rating::Good, "AdvBH should be ✓ on {criterion}");
        }
    }

    #[test]
    fn rtbh_matches_paper_column() {
        let t = table();
        let (_, rtbh) = t.iter().find(|(t, _)| *t == Technique::Rtbh).unwrap();
        assert_eq!(lookup(rtbh, "Granularity"), Rating::Bad);
        assert_eq!(lookup(rtbh, "Signaling complexity"), Rating::Bad);
        assert_eq!(lookup(rtbh, "Cooperation"), Rating::Bad);
        assert_eq!(lookup(rtbh, "Resource sharing"), Rating::Good);
        assert_eq!(lookup(rtbh, "Telemetry"), Rating::Bad);
        assert_eq!(lookup(rtbh, "Scalability"), Rating::Good);
        assert_eq!(lookup(rtbh, "Reaction time"), Rating::Good);
        assert_eq!(lookup(rtbh, "Costs"), Rating::Good);
    }

    #[test]
    fn tss_is_finegrained_but_costly_and_slow() {
        let t = table();
        let (_, tss) = t.iter().find(|(t, _)| *t == Technique::Tss).unwrap();
        assert_eq!(lookup(tss, "Granularity"), Rating::Good);
        assert_eq!(lookup(tss, "Telemetry"), Rating::Good);
        assert_eq!(lookup(tss, "Scalability"), Rating::Bad);
        assert_eq!(lookup(tss, "Costs"), Rating::Bad);
        assert_eq!(lookup(tss, "Performance"), Rating::Bad);
        assert_eq!(lookup(tss, "Reaction time"), Rating::Bad);
        assert_eq!(lookup(tss, "Resources"), Rating::Bad);
    }

    #[test]
    fn flowspec_shares_resources_and_needs_cooperation() {
        let t = table();
        let (_, fs) = t.iter().find(|(t, _)| *t == Technique::Flowspec).unwrap();
        assert_eq!(lookup(fs, "Resource sharing"), Rating::Bad);
        assert_eq!(lookup(fs, "Cooperation"), Rating::Bad);
        assert_eq!(lookup(fs, "Granularity"), Rating::Good);
        assert_eq!(lookup(fs, "Telemetry"), Rating::Neutral);
        assert_eq!(lookup(fs, "Scalability"), Rating::Good);
        assert_eq!(lookup(fs, "Resources"), Rating::Bad);
    }

    #[test]
    fn acl_collateral_comes_from_port_congestion() {
        let s = ReferenceScenario::default();
        let acl = evaluate(Technique::Acl, &s);
        // 1 Gbps attack + 0.2 benign into a 1 Gbps port: ~17 % loss.
        assert!(
            acl.collateral > 0.1 && acl.collateral < 0.25,
            "{}",
            acl.collateral
        );
        let t = table();
        let (_, acl) = t.iter().find(|(t, _)| *t == Technique::Acl).unwrap();
        assert_eq!(lookup(acl, "Granularity"), Rating::Good);
        assert_eq!(lookup(acl, "Scalability"), Rating::Neutral);
        assert_eq!(lookup(acl, "Performance"), Rating::Good);
    }

    #[test]
    fn rtbh_effectiveness_tracks_compliance() {
        let mut s = ReferenceScenario {
            peer_compliance: 0.30,
            ..Default::default()
        };
        let r = evaluate(Technique::Rtbh, &s);
        assert!((r.attack_removed - 0.30).abs() < 1e-12);
        s.peer_compliance = 1.0;
        let r = evaluate(Technique::Rtbh, &s);
        assert!((r.attack_removed - 1.0).abs() < 1e-12);
    }
}
