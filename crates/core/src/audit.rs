//! Control-plane batch audit: the static rule-table analyzer
//! ([`stellar_classify::analyze`]) run over every proposed configuration
//! batch *before* it reaches the queue.
//!
//! The dynamic admission path only refuses a rule when the hardware does
//! (TCAM exhaustion at install time); a rule that installs fine but can
//! never be first-match — shadowed by an earlier rule on the same egress
//! port — burns TCAM criteria forever and silently does nothing. The
//! audit moves that gate to signal time: each member port's desired rule
//! set is analyzed as one table (rules only compete within a port; egress
//! placement isolates members from each other, §4.5), newly signaled
//! rules that come back dead or crossing-conflicted are refused before
//! they are enqueued, and the surviving batch's TCAM criteria footprint
//! is accounted against the hardware's free pools so capacity pressure is
//! visible *before* the install fails (the paper's Fig. 9 F1/F2 modes).

use crate::rule::{BlackholingRule, RuleAction};
use std::collections::BTreeMap;
use stellar_classify::analyze::{analyze, spec_is_empty, ActionClass, AuditRule, RuleFlag};
use stellar_classify::RuleEntry;
use stellar_dataplane::switch::EdgeRouter;

/// Why the audit refused a newly signaled rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditRejection {
    /// The rule can never be first-match on its port: covered by a single
    /// earlier rule (`by = Some(id)`) or by the union of earlier rules /
    /// a self-contradictory spec (`by = None`).
    Shadowed {
        /// The single covering rule, when one exists.
        by: Option<u64>,
    },
    /// The rule's match set crosses an earlier rule's with an opposing
    /// action (drop vs. shape): on the shared traffic, rule rank — not
    /// the member's intent — would decide the outcome.
    Conflict {
        /// The earlier rule it crosses.
        with: u64,
    },
    /// The rule's own spec is unsatisfiable — an inverted port range
    /// like `Range(2000, 1000)`, a zero-value any-bit mask, or a field
    /// combination no packet can carry. Such a rule would install,
    /// burn TCAM criteria and silently match nothing, so it is refused
    /// outright, before any shadowing analysis.
    EmptyMatch,
}

/// TCAM criteria accounting for the candidates that survived the audit,
/// against the fabric's free pools at audit time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreadmitReport {
    /// MAC-pool criteria the surviving candidates need.
    pub mac_needed: usize,
    /// L3–L4 criteria-pool entries the surviving candidates need.
    pub l34_needed: usize,
    /// MAC-pool entries currently free.
    pub mac_free: usize,
    /// L3–L4 pool entries currently free.
    pub l34_free: usize,
}

impl PreadmitReport {
    /// Whether the surviving batch fits the free pools as they stand.
    /// Advisory: concurrent removals can free space and the degradation
    /// ladder handles the miss, so a tight batch is queued anyway — but
    /// the pressure is now visible before the first install refusal.
    pub fn fits(&self) -> bool {
        self.mac_needed <= self.mac_free && self.l34_needed <= self.l34_free
    }
}

/// The audit verdict for one proposed batch.
#[derive(Debug, Clone, Default)]
pub struct BatchAudit {
    /// Refused candidate rules with the reason, in rule-id order.
    pub rejected: Vec<(u64, AuditRejection)>,
    /// TCAM accounting for the candidates that survived.
    pub preadmit: PreadmitReport,
}

impl From<RuleAction> for ActionClass {
    fn from(a: RuleAction) -> Self {
        match a {
            RuleAction::Drop => ActionClass::Drop,
            RuleAction::Shape { rate_bps } => ActionClass::Shape { rate_bps },
        }
    }
}

fn to_audit_rule(r: &BlackholingRule) -> AuditRule {
    // Blackholing rules all compile at priority 100 (`to_filter_rule`),
    // so evaluation rank within a port is id order.
    AuditRule::new(
        RuleEntry::new(r.id, 100, r.match_spec()),
        ActionClass::from(r.action()),
    )
}

/// Audits one proposed batch: `desired` is the controller's full desired
/// state (candidates already included), `candidate_ids` the rules this
/// batch would add. Tables are formed per owner (one egress port per
/// member, so rules only compete within an owner) and iterated in owner
/// order — fully deterministic. Only candidates are ever refused;
/// pre-existing anomalies among installed rules are the reconciler's
/// problem, not this batch's.
pub fn audit_batch(
    router: &EdgeRouter,
    desired: &[BlackholingRule],
    candidate_ids: &[u64],
) -> BatchAudit {
    let mut audit = BatchAudit::default();
    let mut by_owner: BTreeMap<u32, Vec<&BlackholingRule>> = BTreeMap::new();
    for r in desired {
        by_owner.entry(r.owner.0).or_default().push(r);
    }
    for rules in by_owner.values() {
        if !rules.iter().any(|r| candidate_ids.contains(&r.id)) {
            continue;
        }
        let table: Vec<AuditRule> = rules.iter().map(|r| to_audit_rule(r)).collect();
        let report = analyze(&table);
        for r in rules {
            if !candidate_ids.contains(&r.id) {
                continue;
            }
            // A self-contradictory spec is refused with its own reason:
            // "shadowed" would blame earlier rules for a candidate that
            // could never match anything on an empty port either.
            if spec_is_empty(&r.match_spec()) {
                audit.rejected.push((r.id, AuditRejection::EmptyMatch));
                continue;
            }
            let rejection = match report.dead_flag(r.id) {
                Some(RuleFlag::Shadowed { by }) | Some(RuleFlag::Redundant { by }) => {
                    Some(AuditRejection::Shadowed { by: Some(by) })
                }
                Some(RuleFlag::Unreachable) => Some(AuditRejection::Shadowed { by: None }),
                // A budget blowout proves nothing: admit.
                Some(_) | None => report
                    .conflicts_of(r.id)
                    .first()
                    .map(|with| AuditRejection::Conflict { with: *with }),
            };
            match rejection {
                Some(rej) => audit.rejected.push((r.id, rej)),
                None => {
                    let (mac, l34) = r.criteria();
                    audit.preadmit.mac_needed += mac;
                    audit.preadmit.l34_needed += l34;
                }
            }
        }
    }
    audit.rejected.sort_by_key(|(id, _)| *id);
    audit.preadmit.mac_free = router.tcam().mac_free();
    audit.preadmit.l34_free = router.tcam().l34_free();
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{MatchKind, StellarSignal};
    use stellar_bgp::types::Asn;
    use stellar_dataplane::hardware::HardwareInfoBase;
    use stellar_dataplane::port::MemberPort;
    use stellar_dataplane::switch::PortId;
    use stellar_net::mac::MacAddr;
    use stellar_net::prefix::Prefix;

    fn router() -> EdgeRouter {
        let mut r = EdgeRouter::new(HardwareInfoBase::lab_switch());
        r.add_port(
            PortId(1),
            MemberPort::new(64500, MacAddr::for_member(64500, 1), 1_000_000_000),
        );
        r
    }

    fn victim() -> Prefix {
        "100.10.10.10/32".parse().unwrap()
    }

    fn rule(id: u64, owner: u32, signal: StellarSignal) -> BlackholingRule {
        BlackholingRule::from_signal(id, Asn(owner), victim(), signal)
    }

    #[test]
    fn candidate_shadowed_by_installed_rule_is_rejected() {
        let desired = [
            rule(1, 64500, StellarSignal::drop_all()),
            rule(2, 64500, StellarSignal::drop_udp_src(123)),
        ];
        let audit = audit_batch(&router(), &desired, &[2]);
        assert_eq!(
            audit.rejected,
            vec![(2, AuditRejection::Shadowed { by: Some(1) })]
        );
        // The rejected rule contributes nothing to the preadmit footprint.
        assert_eq!(audit.preadmit.l34_needed, 0);
    }

    #[test]
    fn crossing_drop_shape_candidate_is_rejected() {
        // Installed: drop UDP src 123 to the victim. Candidate: shape UDP
        // *dst* 53 to the same victim — the match sets cross (a packet
        // can be src 123 AND dst 53; each rule also matches packets the
        // other misses), with opposing actions.
        let shape_dns_dst = StellarSignal {
            kind: MatchKind::UdpDstPort,
            port: 53,
            action: RuleAction::Shape {
                rate_bps: 200_000_000,
            },
        };
        let desired = [
            rule(1, 64500, StellarSignal::drop_udp_src(123)),
            rule(2, 64500, shape_dns_dst),
        ];
        let audit = audit_batch(&router(), &desired, &[2]);
        assert_eq!(
            audit.rejected,
            vec![(2, AuditRejection::Conflict { with: 1 })]
        );
    }

    #[test]
    fn disjoint_candidates_pass_with_preadmit_accounting() {
        let desired = [
            rule(1, 64500, StellarSignal::drop_udp_src(123)),
            rule(2, 64500, StellarSignal::drop_udp_src(53)),
        ];
        let audit = audit_batch(&router(), &desired, &[1, 2]);
        assert!(audit.rejected.is_empty());
        // Each victim-scoped UDP-src rule costs 3 L3-L4 criteria.
        assert_eq!(audit.preadmit.l34_needed, 6);
        assert_eq!(audit.preadmit.mac_needed, 0);
        assert!(audit.preadmit.fits());
    }

    #[test]
    fn inverted_port_range_candidate_is_refused_as_empty() {
        use stellar_dataplane::filter::{MatchSpec, PortMatch};
        // Range(2000, 1000) matches no port: the rule would install and
        // silently do nothing. It must be refused with its own reason —
        // not pass, and not be blamed on a shadowing rule.
        let spec = MatchSpec {
            dst_ip: Some(victim()),
            src_port: Some(PortMatch::Range(2000, 1000)),
            ..Default::default()
        };
        let inverted =
            BlackholingRule::from_flowspec(7, Asn(64500), victim(), spec, RuleAction::Drop);
        let desired = [rule(1, 64500, StellarSignal::drop_udp_src(123)), inverted];
        let audit = audit_batch(&router(), &desired, &[7]);
        assert_eq!(audit.rejected, vec![(7, AuditRejection::EmptyMatch)]);
        assert_eq!(audit.preadmit.l34_needed, 0);
    }

    #[test]
    fn owners_are_isolated() {
        // The same overlapping pair split across two owners: no table
        // contains both, so nothing is rejected.
        let desired = [
            rule(1, 64500, StellarSignal::drop_all()),
            rule(2, 64501, StellarSignal::drop_udp_src(123)),
        ];
        let audit = audit_batch(&router(), &desired, &[2]);
        assert!(audit.rejected.is_empty());
    }

    #[test]
    fn installed_anomalies_are_not_this_batchs_problem() {
        // Rules 1 and 2 are a pre-existing redundant pair, but only
        // candidate 3 is up for audit — and it is disjoint (TCP), so the
        // batch passes untouched.
        let drop_http_tcp = StellarSignal {
            kind: MatchKind::TcpSrcPort,
            port: 80,
            action: RuleAction::Drop,
        };
        let desired = [
            rule(1, 64500, StellarSignal::drop_udp_src(123)),
            rule(2, 64500, StellarSignal::drop_udp_src(123)),
            rule(3, 64500, drop_http_tcp),
        ];
        let audit = audit_batch(&router(), &desired, &[3]);
        assert!(audit.rejected.is_empty());
        assert_eq!(audit.preadmit.l34_needed, 3);
    }
}
