//! Control-plane batch audit: the static rule-table analyzer
//! ([`stellar_classify::analyze`]) run over every proposed configuration
//! batch *before* it reaches the queue.
//!
//! The dynamic admission path only refuses a rule when the hardware does
//! (TCAM exhaustion at install time); a rule that installs fine but can
//! never be first-match — shadowed by an earlier rule on the same egress
//! port — burns TCAM criteria forever and silently does nothing. The
//! audit moves that gate to signal time: each member port's desired rule
//! set is analyzed as one table (rules only compete within a port; egress
//! placement isolates members from each other, §4.5), newly signaled
//! rules that come back dead or crossing-conflicted are refused before
//! they are enqueued, and the surviving batch's TCAM criteria footprint
//! is accounted against the hardware's free pools so capacity pressure is
//! visible *before* the install fails (the paper's Fig. 9 F1/F2 modes).

use crate::rule::{BlackholingRule, RuleAction};
use std::collections::BTreeMap;
use stellar_bgp::types::Asn;
use stellar_classify::analyze::{analyze, spec_is_empty, ActionClass, AuditRule, RuleFlag};
use stellar_classify::RuleEntry;
use stellar_dataplane::switch::PortId;
use stellar_sim::fabric::Fabric;

/// Why the audit refused a newly signaled rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditRejection {
    /// The rule can never be first-match on its port: covered by a single
    /// earlier rule (`by = Some(id)`) or by the union of earlier rules /
    /// a self-contradictory spec (`by = None`).
    Shadowed {
        /// The single covering rule, when one exists.
        by: Option<u64>,
    },
    /// The rule's match set crosses an earlier rule's with an opposing
    /// action (drop vs. shape): on the shared traffic, rule rank — not
    /// the member's intent — would decide the outcome.
    Conflict {
        /// The earlier rule it crosses.
        with: u64,
    },
    /// The rule's own spec is unsatisfiable — an inverted port range
    /// like `Range(2000, 1000)`, a zero-value any-bit mask, or a field
    /// combination no packet can carry. Such a rule would install,
    /// burn TCAM criteria and silently match nothing, so it is refused
    /// outright, before any shadowing analysis.
    EmptyMatch,
    /// An exact duplicate: identical match set *and* identical action
    /// as an earlier rule. Distinct from [`AuditRejection::Shadowed`] —
    /// a duplicate is an idempotent re-signal (operator retries, tool
    /// double-fires), not a conflicting intent, and telemetry counts
    /// them separately.
    Duplicate {
        /// The earlier identical rule.
        of: u64,
    },
}

/// TCAM criteria accounting for the candidates that survived the audit,
/// against the fabric's free pools at audit time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreadmitReport {
    /// MAC-pool criteria the surviving candidates need.
    pub mac_needed: usize,
    /// L3–L4 criteria-pool entries the surviving candidates need.
    pub l34_needed: usize,
    /// MAC-pool entries currently free.
    pub mac_free: usize,
    /// L3–L4 pool entries currently free.
    pub l34_free: usize,
}

impl PreadmitReport {
    /// Whether the surviving batch fits the free pools as they stand.
    /// Advisory: concurrent removals can free space and the degradation
    /// ladder handles the miss, so a tight batch is queued anyway — but
    /// the pressure is now visible before the first install refusal.
    pub fn fits(&self) -> bool {
        self.mac_needed <= self.mac_free && self.l34_needed <= self.l34_free
    }
}

/// Per-PoP TCAM accounting: the surviving candidates that resolve to
/// ports on this PoP, against *this PoP's* free pools. TCAM budgets are
/// per router, so a batch can fit the fabric-wide sums while still
/// blowing one PoP's pool — these rows are where that shows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PopPreadmit {
    /// The PoP index.
    pub pop: u16,
    /// TCAM accounting against this PoP's pools.
    pub report: PreadmitReport,
}

/// The audit verdict for one proposed batch.
#[derive(Debug, Clone, Default)]
pub struct BatchAudit {
    /// Refused candidate rules with the reason, in rule-id order.
    pub rejected: Vec<(u64, AuditRejection)>,
    /// Fabric-wide TCAM accounting for the candidates that survived
    /// (needs and frees summed over PoPs).
    pub preadmit: PreadmitReport,
    /// The same accounting split per PoP, ascending PoP order, one row
    /// per PoP in the fabric.
    pub per_pop: Vec<PopPreadmit>,
}

impl BatchAudit {
    /// Whether the surviving batch fits every PoP's free pools — the
    /// real admission forecast; the fabric-wide [`PreadmitReport::fits`]
    /// is optimistic when placement is skewed.
    pub fn fits(&self) -> bool {
        self.per_pop.iter().all(|p| p.report.fits())
    }
}

impl From<RuleAction> for ActionClass {
    fn from(a: RuleAction) -> Self {
        match a {
            RuleAction::Drop => ActionClass::Drop,
            RuleAction::Shape { rate_bps } => ActionClass::Shape { rate_bps },
        }
    }
}

pub(crate) fn to_audit_rule(r: &BlackholingRule) -> AuditRule {
    // Blackholing rules all compile at priority 100 (`to_filter_rule`),
    // so evaluation rank within a port is id order.
    AuditRule::new(
        RuleEntry::new(r.id, 100, r.match_spec()),
        ActionClass::from(r.action()),
    )
}

/// Audits one proposed batch: `desired` is the controller's full desired
/// state (candidates already included), `candidate_ids` the rules this
/// batch would add. Tables are formed per owner (one egress port per
/// member, so rules only compete within an owner) and iterated in owner
/// order — fully deterministic. Only candidates are ever refused;
/// pre-existing anomalies among installed rules are the reconciler's
/// problem, not this batch's.
///
/// `owner_port` resolves a rule owner to its egress port (the manager's
/// registration); survivors are charged against the owning PoP's TCAM
/// pools as well as the fabric-wide sums. A survivor whose owner has no
/// registered port contributes to the fabric-wide needs only — the
/// admission path will refuse it as `UnknownOwner` later.
pub fn audit_batch(
    fabric: &Fabric,
    owner_port: impl Fn(Asn) -> Option<PortId>,
    desired: &[BlackholingRule],
    candidate_ids: &[u64],
) -> BatchAudit {
    let mut audit = BatchAudit::default();
    let mut pop_needs: BTreeMap<u16, (usize, usize)> = BTreeMap::new();
    let mut by_owner: BTreeMap<u32, Vec<&BlackholingRule>> = BTreeMap::new();
    for r in desired {
        by_owner.entry(r.owner.0).or_default().push(r);
    }
    for rules in by_owner.values() {
        if !rules.iter().any(|r| candidate_ids.contains(&r.id)) {
            continue;
        }
        let table: Vec<AuditRule> = rules.iter().map(|r| to_audit_rule(r)).collect();
        let report = analyze(&table);
        for r in rules {
            if !candidate_ids.contains(&r.id) {
                continue;
            }
            // A self-contradictory spec is refused with its own reason:
            // "shadowed" would blame earlier rules for a candidate that
            // could never match anything on an empty port either.
            if spec_is_empty(&r.match_spec()) {
                audit.rejected.push((r.id, AuditRejection::EmptyMatch));
                continue;
            }
            let rejection = match report.dead_flag(r.id) {
                Some(RuleFlag::Shadowed { by }) | Some(RuleFlag::Redundant { by }) => {
                    Some(AuditRejection::Shadowed { by: Some(by) })
                }
                Some(RuleFlag::Duplicate { of }) => Some(AuditRejection::Duplicate { of }),
                Some(RuleFlag::Unreachable) => Some(AuditRejection::Shadowed { by: None }),
                // A budget blowout proves nothing: admit.
                Some(_) | None => report
                    .conflicts_of(r.id)
                    .first()
                    .map(|with| AuditRejection::Conflict { with: *with }),
            };
            match rejection {
                Some(rej) => audit.rejected.push((r.id, rej)),
                None => {
                    let (mac, l34) = r.criteria();
                    audit.preadmit.mac_needed += mac;
                    audit.preadmit.l34_needed += l34;
                    if let Some(pop) = owner_port(r.owner).and_then(|p| fabric.pop_of_port(p)) {
                        let e = pop_needs.entry(pop.0).or_default();
                        e.0 += mac;
                        e.1 += l34;
                    }
                }
            }
        }
    }
    audit.rejected.sort_by_key(|(id, _)| *id);
    audit.preadmit.mac_free = fabric.mac_free_total();
    audit.preadmit.l34_free = fabric.l34_free_total();
    audit.per_pop = fabric
        .routers()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let (mac_needed, l34_needed) = pop_needs.get(&(i as u16)).copied().unwrap_or((0, 0));
            PopPreadmit {
                pop: i as u16,
                report: PreadmitReport {
                    mac_needed,
                    l34_needed,
                    mac_free: r.tcam().mac_free(),
                    l34_free: r.tcam().l34_free(),
                },
            }
        })
        .collect();
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{MatchKind, StellarSignal};
    use stellar_dataplane::hardware::HardwareInfoBase;
    use stellar_dataplane::port::MemberPort;
    use stellar_net::mac::MacAddr;
    use stellar_net::prefix::Prefix;
    use stellar_sim::fabric::PopId;

    fn fab() -> Fabric {
        let mut f = Fabric::single(HardwareInfoBase::lab_switch());
        f.add_port(
            PopId(0),
            PortId(1),
            MemberPort::new(64500, MacAddr::for_member(64500, 1), 1_000_000_000),
        );
        f
    }

    fn owner(a: Asn) -> Option<PortId> {
        (a == Asn(64500)).then_some(PortId(1))
    }

    fn victim() -> Prefix {
        "100.10.10.10/32".parse().unwrap()
    }

    fn rule(id: u64, owner: u32, signal: StellarSignal) -> BlackholingRule {
        BlackholingRule::from_signal(id, Asn(owner), victim(), signal)
    }

    #[test]
    fn candidate_shadowed_by_installed_rule_is_rejected() {
        let desired = [
            rule(1, 64500, StellarSignal::drop_all()),
            rule(2, 64500, StellarSignal::drop_udp_src(123)),
        ];
        let audit = audit_batch(&fab(), owner, &desired, &[2]);
        assert_eq!(
            audit.rejected,
            vec![(2, AuditRejection::Shadowed { by: Some(1) })]
        );
        // The rejected rule contributes nothing to the preadmit footprint.
        assert_eq!(audit.preadmit.l34_needed, 0);
    }

    #[test]
    fn identical_match_and_action_is_rejected_as_duplicate() {
        // Same match set, same action: an idempotent re-signal, refused
        // with its own reason — not blamed as a shadow (which implies a
        // conflicting or strictly-wider earlier rule).
        let desired = [
            rule(1, 64500, StellarSignal::drop_udp_src(123)),
            rule(2, 64500, StellarSignal::drop_udp_src(123)),
        ];
        let audit = audit_batch(&fab(), owner, &desired, &[2]);
        assert_eq!(
            audit.rejected,
            vec![(2, AuditRejection::Duplicate { of: 1 })]
        );
        assert_eq!(audit.preadmit.l34_needed, 0);
    }

    #[test]
    fn crossing_drop_shape_candidate_is_rejected() {
        // Installed: drop UDP src 123 to the victim. Candidate: shape UDP
        // *dst* 53 to the same victim — the match sets cross (a packet
        // can be src 123 AND dst 53; each rule also matches packets the
        // other misses), with opposing actions.
        let shape_dns_dst = StellarSignal {
            kind: MatchKind::UdpDstPort,
            port: 53,
            action: RuleAction::Shape {
                rate_bps: 200_000_000,
            },
        };
        let desired = [
            rule(1, 64500, StellarSignal::drop_udp_src(123)),
            rule(2, 64500, shape_dns_dst),
        ];
        let audit = audit_batch(&fab(), owner, &desired, &[2]);
        assert_eq!(
            audit.rejected,
            vec![(2, AuditRejection::Conflict { with: 1 })]
        );
    }

    #[test]
    fn disjoint_candidates_pass_with_preadmit_accounting() {
        let desired = [
            rule(1, 64500, StellarSignal::drop_udp_src(123)),
            rule(2, 64500, StellarSignal::drop_udp_src(53)),
        ];
        let audit = audit_batch(&fab(), owner, &desired, &[1, 2]);
        assert!(audit.rejected.is_empty());
        // Each victim-scoped UDP-src rule costs 3 L3-L4 criteria.
        assert_eq!(audit.preadmit.l34_needed, 6);
        assert_eq!(audit.preadmit.mac_needed, 0);
        assert!(audit.preadmit.fits());
    }

    #[test]
    fn inverted_port_range_candidate_is_refused_as_empty() {
        use stellar_dataplane::filter::{MatchSpec, PortMatch};
        // Range(2000, 1000) matches no port: the rule would install and
        // silently do nothing. It must be refused with its own reason —
        // not pass, and not be blamed on a shadowing rule.
        let spec = MatchSpec {
            dst_ip: Some(victim()),
            src_port: Some(PortMatch::Range(2000, 1000)),
            ..Default::default()
        };
        let inverted =
            BlackholingRule::from_flowspec(7, Asn(64500), victim(), spec, RuleAction::Drop);
        let desired = [rule(1, 64500, StellarSignal::drop_udp_src(123)), inverted];
        let audit = audit_batch(&fab(), owner, &desired, &[7]);
        assert_eq!(audit.rejected, vec![(7, AuditRejection::EmptyMatch)]);
        assert_eq!(audit.preadmit.l34_needed, 0);
    }

    #[test]
    fn owners_are_isolated() {
        // The same overlapping pair split across two owners: no table
        // contains both, so nothing is rejected.
        let desired = [
            rule(1, 64500, StellarSignal::drop_all()),
            rule(2, 64501, StellarSignal::drop_udp_src(123)),
        ];
        let audit = audit_batch(&fab(), owner, &desired, &[2]);
        assert!(audit.rejected.is_empty());
    }

    #[test]
    fn installed_anomalies_are_not_this_batchs_problem() {
        // Rules 1 and 2 are a pre-existing redundant pair, but only
        // candidate 3 is up for audit — and it is disjoint (TCP), so the
        // batch passes untouched.
        let drop_http_tcp = StellarSignal {
            kind: MatchKind::TcpSrcPort,
            port: 80,
            action: RuleAction::Drop,
        };
        let desired = [
            rule(1, 64500, StellarSignal::drop_udp_src(123)),
            rule(2, 64500, StellarSignal::drop_udp_src(123)),
            rule(3, 64500, drop_http_tcp),
        ];
        let audit = audit_batch(&fab(), owner, &desired, &[3]);
        assert!(audit.rejected.is_empty());
        assert_eq!(audit.preadmit.l34_needed, 3);
    }

    #[test]
    fn skewed_placement_blows_one_pop_while_fabric_sums_fit() {
        let mut f = Fabric::new(HardwareInfoBase::lab_switch(), 2);
        for (pop, port, asn) in [(0u16, 1u32, 64500u32), (0, 2, 64501), (1, 3, 64502)] {
            f.add_port(
                PopId(pop),
                PortId(port),
                MemberPort::new(asn, MacAddr::for_member(asn, 1), 1_000_000_000),
            );
        }
        // Fill PoP 0: 8 rules on each of its two ports, 3 L3-L4 criteria
        // apiece — 48 of the lab switch's 64, leaving 16 free there.
        let mut id = 100;
        for (port, asn) in [(PortId(1), 64500), (PortId(2), 64501)] {
            for i in 0..8u16 {
                let r = rule(id, asn, StellarSignal::drop_udp_src(1000 + i));
                f.install_rule(port, r.to_filter_rule(), 0).unwrap();
                id += 1;
            }
        }
        assert_eq!(f.routers()[0].tcam().l34_free(), 16);
        // Six disjoint candidates, all owned by the PoP-0 member: they
        // need 18 criteria — more than PoP 0 has, less than the fabric.
        let desired: Vec<BlackholingRule> = (0..6u64)
            .map(|i| rule(i + 1, 64500, StellarSignal::drop_udp_src(i as u16 + 1)))
            .collect();
        let ids: Vec<u64> = desired.iter().map(|r| r.id).collect();
        let resolve = |a: Asn| match a.0 {
            64500 => Some(PortId(1)),
            64501 => Some(PortId(2)),
            64502 => Some(PortId(3)),
            _ => None,
        };
        let audit = audit_batch(&f, resolve, &desired, &ids);
        assert!(audit.rejected.is_empty());
        assert_eq!(audit.preadmit.l34_needed, 18);
        assert!(audit.preadmit.fits(), "fabric-wide sums say it fits");
        assert!(!audit.fits(), "but PoP 0's own pool cannot take it");
        assert_eq!(audit.per_pop.len(), 2);
        assert_eq!(audit.per_pop[0].report.l34_needed, 18);
        assert_eq!(audit.per_pop[0].report.l34_free, 16);
        assert_eq!(audit.per_pop[1].report.l34_needed, 0);
        assert_eq!(audit.per_pop[1].report.l34_free, 64);
        assert!(audit.per_pop[1].report.fits());
    }
}
