//! The end-to-end Stellar system (Fig. 5): signaling → management →
//! filtering, wired over a real IXP topology.
//!
//! This facade is what the examples and benches drive: a member sends one
//! BGP UPDATE; the route server validates it and feeds the blackholing
//! controller; the controller diffs its RIB into abstract changes; the
//! token-bucket queue meters them; the QoS network manager compiles them
//! onto the victim's egress port.

use crate::config_queue::ConfigChangeQueue;
use crate::controller::{AbstractChange, BlackholingController};
use crate::manager::{AdmissionError, NetworkManager};
use crate::qos_manager::QosNetworkManager;
use crate::signal::StellarSignal;
use crate::telemetry::{rule_telemetry, RuleTelemetry};
use std::collections::BTreeMap;
use stellar_bgp::types::Asn;
use stellar_dataplane::qos::TickResult;
use stellar_dataplane::switch::{OfferedAggregate, PortId};
use stellar_net::prefix::Prefix;
use stellar_routeserver::policy::RejectReason;
use stellar_sim::topology::IxpTopology;

/// Outcome of one member signal.
#[derive(Debug, Default)]
pub struct SignalOutcome {
    /// Changes accepted into the configuration queue.
    pub queued_changes: usize,
    /// Import-policy rejections, if any.
    pub rejections: Vec<(Prefix, RejectReason)>,
}

/// The assembled system.
pub struct StellarSystem {
    /// The IXP (route server + switching fabric + members).
    pub ixp: IxpTopology,
    /// The blackholing controller.
    pub controller: BlackholingController,
    /// The token-bucket configuration queue.
    pub queue: ConfigChangeQueue,
    /// The QoS network manager.
    pub manager: QosNetworkManager,
    /// Changes refused by admission control (kept for operator review).
    pub refused: Vec<(AbstractChange, AdmissionError)>,
}

impl StellarSystem {
    /// Wires Stellar onto an IXP. `queue_rate_per_s` is the configuration
    /// change rate (4.33/s fits the production CPU cap, §5.1).
    pub fn new(ixp: IxpTopology, queue_rate_per_s: f64) -> Self {
        let ixp_asn = ixp.route_server.config().ixp_asn;
        let mut manager = QosNetworkManager::default();
        for (asn, info) in &ixp.members {
            manager.register_owner(*asn, info.port);
        }
        StellarSystem {
            ixp,
            controller: BlackholingController::new(ixp_asn),
            queue: ConfigChangeQueue::production(queue_rate_per_s),
            manager,
            refused: Vec::new(),
        }
    }

    /// A member signals Advanced Blackholing: announces `victim` tagged
    /// with the given rules' extended communities. One BGP UPDATE, no
    /// cooperation from any other member (§3.3).
    pub fn member_signal(
        &mut self,
        member: Asn,
        victim: Prefix,
        signals: &[StellarSignal],
        now_us: u64,
    ) -> SignalOutcome {
        let ixp_asn = self.ixp.route_server.config().ixp_asn;
        let mut update = self.ixp.announcement(member, victim);
        let ecs: Vec<_> = signals.iter().map(|s| s.encode(ixp_asn)).collect();
        update.add_extended_communities(&ecs);
        let rs_out = self.ixp.route_server.handle_update(member, &update, now_us);
        let mut outcome = SignalOutcome {
            rejections: rs_out.rejections,
            ..Default::default()
        };
        for cu in &rs_out.controller_updates {
            for change in self.controller.process_update(cu) {
                self.queue.enqueue(change, now_us);
                outcome.queued_changes += 1;
            }
        }
        outcome
    }

    /// A member withdraws its signal (attack over): the /32 is withdrawn
    /// and every rule attached to it is queued for removal.
    pub fn member_withdraw(&mut self, member: Asn, victim: Prefix, now_us: u64) -> SignalOutcome {
        let update = match victim {
            Prefix::V4(_) => stellar_bgp::update::UpdateMessage::withdraw(victim),
            Prefix::V6(_) => stellar_bgp::update::UpdateMessage {
                withdrawn: vec![],
                attrs: vec![stellar_bgp::attr::PathAttribute::MpUnreach {
                    afi: stellar_bgp::types::Afi::Ipv6,
                    safi: stellar_bgp::types::Safi::Unicast,
                    nlri: vec![stellar_bgp::nlri::Nlri::plain(victim)],
                }],
                nlri: vec![],
            },
        };
        let rs_out = self.ixp.route_server.handle_update(member, &update, now_us);
        let mut outcome = SignalOutcome::default();
        for cu in &rs_out.controller_updates {
            for change in self.controller.process_update(cu) {
                self.queue.enqueue(change, now_us);
                outcome.queued_changes += 1;
            }
        }
        outcome
    }

    /// Pumps the configuration queue: dequeues what the token bucket
    /// allows and applies it to the fabric. Returns how many changes were
    /// applied.
    pub fn pump(&mut self, now_us: u64) -> usize {
        let ready = self.queue.dequeue_ready(now_us);
        let mut applied = 0;
        for (change, _waited) in ready {
            match self.manager.apply(&mut self.ixp.router, &change, now_us) {
                Ok(()) => applied += 1,
                Err(e) => self.refused.push((change, e)),
            }
        }
        applied
    }

    /// Pushes one tick of traffic through the fabric.
    pub fn traffic_tick(
        &mut self,
        offers: &[OfferedAggregate],
        tick_end_us: u64,
        tick_us: u64,
    ) -> BTreeMap<PortId, TickResult> {
        self.ixp.router.process_tick(offers, tick_end_us, tick_us)
    }

    /// Telemetry for the given rules (§3.1).
    pub fn telemetry(&self, rule_ids: &[u64]) -> Vec<RuleTelemetry> {
        rule_telemetry(&self.ixp.router, &self.manager, rule_ids)
    }

    /// Rules currently active in hardware.
    pub fn active_rules(&self) -> usize {
        self.manager.installed_rules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_dataplane::hardware::HardwareInfoBase;
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::flow::FlowKey;
    use stellar_net::mac::MacAddr;
    use stellar_net::prefix::{Ipv4Prefix, Prefix};
    use stellar_net::proto::IpProtocol;
    use stellar_sim::topology::{generic_members, MemberSpec};

    fn system() -> StellarSystem {
        let mut specs = generic_members(64501, 9);
        specs.insert(
            0,
            MemberSpec {
                asn: 64500,
                capacity_bps: 1_000_000_000,
                prefixes: vec![Prefix::V4(
                    Ipv4Prefix::new(Ipv4Address::new(100, 10, 10, 0), 24).unwrap(),
                )],
            },
        );
        let ixp = IxpTopology::build(&specs, HardwareInfoBase::lab_switch());
        StellarSystem::new(ixp, 100.0)
    }

    fn victim() -> Prefix {
        "100.10.10.10/32".parse().unwrap()
    }

    fn ntp_offer(bytes: u64) -> OfferedAggregate {
        OfferedAggregate {
            key: FlowKey {
                src_mac: MacAddr::for_member(64505, 1),
                dst_mac: MacAddr::for_member(64500, 1),
                src_ip: IpAddress::V4(Ipv4Address::new(198, 51, 100, 7)),
                dst_ip: IpAddress::V4(Ipv4Address::new(100, 10, 10, 10)),
                protocol: IpProtocol::UDP,
                src_port: 123,
                dst_port: 40000,
            },
            bytes,
            packets: bytes / 1400 + 1,
        }
    }

    #[test]
    fn end_to_end_signal_installs_rule_and_drops_attack() {
        let mut sys = system();
        let out = sys.member_signal(Asn(64500), victim(), &[StellarSignal::drop_udp_src(123)], 0);
        assert!(out.rejections.is_empty(), "{:?}", out.rejections);
        assert_eq!(out.queued_changes, 1);
        assert_eq!(sys.active_rules(), 0); // not yet pumped
        assert_eq!(sys.pump(0), 1);
        assert_eq!(sys.active_rules(), 1);

        let results = sys.traffic_tick(&[ntp_offer(1_000_000)], 1_000_000, 1_000_000);
        let port = sys.ixp.member(Asn(64500)).unwrap().port;
        assert_eq!(results[&port].counters.dropped_bytes, 1_000_000);
        assert_eq!(results[&port].counters.forwarded_bytes, 0);

        // Telemetry shows the discarded volume.
        let t = sys.telemetry(&[1]);
        assert_eq!(t[0].discarded_bytes, 1_000_000);
    }

    #[test]
    fn withdraw_removes_rule_and_traffic_flows_again() {
        let mut sys = system();
        sys.member_signal(Asn(64500), victim(), &[StellarSignal::drop_udp_src(123)], 0);
        sys.pump(0);
        assert_eq!(sys.active_rules(), 1);
        let out = sys.member_withdraw(Asn(64500), victim(), 1_000_000);
        assert_eq!(out.queued_changes, 1);
        sys.pump(1_000_000);
        assert_eq!(sys.active_rules(), 0);
        let results = sys.traffic_tick(&[ntp_offer(500)], 2_000_000, 1_000_000);
        let port = sys.ixp.member(Asn(64500)).unwrap().port;
        assert_eq!(results[&port].counters.forwarded_bytes, 500);
    }

    #[test]
    fn signal_for_unowned_prefix_is_rejected() {
        let mut sys = system();
        // 64501 does not own 100.10.10.0/24.
        let out = sys.member_signal(Asn(64501), victim(), &[StellarSignal::drop_udp_src(123)], 0);
        assert_eq!(out.queued_changes, 0);
        assert!(!out.rejections.is_empty());
        sys.pump(0);
        assert_eq!(sys.active_rules(), 0);
    }

    #[test]
    fn queue_rate_limits_installation() {
        let mut sys = system();
        // Signal five distinct rules at t=0 with a slow queue.
        sys.queue = ConfigChangeQueue::production(1.0); // 1/s, MBS 2
        let signals: Vec<StellarSignal> = [123u16, 53, 389, 11211, 19]
            .iter()
            .map(|p| StellarSignal::drop_udp_src(*p))
            .collect();
        let out = sys.member_signal(Asn(64500), victim(), &signals, 0);
        assert_eq!(out.queued_changes, 5);
        assert_eq!(sys.pump(0), 2); // MBS
        assert_eq!(sys.pump(1_000_000), 1);
        assert_eq!(sys.pump(2_000_000), 1);
        assert_eq!(sys.pump(3_000_000), 1);
        assert_eq!(sys.active_rules(), 5);
    }

    #[test]
    fn shaping_signal_gives_telemetry_sample() {
        let mut sys = system();
        sys.member_signal(
            Asn(64500),
            victim(),
            &[StellarSignal::shape_udp_src(123, 200)],
            0,
        );
        sys.pump(0);
        // 1 Gbps attack for one second into the 1 Gbps port.
        let results = sys.traffic_tick(&[ntp_offer(125_000_000)], 1_000_000, 1_000_000);
        let port = sys.ixp.member(Asn(64500)).unwrap().port;
        let c = &results[&port].counters;
        // ~200 Mbps passes as telemetry, the rest is shaped away.
        assert!(c.shaped_bytes > 20_000_000 && c.shaped_bytes < 30_000_000);
        assert!(c.shape_dropped_bytes > 90_000_000);
    }
}
