//! The end-to-end Stellar system (Fig. 5): signaling → management →
//! filtering, wired over a real IXP topology.
//!
//! This facade is what the examples and benches drive: a member sends one
//! BGP UPDATE; the route server validates it and feeds the blackholing
//! controller; the controller diffs its RIB into abstract changes; the
//! token-bucket queue meters them; the QoS network manager compiles them
//! onto the victim's egress port.
//!
//! The facade is also where the control plane self-heals (§4.1.2's
//! availability-first posture made concrete):
//!
//! - a [`FaultInjector`] replays a scripted [`crate::faults::FaultPlan`]
//!   (brownouts, edge-router restarts, iBGP session flaps) as the queue
//!   is pumped;
//! - refused changes retry with exponential backoff under a
//!   [`RetryPolicy`]; TCAM-exhausted rules step down the degradation
//!   ladder; permanent failures land in [`StellarSystem::dead_letters`];
//! - [`StellarSystem::reconcile`] periodically diffs the controller's
//!   desired rule set against the hardware and queues repairs, so a
//!   restart converges back instead of diverging forever.

use crate::audit::{audit_batch, AuditRejection};
use crate::config_queue::{ConfigChangeQueue, QueuedChange};
use crate::controller::{AbstractChange, BlackholingController, DegradeOutcome};
use crate::faults::{
    ControlTuning, DeadLetter, FaultEvent, FaultInjector, FaultKind, RecoveryEvent, RetryPolicy,
};
use crate::flowspec::{FlowSpecPlane, LowerError};
use crate::manager::{AdmissionError, DeadLetterLog, NetworkManager};
use crate::proof::{self, DEFAULT_VERIFY_BUDGET};
use crate::qos_manager::QosNetworkManager;
use crate::signal::StellarSignal;
use crate::telemetry::{rule_telemetry, RuleTelemetry};
use crate::watchdog::{Invariant, Watchdog};
use std::collections::{BTreeMap, HashSet};
use stellar_bgp::attr::{AsPath, PathAttribute};
use stellar_bgp::extcommunity::ExtendedCommunity;
use stellar_bgp::flowspec::FlowSpec;
use stellar_bgp::types::Asn;
use stellar_bgp::update::UpdateMessage;
use stellar_dataplane::qos::TickResult;
use stellar_dataplane::switch::{OfferedAggregate, PortId};
use stellar_net::prefix::Prefix;
use stellar_obs::Obs;
use stellar_routeserver::policy::RejectReason;
use stellar_routeserver::FlowSpecRejectReason;
use stellar_sim::topology::IxpTopology;

/// Outcome of one member signal.
#[derive(Debug, Default)]
pub struct SignalOutcome {
    /// Changes accepted into the configuration queue.
    pub queued_changes: usize,
    /// Import-policy rejections, if any.
    pub rejections: Vec<(Prefix, RejectReason)>,
    /// Rules refused by the static batch audit (shadowed or conflicting
    /// on the owner's egress port) before reaching the queue.
    pub audit_rejections: Vec<(u64, AuditRejection)>,
}

/// Outcome of one member FlowSpec announcement or withdrawal.
#[derive(Debug, Default)]
pub struct FlowSpecOutcome {
    /// Changes accepted into the configuration queue.
    pub queued_changes: usize,
    /// NLRIs refused by the RFC 9117 validation procedure.
    pub rejections: Vec<(FlowSpec, FlowSpecRejectReason)>,
    /// NLRIs whose validation could not complete (oracle brownout):
    /// parked for automatic retry with backoff, not rejected.
    pub deferred: usize,
    /// NLRIs that validated but could not be lowered exactly.
    pub lowering_errors: Vec<(FlowSpec, LowerError)>,
    /// Lowered rules refused by the static batch audit.
    pub audit_rejections: Vec<(u64, AuditRejection)>,
}

/// A FlowSpec overload refusal parked in the dead-letter lot with a
/// cool-off, instead of being terminally dead-lettered.
#[derive(Debug)]
struct ParkedChange {
    qc: QueuedChange,
    release_at_us: u64,
}

/// A FlowSpec announcement whose RFC 9117 validation failed closed
/// during an oracle brownout, awaiting its backoff before resubmission.
#[derive(Debug)]
struct PendingValidation {
    member: Asn,
    flow: FlowSpec,
    actions: Vec<ExtendedCommunity>,
    attempts: u32,
    not_before_us: u64,
}

/// Resubmission budget for oracle-deferred announcements: generous
/// enough to outlast any plausible brownout window under the capped
/// backoff, still bounded so a permanently dark oracle cannot pin
/// announcements forever.
const VALIDATION_RETRY_ATTEMPTS: u32 = 10;

/// How far past its release time a parked change may sit before the
/// watchdog calls the requeue machinery stalled. Must exceed the pump
/// cadence of every driver (they pump at 250 ms or faster).
const PARKED_OVERDUE_SLACK_US: u64 = 2_000_000;

/// What one reconciliation pass found and queued.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Desired rules missing from hardware, queued for install.
    pub adds: usize,
    /// Hardware rules absent from desired state, queued for removal.
    pub removes: usize,
    /// Manager bookkeeping entries pruned (hardware entry vanished).
    pub pruned: usize,
}

impl ReconcileReport {
    /// No repairs were needed.
    pub fn is_clean(&self) -> bool {
        self.adds == 0 && self.removes == 0 && self.pruned == 0
    }
}

/// The assembled system.
pub struct StellarSystem {
    /// The IXP (route server + switching fabric + members).
    pub ixp: IxpTopology,
    /// The blackholing controller.
    pub controller: BlackholingController,
    /// Desired state of the FlowSpec signaling plane (lowered rules).
    pub flowspec: FlowSpecPlane,
    /// The token-bucket configuration queue.
    pub queue: ConfigChangeQueue,
    /// The QoS network manager.
    pub manager: QosNetworkManager,
    /// Retry/backoff policy for refused changes.
    pub retry: RetryPolicy,
    /// How often [`StellarSystem::reconcile`] is meant to run (drivers
    /// read this instead of hard-coding a cadence; tunable via
    /// `STELLAR_RECONCILE_US`).
    pub reconcile_interval_us: u64,
    /// The fault injector driving scripted failures (idle by default).
    pub injector: FaultInjector,
    /// Changes that permanently failed, with reason and effort spent —
    /// a bounded drop-oldest ring kept for operator review.
    pub dead_letters: DeadLetterLog,
    /// The runtime invariant monitor (see [`crate::watchdog`]).
    pub watchdog: Watchdog,
    /// FlowSpec overload refusals cooling off before a bounded requeue.
    parked: Vec<ParkedChange>,
    /// Announcements deferred by an oracle brownout, awaiting backoff.
    pending_validation: Vec<PendingValidation>,
    /// How many times one FlowSpec change may be parked and requeued
    /// before it is terminally dead-lettered.
    deadletter_requeues: u32,
    /// The recovery event log: plain data, identical across runs with
    /// the same seed and workload.
    pub log: Vec<RecoveryEvent>,
    /// Observability: metrics, spans and the flight recorder, all clocked
    /// off simulation time. [`StellarSystem::observe`] scrapes the
    /// subsystem gauges; the control-plane paths push counters, spans and
    /// flight events inline.
    pub obs: Obs,
}

impl StellarSystem {
    /// Wires Stellar onto an IXP. `queue_rate_per_s` is the configuration
    /// change rate (4.33/s fits the production CPU cap, §5.1).
    pub fn new(ixp: IxpTopology, queue_rate_per_s: f64) -> Self {
        let ixp_asn = ixp.route_server.config().ixp_asn;
        let mut manager = QosNetworkManager::default();
        for (asn, info) in &ixp.members {
            manager.register_owner(*asn, info.port);
        }
        StellarSystem {
            ixp,
            controller: BlackholingController::new(ixp_asn),
            flowspec: FlowSpecPlane::new(),
            queue: ConfigChangeQueue::production(queue_rate_per_s),
            manager,
            retry: RetryPolicy::default(),
            reconcile_interval_us: ControlTuning::default().reconcile_interval_us,
            injector: FaultInjector::idle(),
            dead_letters: DeadLetterLog::default(),
            watchdog: Watchdog::default(),
            parked: Vec::new(),
            pending_validation: Vec::new(),
            deadletter_requeues: ControlTuning::default().deadletter_requeues,
            log: Vec::new(),
            obs: Obs::new(),
        }
    }

    /// Applies a [`ControlTuning`] (typically [`ControlTuning::from_env`])
    /// to the live control plane: retry/backoff policy, reconciliation
    /// cadence, dead-letter ring capacity and requeue budget.
    pub fn apply_tuning(&mut self, tuning: &ControlTuning) {
        self.retry = tuning.retry;
        self.reconcile_interval_us = tuning.reconcile_interval_us;
        self.deadletter_requeues = tuning.deadletter_requeues;
        let evicted = self.dead_letters.set_capacity(tuning.deadletter_capacity);
        if evicted > 0 {
            self.obs.registry.counter_add("deadletter.evicted", evicted);
        }
    }

    /// Arms a fault plan (replacing any previous injector state).
    pub fn inject_faults(&mut self, plan: crate::faults::FaultPlan) {
        self.injector = FaultInjector::new(plan);
    }

    /// Admits a group of changes to the queue, routing them through the
    /// delivery-chaos window when one is armed: a chaotic delivery holds
    /// the group back by a deterministic pseudo-random delay, reordering
    /// it against groups enqueued after it (announcement delivery is not
    /// FIFO under chaos). Groups stay atomic either way.
    fn enqueue_changes(&mut self, changes: Vec<AbstractChange>, now_us: u64) {
        if changes.is_empty() {
            return;
        }
        self.watchdog.note_activity(now_us);
        match self.injector.delivery_delay(now_us) {
            Some(delay) if delay > 0 => {
                self.obs.registry.counter_inc("core.delivery.delayed");
                self.queue
                    .enqueue_group_delayed(changes, now_us, now_us + delay);
            }
            _ => self.queue.enqueue_group(changes, now_us),
        }
    }

    /// A member signals Advanced Blackholing: announces `victim` tagged
    /// with the given rules' extended communities. One BGP UPDATE, no
    /// cooperation from any other member (§3.3).
    pub fn member_signal(
        &mut self,
        member: Asn,
        victim: Prefix,
        signals: &[StellarSignal],
        now_us: u64,
    ) -> SignalOutcome {
        let ixp_asn = self.ixp.route_server.config().ixp_asn;
        let mut update = self.ixp.announcement(member, victim);
        let ecs: Vec<_> = signals.iter().map(|s| s.encode(ixp_asn)).collect();
        update.add_extended_communities(&ecs);
        let rs_out = self.ixp.route_server.handle_update(member, &update, now_us);
        let mut outcome = SignalOutcome {
            rejections: rs_out.rejections,
            ..Default::default()
        };
        for cu in &rs_out.controller_updates {
            let mut changes = self.controller.process_update(cu);
            self.audit_changes(&mut changes, &mut outcome.audit_rejections, now_us);
            outcome.queued_changes += changes.len();
            // One emission carrying several changes is a same-path swap
            // (e.g. shape→drop escalation): dequeue it atomically so the
            // victim is never unprotected between Remove and Add.
            self.enqueue_changes(changes, now_us);
        }
        outcome
    }

    /// A member signals over BGP FlowSpec instead of the Stellar
    /// community grammar: one MP_REACH update under SAFI 133 carrying
    /// `flow` and its action extended communities. The route server
    /// applies the RFC 9117 validation procedure, accepted NLRIs are
    /// lowered to exact match specs, and the lowered rules go through
    /// the same audit + queue admission path as signal-derived rules.
    pub fn member_flowspec(
        &mut self,
        member: Asn,
        flow: FlowSpec,
        actions: &[ExtendedCommunity],
        now_us: u64,
    ) -> FlowSpecOutcome {
        self.submit_flowspec(member, flow, actions.to_vec(), 0, now_us)
    }

    /// The shared announcement path for fresh submissions
    /// (`prior_attempts == 0`) and oracle-brownout resubmissions.
    fn submit_flowspec(
        &mut self,
        member: Asn,
        flow: FlowSpec,
        actions: Vec<ExtendedCommunity>,
        prior_attempts: u32,
        now_us: u64,
    ) -> FlowSpecOutcome {
        let afi = flow.afi;
        let mut update = UpdateMessage {
            withdrawn: vec![],
            attrs: vec![
                PathAttribute::AsPath(AsPath::sequence([member.0])),
                PathAttribute::MpReachFlowSpec {
                    afi,
                    nlri: vec![flow],
                },
            ],
            nlri: vec![],
        };
        if !actions.is_empty() {
            update.add_extended_communities(&actions);
        }
        let rs_out = self
            .ixp
            .route_server
            .handle_flowspec_update(member, &update);
        self.admit_flowspec_output(member, rs_out, &actions, prior_attempts, now_us)
    }

    /// A member withdraws a FlowSpec rule (MP_UNREACH, SAFI 133): every
    /// match spec it lowered to is queued for removal.
    pub fn member_flowspec_withdraw(
        &mut self,
        member: Asn,
        flow: FlowSpec,
        now_us: u64,
    ) -> FlowSpecOutcome {
        let afi = flow.afi;
        let update = UpdateMessage {
            withdrawn: vec![],
            attrs: vec![PathAttribute::MpUnreachFlowSpec {
                afi,
                nlri: vec![flow],
            }],
            nlri: vec![],
        };
        let rs_out = self
            .ixp
            .route_server
            .handle_flowspec_update(member, &update);
        self.admit_flowspec_output(member, rs_out, &[], 0, now_us)
    }

    /// Admits the route server's FlowSpec output into the change queue:
    /// withdrawals first (RFC 4271 processing order), then accepted
    /// announcements through lowering and the static batch audit. Every
    /// fate increments its `flowspec.*` counter. Transient rejections
    /// (oracle brownout fails closed) are deferred for resubmission with
    /// backoff instead of being terminally refused.
    fn admit_flowspec_output(
        &mut self,
        member: Asn,
        rs_out: stellar_routeserver::FlowSpecOutput,
        actions: &[ExtendedCommunity],
        prior_attempts: u32,
        now_us: u64,
    ) -> FlowSpecOutcome {
        let mut outcome = FlowSpecOutcome::default();
        for (owner, flow) in &rs_out.withdrawn {
            let removals = self.flowspec.withdraw(*owner, flow);
            // Counted per NLRI (like `flowspec.accepted`), not per
            // lowered rule; a withdraw of an unknown NLRI counts zero.
            if !removals.is_empty() {
                self.obs.registry.counter_inc("flowspec.withdrawn");
            }
            outcome.queued_changes += removals.len();
            self.enqueue_changes(removals, now_us);
        }
        for (flow, reason) in rs_out.rejections {
            if reason.is_transient() {
                // Fail closed, but not forever: park the announcement and
                // resubmit once the backoff expires (the oracle may be
                // back). Only a permanently dark oracle exhausts the
                // budget into a real rejection.
                let attempts = prior_attempts + 1;
                if attempts >= VALIDATION_RETRY_ATTEMPTS {
                    self.obs.registry.counter_inc("flowspec.validation_expired");
                    self.obs.event(
                        now_us,
                        "flowspec.rejected",
                        vec![
                            ("reason".to_string(), reason.describe().to_string()),
                            ("attempts".to_string(), attempts.to_string()),
                        ],
                    );
                    outcome.rejections.push((flow, reason));
                } else {
                    self.obs
                        .registry
                        .counter_inc("flowspec.validation_deferred");
                    self.obs.event(
                        now_us,
                        "flowspec.deferred",
                        vec![("attempt".to_string(), attempts.to_string())],
                    );
                    self.watchdog.note_activity(now_us);
                    self.pending_validation.push(PendingValidation {
                        member,
                        flow,
                        actions: actions.to_vec(),
                        attempts,
                        not_before_us: now_us + self.retry.backoff_us(attempts),
                    });
                    outcome.deferred += 1;
                }
                continue;
            }
            self.obs
                .registry
                .counter_inc("flowspec.rejected_validation");
            self.obs.event(
                now_us,
                "flowspec.rejected",
                vec![("reason".to_string(), reason.describe().to_string())],
            );
            outcome.rejections.push((flow, reason));
        }
        for acc in rs_out.accepted {
            match self.flowspec.install(&acc) {
                Err(e) => {
                    self.obs.registry.counter_inc("flowspec.rejected_lowering");
                    self.obs.event(
                        now_us,
                        "flowspec.rejected",
                        vec![("reason".to_string(), e.describe().to_string())],
                    );
                    outcome.lowering_errors.push((acc.flow, e));
                }
                Ok(mut changes) => {
                    let before = outcome.audit_rejections.len();
                    self.audit_changes(&mut changes, &mut outcome.audit_rejections, now_us);
                    let audit_rejected = outcome.audit_rejections.len() - before;
                    self.obs
                        .registry
                        .counter_add("flowspec.rejected_audit", audit_rejected as u64);
                    if audit_rejected == 0 {
                        self.obs.registry.counter_inc("flowspec.accepted");
                    }
                    outcome.queued_changes += changes.len();
                    // Like a same-path signal swap: the specs of one NLRI
                    // install atomically.
                    self.enqueue_changes(changes, now_us);
                }
            }
        }
        outcome
    }

    /// Resubmits oracle-deferred announcements whose backoff has expired.
    fn retry_pending_validation(&mut self, now_us: u64) {
        if self.pending_validation.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_validation);
        let (due, keep): (Vec<_>, Vec<_>) = pending
            .into_iter()
            .partition(|pv| pv.not_before_us <= now_us);
        self.pending_validation = keep;
        for pv in due {
            self.submit_flowspec(pv.member, pv.flow, pv.actions, pv.attempts, now_us);
        }
    }

    /// Static batch audit (see [`crate::audit`]): analyzes the proposed
    /// adds against the owner's full desired rule table, refuses the ones
    /// that come back shadowed or crossing-conflicted (they leave desired
    /// state and never reach the queue), and accounts the survivors'
    /// TCAM footprint against the free pools. Degrade and reconcile
    /// repairs skip this gate: they re-install rules the audit already
    /// admitted.
    fn audit_changes(
        &mut self,
        changes: &mut Vec<AbstractChange>,
        rejections: &mut Vec<(u64, AuditRejection)>,
        now_us: u64,
    ) {
        let candidate_ids: Vec<u64> = changes
            .iter()
            .filter_map(|c| match c {
                AbstractChange::AddRule(r) => Some(r.id),
                AbstractChange::RemoveRule { .. } => None,
            })
            .collect();
        if candidate_ids.is_empty() {
            return;
        }
        // Signal-derived and FlowSpec-derived rules share each owner's
        // egress port, so the audit sees the union of both planes.
        let mut desired = self.controller.desired_rules();
        desired.extend(self.flowspec.desired_rules());
        let audit = audit_batch(
            &self.ixp.fabric,
            |a| self.manager.owner_port(a),
            &desired,
            &candidate_ids,
        );
        for (rule_id, rejection) in &audit.rejected {
            if !self.controller.rule_refused(*rule_id) {
                self.flowspec.rule_refused(*rule_id);
            }
            changes.retain(|c| !matches!(c, AbstractChange::AddRule(r) if r.id == *rule_id));
            let (counter, detail) = match rejection {
                AuditRejection::Shadowed { by } => (
                    "analyze.rejected_shadowed",
                    (
                        "by".to_string(),
                        by.map_or("union".into(), |b| b.to_string()),
                    ),
                ),
                AuditRejection::Conflict { with } => (
                    "analyze.rejected_conflict",
                    ("with".to_string(), with.to_string()),
                ),
                AuditRejection::EmptyMatch => (
                    "analyze.rejected_empty",
                    ("reason".to_string(), "empty-match".to_string()),
                ),
                AuditRejection::Duplicate { of } => (
                    "analyze.rejected_duplicate",
                    ("of".to_string(), of.to_string()),
                ),
            };
            self.obs.registry.counter_inc(counter);
            self.obs.event(
                now_us,
                "analyze.rejected",
                vec![("rule_id".to_string(), rule_id.to_string()), detail],
            );
        }
        rejections.extend(audit.rejected.iter().copied());
        let reg = &mut self.obs.registry;
        reg.counter_inc("analyze.preadmit.batches");
        reg.counter_add(
            "analyze.preadmit.mac_needed",
            audit.preadmit.mac_needed as u64,
        );
        reg.counter_add(
            "analyze.preadmit.l34_needed",
            audit.preadmit.l34_needed as u64,
        );
        if !audit.fits() {
            reg.counter_inc("analyze.preadmit.would_exhaust");
        }
    }

    /// A member withdraws its signal (attack over): the /32 is withdrawn
    /// and every rule attached to it is queued for removal.
    pub fn member_withdraw(&mut self, member: Asn, victim: Prefix, now_us: u64) -> SignalOutcome {
        let update = match victim {
            Prefix::V4(_) => stellar_bgp::update::UpdateMessage::withdraw(victim),
            Prefix::V6(_) => stellar_bgp::update::UpdateMessage {
                withdrawn: vec![],
                attrs: vec![stellar_bgp::attr::PathAttribute::MpUnreach {
                    afi: stellar_bgp::types::Afi::Ipv6,
                    safi: stellar_bgp::types::Safi::Unicast,
                    nlri: vec![stellar_bgp::nlri::Nlri::plain(victim)],
                }],
                nlri: vec![],
            },
        };
        let rs_out = self.ixp.route_server.handle_update(member, &update, now_us);
        let mut outcome = SignalOutcome::default();
        for cu in &rs_out.controller_updates {
            let changes = self.controller.process_update(cu);
            outcome.queued_changes += changes.len();
            self.enqueue_changes(changes, now_us);
        }
        outcome
    }

    /// Pumps the configuration queue: fires any scripted faults due by
    /// `now_us`, dequeues what the token bucket allows and applies it to
    /// the fabric. Refusals go through the failure-handling ladder
    /// (retry → degrade → dead-letter) instead of being dropped. Returns
    /// how many changes were applied.
    pub fn pump(&mut self, now_us: u64) -> usize {
        self.poll_faults(now_us);
        // The validation oracle fails closed for exactly as long as its
        // brownout window is armed.
        let oracle_down = self.injector.validation_faulted(now_us);
        self.ixp.route_server.policy_mut().oracle_down = oracle_down;
        self.release_parked(now_us);
        self.retry_pending_validation(now_us);
        let ready = self.queue.dequeue_ready_queued(now_us);
        let mut applied = 0;
        for qc in ready {
            // A brownout makes the configuration interface unavailable:
            // the change fails without touching the fabric.
            let result = if self.injector.install_faulted(now_us) {
                Err(AdmissionError::Transient)
            } else {
                self.manager.apply(&mut self.ixp.fabric, &qc.change, now_us)
            };
            match result {
                Ok(()) => {
                    applied += 1;
                    // End-to-end signal→installed latency: `enqueued_us`
                    // survives retries, so this is the member-visible
                    // reaction time, backoff included.
                    self.obs
                        .registry
                        .observe("core.signal_to_install_us", now_us - qc.enqueued_us);
                    let rule_id = match &qc.change {
                        AbstractChange::AddRule(r) => {
                            self.obs.registry.counter_inc("core.installs");
                            r.id
                        }
                        AbstractChange::RemoveRule { rule_id, .. } => {
                            self.obs.registry.counter_inc("core.removals");
                            *rule_id
                        }
                    };
                    if qc.attempts > 0 {
                        // Closes the retry episode opened at first failure.
                        self.obs.span_end("retry", rule_id, now_us);
                    }
                }
                Err(e) => self.handle_failure(qc, e, now_us),
            }
        }
        if self.watchdog.due(now_us) {
            self.watchdog_check(now_us);
        }
        applied
    }

    /// Releases parked dead-letter requeues whose cool-off has expired
    /// back into the queue with a fresh retry budget.
    fn release_parked(&mut self, now_us: u64) {
        if self.parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked);
        let (due, keep): (Vec<_>, Vec<_>) =
            parked.into_iter().partition(|p| p.release_at_us <= now_us);
        self.parked = keep;
        for p in due {
            self.obs.registry.counter_inc("deadletter.requeued");
            self.watchdog.note_activity(now_us);
            self.queue.readmit(p.qc, now_us);
        }
    }

    /// Fires scripted faults due by `now_us` and reacts to them.
    fn poll_faults(&mut self, now_us: u64) {
        for ev in self.injector.poll(now_us) {
            self.log.push(RecoveryEvent::FaultInjected {
                at_us: ev.at_us,
                kind: ev.kind,
            });
            self.obs
                .registry
                .counter_inc(&format!("core.faults.{}", ev.kind.label()));
            let mut fields = Vec::new();
            match ev.kind {
                FaultKind::InstallBrownout { duration_us }
                | FaultKind::ValidationBrownout { duration_us } => {
                    fields.push(("duration_us".to_string(), duration_us.to_string()));
                }
                FaultKind::DeliveryChaos {
                    duration_us,
                    max_delay_us,
                } => {
                    fields.push(("duration_us".to_string(), duration_us.to_string()));
                    fields.push(("max_delay_us".to_string(), max_delay_us.to_string()));
                }
                FaultKind::PeerDown { peer } | FaultKind::PeerUp { peer } => {
                    fields.push(("peer".to_string(), peer.0.to_string()));
                }
                FaultKind::FlowSpecCorrupt { peer, salt } => {
                    fields.push(("peer".to_string(), peer.0.to_string()));
                    fields.push(("salt".to_string(), salt.to_string()));
                }
                FaultKind::RouterRestart | FaultKind::SessionDown | FaultKind::SessionUp => {}
            }
            self.obs
                .event(ev.at_us, &format!("fault.{}", ev.kind.label()), fields);
            self.watchdog.note_activity(ev.at_us.max(now_us));
            self.apply_fault(&ev, now_us);
        }
    }

    fn apply_fault(&mut self, ev: &FaultEvent, now_us: u64) {
        match ev.kind {
            // Brownout windows are tracked by the injector itself and
            // consulted on every apply.
            FaultKind::InstallBrownout { .. } => {}
            FaultKind::RouterRestart => {
                let rules_lost = self.ixp.fabric.restart(now_us);
                self.log.push(RecoveryEvent::RouterRestarted {
                    at_us: now_us,
                    rules_lost,
                });
                self.obs.event(
                    now_us,
                    "router_restarted",
                    vec![("rules_lost".to_string(), rules_lost.to_string())],
                );
            }
            FaultKind::SessionDown => {
                // The controller can no longer trust its feed: fall back
                // to plain forwarding by removing every rule (§4.1.2).
                // Both signaling planes ride the same iBGP session, so
                // the FlowSpec plane flushes too.
                let mut removals = self.controller.session_down();
                removals.extend(self.flowspec.flush());
                self.enqueue_changes(removals, now_us);
            }
            FaultKind::SessionUp => {
                // Resynchronize from the route server's live RIB: the
                // routes (and their blackholing communities) survived the
                // controller-side flap.
                let updates = self.ixp.route_server.controller_resync();
                let mut changes = 0;
                for u in &updates {
                    let emitted = self.controller.process_update(u);
                    changes += emitted.len();
                    self.enqueue_changes(emitted, now_us);
                }
                // The FlowSpec RIB also survived at the route server:
                // re-lower every accepted rule (fresh ids, same specs).
                let accepted: Vec<_> = self
                    .ixp
                    .route_server
                    .flowspec_routes()
                    .into_iter()
                    .cloned()
                    .collect();
                for acc in accepted {
                    if let Ok(emitted) = self.flowspec.install(&acc) {
                        changes += emitted.len();
                        self.enqueue_changes(emitted, now_us);
                    }
                }
                self.log.push(RecoveryEvent::Resynced {
                    at_us: now_us,
                    changes,
                });
                self.obs.event(
                    now_us,
                    "resynced",
                    vec![("changes".to_string(), changes.to_string())],
                );
            }
            FaultKind::PeerDown { peer } => {
                // The peer's eBGP session to the route server drops: its
                // unicast routes (signals included) and FlowSpec rules
                // flush, and the controller diff tears the derived
                // hardware rules down.
                let rs_out = self.ixp.route_server.peer_down(peer);
                for cu in &rs_out.controller_updates {
                    let emitted = self.controller.process_update(cu);
                    self.enqueue_changes(emitted, now_us);
                }
                for (owner, flow) in &rs_out.flowspec_withdrawn {
                    let removals = self.flowspec.withdraw(*owner, flow);
                    self.enqueue_changes(removals, now_us);
                }
            }
            FaultKind::PeerUp { peer } => {
                // The session re-establishes and the peer re-announces
                // its plain prefixes. Blackholing state does not survive
                // an eBGP flap: the member must re-signal (communities
                // and FlowSpec rules are per-announcement state).
                let prefixes = self
                    .ixp
                    .members
                    .get(&peer)
                    .map(|m| m.prefixes.clone())
                    .unwrap_or_default();
                for prefix in prefixes {
                    let update = self.ixp.announcement(peer, prefix);
                    let rs_out = self.ixp.route_server.handle_update(peer, &update, now_us);
                    for cu in &rs_out.controller_updates {
                        let emitted = self.controller.process_update(cu);
                        self.enqueue_changes(emitted, now_us);
                    }
                }
            }
            FaultKind::FlowSpecCorrupt { peer, salt } => {
                // A corrupted/truncated NLRI arrives on the wire. The
                // codec must refuse it whole — the `(peer, wire-bytes)`
                // RIB takes nothing, desired state does not move.
                let wire = self
                    .ixp
                    .route_server
                    .flowspec_routes()
                    .first()
                    .and_then(|acc| acc.flow.to_wire().ok())
                    // No live rule to mangle: a hand-rolled fragment
                    // (dst-prefix component with a truncated prefix body).
                    .unwrap_or_else(|| vec![0x06, 0x01, 0x20, 100, 10, 10, 10]);
                let bad = stellar_bgp::flowspec::corrupt_wire(&wire, salt);
                let rs_out = self.ixp.route_server.handle_flowspec_wire(
                    peer,
                    stellar_bgp::types::Afi::Ipv4,
                    &bad,
                    &[],
                );
                self.admit_flowspec_output(peer, rs_out, &[], 0, now_us);
            }
            FaultKind::ValidationBrownout { .. } => {
                // Window tracked by the injector; flip the oracle down
                // immediately so even a same-tick announcement sees it.
                self.ixp.route_server.policy_mut().oracle_down = true;
            }
            // Window tracked by the injector and consulted on every
            // enqueue.
            FaultKind::DeliveryChaos { .. } => {}
        }
    }

    /// The failure-handling ladder for a refused change.
    fn handle_failure(&mut self, qc: QueuedChange, error: AdmissionError, now_us: u64) {
        // Removing a rule that is not installed: the desired state is
        // already reality (e.g. a restart wiped it first) — idempotent
        // success, not a failure.
        if error == AdmissionError::NoSuchRule
            && matches!(qc.change, AbstractChange::RemoveRule { .. })
        {
            return;
        }
        let rule_id = match &qc.change {
            AbstractChange::AddRule(r) => r.id,
            AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
        };
        if qc.attempts == 0 {
            // First refusal opens the retry episode; it closes on the
            // eventual successful apply or is abandoned at dead-letter.
            self.obs.span_start("retry", rule_id, now_us);
        }
        let attempts = qc.attempts + 1; // counting this one
        let retryable = error.is_transient() || error.is_capacity() || error.is_degradable();
        if retryable && attempts < self.retry.max_attempts {
            let delay = self.retry.backoff_us(attempts);
            self.log.push(RecoveryEvent::Retried {
                at_us: now_us,
                rule_id,
                attempt: attempts,
                error,
            });
            self.obs.registry.counter_inc("core.retries");
            self.watchdog.note_activity(now_us);
            self.queue.requeue(qc, now_us + delay);
            return;
        }
        // FlowSpec installs have no degradation ladder to absorb an
        // overloaded fabric, so a retry-exhausted but still-retryable
        // refusal gets a bounded second life: park with a long cool-off
        // and requeue with a fresh retry budget. Desired state is kept —
        // the rule is still wanted, just not installable right now.
        let flowspec_add = matches!(&qc.change, AbstractChange::AddRule(r) if r.signal().is_none());
        if retryable && flowspec_add && qc.requeues < self.deadletter_requeues {
            let requeue = qc.requeues + 1;
            self.log.push(RecoveryEvent::Requeued {
                at_us: now_us,
                rule_id,
                requeue,
            });
            self.obs.registry.counter_inc("deadletter.parked");
            self.obs.spans.abandon("retry", rule_id);
            self.watchdog.note_activity(now_us);
            self.parked.push(ParkedChange {
                qc,
                release_at_us: now_us + self.retry.max_backoff_us,
            });
            return;
        }
        // Retry budget exhausted (or the error was permanent). TCAM
        // exhaustion gets one more option: trade precision for fit.
        if error.is_degradable()
            && matches!(&qc.change, AbstractChange::AddRule(r) if r.signal().is_none())
        {
            // FlowSpec-derived rules have no degradation ladder: widening
            // a lowered spec would silently match traffic the member
            // never asked to filter — exactly what exact lowering
            // forbids. Straight to dead-letter, desired state dropped.
            if let AbstractChange::AddRule(rule) = &qc.change {
                self.flowspec.rule_refused(rule.id);
            }
        } else if error.is_degradable() {
            if let AbstractChange::AddRule(rule) = &qc.change {
                // Obligation (b) needs the owner's table and the old
                // spec as they were *before* the ladder rewrites
                // desired state.
                let ladder_owner = rule.owner;
                let old_spec = rule.match_spec();
                let before = self.owner_audit_table(ladder_owner);
                match self.controller.degrade_rule(rule.id) {
                    DegradeOutcome::Degraded(coarser) => {
                        if let Some(to) = coarser.signal() {
                            self.log.push(RecoveryEvent::Degraded {
                                at_us: now_us,
                                rule_id: coarser.id,
                                to,
                            });
                        }
                        self.obs.registry.counter_inc("core.degrades");
                        self.obs.spans.abandon("retry", rule_id);
                        let after = self.owner_audit_table(ladder_owner);
                        self.check_ladder_obligation(
                            now_us, coarser.id, &before, &after, &old_spec,
                        );
                        // Fresh change, fresh retry budget: the ladder
                        // can descend again if the coarser rule still
                        // does not fit.
                        self.queue.enqueue(AbstractChange::AddRule(coarser), now_us);
                        return;
                    }
                    // Covered by a surviving coarser rule, or already
                    // withdrawn: nothing left to install.
                    DegradeOutcome::Merged | DegradeOutcome::Unknown => return,
                    // Bottom of the ladder: fall through to dead-letter.
                    DegradeOutcome::Exhausted => {}
                }
            }
        } else if let AbstractChange::AddRule(rule) = &qc.change {
            // Permanent refusal: drop the rule from desired state so
            // rule_count()/telemetry reflect hardware reality and the
            // reconciler stops trying to repair it.
            if !self.controller.rule_refused(rule.id) {
                self.flowspec.rule_refused(rule.id);
            }
        }
        self.log.push(RecoveryEvent::DeadLettered {
            at_us: now_us,
            rule_id,
            error,
        });
        self.obs.registry.counter_inc("core.dead_letters");
        self.obs.spans.abandon("retry", rule_id);
        self.obs.event(
            now_us,
            "dead_letter",
            vec![
                ("rule_id".to_string(), rule_id.to_string()),
                ("error".to_string(), format!("{error:?}")),
                ("attempts".to_string(), attempts.to_string()),
            ],
        );
        let evicted = self.dead_letters.push(DeadLetter {
            change: qc.change,
            error,
            attempts,
            at_us: now_us,
        });
        if evicted > 0 {
            self.obs.registry.counter_add("deadletter.evicted", evicted);
        }
    }

    /// One owner's desired table across both signaling planes, in the
    /// audit shape the exact verifier consumes.
    fn owner_audit_table(&self, owner: Asn) -> Vec<stellar_classify::AuditRule> {
        let mut desired = self.controller.desired_rules();
        desired.extend(self.flowspec.desired_rules());
        proof::owner_table(&desired, owner)
    }

    /// Obligation (b): proves one degradation-ladder step monotone —
    /// the dropped set may only widen, and shaped traffic the replaced
    /// spec didn't cover must be untouched. A proven violation is
    /// recorded like any watchdog invariant break; budget exhaustion
    /// only bumps `verify.ladder.unverified` (exact-or-nothing, never a
    /// sampled verdict).
    fn check_ladder_obligation(
        &mut self,
        now_us: u64,
        rule_id: u64,
        before: &[stellar_classify::AuditRule],
        after: &[stellar_classify::AuditRule],
        old_spec: &stellar_classify::MatchSpec,
    ) {
        self.obs.registry.counter_inc("verify.ladder.checked");
        let dom = stellar_classify::Domain::canonical();
        match proof::check_ladder_step(before, after, old_spec, &dom, DEFAULT_VERIFY_BUDGET) {
            Ok(report) if report.is_monotone() => {
                let widened = report.widened_keys.min(u128::from(u64::MAX)) as u64;
                self.obs
                    .registry
                    .counter_add("verify.ladder.widened_keys", widened);
            }
            Ok(report) => {
                let detail = if let Some(r) = report.shrunk {
                    format!("rule_id={rule_id} dropped set shrank ({} keys)", r.keys)
                } else if let Some(r) = report.shaped_touched {
                    format!(
                        "rule_id={rule_id} uncovered shaped traffic touched ({} keys)",
                        r.keys
                    )
                } else {
                    format!("rule_id={rule_id}")
                };
                let v = self
                    .watchdog
                    .record(now_us, Invariant::LadderMonotone, detail);
                self.obs.registry.counter_inc("watchdog.violations");
                self.obs
                    .registry
                    .counter_inc("watchdog.violations.ladder_monotone");
                self.obs.event(
                    now_us,
                    "watchdog.violation",
                    vec![
                        (
                            "invariant".to_string(),
                            Invariant::LadderMonotone.label().to_string(),
                        ),
                        ("detail".to_string(), v.detail),
                    ],
                );
            }
            Err(_) => {
                self.obs.registry.counter_inc("verify.ladder.unverified");
            }
        }
    }

    /// One watchdog pass: evaluates the invariant catalogue against live
    /// state and records every violation (flight recorder event with a
    /// deterministic label, `watchdog.violations.*` counters, bounded
    /// in-memory record). `pump` runs this on the configured cadence;
    /// call it directly for a final end-of-run check. Returns how many
    /// violations this pass found.
    pub fn watchdog_check(&mut self, now_us: u64) -> usize {
        self.watchdog.begin_check(now_us);
        let quiet = self.watchdog.quiet(now_us);
        let mut found: Vec<(Invariant, String)> = Vec::new();

        // Ledger conservation: installs − removals must equal what the
        // hardware holds, at all times (the managers and the fabric keep
        // double-entry books).
        let (installs, removals) = self.ixp.fabric.rule_ledger();
        let total = self.ixp.fabric.total_rules() as u64;
        if installs.checked_sub(removals) != Some(total) {
            found.push((
                Invariant::LedgerConservation,
                format!("installs={installs} removals={removals} hardware={total}"),
            ));
        }
        if quiet && self.manager.installed_rules() as u64 != total {
            found.push((
                Invariant::LedgerConservation,
                format!(
                    "manager={} hardware={total}",
                    self.manager.installed_rules()
                ),
            ));
        }
        if quiet && total == 0 {
            for (pop, r) in self.ixp.fabric.routers().iter().enumerate() {
                let tcam = r.tcam();
                if tcam.l34_used() != 0 || tcam.mac_used() != 0 {
                    found.push((
                        Invariant::LedgerConservation,
                        format!(
                            "pop={pop} empty table but tcam l34={} mac={}",
                            tcam.l34_used(),
                            tcam.mac_used()
                        ),
                    ));
                }
            }
        }

        // RIB ↔ plane consistency: every lowered FlowSpec key must still
        // be backed by a route-server RIB entry. (The reverse — RIB entry
        // not lowered — is legitimate: lowering or audit refused it.)
        for (owner, wire) in self.flowspec.keys() {
            if !self.ixp.route_server.flowspec_contains(*owner, wire) {
                found.push((
                    Invariant::RibPlaneConsistency,
                    format!("plane key owner={} absent from rib", owner.0),
                ));
            }
        }

        if quiet {
            // Convergence: past the grace bound, desired must equal
            // installed with nothing in flight.
            if !self.is_converged() {
                found.push((
                    Invariant::Convergence,
                    format!(
                        "backlog={} parked={} pending_validation={}",
                        self.queue.backlog(),
                        self.parked.len(),
                        self.pending_validation.len()
                    ),
                ));
            }
            // Orphan rules: nothing in hardware without a desired-state
            // owner or an in-flight removal.
            let mut wanted: HashSet<u64> = self
                .controller
                .desired_rules()
                .iter()
                .map(|r| r.id)
                .collect();
            wanted.extend(self.flowspec.desired_rules().iter().map(|r| r.id));
            for change in self.queue.pending() {
                wanted.insert(match change {
                    AbstractChange::AddRule(r) => r.id,
                    AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
                });
            }
            for p in &self.parked {
                wanted.insert(match &p.qc.change {
                    AbstractChange::AddRule(r) => r.id,
                    AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
                });
            }
            for (_, port) in self.ixp.fabric.ports() {
                for rule in port.policy.rules() {
                    if !wanted.contains(&rule.id) {
                        found.push((
                            Invariant::OrphanRule,
                            format!("rule_id={} has no desired-state owner", rule.id),
                        ));
                    }
                }
            }

            // Obligation (c), placement soundness: once converged, every
            // occupied port's installed table must be semantically equal
            // to its owner's desired table over that port's traffic —
            // proven exactly, per port, with witness-backed differences.
            // (While changes are in flight the tables legitimately
            // diverge; convergence is the precondition of the equation.)
            if self.is_converged() {
                let mut desired = self.controller.desired_rules();
                desired.extend(self.flowspec.desired_rules());
                let placement = proof::check_placement(
                    &self.ixp.fabric,
                    &desired,
                    |a| self.manager.owner_port(a),
                    DEFAULT_VERIFY_BUDGET,
                );
                self.obs.registry.counter_add(
                    "verify.placement.ports_checked",
                    placement.ports_checked as u64,
                );
                if placement.unverified > 0 {
                    self.obs
                        .registry
                        .counter_add("verify.placement.unverified", placement.unverified as u64);
                }
                for m in &placement.mismatches {
                    found.push((
                        Invariant::PlacementSound,
                        format!(
                            "port={} installed={} desired={} differing_keys={}",
                            m.port.0, m.region.outcome_a, m.region.outcome_b, m.differing_keys
                        ),
                    ));
                }
                if placement.unplaced > 0 {
                    found.push((
                        Invariant::PlacementSound,
                        format!("unplaced_desired_rules={}", placement.unplaced),
                    ));
                }
            }
        }

        // Dead-letter drainage: a parked requeue sitting past its release
        // time (plus pump-cadence slack) means the release machinery
        // stalled.
        for p in &self.parked {
            if now_us > p.release_at_us.saturating_add(PARKED_OVERDUE_SLACK_US) {
                let rule_id = match &p.qc.change {
                    AbstractChange::AddRule(r) => r.id,
                    AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
                };
                found.push((
                    Invariant::DeadLetterDrain,
                    format!("rule_id={rule_id} parked past release"),
                ));
            }
        }

        let count = found.len();
        for (invariant, detail) in found {
            let v = self.watchdog.record(now_us, invariant, detail);
            self.obs.registry.counter_inc("watchdog.violations");
            self.obs
                .registry
                .counter_inc(&format!("watchdog.violations.{}", invariant.label()));
            self.obs.event(
                now_us,
                "watchdog.violation",
                vec![
                    ("invariant".to_string(), invariant.label().to_string()),
                    ("detail".to_string(), v.detail),
                ],
            );
        }
        count
    }

    /// Reconciliation: diffs the controller's desired rule set against
    /// what is actually installed in hardware and queues repairs —
    /// re-adds for desired rules that vanished (edge-router restart),
    /// removals for hardware rules no longer desired. Changes already in
    /// flight in the queue are not repaired twice. Run this periodically;
    /// it is idempotent once the system has converged.
    pub fn reconcile(&mut self, now_us: u64) -> ReconcileReport {
        self.poll_faults(now_us);
        let mut report = ReconcileReport {
            pruned: self.manager.prune_vanished(&self.ixp.fabric).len(),
            ..Default::default()
        };
        // Ground truth: what the hardware holds, per rule id.
        let mut installed: BTreeMap<u64, PortId> = BTreeMap::new();
        for (port_id, port) in self.ixp.fabric.ports() {
            for rule in port.policy.rules() {
                installed.insert(rule.id, port_id);
            }
        }
        // Work already on its way (queued, deferred, or parked in the
        // dead-letter lot awaiting requeue).
        let mut in_flight: HashSet<u64> = HashSet::new();
        for change in self.queue.pending() {
            in_flight.insert(match change {
                AbstractChange::AddRule(r) => r.id,
                AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
            });
        }
        for p in &self.parked {
            in_flight.insert(match &p.qc.change {
                AbstractChange::AddRule(r) => r.id,
                AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
            });
        }
        let mut desired = self.controller.desired_rules();
        desired.extend(self.flowspec.desired_rules());
        let desired_ids: HashSet<u64> = desired.iter().map(|r| r.id).collect();
        // Desired but missing from hardware: re-queue the install.
        for rule in desired {
            if !installed.contains_key(&rule.id) && !in_flight.contains(&rule.id) {
                self.queue.enqueue(AbstractChange::AddRule(rule), now_us);
                report.adds += 1;
            }
        }
        // Installed but not desired: queue the removal (owner looked up
        // from the port the rule sits on).
        for (rule_id, port_id) in installed {
            if desired_ids.contains(&rule_id) || in_flight.contains(&rule_id) {
                continue;
            }
            let owner = self
                .ixp
                .fabric
                .port(port_id)
                .map(|p| Asn(p.member_asn))
                .unwrap_or(Asn(0));
            self.queue
                .enqueue(AbstractChange::RemoveRule { rule_id, owner }, now_us);
            report.removes += 1;
        }
        self.obs.registry.counter_inc("core.reconcile.passes");
        self.obs
            .registry
            .counter_add("core.reconcile.adds", report.adds as u64);
        self.obs
            .registry
            .counter_add("core.reconcile.removes", report.removes as u64);
        self.obs
            .registry
            .counter_add("core.reconcile.pruned", report.pruned as u64);
        if !report.is_clean() {
            self.watchdog.note_activity(now_us);
            self.log.push(RecoveryEvent::RepairsQueued {
                at_us: now_us,
                adds: report.adds,
                removes: report.removes,
                pruned: report.pruned,
            });
            // The divergence window opens at the first dirty pass (span
            // starts are first-wins, so repeat dirty passes keep the
            // original open time) and closes at the next clean pass.
            self.obs.span_start("reconcile_repair", 0, now_us);
        } else {
            self.obs.span_end("reconcile_repair", 0, now_us);
        }
        report
    }

    /// Whether desired state and hardware state agree and nothing is in
    /// flight — the convergence predicate of the fault-soak tests.
    pub fn is_converged(&self) -> bool {
        if self.queue.backlog() != 0
            || !self.parked.is_empty()
            || !self.pending_validation.is_empty()
        {
            return false;
        }
        let mut installed: HashSet<u64> = HashSet::new();
        for (_, port) in self.ixp.fabric.ports() {
            for rule in port.policy.rules() {
                installed.insert(rule.id);
            }
        }
        let mut desired = self.controller.desired_rules();
        desired.extend(self.flowspec.desired_rules());
        desired.len() == installed.len() && desired.iter().all(|r| installed.contains(&r.id))
    }

    /// Pushes one tick of traffic through the fabric.
    pub fn traffic_tick(
        &mut self,
        offers: &[OfferedAggregate],
        tick_end_us: u64,
        tick_us: u64,
    ) -> BTreeMap<PortId, TickResult> {
        self.ixp.fabric.process_tick(offers, tick_end_us, tick_us)
    }

    /// Telemetry for the given rules (§3.1).
    pub fn telemetry(&self, rule_ids: &[u64]) -> Vec<RuleTelemetry> {
        rule_telemetry(&self.ixp.fabric, &self.manager, rule_ids)
    }

    /// Rules currently active in hardware.
    pub fn active_rules(&self) -> usize {
        self.manager.installed_rules()
    }

    /// Scrapes every subsystem's gauges into the metrics registry: TCAM
    /// occupancy and per-port queue counters from the fabric, import
    /// counters from the route server, backlog depths from the
    /// configuration queue. Call before exporting a snapshot.
    pub fn observe(&mut self, _now_us: u64) {
        self.ixp.fabric.observe(&mut self.obs.registry);
        self.ixp.route_server.observe(&mut self.obs.registry);
        let reg = &mut self.obs.registry;
        reg.gauge_set("core.queue.backlog", self.queue.backlog() as i64);
        reg.gauge_set("core.queue.deferred", self.queue.deferred_len() as i64);
        reg.gauge_set("core.active_rules", self.manager.installed_rules() as i64);
        reg.gauge_set("core.flowspec_rules", self.flowspec.rule_count() as i64);
        reg.gauge_set("core.dead_letters", self.dead_letters.len() as i64);
        reg.gauge_set("core.parked", self.parked.len() as i64);
        reg.gauge_set(
            "core.pending_validation",
            self.pending_validation.len() as i64,
        );
        reg.counter_set("watchdog.checks", self.watchdog.checks());
    }

    /// Scrapes the gauges and writes the full snapshot to `path` — the
    /// `results/metrics_*.json` artifact the examples and the CI
    /// determinism gate consume.
    pub fn export_metrics(
        &mut self,
        path: impl AsRef<std::path::Path>,
        now_us: u64,
    ) -> std::io::Result<()> {
        self.observe(now_us);
        self.obs.export(path, now_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_dataplane::hardware::HardwareInfoBase;
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::flow::FlowKey;
    use stellar_net::mac::MacAddr;
    use stellar_net::prefix::{Ipv4Prefix, Prefix};
    use stellar_net::proto::IpProtocol;
    use stellar_sim::topology::{generic_members, MemberSpec};

    fn system() -> StellarSystem {
        let mut specs = generic_members(64501, 9);
        specs.insert(
            0,
            MemberSpec {
                asn: 64500,
                capacity_bps: 1_000_000_000,
                prefixes: vec![Prefix::V4(
                    Ipv4Prefix::new(Ipv4Address::new(100, 10, 10, 0), 24).unwrap(),
                )],
            },
        );
        let ixp = IxpTopology::build(&specs, HardwareInfoBase::lab_switch());
        StellarSystem::new(ixp, 100.0)
    }

    fn victim() -> Prefix {
        "100.10.10.10/32".parse().unwrap()
    }

    fn ntp_offer(bytes: u64) -> OfferedAggregate {
        OfferedAggregate {
            key: FlowKey {
                src_mac: MacAddr::for_member(64505, 1),
                dst_mac: MacAddr::for_member(64500, 1),
                src_ip: IpAddress::V4(Ipv4Address::new(198, 51, 100, 7)),
                dst_ip: IpAddress::V4(Ipv4Address::new(100, 10, 10, 10)),
                protocol: IpProtocol::UDP,
                src_port: 123,
                dst_port: 40000,
                ..FlowKey::default()
            },
            bytes,
            packets: bytes / 1400 + 1,
        }
    }

    #[test]
    fn end_to_end_signal_installs_rule_and_drops_attack() {
        let mut sys = system();
        let out = sys.member_signal(Asn(64500), victim(), &[StellarSignal::drop_udp_src(123)], 0);
        assert!(out.rejections.is_empty(), "{:?}", out.rejections);
        assert_eq!(out.queued_changes, 1);
        assert_eq!(sys.active_rules(), 0); // not yet pumped
        assert_eq!(sys.pump(0), 1);
        assert_eq!(sys.active_rules(), 1);

        let results = sys.traffic_tick(&[ntp_offer(1_000_000)], 1_000_000, 1_000_000);
        let port = sys.ixp.member(Asn(64500)).unwrap().port;
        assert_eq!(results[&port].counters.dropped_bytes, 1_000_000);
        assert_eq!(results[&port].counters.forwarded_bytes, 0);

        // Telemetry shows the discarded volume.
        let t = sys.telemetry(&[1]);
        assert_eq!(t[0].discarded_bytes, 1_000_000);
    }

    #[test]
    fn withdraw_removes_rule_and_traffic_flows_again() {
        let mut sys = system();
        sys.member_signal(Asn(64500), victim(), &[StellarSignal::drop_udp_src(123)], 0);
        sys.pump(0);
        assert_eq!(sys.active_rules(), 1);
        let out = sys.member_withdraw(Asn(64500), victim(), 1_000_000);
        assert_eq!(out.queued_changes, 1);
        sys.pump(1_000_000);
        assert_eq!(sys.active_rules(), 0);
        let results = sys.traffic_tick(&[ntp_offer(500)], 2_000_000, 1_000_000);
        let port = sys.ixp.member(Asn(64500)).unwrap().port;
        assert_eq!(results[&port].counters.forwarded_bytes, 500);
    }

    #[test]
    fn signal_for_unowned_prefix_is_rejected() {
        let mut sys = system();
        // 64501 does not own 100.10.10.0/24.
        let out = sys.member_signal(Asn(64501), victim(), &[StellarSignal::drop_udp_src(123)], 0);
        assert_eq!(out.queued_changes, 0);
        assert!(!out.rejections.is_empty());
        sys.pump(0);
        assert_eq!(sys.active_rules(), 0);
    }

    #[test]
    fn queue_rate_limits_installation() {
        let mut sys = system();
        // Signal five distinct rules at t=0 with a slow queue.
        sys.queue = ConfigChangeQueue::production(1.0); // 1/s, MBS 2
        let signals: Vec<StellarSignal> = [123u16, 53, 389, 11211, 19]
            .iter()
            .map(|p| StellarSignal::drop_udp_src(*p))
            .collect();
        let out = sys.member_signal(Asn(64500), victim(), &signals, 0);
        assert_eq!(out.queued_changes, 5);
        assert_eq!(sys.pump(0), 2); // MBS
        assert_eq!(sys.pump(1_000_000), 1);
        assert_eq!(sys.pump(2_000_000), 1);
        assert_eq!(sys.pump(3_000_000), 1);
        assert_eq!(sys.active_rules(), 5);
    }

    #[test]
    fn shadowed_signal_is_refused_by_the_audit() {
        let mut sys = system();
        sys.member_signal(Asn(64500), victim(), &[StellarSignal::drop_all()], 0);
        assert_eq!(sys.pump(0), 1);
        // Escalating to a port-scoped drop on top of drop-all: the new
        // rule can never be first-match and is refused at signal time.
        let out = sys.member_signal(
            Asn(64500),
            victim(),
            &[StellarSignal::drop_all(), StellarSignal::drop_udp_src(123)],
            1,
        );
        assert_eq!(out.queued_changes, 0);
        assert_eq!(
            out.audit_rejections,
            vec![(2, crate::audit::AuditRejection::Shadowed { by: Some(1) })]
        );
        assert_eq!(sys.obs.registry.counter("analyze.rejected_shadowed"), 1);
        assert_eq!(sys.obs.registry.counter("analyze.rejected_conflict"), 0);
        sys.pump(1);
        assert_eq!(sys.active_rules(), 1);
        // Desired state dropped the refused rule: the system is converged
        // and the reconciler will not resurrect it.
        assert!(sys.is_converged());
        assert!(sys.reconcile(2).is_clean());
    }

    #[test]
    fn conflicting_signal_is_refused_by_the_audit() {
        let mut sys = system();
        sys.member_signal(
            Asn(64500),
            victim(),
            &[StellarSignal::shape_udp_src(123, 200)],
            0,
        );
        sys.pump(0);
        // A drop on UDP *dst* 80 crosses the installed shape on UDP src
        // 123 (packets with src 123 AND dst 80 hit both; each rule also
        // matches traffic the other misses): refused as a conflict.
        let drop_dst = crate::signal::StellarSignal {
            kind: crate::signal::MatchKind::UdpDstPort,
            port: 80,
            action: crate::rule::RuleAction::Drop,
        };
        let out = sys.member_signal(
            Asn(64500),
            victim(),
            &[StellarSignal::shape_udp_src(123, 200), drop_dst],
            1,
        );
        assert_eq!(out.queued_changes, 0);
        assert_eq!(
            out.audit_rejections,
            vec![(2, crate::audit::AuditRejection::Conflict { with: 1 })]
        );
        assert_eq!(sys.obs.registry.counter("analyze.rejected_conflict"), 1);
        sys.pump(1);
        assert_eq!(sys.active_rules(), 1);
    }

    #[test]
    fn disjoint_signals_pass_the_audit_with_preadmit_accounting() {
        let mut sys = system();
        let out = sys.member_signal(
            Asn(64500),
            victim(),
            &[
                StellarSignal::drop_udp_src(123),
                StellarSignal::drop_udp_src(53),
            ],
            0,
        );
        assert_eq!(out.queued_changes, 2);
        assert!(out.audit_rejections.is_empty());
        assert_eq!(sys.obs.registry.counter("analyze.preadmit.batches"), 1);
        // Two victim-scoped UDP-src rules: 3 L3-L4 criteria each.
        assert_eq!(sys.obs.registry.counter("analyze.preadmit.l34_needed"), 6);
        assert_eq!(
            sys.obs.registry.counter("analyze.preadmit.would_exhaust"),
            0
        );
        sys.pump(0);
        assert_eq!(sys.active_rules(), 2);
    }

    fn fs_flow() -> FlowSpec {
        use stellar_bgp::flowspec::{Component, NumericOp};
        FlowSpec::new(
            stellar_bgp::types::Afi::Ipv4,
            vec![
                Component::DstPrefix(victim()),
                Component::IpProtocol(vec![NumericOp::equals(17)]),
                Component::SrcPort(vec![NumericOp::equals(123)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_flowspec_installs_rule_and_drops_attack() {
        let mut sys = system();
        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        let out = sys.member_flowspec(Asn(64500), fs_flow(), &[drop], 0);
        assert!(out.rejections.is_empty(), "{:?}", out.rejections);
        assert!(out.lowering_errors.is_empty(), "{:?}", out.lowering_errors);
        assert!(out.audit_rejections.is_empty());
        assert_eq!(out.queued_changes, 1);
        assert_eq!(sys.obs.registry.counter("flowspec.accepted"), 1);
        assert_eq!(sys.pump(0), 1);
        assert_eq!(sys.active_rules(), 1);
        assert!(sys.is_converged());

        let results = sys.traffic_tick(&[ntp_offer(1_000_000)], 1_000_000, 1_000_000);
        let port = sys.ixp.member(Asn(64500)).unwrap().port;
        assert_eq!(results[&port].counters.dropped_bytes, 1_000_000);
        assert_eq!(results[&port].counters.forwarded_bytes, 0);
    }

    #[test]
    fn flowspec_from_non_owner_is_rejected() {
        let mut sys = system();
        let drop = ExtendedCommunity::traffic_rate(64501, 0.0);
        // 64501 does not own 100.10.10.0/24.
        let out = sys.member_flowspec(Asn(64501), fs_flow(), &[drop], 0);
        assert_eq!(out.queued_changes, 0);
        assert_eq!(out.rejections.len(), 1);
        assert_eq!(sys.obs.registry.counter("flowspec.rejected_validation"), 1);
        sys.pump(0);
        assert_eq!(sys.active_rules(), 0);
    }

    #[test]
    fn flowspec_withdraw_removes_lowered_rules() {
        let mut sys = system();
        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        sys.member_flowspec(Asn(64500), fs_flow(), &[drop], 0);
        sys.pump(0);
        assert_eq!(sys.active_rules(), 1);
        let out = sys.member_flowspec_withdraw(Asn(64500), fs_flow(), 1_000_000);
        assert_eq!(out.queued_changes, 1);
        sys.pump(1_000_000);
        assert_eq!(sys.active_rules(), 0);
        assert!(sys.is_converged());
    }

    #[test]
    fn flowspec_shadowed_by_signal_rule_is_audit_refused() {
        let mut sys = system();
        // A signal-derived drop-all on the victim's port...
        sys.member_signal(Asn(64500), victim(), &[StellarSignal::drop_all()], 0);
        assert_eq!(sys.pump(0), 1);
        // ...shadows the narrower FlowSpec rule: the two planes audit as
        // one table per owner.
        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        let out = sys.member_flowspec(Asn(64500), fs_flow(), &[drop], 1);
        assert_eq!(out.queued_changes, 0);
        assert_eq!(out.audit_rejections.len(), 1);
        assert_eq!(sys.obs.registry.counter("flowspec.rejected_audit"), 1);
        assert_eq!(sys.obs.registry.counter("flowspec.accepted"), 0);
        sys.pump(1);
        assert_eq!(sys.active_rules(), 1);
        assert!(sys.is_converged());
        assert!(sys.reconcile(2).is_clean());
    }

    #[test]
    fn unlowerable_flowspec_is_counted_not_installed() {
        use stellar_bgp::flowspec::{Component, NumericOp};
        let mut sys = system();
        // dscp > 63 can match no packet (the field is 6 bits wide):
        // lowering refuses it as an empty match.
        let flow = FlowSpec::new(
            stellar_bgp::types::Afi::Ipv4,
            vec![
                Component::DstPrefix(victim()),
                Component::Dscp(vec![NumericOp::new(false, false, true, false, 63)]),
            ],
        )
        .unwrap();
        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        let out = sys.member_flowspec(Asn(64500), flow, &[drop], 0);
        assert_eq!(out.queued_changes, 0);
        assert_eq!(out.lowering_errors.len(), 1);
        assert_eq!(sys.obs.registry.counter("flowspec.rejected_lowering"), 1);
        sys.pump(0);
        assert_eq!(sys.active_rules(), 0);
        assert!(sys.is_converged());
    }

    fn scripted(events: Vec<(u64, FaultKind)>) -> crate::faults::FaultPlan {
        crate::faults::FaultPlan::scripted(
            events
                .into_iter()
                .map(|(at_us, kind)| FaultEvent { at_us, kind })
                .collect(),
        )
    }

    #[test]
    fn corrupt_flowspec_fault_is_refused_without_poisoning_the_rib() {
        let mut sys = system();
        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        sys.member_flowspec(Asn(64500), fs_flow(), &[drop], 0);
        sys.pump(0);
        assert_eq!(sys.active_rules(), 1);
        // Corruptions with both salt parities (bit-flip and truncation).
        sys.inject_faults(scripted(vec![
            (
                1_000_000,
                FaultKind::FlowSpecCorrupt {
                    peer: Asn(64501),
                    salt: 3,
                },
            ),
            (
                1_500_000,
                FaultKind::FlowSpecCorrupt {
                    peer: Asn(64501),
                    salt: 4,
                },
            ),
        ]));
        sys.pump(1_000_000);
        sys.pump(1_500_000);
        assert_eq!(sys.ixp.route_server.flowspec_stats().malformed, 2);
        // Neither the RIB, the plane, nor the hardware moved.
        assert_eq!(sys.ixp.route_server.flowspec_routes().len(), 1);
        assert_eq!(sys.flowspec.rule_count(), 1);
        assert_eq!(sys.active_rules(), 1);
        assert!(sys.is_converged());
        sys.watchdog_check(60_000_000);
        assert!(sys.watchdog.is_clean(), "{:?}", sys.watchdog.violations());
    }

    #[test]
    fn corrupt_flowspec_fault_without_live_rules_uses_fallback_fragment() {
        let mut sys = system();
        sys.inject_faults(scripted(vec![(
            0,
            FaultKind::FlowSpecCorrupt {
                peer: Asn(64500),
                salt: 0,
            },
        )]));
        sys.pump(0);
        assert_eq!(sys.ixp.route_server.flowspec_stats().malformed, 1);
        assert!(sys.ixp.route_server.flowspec_routes().is_empty());
        assert!(sys.is_converged());
    }

    #[test]
    fn validation_brownout_defers_then_accepts() {
        let mut sys = system();
        sys.inject_faults(scripted(vec![(
            0,
            FaultKind::ValidationBrownout {
                duration_us: 2_000_000,
            },
        )]));
        sys.pump(0);
        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        let out = sys.member_flowspec(Asn(64500), fs_flow(), &[drop], 100_000);
        // Fail-closed, parked for retry: neither accepted nor rejected.
        assert_eq!(out.deferred, 1);
        assert!(out.rejections.is_empty());
        assert_eq!(out.queued_changes, 0);
        assert_eq!(sys.obs.registry.counter("flowspec.validation_deferred"), 1);
        assert_eq!(sys.active_rules(), 0);
        let mut t = 250_000;
        while t <= 10_000_000 {
            sys.pump(t);
            t += 250_000;
        }
        // The oracle came back inside the retry budget: the rule landed.
        assert_eq!(sys.obs.registry.counter("flowspec.accepted"), 1);
        assert_eq!(sys.obs.registry.counter("flowspec.validation_expired"), 0);
        assert_eq!(sys.active_rules(), 1);
        assert!(sys.is_converged());
        sys.watchdog_check(60_000_000);
        assert!(sys.watchdog.is_clean(), "{:?}", sys.watchdog.violations());
    }

    #[test]
    fn permanent_oracle_outage_exhausts_the_validation_budget() {
        let mut sys = system();
        sys.inject_faults(scripted(vec![(
            0,
            FaultKind::ValidationBrownout {
                duration_us: 3_600_000_000,
            },
        )]));
        sys.pump(0);
        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        sys.member_flowspec(Asn(64500), fs_flow(), &[drop], 0);
        let mut t = 250_000;
        while t <= 600_000_000 {
            sys.pump(t);
            t += 250_000;
        }
        assert_eq!(sys.obs.registry.counter("flowspec.validation_expired"), 1);
        assert_eq!(sys.active_rules(), 0);
        assert!(
            sys.is_converged(),
            "expired announcements leave nothing in flight"
        );
    }

    #[test]
    fn delivery_chaos_delays_and_reorders_but_converges() {
        let mut sys = system();
        sys.inject_faults(scripted(vec![(
            0,
            FaultKind::DeliveryChaos {
                duration_us: 2_000_000,
                max_delay_us: 1_000_000,
            },
        )]));
        sys.pump(0);
        let signals: Vec<StellarSignal> = [123u16, 53, 389]
            .iter()
            .map(|p| StellarSignal::drop_udp_src(*p))
            .collect();
        let out = sys.member_signal(Asn(64500), victim(), &signals, 100_000);
        assert_eq!(out.queued_changes, 3);
        // The group was held back by the chaos window, not applied now.
        assert!(sys.obs.registry.counter("core.delivery.delayed") >= 1);
        assert_eq!(sys.pump(100_000), 0);
        let mut t = 250_000;
        while t <= 6_000_000 {
            sys.pump(t);
            t += 250_000;
        }
        assert_eq!(sys.active_rules(), 3);
        assert!(sys.is_converged());
        sys.watchdog_check(60_000_000);
        assert!(sys.watchdog.is_clean(), "{:?}", sys.watchdog.violations());
    }

    #[test]
    fn peer_flap_flushes_rules_and_resignaling_recovers() {
        let mut sys = system();
        sys.member_signal(Asn(64500), victim(), &[StellarSignal::drop_udp_src(123)], 0);
        sys.pump(0);
        assert_eq!(sys.active_rules(), 1);
        sys.inject_faults(scripted(vec![
            (1_000_000, FaultKind::PeerDown { peer: Asn(64500) }),
            (2_000_000, FaultKind::PeerUp { peer: Asn(64500) }),
        ]));
        let mut t = 1_000_000;
        while t <= 4_000_000 {
            sys.pump(t);
            t += 250_000;
        }
        // The flap flushed the member's routes; blackholing is
        // per-announcement state, so the rule is gone until re-signaled.
        assert_eq!(sys.active_rules(), 0);
        assert!(sys.is_converged());
        let out = sys.member_signal(
            Asn(64500),
            victim(),
            &[StellarSignal::drop_udp_src(123)],
            5_000_000,
        );
        assert!(out.rejections.is_empty(), "{:?}", out.rejections);
        sys.pump(5_000_000);
        assert_eq!(sys.active_rules(), 1);
        sys.watchdog_check(60_000_000);
        assert!(sys.watchdog.is_clean(), "{:?}", sys.watchdog.violations());
    }

    #[test]
    fn peer_flap_also_flushes_flowspec_plane() {
        let mut sys = system();
        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        sys.member_flowspec(Asn(64500), fs_flow(), &[drop], 0);
        sys.pump(0);
        assert_eq!(sys.active_rules(), 1);
        assert_eq!(sys.flowspec.rule_count(), 1);
        sys.inject_faults(scripted(vec![(
            1_000_000,
            FaultKind::PeerDown { peer: Asn(64500) },
        )]));
        let mut t = 1_000_000;
        while t <= 3_000_000 {
            sys.pump(t);
            t += 250_000;
        }
        assert_eq!(sys.flowspec.rule_count(), 0);
        assert_eq!(sys.active_rules(), 0);
        assert!(sys.ixp.route_server.flowspec_routes().is_empty());
        assert!(sys.is_converged());
        sys.watchdog_check(60_000_000);
        assert!(sys.watchdog.is_clean(), "{:?}", sys.watchdog.violations());
    }

    #[test]
    fn flowspec_overload_parks_and_requeues_instead_of_dead_lettering() {
        let mut sys = system();
        // A brownout longer than the whole retry ladder: the FlowSpec add
        // exhausts its attempts while the interface is down.
        sys.inject_faults(scripted(vec![(
            0,
            FaultKind::InstallBrownout {
                duration_us: 5_000_000,
            },
        )]));
        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        sys.member_flowspec(Asn(64500), fs_flow(), &[drop], 0);
        let mut t = 0;
        while t <= 20_000_000 {
            sys.pump(t);
            t += 250_000;
        }
        // Parked once, requeued once, installed on the second life.
        assert_eq!(sys.obs.registry.counter("deadletter.parked"), 1);
        assert_eq!(sys.obs.registry.counter("deadletter.requeued"), 1);
        assert_eq!(sys.obs.registry.counter("core.dead_letters"), 0);
        assert!(sys.dead_letters.is_empty());
        assert!(sys
            .log
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Requeued { requeue: 1, .. })));
        assert_eq!(sys.active_rules(), 1);
        assert!(sys.is_converged());
        sys.watchdog_check(60_000_000);
        assert!(sys.watchdog.is_clean(), "{:?}", sys.watchdog.violations());
    }

    #[test]
    fn watchdog_flags_orphans_and_divergence() {
        let mut sys = system();
        sys.member_signal(Asn(64500), victim(), &[StellarSignal::drop_udp_src(123)], 0);
        sys.pump(0);
        assert_eq!(sys.active_rules(), 1);
        // Sabotage: drop desired state directly, without queueing the
        // removal the real paths would queue. The hardware rule is now an
        // orphan and the system can never converge on its own.
        sys.controller.session_down();
        let found = sys.watchdog_check(60_000_000);
        assert!(found >= 2, "expected convergence + orphan, got {found}");
        assert!(!sys.watchdog.is_clean());
        assert_eq!(
            sys.obs.registry.counter("watchdog.violations.orphan_rules"),
            1
        );
        assert_eq!(
            sys.obs.registry.counter("watchdog.violations.convergence"),
            1
        );
        assert_eq!(
            sys.obs.registry.counter("watchdog.violations"),
            sys.watchdog.total_violations()
        );
    }

    #[test]
    fn apply_tuning_resizes_the_dead_letter_ring() {
        let mut sys = system();
        for i in 0..3 {
            sys.dead_letters.push(DeadLetter {
                change: AbstractChange::RemoveRule {
                    rule_id: i,
                    owner: Asn(64500),
                },
                error: AdmissionError::Transient,
                attempts: 1,
                at_us: i,
            });
        }
        let tuning = ControlTuning {
            deadletter_capacity: 1,
            deadletter_requeues: 5,
            reconcile_interval_us: 2_000_000,
            ..Default::default()
        };
        sys.apply_tuning(&tuning);
        assert_eq!(sys.dead_letters.len(), 1);
        assert_eq!(sys.obs.registry.counter("deadletter.evicted"), 2);
        assert_eq!(sys.deadletter_requeues, 5);
        assert_eq!(sys.reconcile_interval_us, 2_000_000);
    }

    #[test]
    fn shaping_signal_gives_telemetry_sample() {
        let mut sys = system();
        sys.member_signal(
            Asn(64500),
            victim(),
            &[StellarSignal::shape_udp_src(123, 200)],
            0,
        );
        sys.pump(0);
        // 1 Gbps attack for one second into the 1 Gbps port.
        let results = sys.traffic_tick(&[ntp_offer(125_000_000)], 1_000_000, 1_000_000);
        let port = sys.ixp.member(Asn(64500)).unwrap().port;
        let c = &results[&port].counters;
        // ~200 Mbps passes as telemetry, the rest is shaped away.
        assert!(c.shaped_bytes > 20_000_000 && c.shaped_bytes < 30_000_000);
        assert!(c.shape_dropped_bytes > 90_000_000);
    }
}
