//! Property tests for Stellar's core invariants:
//! - the signaling grammar round-trips through extended communities,
//! - compiled match specs always scope to the victim,
//! - the controller's diffing is idempotent and convergent,
//! - the configuration queue preserves FIFO order and loses nothing.

use proptest::prelude::*;
use stellar_bgp::attr::{AsPath, PathAttribute};
use stellar_bgp::nlri::Nlri;
use stellar_bgp::types::Asn;
use stellar_bgp::update::UpdateMessage;
use stellar_core::config_queue::ConfigChangeQueue;
use stellar_core::controller::{AbstractChange, BlackholingController};
use stellar_core::rule::RuleAction;
use stellar_core::signal::{MatchKind, StellarSignal};
use stellar_net::addr::Ipv4Address;
use stellar_net::prefix::{Ipv4Prefix, Prefix};

const IXP: Asn = Asn(6695);

fn arb_kind() -> impl Strategy<Value = MatchKind> {
    (1u8..=8).prop_map(|v| MatchKind::from_value(v).unwrap())
}

fn arb_action() -> impl Strategy<Value = RuleAction> {
    prop_oneof![
        Just(RuleAction::Drop),
        // Rates on the 10 Mbps grid the wire encoding supports.
        (1u64..=250).prop_map(|k| RuleAction::Shape {
            rate_bps: k * 10_000_000
        }),
    ]
}

fn arb_signal() -> impl Strategy<Value = StellarSignal> {
    (arb_kind(), any::<u16>(), arb_action()).prop_map(|(kind, port, action)| StellarSignal {
        kind,
        port,
        action,
    })
}

fn arb_victim() -> impl Strategy<Value = Prefix> {
    any::<[u8; 4]>().prop_map(|o| Prefix::V4(Ipv4Prefix::host(Ipv4Address(o))))
}

fn update_with(signals: &[StellarSignal], victim: Prefix, path_id: u32) -> UpdateMessage {
    let mut u = UpdateMessage::announce(
        victim,
        Ipv4Address::new(80, 81, 192, 1),
        PathAttribute::AsPath(AsPath::sequence([64500])),
    );
    u.nlri = vec![Nlri::with_path_id(victim, path_id)];
    let ecs: Vec<_> = signals.iter().map(|s| s.encode(IXP)).collect();
    if !ecs.is_empty() {
        u.add_extended_communities(&ecs);
    }
    u
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn signal_round_trips_through_extended_community(sig in arb_signal()) {
        let dec = StellarSignal::decode(&sig.encode(IXP), IXP).unwrap();
        prop_assert_eq!(dec, sig);
    }

    #[test]
    fn signal_is_namespace_scoped(sig in arb_signal(), other_asn in 1u32..65000) {
        prop_assume!(other_asn != IXP.0);
        let ec = sig.encode(IXP);
        prop_assert_eq!(StellarSignal::decode(&ec, Asn(other_asn)), None);
    }

    #[test]
    fn match_spec_always_scopes_to_victim(sig in arb_signal(), victim in arb_victim()) {
        let spec = sig.to_match_spec(victim);
        prop_assert_eq!(spec.dst_ip, Some(victim));
        // A blackholing rule always consumes at least the dst-ip
        // criterion and never MAC criteria (controller-issued rules are
        // L3/L4 only).
        prop_assert!(spec.l34_criteria() >= 1);
        prop_assert_eq!(spec.mac_criteria(), 0);
    }

    #[test]
    fn controller_converges_and_is_idempotent(
        sigs in proptest::collection::btree_set(arb_signal(), 0..5),
        victim in arb_victim(),
    ) {
        // Keep only signals that survive the wire (Predefined entries
        // resolve through the catalog and may vanish), so the desired
        // state is well-defined.
        let sigs: Vec<StellarSignal> = sigs
            .into_iter()
            .filter(|s| s.kind != MatchKind::Predefined)
            .collect();
        let mut ctl = BlackholingController::new(IXP);
        let u = update_with(&sigs, victim, 1);
        let first = ctl.process_update(&u);
        prop_assert_eq!(first.len(), sigs.len());
        prop_assert_eq!(ctl.rule_count(), sigs.len());
        // Same announcement again: no churn.
        let second = ctl.process_update(&u);
        prop_assert!(second.is_empty(), "controller not idempotent: {second:?}");
        // Withdrawal drains everything.
        let w = UpdateMessage {
            withdrawn: vec![Nlri::with_path_id(victim, 1)],
            ..Default::default()
        };
        let removed = ctl.process_update(&w);
        prop_assert_eq!(removed.len(), sigs.len());
        prop_assert_eq!(ctl.rule_count(), 0);
    }

    #[test]
    fn controller_diff_is_minimal(
        before in proptest::collection::btree_set(arb_signal(), 0..5),
        after in proptest::collection::btree_set(arb_signal(), 0..5),
        victim in arb_victim(),
    ) {
        let clean = |s: std::collections::BTreeSet<StellarSignal>| -> Vec<StellarSignal> {
            s.into_iter().filter(|x| x.kind != MatchKind::Predefined).collect()
        };
        let before = clean(before);
        let after = clean(after);
        let mut ctl = BlackholingController::new(IXP);
        ctl.process_update(&update_with(&before, victim, 1));
        let changes = ctl.process_update(&update_with(&after, victim, 1));
        let adds = changes.iter().filter(|c| matches!(c, AbstractChange::AddRule(_))).count();
        let removes = changes.iter().filter(|c| matches!(c, AbstractChange::RemoveRule { .. })).count();
        let expected_adds = after.iter().filter(|s| !before.contains(s)).count();
        let expected_removes = before.iter().filter(|s| !after.contains(s)).count();
        prop_assert_eq!(adds, expected_adds);
        prop_assert_eq!(removes, expected_removes);
        prop_assert_eq!(ctl.rule_count(), after.len());
    }

    #[test]
    fn config_queue_is_fifo_and_lossless(
        arrivals in proptest::collection::vec(0u64..10_000_000, 1..60),
        rate_x10 in 5u64..100,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let mut q = ConfigChangeQueue::new(rate_x10 as f64 / 10.0, 2);
        for (i, at) in arrivals.iter().enumerate() {
            q.enqueue(
                AbstractChange::RemoveRule { rule_id: i as u64, owner: Asn(1) },
                *at,
            );
        }
        // Pump far enough into the future that everything drains.
        let mut got = Vec::new();
        let mut t = *arrivals.last().unwrap();
        let mut guard = 0;
        while got.len() < arrivals.len() {
            got.extend(q.dequeue_ready(t));
            t += 1_000_000;
            guard += 1;
            prop_assert!(guard < 10_000, "queue did not drain");
        }
        prop_assert_eq!(q.backlog(), 0);
        // FIFO: rule ids come out in enqueue order.
        let ids: Vec<u64> = got
            .iter()
            .map(|(c, _)| match c {
                AbstractChange::RemoveRule { rule_id, .. } => *rule_id,
                _ => unreachable!(),
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ids, sorted);
        // No wait is negative and waits are consistent with arrival times.
        for (i, (_, wait)) in got.iter().enumerate() {
            prop_assert!(*wait as i64 >= 0);
            let _ = i;
        }
    }
}
