//! Property test for the self-healing control plane: for an arbitrary
//! seeded [`FaultPlan`] interleaved with an arbitrary signal/withdraw
//! workload, the system converges — once the faults stop and
//! reconciliation has run, the hardware holds exactly the controller's
//! desired rule set, with no panics along the way.

use proptest::prelude::*;
use stellar_bgp::types::Asn;
use stellar_core::faults::{FaultPlan, FaultPlanConfig, RetryPolicy};
use stellar_core::signal::StellarSignal;
use stellar_core::system::StellarSystem;
use stellar_dataplane::hardware::HardwareInfoBase;
use stellar_net::prefix::{Ipv4Prefix, Prefix};
use stellar_sim::topology::{generic_members, IxpTopology};

const BASE_ASN: u32 = 64500;
const MEMBERS: usize = 4;
const HORIZON_US: u64 = 6_000_000;

/// One scripted member action in the workload.
#[derive(Debug, Clone)]
enum Op {
    /// Announce the member's victim /32 with drop rules on these ports.
    Signal(Vec<u16>),
    /// Withdraw the member's victim /32.
    Withdraw,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::btree_set(1u16..500, 1..4)
            .prop_map(|ports| Op::Signal(ports.into_iter().collect())),
        proptest::collection::btree_set(1u16..500, 1..4)
            .prop_map(|ports| Op::Signal(ports.into_iter().collect())),
        proptest::collection::btree_set(1u16..500, 1..4)
            .prop_map(|ports| Op::Signal(ports.into_iter().collect())),
        Just(Op::Withdraw),
    ]
}

fn arb_workload() -> impl Strategy<Value = Vec<(u64, usize, Op)>> {
    proptest::collection::vec((0..HORIZON_US, 0..MEMBERS, arb_op()), 0..8).prop_map(|mut w| {
        w.sort_by_key(|(t, _, _)| *t);
        w
    })
}

fn arb_fault_cfg() -> impl Strategy<Value = FaultPlanConfig> {
    (0u32..=2, 0u32..=2, 0u32..=2).prop_map(|(restarts, flaps, brownouts)| FaultPlanConfig {
        horizon_us: HORIZON_US,
        restarts,
        flaps,
        brownouts,
        max_brownout_us: 800_000,
        max_flap_us: 1_500_000,
        ..Default::default()
    })
}

fn system() -> StellarSystem {
    let specs = generic_members(BASE_ASN, MEMBERS);
    let mut sys = StellarSystem::new(
        IxpTopology::build(&specs, HardwareInfoBase::lab_switch()),
        1000.0,
    );
    // A tight budget so retry tails finish well inside the drive window.
    sys.retry = RetryPolicy {
        base_backoff_us: 100_000,
        max_backoff_us: 800_000,
        max_attempts: 4,
    };
    sys
}

fn own_host(sys: &StellarSystem, asn: Asn) -> Prefix {
    match sys.ixp.member(asn).unwrap().prefixes[0] {
        Prefix::V4(p4) => Prefix::V4(Ipv4Prefix::host(p4.nth_host(10))),
        _ => unreachable!("generic members are v4"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_faults_and_workload_always_converge(
        seed in any::<u64>(),
        cfg in arb_fault_cfg(),
        workload in arb_workload(),
    ) {
        let mut sys = system();
        let plan = FaultPlan::generate(seed, &cfg);
        let quiescent = plan.quiescent_after_us();
        sys.inject_faults(plan);

        // Drive past the last fault plus the worst-case retry tail, with
        // a reconciliation sweep every second.
        let end = quiescent.max(HORIZON_US) + 6_000_000;
        let mut next_op = 0usize;
        let mut t = 0u64;
        while t <= end {
            while next_op < workload.len() && workload[next_op].0 <= t {
                let (at, member, ref op) = workload[next_op];
                let asn = Asn(BASE_ASN + member as u32);
                let victim = own_host(&sys, asn);
                match op {
                    Op::Signal(ports) => {
                        let signals: Vec<StellarSignal> =
                            ports.iter().map(|p| StellarSignal::drop_udp_src(*p)).collect();
                        let out = sys.member_signal(asn, victim, &signals, at.max(t));
                        prop_assert!(out.rejections.is_empty(), "{:?}", out.rejections);
                    }
                    Op::Withdraw => {
                        sys.member_withdraw(asn, victim, at.max(t));
                    }
                }
                next_op += 1;
            }
            sys.pump(t);
            if t.is_multiple_of(1_000_000) {
                sys.reconcile(t);
            }
            t += 250_000;
        }

        prop_assert!(
            sys.is_converged(),
            "seed {seed} not converged: backlog={} active={} desired={} log tail={:?}",
            sys.queue.backlog(),
            sys.active_rules(),
            sys.controller.rule_count(),
            sys.log.iter().rev().take(6).collect::<Vec<_>>()
        );
        // Once converged, reconciliation is a no-op forever.
        let report = sys.reconcile(end + 1_000_000);
        prop_assert!(report.is_clean(), "reconcile not idempotent: {report:?}");
    }
}
