//! Round-trip fuzz for the pre-existing bgp codecs: every byte string a
//! decoder accepts must re-encode to exactly those bytes
//! (`encode(decode(x)) == x`), and no input — valid or garbage — may
//! panic a decoder.
//!
//! These properties surfaced three real bugs now fixed: extended
//! communities masked the type byte with `0x3f` (so the 0x80
//! experimental namespace aliased into TwoOctetAs and re-encoded as
//! type 0x00), NLRI decoding accepted host bits set past the prefix
//! length (masked away by the prefix constructor, changing the
//! re-encoding), and path attributes accepted non-canonical flag bytes
//! and extended-length forms for known types.

use proptest::prelude::*;
use stellar_bgp::attr::PathAttribute;
use stellar_bgp::extcommunity::ExtendedCommunity;
use stellar_bgp::nlri;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn extended_community_decode_is_a_section(raw in proptest::collection::vec(any::<u8>(), 0..12)) {
        match ExtendedCommunity::decode(&raw) {
            Ok(ec) => prop_assert_eq!(&ec.encode()[..], &raw[..8]),
            Err(_) => prop_assert!(raw.len() < 8, "8 bytes must always decode"),
        }
    }

    #[test]
    fn nlri_v4_round_trips_exactly(raw in proptest::collection::vec(any::<u8>(), 0..64), add_path in any::<bool>()) {
        if let Ok(entries) = nlri::decode_v4(&raw, add_path) {
            let mut buf = bytes::BytesMut::new();
            nlri::encode_v4(&entries, add_path, &mut buf).expect("decoded entries re-encode");
            prop_assert_eq!(&buf[..], &raw[..]);
        }
    }

    #[test]
    fn nlri_v6_round_trips_exactly(raw in proptest::collection::vec(any::<u8>(), 0..64), add_path in any::<bool>()) {
        if let Ok(entries) = nlri::decode_v6(&raw, add_path) {
            let mut buf = bytes::BytesMut::new();
            nlri::encode_v6(&entries, add_path, &mut buf).expect("decoded entries re-encode");
            prop_assert_eq!(&buf[..], &raw[..]);
        }
    }

    #[test]
    fn path_attribute_round_trips_exactly(raw in proptest::collection::vec(any::<u8>(), 0..96), add_path in any::<bool>()) {
        if let Ok((attr, used)) = PathAttribute::decode(&raw, add_path) {
            let mut buf = bytes::BytesMut::new();
            attr.encode(add_path, &mut buf).expect("decoded attribute re-encodes");
            prop_assert_eq!(&buf[..], &raw[..used]);
        }
    }

    #[test]
    fn seeded_attribute_frames_survive_corruption(
        type_code in 0u8..40,
        flags in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 0..48),
        add_path in any::<bool>(),
    ) {
        // Plausible-looking attribute frames (valid header shape, random
        // body) exercise the per-type validators harder than pure noise.
        let mut raw = vec![flags, type_code];
        if flags & stellar_bgp::attr::FLAG_EXT_LEN != 0 {
            raw.extend((body.len() as u16).to_be_bytes());
        } else {
            raw.push(body.len() as u8);
        }
        raw.extend(&body);
        if let Ok((attr, used)) = PathAttribute::decode(&raw, add_path) {
            let mut buf = bytes::BytesMut::new();
            attr.encode(add_path, &mut buf).expect("decoded attribute re-encodes");
            prop_assert_eq!(&buf[..], &raw[..used]);
        }
    }
}
