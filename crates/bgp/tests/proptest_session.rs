//! Session-level property tests: two speakers over an in-memory byte
//! transport must reach Established and deliver every UPDATE intact, no
//! matter how the transport fragments the stream.

use proptest::prelude::*;
use stellar_bgp::attr::{AsPath, PathAttribute};
use stellar_bgp::capability::AddPathMode;
use stellar_bgp::community::Community;
use stellar_bgp::session::{drive_pair, Session, SessionConfig};
use stellar_bgp::types::Asn;
use stellar_bgp::update::UpdateMessage;
use stellar_net::addr::Ipv4Address;
use stellar_net::prefix::{Ipv4Prefix, Prefix};

fn sessions(add_path: bool) -> (Session, Session) {
    let mut a = SessionConfig::ebgp(Asn(64500), Ipv4Address::new(10, 0, 0, 1));
    let mut b = SessionConfig::ebgp(Asn(64501), Ipv4Address::new(10, 0, 0, 2));
    if add_path {
        a.add_path = Some(AddPathMode::Both);
        b.add_path = Some(AddPathMode::Both);
    }
    b.passive = true;
    (Session::new(a), Session::new(b))
}

fn arb_update() -> impl Strategy<Value = UpdateMessage> {
    (
        proptest::collection::vec((any::<[u8; 4]>(), 8u8..=32), 1..5),
        proptest::collection::vec(any::<u32>(), 0..4),
        1u32..100_000,
    )
        .prop_map(|(prefixes, comms, asn)| {
            let mut u = UpdateMessage::announce(
                Prefix::V4(Ipv4Prefix::new(Ipv4Address(prefixes[0].0), prefixes[0].1).unwrap()),
                Ipv4Address::new(80, 81, 192, 1),
                PathAttribute::AsPath(AsPath::sequence([asn])),
            );
            u.nlri = prefixes
                .into_iter()
                .map(|(o, l)| {
                    stellar_bgp::nlri::Nlri::plain(Prefix::V4(
                        Ipv4Prefix::new(Ipv4Address(o), l).unwrap(),
                    ))
                })
                .collect();
            if !comms.is_empty() {
                u.add_communities(&comms.into_iter().map(Community).collect::<Vec<_>>());
            }
            u
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn updates_survive_arbitrary_fragmentation(
        updates in proptest::collection::vec(arb_update(), 1..8),
        chunk in 1usize..80,
    ) {
        let (mut a, mut b) = sessions(false);
        drive_pair(&mut a, &mut b, 0);
        prop_assert!(a.is_established() && b.is_established());

        // a sends every update; the wire is re-chunked arbitrarily.
        let mut stream = Vec::new();
        for u in &updates {
            stream.extend(a.send_update(u).unwrap());
        }
        let mut received = Vec::new();
        for piece in stream.chunks(chunk) {
            let out = b.on_bytes(piece, 1);
            received.extend(out.updates);
            prop_assert!(!out.session_down, "session died mid-stream");
        }
        prop_assert_eq!(received, updates);
        prop_assert!(b.is_established());
    }

    #[test]
    fn keepalive_cadence_never_kills_a_live_session(
        steps in proptest::collection::vec(1_000_000u64..29_000_000, 5..40),
    ) {
        // Relay ticks at irregular (but < hold/3) intervals: the session
        // must stay Established throughout.
        let (mut a, mut b) = sessions(false);
        drive_pair(&mut a, &mut b, 0);
        let mut t = 0u64;
        for dt in steps {
            t += dt;
            let out_a = a.tick(t);
            for seg in out_a.to_send {
                b.on_bytes(&seg, t);
            }
            let out_b = b.tick(t);
            for seg in out_b.to_send {
                a.on_bytes(&seg, t);
            }
            prop_assert!(a.is_established(), "a died at t={t}");
            prop_assert!(b.is_established(), "b died at t={t}");
        }
    }

    #[test]
    fn add_path_sessions_deliver_path_ids(
        ids in proptest::collection::btree_set(any::<u32>(), 1..6),
        chunk in 1usize..64,
    ) {
        let (mut a, mut b) = sessions(true);
        drive_pair(&mut a, &mut b, 0);
        prop_assert!(a.add_path_negotiated());
        let prefix: Prefix = "100.10.10.10/32".parse().unwrap();
        let mut u = UpdateMessage::announce(
            prefix,
            Ipv4Address::new(80, 81, 192, 1),
            PathAttribute::AsPath(AsPath::sequence([64500])),
        );
        u.nlri = ids
            .iter()
            .map(|id| stellar_bgp::nlri::Nlri::with_path_id(prefix, *id))
            .collect();
        let wire = a.send_update(&u).unwrap();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            got.extend(b.on_bytes(piece, 1).updates);
        }
        prop_assert_eq!(got.len(), 1);
        let got_ids: std::collections::BTreeSet<u32> =
            got[0].nlri.iter().filter_map(|n| n.path_id).collect();
        prop_assert_eq!(got_ids, ids);
    }
}
