//! FlowSpec codec properties: structured values survive a wire round
//! trip, every accepted byte string re-encodes identically, decoding
//! never panics on garbage, and the interval lowering of numeric
//! operator sequences agrees with direct RFC 8955 evaluation on every
//! probed point.

use proptest::prelude::*;
use stellar_bgp::flowspec::{
    numeric_match_intervals, numeric_seq_matches, Component, FlowSpec, NumericOp,
};
use stellar_bgp::types::Afi;
use stellar_net::addr::{Ipv4Address, Ipv6Address};
use stellar_net::prefix::{Ipv4Prefix, Ipv6Prefix, Prefix};

fn numeric_op_strategy(max_value: u64) -> impl Strategy<Value = NumericOp> {
    (
        any::<bool>(),
        0u8..8,
        0u64..=max_value,
        proptest::option::of(0u8..4),
    )
        .prop_map(|(and, rel, value, wide)| {
            let op = NumericOp::new(and, rel & 4 != 0, rel & 2 != 0, rel & 1 != 0, value);
            match wide {
                // Widen the wire length when the value still fits; keeps
                // non-minimal-but-legal encodings in the corpus.
                Some(exp) => op.with_len(1 << exp).unwrap_or(op),
                None => op,
            }
        })
}

fn ops_strategy(max_value: u64) -> impl Strategy<Value = Vec<NumericOp>> {
    proptest::collection::vec(numeric_op_strategy(max_value), 1..5).prop_map(|mut ops| {
        // The AND bit must be clear on the first operator.
        ops[0].and = false;
        ops
    })
}

fn v4_flow_strategy() -> impl Strategy<Value = FlowSpec> {
    (
        any::<u32>(),
        0u8..=32,
        proptest::option::of(ops_strategy(255)),
        proptest::option::of(ops_strategy(65_535)),
        proptest::option::of(ops_strategy(65_535)),
    )
        .prop_map(|(addr, plen, proto, dst, src)| {
            let prefix =
                Ipv4Prefix::new(Ipv4Address(addr.to_be_bytes()), plen).expect("length is in range");
            let mut components = vec![Component::DstPrefix(Prefix::V4(prefix))];
            if let Some(ops) = proto {
                components.push(Component::IpProtocol(ops));
            }
            if let Some(ops) = dst {
                components.push(Component::DstPort(ops));
            }
            if let Some(ops) = src {
                components.push(Component::SrcPort(ops));
            }
            FlowSpec::new(Afi::Ipv4, components).expect("components are ordered")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn structured_flowspec_round_trips(flow in v4_flow_strategy()) {
        let wire = flow.to_wire().expect("valid flowspec encodes");
        let (decoded, used) = FlowSpec::decode(Afi::Ipv4, &wire).expect("own encoding decodes");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(&decoded, &flow);
        prop_assert_eq!(decoded.to_wire().expect("re-encode"), wire);
    }

    #[test]
    fn decode_is_a_section_on_arbitrary_bytes(
        raw in proptest::collection::vec(any::<u8>(), 0..96),
        v6 in any::<bool>(),
    ) {
        let afi = if v6 { Afi::Ipv6 } else { Afi::Ipv4 };
        if let Ok((flow, used)) = FlowSpec::decode(afi, &raw) {
            let wire = flow.to_wire().expect("accepted flowspec re-encodes");
            prop_assert_eq!(&wire[..], &raw[..used]);
        }
    }

    #[test]
    fn seeded_bodies_round_trip(
        body in proptest::collection::vec(any::<u8>(), 0..64),
        v6 in any::<bool>(),
    ) {
        // Prefix the body with its own valid length so the parser gets
        // past the length check and into component parsing.
        let afi = if v6 { Afi::Ipv6 } else { Afi::Ipv4 };
        let mut raw = vec![body.len() as u8];
        raw.extend(&body);
        if let Ok((flow, used)) = FlowSpec::decode(afi, &raw) {
            let wire = flow.to_wire().expect("accepted flowspec re-encodes");
            prop_assert_eq!(&wire[..], &raw[..used]);
        }
    }

    #[test]
    fn intervals_equal_direct_evaluation(ops in ops_strategy(65_535), probes in proptest::collection::vec(0u64..=65_535, 16)) {
        let intervals = numeric_match_intervals(&ops, 65_535);
        // Minimal form: sorted, disjoint, non-adjacent.
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 + 1 < w[1].0, "not minimal: {:?}", intervals);
        }
        // Probe random points plus every interval boundary and its
        // neighbors — exactly where off-by-one bugs live.
        let mut points = probes;
        for &(lo, hi) in &intervals {
            points.extend([lo, hi, lo.saturating_sub(1), (hi + 1).min(65_535)]);
        }
        for x in points {
            let in_set = intervals.iter().any(|&(lo, hi)| lo <= x && x <= hi);
            prop_assert_eq!(in_set, numeric_seq_matches(&ops, x), "x={}", x);
        }
    }

    #[test]
    fn v6_prefix_components_round_trip(hi in any::<u64>(), lo in any::<u64>(), plen in 0u8..=128) {
        let mut octets = [0u8; 16];
        octets[..8].copy_from_slice(&hi.to_be_bytes());
        octets[8..].copy_from_slice(&lo.to_be_bytes());
        let prefix = Ipv6Prefix::new(Ipv6Address(octets), plen)
            .expect("length is in range");
        let flow = FlowSpec::new(
            Afi::Ipv6,
            vec![Component::DstPrefix(Prefix::V6(prefix))],
        )
        .expect("single component is ordered");
        let wire = flow.to_wire().expect("valid flowspec encodes");
        let (decoded, used) = FlowSpec::decode(Afi::Ipv6, &wire).expect("own encoding decodes");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(decoded, flow);
    }
}
