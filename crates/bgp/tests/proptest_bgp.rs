//! Property tests: BGP message encode→decode is the identity for arbitrary
//! well-formed messages, including ADD-PATH NLRI and all community types.

use proptest::prelude::*;
use stellar_bgp::attr::{AsPath, AsSegment, PathAttribute};
use stellar_bgp::community::{Community, LargeCommunity};
use stellar_bgp::extcommunity::ExtendedCommunity;
use stellar_bgp::message::{DecodeCtx, Message};
use stellar_bgp::nlri::Nlri;
use stellar_bgp::notification::NotificationMessage;
use stellar_bgp::open::OpenMessage;
use stellar_bgp::types::{Asn, Origin};
use stellar_bgp::update::UpdateMessage;
use stellar_net::addr::Ipv4Address;
use stellar_net::prefix::{Ipv4Prefix, Prefix};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<[u8; 4]>(), 0u8..=32)
        .prop_map(|(o, len)| Prefix::V4(Ipv4Prefix::new(Ipv4Address(o), len).unwrap()))
}

fn arb_nlri(add_path: bool) -> impl Strategy<Value = Nlri> {
    (arb_prefix(), any::<u32>()).prop_map(move |(p, id)| {
        if add_path {
            Nlri::with_path_id(p, id)
        } else {
            Nlri::plain(p)
        }
    })
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(any::<u32>(), 1..6)
                .prop_map(|v| AsSegment::Sequence(v.into_iter().map(Asn).collect())),
            proptest::collection::vec(any::<u32>(), 1..4)
                .prop_map(|v| AsSegment::Set(v.into_iter().map(Asn).collect())),
        ],
        0..3,
    )
    .prop_map(|segments| AsPath { segments })
}

fn arb_attrs() -> impl Strategy<Value = Vec<PathAttribute>> {
    (
        arb_as_path(),
        any::<[u8; 4]>(),
        proptest::collection::vec(any::<u32>(), 0..8),
        proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u32>()), 0..4),
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..4),
        proptest::option::of(any::<u32>()),
    )
        .prop_map(|(path, nh, comms, ecs, lcs, med)| {
            let mut attrs = vec![
                PathAttribute::Origin(Origin::Igp),
                PathAttribute::AsPath(path),
                PathAttribute::NextHop(Ipv4Address(nh)),
            ];
            if !comms.is_empty() {
                attrs.push(PathAttribute::Communities(
                    comms.into_iter().map(Community).collect(),
                ));
            }
            if !ecs.is_empty() {
                attrs.push(PathAttribute::ExtendedCommunities(
                    ecs.into_iter()
                        .map(|(st, asn, local)| ExtendedCommunity::TwoOctetAs {
                            subtype: st,
                            asn,
                            local,
                            transitive: true,
                        })
                        .collect(),
                ));
            }
            if !lcs.is_empty() {
                attrs.push(PathAttribute::LargeCommunities(
                    lcs.into_iter()
                        .map(|(g, d1, d2)| LargeCommunity::new(g, d1, d2))
                        .collect(),
                ));
            }
            if let Some(m) = med {
                attrs.push(PathAttribute::Med(m));
            }
            attrs
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn update_round_trip_plain(
        attrs in arb_attrs(),
        nlri in proptest::collection::vec(arb_nlri(false), 1..8),
        withdrawn in proptest::collection::vec(arb_nlri(false), 0..8),
    ) {
        let u = UpdateMessage { withdrawn, attrs, nlri };
        let ctx = DecodeCtx { add_path: false };
        let wire = Message::Update(u.clone()).encode(ctx).unwrap();
        let (m, used) = Message::decode(&wire, ctx).unwrap().unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(m, Message::Update(u));
    }

    #[test]
    fn update_round_trip_add_path(
        attrs in arb_attrs(),
        nlri in proptest::collection::vec(arb_nlri(true), 1..8),
        withdrawn in proptest::collection::vec(arb_nlri(true), 0..8),
    ) {
        let u = UpdateMessage { withdrawn, attrs, nlri };
        let ctx = DecodeCtx { add_path: true };
        let wire = Message::Update(u.clone()).encode(ctx).unwrap();
        let (m, _) = Message::decode(&wire, ctx).unwrap().unwrap();
        prop_assert_eq!(m, Message::Update(u));
    }

    #[test]
    fn notification_round_trip(code in 1u8..=6, subcode in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..32)) {
        let n = NotificationMessage {
            code: stellar_bgp::error::ErrorCode::from_value(code).unwrap(),
            subcode,
            data,
        };
        let ctx = DecodeCtx::default();
        let wire = Message::Notification(n.clone()).encode(ctx).unwrap();
        let (m, _) = Message::decode(&wire, ctx).unwrap().unwrap();
        prop_assert_eq!(m, Message::Notification(n));
    }

    #[test]
    fn open_round_trip(asn in 1u32..=u32::MAX, hold in prop_oneof![Just(0u16), 3u16..=u16::MAX], id in any::<[u8;4]>()) {
        let o = OpenMessage {
            asn: Asn(asn),
            hold_time: hold,
            bgp_id: Ipv4Address(id),
            capabilities: vec![stellar_bgp::capability::Capability::FourOctetAs { asn }],
        };
        let ctx = DecodeCtx::default();
        let wire = Message::Open(o.clone()).encode(ctx).unwrap();
        let (m, _) = Message::decode(&wire, ctx).unwrap().unwrap();
        prop_assert_eq!(m, Message::Open(o));
    }

    #[test]
    fn stream_reassembly_is_chunk_invariant(
        attrs in arb_attrs(),
        nlri in proptest::collection::vec(arb_nlri(false), 1..4),
        chunk in 1usize..64,
    ) {
        let u = UpdateMessage { withdrawn: vec![], attrs, nlri };
        let ctx = DecodeCtx::default();
        let mut stream = Vec::new();
        for _ in 0..3 {
            stream.extend(Message::Update(u.clone()).encode(ctx).unwrap());
            stream.extend(Message::Keepalive.encode(ctx).unwrap());
        }
        let mut reader = stellar_bgp::message::MessageReader::new();
        let mut count = 0;
        for c in stream.chunks(chunk) {
            reader.push(c);
            while let Some(_m) = reader.next(ctx).unwrap() {
                count += 1;
            }
        }
        prop_assert_eq!(count, 6);
        prop_assert_eq!(reader.pending(), 0);
    }
}
