//! Robustness: the decoder must never panic on arbitrary input — it
//! either parses a message, asks for more bytes, or returns a typed error
//! that maps to a NOTIFICATION. (The fuzz-style safety net behind the
//! route server's exposure to 800+ member sessions.)

use proptest::prelude::*;
use stellar_bgp::error::BgpError;
use stellar_bgp::message::{DecodeCtx, Message, MessageReader, HEADER_LEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512), add_path in any::<bool>()) {
        let ctx = DecodeCtx { add_path };
        // Any outcome is fine; panicking is not.
        let _ = Message::decode(&data, ctx);
    }

    #[test]
    fn decode_never_panics_on_corrupted_valid_frames(
        flip_at in 0usize..64,
        flip_bits in 1u8..=255,
        add_path in any::<bool>(),
    ) {
        // Start from a valid KEEPALIVE+OPEN stream and corrupt one byte.
        let ctx = DecodeCtx { add_path };
        let mut stream = Message::Keepalive.encode(DecodeCtx::default()).unwrap();
        stream.extend(
            Message::Open(stellar_bgp::open::OpenMessage {
                asn: stellar_bgp::types::Asn(64500),
                hold_time: 90,
                bgp_id: stellar_net::addr::Ipv4Address::new(1, 2, 3, 4),
                capabilities: vec![stellar_bgp::capability::Capability::FourOctetAs {
                    asn: 64500,
                }],
            })
            .encode(DecodeCtx::default())
            .unwrap(),
        );
        let idx = flip_at % stream.len();
        stream[idx] ^= flip_bits;
        let mut reader = MessageReader::new();
        reader.push(&stream);
        // Drain until error or exhaustion; must not panic or loop.
        let mut guard = 0;
        loop {
            match reader.next(ctx) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    // Errors must map to NOTIFICATION codes.
                    let ok = e.notification_codes().is_some()
                        || matches!(e, BgpError::BadState { .. });
                    prop_assert!(ok, "unmappable error");
                    break;
                }
            }
            guard += 1;
            prop_assert!(guard < 16, "reader did not terminate");
        }
    }

    #[test]
    fn header_length_field_is_always_respected(len in 0u16..=5000) {
        // A frame claiming `len` bytes: decode must never read past it
        // nor accept lengths outside [19, 4096].
        let mut frame = vec![0xffu8; 16];
        frame.extend(len.to_be_bytes());
        frame.push(4); // KEEPALIVE
        frame.resize(HEADER_LEN.max(len as usize) + 8, 0);
        let r = Message::decode(&frame, DecodeCtx::default());
        if !(HEADER_LEN as u16..=4096).contains(&len) {
            prop_assert!(r.is_err(), "length {len} accepted");
        }
    }
}
