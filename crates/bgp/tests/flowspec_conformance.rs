//! FlowSpec wire-conformance vectors: hand-computed hex fixtures for
//! every component type, checked in both directions — the bytes decode
//! to exactly the expected structure, and the structure re-encodes to
//! exactly the same bytes. Malformed vectors (reserved bits, bad order,
//! host bits past the prefix length, non-minimal lengths, truncation)
//! must be rejected, never silently repaired.
//!
//! The valid vectors follow the shapes of RFC 8955 §8 / RFC 8956 and
//! the DNS/NTP amplification rules the Stellar scenarios announce.

use stellar_bgp::extcommunity::ExtendedCommunity;
use stellar_bgp::flowspec::{BitmaskOp, Component, FlowSpec, NumericOp};
use stellar_bgp::types::Afi;

fn hex(s: &str) -> Vec<u8> {
    s.split_whitespace()
        .map(|b| u8::from_str_radix(b, 16).expect("hex fixture byte"))
        .collect()
}

/// Asserts the two-way conformance property for one vector: the hex
/// bytes decode to `expected` (consuming every byte), and `expected`
/// encodes back to the identical hex bytes.
fn conforms(afi: Afi, wire_hex: &str, expected: &FlowSpec) {
    let wire = hex(wire_hex);
    let (decoded, used) = FlowSpec::decode(afi, &wire)
        .unwrap_or_else(|e| panic!("vector {wire_hex:?} failed to decode: {e:?}"));
    assert_eq!(used, wire.len(), "vector {wire_hex:?} not fully consumed");
    assert_eq!(&decoded, expected, "vector {wire_hex:?} decoded wrong");
    assert_eq!(
        expected.to_wire().expect("fixture encodes"),
        wire,
        "vector {wire_hex:?} did not re-encode byte-identically"
    );
}

fn rejected(afi: Afi, wire_hex: &str, why: &str) {
    let wire = hex(wire_hex);
    assert!(
        FlowSpec::decode(afi, &wire).is_err(),
        "malformed vector accepted ({why}): {wire_hex:?}"
    );
}

#[test]
fn rfc8955_destination_and_protocol() {
    // RFC 8955 §8 example 1: all packets to 192.0.2.0/24 and TCP.
    conforms(
        Afi::Ipv4,
        "08 01 18 c0 00 02 03 81 06",
        &FlowSpec::new(
            Afi::Ipv4,
            vec![
                Component::DstPrefix("192.0.2.0/24".parse().unwrap()),
                Component::IpProtocol(vec![NumericOp::equals(6)]),
            ],
        )
        .unwrap(),
    );
}

#[test]
fn rfc8955_src_dst_and_port() {
    // RFC 8955 §8 example 2 shape: packets to 192.0.2.1/32 from
    // 203.0.113.0/24, destination port 25.
    conforms(
        Afi::Ipv4,
        "0e 01 20 c0 00 02 01 02 18 cb 00 71 05 81 19",
        &FlowSpec::new(
            Afi::Ipv4,
            vec![
                Component::DstPrefix("192.0.2.1/32".parse().unwrap()),
                Component::SrcPrefix("203.0.113.0/24".parse().unwrap()),
                Component::DstPort(vec![NumericOp::equals(25)]),
            ],
        )
        .unwrap(),
    );
}

#[test]
fn amplification_rule_udp_src_53_or_123() {
    // The repo's canonical mitigation rule: UDP toward the victim host
    // from source port 53 (DNS) or 123 (NTP).
    conforms(
        Afi::Ipv4,
        "0e 01 20 64 0a 0a 0a 03 81 11 06 01 35 81 7b",
        &FlowSpec::new(
            Afi::Ipv4,
            vec![
                Component::DstPrefix("100.10.10.10/32".parse().unwrap()),
                Component::IpProtocol(vec![NumericOp::equals(17)]),
                Component::SrcPort(vec![NumericOp::equals(53), NumericOp::equals(123)]),
            ],
        )
        .unwrap(),
    );
}

#[test]
fn port_range_with_two_byte_values() {
    // 1024 <= port <= 2048: a >= operator OR-opening the sequence,
    // AND-ed with a <= operator; both carry 2-byte values (len code 01).
    conforms(
        Afi::Ipv4,
        "07 04 13 04 00 d5 08 00",
        &FlowSpec::new(
            Afi::Ipv4,
            vec![Component::Port(vec![
                NumericOp::ge(1024),
                NumericOp::and_le(2048),
            ])],
        )
        .unwrap(),
    );
}

#[test]
fn tcp_flags_bitmask() {
    // Match-all on SYN (0x02): bitmask operator with the MATCH bit.
    conforms(
        Afi::Ipv4,
        "03 09 81 02",
        &FlowSpec::new(
            Afi::Ipv4,
            vec![Component::TcpFlags(vec![BitmaskOp::new(
                false, false, true, 0x02,
            )])],
        )
        .unwrap(),
    );
}

#[test]
fn fragment_with_not_bit() {
    // NOT (is-fragment): bitmask operator with NOT + MATCH bits.
    conforms(
        Afi::Ipv4,
        "03 0c 83 02",
        &FlowSpec::new(
            Afi::Ipv4,
            vec![Component::Fragment(vec![BitmaskOp::new(
                false, true, true, 0x02,
            )])],
        )
        .unwrap(),
    );
}

#[test]
fn icmp_type_and_code() {
    // ICMP destination-unreachable (type 3, code 0).
    conforms(
        Afi::Ipv4,
        "06 07 81 03 08 81 00",
        &FlowSpec::new(
            Afi::Ipv4,
            vec![
                Component::IcmpType(vec![NumericOp::equals(3)]),
                Component::IcmpCode(vec![NumericOp::equals(0)]),
            ],
        )
        .unwrap(),
    );
}

#[test]
fn packet_length_or_of_two_ranges() {
    // length <= 100 OR length >= 1200 (the second operator re-opens an
    // OR group, so its AND bit is clear).
    conforms(
        Afi::Ipv4,
        "06 0a 05 64 93 04 b0",
        &FlowSpec::new(
            Afi::Ipv4,
            vec![Component::PacketLength(vec![
                NumericOp::new(false, true, false, true, 100),
                NumericOp::ge(1200),
            ])],
        )
        .unwrap(),
    );
}

#[test]
fn dscp_expedited_forwarding() {
    conforms(
        Afi::Ipv4,
        "03 0b 81 2e",
        &FlowSpec::new(
            Afi::Ipv4,
            vec![Component::Dscp(vec![NumericOp::equals(46)])],
        )
        .unwrap(),
    );
}

#[test]
fn ipv6_prefix_protocol_and_flow_label() {
    // RFC 8956: the v6 prefix component carries a zero pattern offset
    // byte; flow-label (type 13) is v6-only.
    conforms(
        Afi::Ipv6,
        "0d 01 20 00 20 01 0d b8 03 81 11 0d 81 63",
        &FlowSpec::new(
            Afi::Ipv6,
            vec![
                Component::DstPrefix("2001:db8::/32".parse().unwrap()),
                Component::IpProtocol(vec![NumericOp::equals(17)]),
                Component::FlowLabel(vec![NumericOp::equals(99)]),
            ],
        )
        .unwrap(),
    );
}

#[test]
fn malformed_vectors_are_rejected() {
    rejected(Afi::Ipv4, "00", "empty NLRI body");
    rejected(Afi::Ipv4, "05 01 18 c0 00", "body truncated mid-prefix");
    rejected(
        Afi::Ipv4,
        "f0 08 01 18 c0 00 02 03 81 06",
        "non-minimal two-byte length form",
    );
    rejected(Afi::Ipv4, "03 0e 81 01", "unknown component type 14");
    rejected(
        Afi::Ipv4,
        "03 03 89 06",
        "reserved bit 0x08 set in a numeric operator",
    );
    rejected(
        Afi::Ipv4,
        "03 03 c1 06",
        "AND bit set on the first operator",
    );
    rejected(
        Afi::Ipv4,
        "05 03 01 06 01 11",
        "missing end-of-list bit runs off the NLRI",
    );
    rejected(
        Afi::Ipv4,
        "05 01 16 c0 00 03",
        "host bits set past a /22 prefix length",
    );
    rejected(
        Afi::Ipv4,
        "09 03 81 11 01 20 64 0a 0a 0a",
        "components out of ascending type order",
    );
    rejected(Afi::Ipv4, "03 0d 81 63", "flow-label in an IPv4 flowspec");
    rejected(
        Afi::Ipv6,
        "08 01 20 01 20 01 0d b8 00",
        "nonzero IPv6 pattern offset",
    );
}

#[test]
fn traffic_rate_extended_community_vectors() {
    // traffic-rate is type 0x80 subtype 0x06: 2-octet ASN then the rate
    // as an IEEE-754 float in bytes/second. Rate zero means drop.
    let drop = hex("80 06 fb f4 00 00 00 00");
    let shape = hex("80 06 fb f4 4b be bc 20"); // 25 MB/s = 200 Mbps

    let c = ExtendedCommunity::decode(&drop).expect("drop vector decodes");
    assert_eq!(c, ExtendedCommunity::traffic_rate(64500, 0.0));
    assert_eq!(c.rate_bytes_per_sec(), Some(0.0));
    assert_eq!(c.encode().to_vec(), drop);

    let c = ExtendedCommunity::decode(&shape).expect("shape vector decodes");
    assert_eq!(c, ExtendedCommunity::traffic_rate(64500, 25_000_000.0));
    assert_eq!(c.rate_bytes_per_sec(), Some(25_000_000.0));
    assert_eq!(c.encode().to_vec(), shape);
}
