//! Basic BGP scalar types.

use core::fmt;

/// An Autonomous System number (4-octet, RFC 6793).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl Asn {
    /// AS_TRANS (23456), the 2-octet stand-in for 4-octet ASNs.
    pub const TRANS: Asn = Asn(23456);

    /// True if the ASN fits in two octets.
    pub fn is_two_octet(&self) -> bool {
        self.0 <= 0xffff
    }

    /// True for private-use ranges (64512–65534 and the 4-octet range).
    pub fn is_private(&self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// Address Family Identifier (RFC 4760).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Afi {
    /// IPv4 (1).
    Ipv4,
    /// IPv6 (2).
    Ipv6,
}

impl Afi {
    /// Wire value.
    pub fn value(&self) -> u16 {
        match self {
            Afi::Ipv4 => 1,
            Afi::Ipv6 => 2,
        }
    }

    /// From wire value.
    pub fn from_value(v: u16) -> Option<Self> {
        match v {
            1 => Some(Afi::Ipv4),
            2 => Some(Afi::Ipv6),
            _ => None,
        }
    }
}

/// Subsequent Address Family Identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Safi {
    /// Unicast (1).
    Unicast,
    /// Multicast (2) — decoded but unused here.
    Multicast,
    /// Flow Specification (133), RFC 8955 §4.
    FlowSpec,
}

impl Safi {
    /// Wire value.
    pub fn value(&self) -> u8 {
        match self {
            Safi::Unicast => 1,
            Safi::Multicast => 2,
            Safi::FlowSpec => 133,
        }
    }

    /// From wire value.
    pub fn from_value(v: u8) -> Option<Self> {
        match v {
            1 => Some(Safi::Unicast),
            2 => Some(Safi::Multicast),
            133 => Some(Safi::FlowSpec),
            _ => None,
        }
    }
}

/// The ORIGIN path attribute's value (RFC 4271 §5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Origin {
    /// IGP (0) — most preferred in the decision process.
    Igp,
    /// EGP (1).
    Egp,
    /// INCOMPLETE (2).
    Incomplete,
}

impl Origin {
    /// Wire value.
    pub fn value(&self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// From wire value.
    pub fn from_value(v: u8) -> Option<Self> {
        match v {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_properties() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(64511).is_private());
        assert!(!Asn(3320).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(Asn(65535).is_two_octet());
        assert!(!Asn(65536).is_two_octet());
        assert_eq!(Asn(3320).to_string(), "AS3320");
    }

    #[test]
    fn afi_safi_origin_round_trip() {
        for afi in [Afi::Ipv4, Afi::Ipv6] {
            assert_eq!(Afi::from_value(afi.value()), Some(afi));
        }
        assert_eq!(Afi::from_value(3), None);
        for safi in [Safi::Unicast, Safi::Multicast, Safi::FlowSpec] {
            assert_eq!(Safi::from_value(safi.value()), Some(safi));
        }
        assert_eq!(Safi::from_value(99), None);
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_value(o.value()), Some(o));
        }
        assert_eq!(Origin::from_value(3), None);
    }

    #[test]
    fn origin_preference_order() {
        // Lower origin value is preferred by the decision process; the Ord
        // derive must match the wire order.
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }
}
