//! BGP extended communities (RFC 4360).
//!
//! Stellar signals blackholing rules with extended communities (§4.2.1):
//! they "provide a sufficiently large numbering space and allow us to
//! define a distinct community namespace for blackholing rules". This
//! module implements the generic 8-byte codec; the Stellar-specific rule
//! encoding lives in `stellar-core::signal`.

use crate::error::{BgpError, BgpResult};
use core::fmt;

/// High-order type bit: community is non-transitive across ASes.
pub const FLAG_NON_TRANSITIVE: u8 = 0x40;

/// An extended community (8 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExtendedCommunity {
    /// Two-octet-AS specific (type 0x00/0x40): `asn(2) : local(4)`.
    TwoOctetAs {
        /// Sub-type (semantics namespace).
        subtype: u8,
        /// Global administrator (a 2-octet ASN).
        asn: u16,
        /// Local administrator value.
        local: u32,
        /// True if transitive across ASes.
        transitive: bool,
    },
    /// IPv4-address specific (type 0x01/0x41): `addr(4) : local(2)`.
    Ipv4Addr {
        /// Sub-type.
        subtype: u8,
        /// Global administrator (an IPv4 address as u32).
        addr: u32,
        /// Local administrator value.
        local: u16,
        /// True if transitive.
        transitive: bool,
    },
    /// Four-octet-AS specific (type 0x02/0x42): `asn(4) : local(2)`.
    FourOctetAs {
        /// Sub-type.
        subtype: u8,
        /// Global administrator (a 4-octet ASN).
        asn: u32,
        /// Local administrator value.
        local: u16,
        /// True if transitive.
        transitive: bool,
    },
    /// Anything else, preserved verbatim.
    Raw([u8; 8]),
}

impl ExtendedCommunity {
    /// Encodes to the 8-byte wire form.
    pub fn encode(&self) -> [u8; 8] {
        let mut b = [0u8; 8];
        match *self {
            ExtendedCommunity::TwoOctetAs {
                subtype,
                asn,
                local,
                transitive,
            } => {
                b[0] = if transitive {
                    0x00
                } else {
                    FLAG_NON_TRANSITIVE
                };
                b[1] = subtype;
                b[2..4].copy_from_slice(&asn.to_be_bytes());
                b[4..8].copy_from_slice(&local.to_be_bytes());
            }
            ExtendedCommunity::Ipv4Addr {
                subtype,
                addr,
                local,
                transitive,
            } => {
                b[0] = 0x01 | if transitive { 0 } else { FLAG_NON_TRANSITIVE };
                b[1] = subtype;
                b[2..6].copy_from_slice(&addr.to_be_bytes());
                b[6..8].copy_from_slice(&local.to_be_bytes());
            }
            ExtendedCommunity::FourOctetAs {
                subtype,
                asn,
                local,
                transitive,
            } => {
                b[0] = 0x02 | if transitive { 0 } else { FLAG_NON_TRANSITIVE };
                b[1] = subtype;
                b[2..6].copy_from_slice(&asn.to_be_bytes());
                b[6..8].copy_from_slice(&local.to_be_bytes());
            }
            ExtendedCommunity::Raw(raw) => b = raw,
        }
        b
    }

    /// Decodes from 8 wire bytes.
    pub fn decode(b: &[u8]) -> BgpResult<Self> {
        if b.len() < 8 {
            return Err(BgpError::Truncated {
                what: "extended community",
            });
        }
        let transitive = b[0] & FLAG_NON_TRANSITIVE == 0;
        let base_type = b[0] & 0x3f;
        Ok(match base_type {
            0x00 => ExtendedCommunity::TwoOctetAs {
                subtype: b[1],
                asn: u16::from_be_bytes([b[2], b[3]]),
                local: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
                transitive,
            },
            0x01 => ExtendedCommunity::Ipv4Addr {
                subtype: b[1],
                addr: u32::from_be_bytes([b[2], b[3], b[4], b[5]]),
                local: u16::from_be_bytes([b[6], b[7]]),
                transitive,
            },
            0x02 => ExtendedCommunity::FourOctetAs {
                subtype: b[1],
                asn: u32::from_be_bytes([b[2], b[3], b[4], b[5]]),
                local: u16::from_be_bytes([b[6], b[7]]),
                transitive,
            },
            _ => {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&b[..8]);
                ExtendedCommunity::Raw(raw)
            }
        })
    }
}

impl fmt::Display for ExtendedCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtendedCommunity::TwoOctetAs {
                subtype,
                asn,
                local,
                ..
            } => write!(f, "ext:{subtype:#04x}:{asn}:{local}"),
            ExtendedCommunity::Ipv4Addr {
                subtype,
                addr,
                local,
                ..
            } => write!(f, "ext-ip:{subtype:#04x}:{addr:#010x}:{local}"),
            ExtendedCommunity::FourOctetAs {
                subtype,
                asn,
                local,
                ..
            } => write!(f, "ext4:{subtype:#04x}:{asn}:{local}"),
            ExtendedCommunity::Raw(raw) => {
                write!(f, "ext-raw:")?;
                for b in raw {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_octet_as_round_trip() {
        let ec = ExtendedCommunity::TwoOctetAs {
            subtype: 0xbb,
            asn: 6695,
            local: 0x0201_007b,
            transitive: true,
        };
        assert_eq!(ExtendedCommunity::decode(&ec.encode()).unwrap(), ec);
    }

    #[test]
    fn non_transitive_flag_round_trips() {
        let ec = ExtendedCommunity::FourOctetAs {
            subtype: 1,
            asn: 4_200_000_001,
            local: 7,
            transitive: false,
        };
        let wire = ec.encode();
        assert_eq!(wire[0] & FLAG_NON_TRANSITIVE, FLAG_NON_TRANSITIVE);
        assert_eq!(ExtendedCommunity::decode(&wire).unwrap(), ec);
    }

    #[test]
    fn ipv4_addr_specific_round_trip() {
        let ec = ExtendedCommunity::Ipv4Addr {
            subtype: 2,
            addr: 0xc000_0201,
            local: 666,
            transitive: true,
        };
        assert_eq!(ExtendedCommunity::decode(&ec.encode()).unwrap(), ec);
    }

    #[test]
    fn unknown_types_are_preserved() {
        let raw = [0x43u8, 0x99, 1, 2, 3, 4, 5, 6];
        let ec = ExtendedCommunity::decode(&raw).unwrap();
        assert_eq!(ec, ExtendedCommunity::Raw(raw));
        assert_eq!(ec.encode(), raw);
    }

    #[test]
    fn short_input_is_rejected() {
        assert!(ExtendedCommunity::decode(&[0u8; 7]).is_err());
    }
}
