//! BGP extended communities (RFC 4360).
//!
//! Stellar signals blackholing rules with extended communities (§4.2.1):
//! they "provide a sufficiently large numbering space and allow us to
//! define a distinct community namespace for blackholing rules". This
//! module implements the generic 8-byte codec; the Stellar-specific rule
//! encoding lives in `stellar-core::signal`.

use crate::error::{BgpError, BgpResult};
use core::fmt;

/// High-order type bit: community is non-transitive across ASes.
pub const FLAG_NON_TRANSITIVE: u8 = 0x40;

/// Generic Transitive Experimental type byte — the FlowSpec action
/// namespace (RFC 8955 §7).
pub const TYPE_EXPERIMENTAL: u8 = 0x80;
/// FlowSpec traffic-rate-bytes sub-type (RFC 8955 §7.2).
pub const SUBTYPE_TRAFFIC_RATE: u8 = 0x06;
/// FlowSpec traffic-action sub-type (RFC 8955 §7.3).
pub const SUBTYPE_TRAFFIC_ACTION: u8 = 0x07;
/// FlowSpec redirect-to-AS2 sub-type (RFC 8955 §7.4).
pub const SUBTYPE_REDIRECT_AS2: u8 = 0x08;
/// FlowSpec traffic-marking sub-type (RFC 8955 §7.5).
pub const SUBTYPE_TRAFFIC_MARKING: u8 = 0x09;

/// An extended community (8 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExtendedCommunity {
    /// Two-octet-AS specific (type 0x00/0x40): `asn(2) : local(4)`.
    TwoOctetAs {
        /// Sub-type (semantics namespace).
        subtype: u8,
        /// Global administrator (a 2-octet ASN).
        asn: u16,
        /// Local administrator value.
        local: u32,
        /// True if transitive across ASes.
        transitive: bool,
    },
    /// IPv4-address specific (type 0x01/0x41): `addr(4) : local(2)`.
    Ipv4Addr {
        /// Sub-type.
        subtype: u8,
        /// Global administrator (an IPv4 address as u32).
        addr: u32,
        /// Local administrator value.
        local: u16,
        /// True if transitive.
        transitive: bool,
    },
    /// Four-octet-AS specific (type 0x02/0x42): `asn(4) : local(2)`.
    FourOctetAs {
        /// Sub-type.
        subtype: u8,
        /// Global administrator (a 4-octet ASN).
        asn: u32,
        /// Local administrator value.
        local: u16,
        /// True if transitive.
        transitive: bool,
    },
    /// FlowSpec traffic-rate-bytes (type 0x80, sub-type 0x06, RFC 8955
    /// §7.2): limit matching traffic to a byte rate; rate 0 means discard.
    TrafficRate {
        /// 2-octet ASN of the party attaching the limit (informational).
        asn: u16,
        /// The rate as the raw bits of an IEEE-754 f32, bytes per second.
        /// Stored as bits so `Eq`/`Ord`/round-trip hold for every wire
        /// pattern (including NaNs a buggy speaker might emit).
        rate_bits: u32,
    },
    /// FlowSpec traffic-action (type 0x80, sub-type 0x07, RFC 8955 §7.3).
    TrafficAction {
        /// S bit (position 46): sample and log matching traffic.
        sample: bool,
        /// T bit (position 47): this rule is terminal in evaluation order.
        terminal: bool,
    },
    /// FlowSpec redirect-to-VRF, 2-octet-AS form (type 0x80, sub-type
    /// 0x08, RFC 8955 §7.4): `asn(2) : local(4)` route-target.
    RedirectAs2 {
        /// Route-target global administrator.
        asn: u16,
        /// Route-target local administrator.
        local: u32,
    },
    /// FlowSpec traffic-marking (type 0x80, sub-type 0x09, RFC 8955
    /// §7.5): rewrite the DSCP of matching traffic.
    TrafficMarking {
        /// The DSCP value (6 bits).
        dscp: u8,
    },
    /// Anything else, preserved verbatim.
    Raw([u8; 8]),
}

impl ExtendedCommunity {
    /// Encodes to the 8-byte wire form.
    pub fn encode(&self) -> [u8; 8] {
        let mut b = [0u8; 8];
        match *self {
            ExtendedCommunity::TwoOctetAs {
                subtype,
                asn,
                local,
                transitive,
            } => {
                b[0] = if transitive {
                    0x00
                } else {
                    FLAG_NON_TRANSITIVE
                };
                b[1] = subtype;
                b[2..4].copy_from_slice(&asn.to_be_bytes());
                b[4..8].copy_from_slice(&local.to_be_bytes());
            }
            ExtendedCommunity::Ipv4Addr {
                subtype,
                addr,
                local,
                transitive,
            } => {
                b[0] = 0x01 | if transitive { 0 } else { FLAG_NON_TRANSITIVE };
                b[1] = subtype;
                b[2..6].copy_from_slice(&addr.to_be_bytes());
                b[6..8].copy_from_slice(&local.to_be_bytes());
            }
            ExtendedCommunity::FourOctetAs {
                subtype,
                asn,
                local,
                transitive,
            } => {
                b[0] = 0x02 | if transitive { 0 } else { FLAG_NON_TRANSITIVE };
                b[1] = subtype;
                b[2..6].copy_from_slice(&asn.to_be_bytes());
                b[6..8].copy_from_slice(&local.to_be_bytes());
            }
            ExtendedCommunity::TrafficRate { asn, rate_bits } => {
                b[0] = TYPE_EXPERIMENTAL;
                b[1] = SUBTYPE_TRAFFIC_RATE;
                b[2..4].copy_from_slice(&asn.to_be_bytes());
                b[4..8].copy_from_slice(&rate_bits.to_be_bytes());
            }
            ExtendedCommunity::TrafficAction { sample, terminal } => {
                b[0] = TYPE_EXPERIMENTAL;
                b[1] = SUBTYPE_TRAFFIC_ACTION;
                b[7] = (u8::from(sample) << 1) | u8::from(terminal);
            }
            ExtendedCommunity::RedirectAs2 { asn, local } => {
                b[0] = TYPE_EXPERIMENTAL;
                b[1] = SUBTYPE_REDIRECT_AS2;
                b[2..4].copy_from_slice(&asn.to_be_bytes());
                b[4..8].copy_from_slice(&local.to_be_bytes());
            }
            ExtendedCommunity::TrafficMarking { dscp } => {
                b[0] = TYPE_EXPERIMENTAL;
                b[1] = SUBTYPE_TRAFFIC_MARKING;
                b[7] = dscp & 0x3f;
            }
            ExtendedCommunity::Raw(raw) => b = raw,
        }
        b
    }

    /// Decodes from 8 wire bytes.
    ///
    /// Dispatch is on the *full* type byte: each structured variant maps
    /// to exactly the wire forms it re-encodes to, so
    /// `decode(x).encode() == x` for every 8-byte input. Experimental
    /// (0x80) communities with reserved bits set fall back to [`Raw`]
    /// rather than silently losing bits.
    ///
    /// [`Raw`]: ExtendedCommunity::Raw
    pub fn decode(b: &[u8]) -> BgpResult<Self> {
        if b.len() < 8 {
            return Err(BgpError::Truncated {
                what: "extended community",
            });
        }
        let transitive = b[0] & FLAG_NON_TRANSITIVE == 0;
        Ok(match b[0] {
            0x00 | 0x40 => ExtendedCommunity::TwoOctetAs {
                subtype: b[1],
                asn: u16::from_be_bytes([b[2], b[3]]),
                local: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
                transitive,
            },
            0x01 | 0x41 => ExtendedCommunity::Ipv4Addr {
                subtype: b[1],
                addr: u32::from_be_bytes([b[2], b[3], b[4], b[5]]),
                local: u16::from_be_bytes([b[6], b[7]]),
                transitive,
            },
            0x02 | 0x42 => ExtendedCommunity::FourOctetAs {
                subtype: b[1],
                asn: u32::from_be_bytes([b[2], b[3], b[4], b[5]]),
                local: u16::from_be_bytes([b[6], b[7]]),
                transitive,
            },
            TYPE_EXPERIMENTAL => match b[1] {
                SUBTYPE_TRAFFIC_RATE => ExtendedCommunity::TrafficRate {
                    asn: u16::from_be_bytes([b[2], b[3]]),
                    rate_bits: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
                },
                SUBTYPE_TRAFFIC_ACTION if b[2..7] == [0; 5] && b[7] & !0x03 == 0 => {
                    ExtendedCommunity::TrafficAction {
                        sample: b[7] & 0x02 != 0,
                        terminal: b[7] & 0x01 != 0,
                    }
                }
                SUBTYPE_REDIRECT_AS2 => ExtendedCommunity::RedirectAs2 {
                    asn: u16::from_be_bytes([b[2], b[3]]),
                    local: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
                },
                SUBTYPE_TRAFFIC_MARKING if b[2..7] == [0; 5] && b[7] & !0x3f == 0 => {
                    ExtendedCommunity::TrafficMarking { dscp: b[7] }
                }
                _ => Self::raw_of(b),
            },
            _ => Self::raw_of(b),
        })
    }

    fn raw_of(b: &[u8]) -> Self {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&b[..8]);
        ExtendedCommunity::Raw(raw)
    }

    /// A traffic-rate community limiting matching traffic to
    /// `bytes_per_sec`; 0.0 discards all matching traffic.
    pub fn traffic_rate(asn: u16, bytes_per_sec: f32) -> Self {
        ExtendedCommunity::TrafficRate {
            asn,
            rate_bits: bytes_per_sec.to_bits(),
        }
    }

    /// The shaping rate in bytes per second if this is a traffic-rate
    /// community with a finite, non-negative rate.
    pub fn rate_bytes_per_sec(&self) -> Option<f32> {
        match *self {
            ExtendedCommunity::TrafficRate { rate_bits, .. } => {
                let rate = f32::from_bits(rate_bits);
                (rate.is_finite() && rate >= 0.0).then_some(rate)
            }
            _ => None,
        }
    }
}

impl fmt::Display for ExtendedCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtendedCommunity::TwoOctetAs {
                subtype,
                asn,
                local,
                ..
            } => write!(f, "ext:{subtype:#04x}:{asn}:{local}"),
            ExtendedCommunity::Ipv4Addr {
                subtype,
                addr,
                local,
                ..
            } => write!(f, "ext-ip:{subtype:#04x}:{addr:#010x}:{local}"),
            ExtendedCommunity::FourOctetAs {
                subtype,
                asn,
                local,
                ..
            } => write!(f, "ext4:{subtype:#04x}:{asn}:{local}"),
            ExtendedCommunity::TrafficRate { asn, rate_bits } => {
                write!(f, "fs-rate:{asn}:{}", f32::from_bits(*rate_bits))
            }
            ExtendedCommunity::TrafficAction { sample, terminal } => {
                write!(
                    f,
                    "fs-action:s={}:t={}",
                    u8::from(*sample),
                    u8::from(*terminal)
                )
            }
            ExtendedCommunity::RedirectAs2 { asn, local } => {
                write!(f, "fs-redirect:{asn}:{local}")
            }
            ExtendedCommunity::TrafficMarking { dscp } => write!(f, "fs-mark:{dscp}"),
            ExtendedCommunity::Raw(raw) => {
                write!(f, "ext-raw:")?;
                for b in raw {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_octet_as_round_trip() {
        let ec = ExtendedCommunity::TwoOctetAs {
            subtype: 0xbb,
            asn: 6695,
            local: 0x0201_007b,
            transitive: true,
        };
        assert_eq!(ExtendedCommunity::decode(&ec.encode()).unwrap(), ec);
    }

    #[test]
    fn non_transitive_flag_round_trips() {
        let ec = ExtendedCommunity::FourOctetAs {
            subtype: 1,
            asn: 4_200_000_001,
            local: 7,
            transitive: false,
        };
        let wire = ec.encode();
        assert_eq!(wire[0] & FLAG_NON_TRANSITIVE, FLAG_NON_TRANSITIVE);
        assert_eq!(ExtendedCommunity::decode(&wire).unwrap(), ec);
    }

    #[test]
    fn ipv4_addr_specific_round_trip() {
        let ec = ExtendedCommunity::Ipv4Addr {
            subtype: 2,
            addr: 0xc000_0201,
            local: 666,
            transitive: true,
        };
        assert_eq!(ExtendedCommunity::decode(&ec.encode()).unwrap(), ec);
    }

    #[test]
    fn unknown_types_are_preserved() {
        let raw = [0x43u8, 0x99, 1, 2, 3, 4, 5, 6];
        let ec = ExtendedCommunity::decode(&raw).unwrap();
        assert_eq!(ec, ExtendedCommunity::Raw(raw));
        assert_eq!(ec.encode(), raw);
    }

    #[test]
    fn short_input_is_rejected() {
        assert!(ExtendedCommunity::decode(&[0u8; 7]).is_err());
    }

    #[test]
    fn flowspec_actions_round_trip() {
        let rate = ExtendedCommunity::traffic_rate(64500, 12_500_000.0);
        let wire = rate.encode();
        assert_eq!(wire[0], TYPE_EXPERIMENTAL);
        assert_eq!(wire[1], SUBTYPE_TRAFFIC_RATE);
        assert_eq!(ExtendedCommunity::decode(&wire).unwrap(), rate);
        assert_eq!(rate.rate_bytes_per_sec(), Some(12_500_000.0));

        let drop = ExtendedCommunity::traffic_rate(64500, 0.0);
        assert_eq!(drop.rate_bytes_per_sec(), Some(0.0));

        for ec in [
            ExtendedCommunity::TrafficAction {
                sample: true,
                terminal: false,
            },
            ExtendedCommunity::RedirectAs2 {
                asn: 64500,
                local: 666,
            },
            ExtendedCommunity::TrafficMarking { dscp: 46 },
        ] {
            assert_eq!(ExtendedCommunity::decode(&ec.encode()).unwrap(), ec);
            assert_eq!(ec.rate_bytes_per_sec(), None);
        }
    }

    #[test]
    fn experimental_type_byte_is_not_aliased() {
        // A 0x80-family community must decode into its own namespace, not
        // collapse into TwoOctetAs via a masked type byte (which would
        // re-encode with type 0x00 and break round-trips).
        let wire = [0x80u8, 0x06, 0xfb, 0xf4, 0x4b, 0x3e, 0xbc, 0x20];
        let ec = ExtendedCommunity::decode(&wire).unwrap();
        assert!(matches!(ec, ExtendedCommunity::TrafficRate { .. }));
        assert_eq!(ec.encode(), wire);
        // Unknown experimental sub-types and reserved-bit violations are
        // preserved verbatim.
        for wire in [
            [0x80u8, 0x07, 0, 0, 0, 0, 0, 0x04],
            [0x80u8, 0x09, 0, 0, 0, 1, 0, 0x11],
            [0x80u8, 0x55, 1, 2, 3, 4, 5, 6],
            [0xc0u8, 0x06, 1, 2, 3, 4, 5, 6],
        ] {
            let ec = ExtendedCommunity::decode(&wire).unwrap();
            assert_eq!(ec, ExtendedCommunity::Raw(wire));
            assert_eq!(ec.encode(), wire);
        }
    }

    #[test]
    fn nonsensical_rates_are_refused_by_accessor() {
        let nan = ExtendedCommunity::TrafficRate {
            asn: 1,
            rate_bits: f32::NAN.to_bits(),
        };
        assert_eq!(nan.rate_bytes_per_sec(), None);
        let neg = ExtendedCommunity::TrafficRate {
            asn: 1,
            rate_bits: (-1.0f32).to_bits(),
        };
        assert_eq!(neg.rate_bytes_per_sec(), None);
    }
}
