//! Network Layer Reachability Information encoding, with optional ADD-PATH
//! path identifiers (RFC 7911 §3).

use crate::error::{BgpError, BgpResult};
use bytes::BufMut;
use stellar_net::addr::{Ipv4Address, Ipv6Address};
use stellar_net::prefix::{Ipv4Prefix, Ipv6Prefix, Prefix};

/// One NLRI entry: a prefix, optionally tagged with an ADD-PATH identifier.
///
/// The route server sends Stellar's blackholing controller *all* paths for
/// a prefix (not just the best one) by tagging each with a distinct path
/// id — essential when two members announce the same prefix with diverging
/// blackholing rules (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nlri {
    /// ADD-PATH path identifier, present iff the session negotiated
    /// ADD-PATH for this family.
    pub path_id: Option<u32>,
    /// The announced prefix.
    pub prefix: Prefix,
}

impl Nlri {
    /// An NLRI without a path id.
    pub fn plain(prefix: Prefix) -> Self {
        Nlri {
            path_id: None,
            prefix,
        }
    }

    /// An NLRI with a path id.
    pub fn with_path_id(prefix: Prefix, path_id: u32) -> Self {
        Nlri {
            path_id: Some(path_id),
            prefix,
        }
    }
}

/// Encodes a list of IPv4 NLRI entries. `add_path` must reflect the
/// session's negotiated state; entries must all carry a path id when it is
/// true and none when it is false.
pub fn encode_v4<B: BufMut>(entries: &[Nlri], add_path: bool, buf: &mut B) -> BgpResult<()> {
    for e in entries {
        let p = match e.prefix {
            Prefix::V4(p) => p,
            Prefix::V6(_) => {
                return Err(BgpError::update(0, "IPv6 prefix in IPv4 NLRI"));
            }
        };
        match (add_path, e.path_id) {
            (true, Some(id)) => buf.put_u32(id),
            (false, None) => {}
            _ => {
                return Err(BgpError::update(
                    0,
                    "path-id presence disagrees with session",
                ));
            }
        }
        buf.put_u8(p.len());
        let nbytes = p.len().div_ceil(8) as usize;
        buf.put_slice(&p.addr().octets()[..nbytes]);
    }
    Ok(())
}

/// Decodes IPv4 NLRI entries from the whole of `buf`.
pub fn decode_v4(mut buf: &[u8], add_path: bool) -> BgpResult<Vec<Nlri>> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let path_id = if add_path {
            if buf.len() < 4 {
                return Err(BgpError::Truncated { what: "path id" });
            }
            let id = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
            buf = &buf[4..];
            Some(id)
        } else {
            None
        };
        if buf.is_empty() {
            return Err(BgpError::Truncated {
                what: "nlri length",
            });
        }
        let len = buf[0];
        if len > 32 {
            return Err(BgpError::update(10, "invalid IPv4 prefix length"));
        }
        let nbytes = len.div_ceil(8) as usize;
        if buf.len() < 1 + nbytes {
            return Err(BgpError::Truncated {
                what: "nlri prefix",
            });
        }
        let mut octets = [0u8; 4];
        octets[..nbytes].copy_from_slice(&buf[1..1 + nbytes]);
        let prefix = Ipv4Prefix::new(Ipv4Address(octets), len)
            .map_err(|_| BgpError::update(10, "invalid prefix"))?;
        // The constructor masks host bits; bits set beyond the prefix
        // length would therefore re-encode differently. Reject them.
        if prefix.addr().octets()[..nbytes] != buf[1..1 + nbytes] {
            return Err(BgpError::update(10, "prefix has bits set past its length"));
        }
        out.push(Nlri {
            path_id,
            prefix: Prefix::V4(prefix),
        });
        buf = &buf[1 + nbytes..];
    }
    Ok(out)
}

/// Encodes a list of IPv6 NLRI entries (for MP_REACH_NLRI bodies).
pub fn encode_v6<B: BufMut>(entries: &[Nlri], add_path: bool, buf: &mut B) -> BgpResult<()> {
    for e in entries {
        let p = match e.prefix {
            Prefix::V6(p) => p,
            Prefix::V4(_) => {
                return Err(BgpError::update(0, "IPv4 prefix in IPv6 NLRI"));
            }
        };
        match (add_path, e.path_id) {
            (true, Some(id)) => buf.put_u32(id),
            (false, None) => {}
            _ => {
                return Err(BgpError::update(
                    0,
                    "path-id presence disagrees with session",
                ));
            }
        }
        buf.put_u8(p.len());
        let nbytes = p.len().div_ceil(8) as usize;
        buf.put_slice(&p.addr().octets()[..nbytes]);
    }
    Ok(())
}

/// Decodes IPv6 NLRI entries from the whole of `buf`.
pub fn decode_v6(mut buf: &[u8], add_path: bool) -> BgpResult<Vec<Nlri>> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let path_id = if add_path {
            if buf.len() < 4 {
                return Err(BgpError::Truncated { what: "path id" });
            }
            let id = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
            buf = &buf[4..];
            Some(id)
        } else {
            None
        };
        if buf.is_empty() {
            return Err(BgpError::Truncated {
                what: "nlri length",
            });
        }
        let len = buf[0];
        if len > 128 {
            return Err(BgpError::update(10, "invalid IPv6 prefix length"));
        }
        let nbytes = len.div_ceil(8) as usize;
        if buf.len() < 1 + nbytes {
            return Err(BgpError::Truncated {
                what: "nlri prefix",
            });
        }
        let mut octets = [0u8; 16];
        octets[..nbytes].copy_from_slice(&buf[1..1 + nbytes]);
        let prefix = Ipv6Prefix::new(Ipv6Address(octets), len)
            .map_err(|_| BgpError::update(10, "invalid prefix"))?;
        // As in `decode_v4`: reject non-canonical host bits.
        if prefix.addr().octets()[..nbytes] != buf[1..1 + nbytes] {
            return Err(BgpError::update(10, "prefix has bits set past its length"));
        }
        out.push(Nlri {
            path_id,
            prefix: Prefix::V6(prefix),
        });
        buf = &buf[1 + nbytes..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn v4(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn plain_v4_round_trip() {
        let entries = vec![
            Nlri::plain(v4("100.10.10.0/24")),
            Nlri::plain(v4("100.10.10.10/32")),
            Nlri::plain(v4("0.0.0.0/0")),
            Nlri::plain(v4("10.0.0.0/9")),
        ];
        let mut buf = BytesMut::new();
        encode_v4(&entries, false, &mut buf).unwrap();
        assert_eq!(decode_v4(&buf, false).unwrap(), entries);
    }

    #[test]
    fn add_path_v4_round_trip() {
        let entries = vec![
            Nlri::with_path_id(v4("100.10.10.10/32"), 1),
            Nlri::with_path_id(v4("100.10.10.10/32"), 2),
        ];
        let mut buf = BytesMut::new();
        encode_v4(&entries, true, &mut buf).unwrap();
        let decoded = decode_v4(&buf, true).unwrap();
        assert_eq!(decoded, entries);
        // Two paths for the same prefix are distinct entries — the whole
        // point of ADD-PATH.
        assert_eq!(decoded[0].prefix, decoded[1].prefix);
        assert_ne!(decoded[0].path_id, decoded[1].path_id);
    }

    #[test]
    fn mismatched_add_path_is_rejected() {
        let mut buf = BytesMut::new();
        let with_id = vec![Nlri::with_path_id(v4("1.0.0.0/8"), 9)];
        assert!(encode_v4(&with_id, false, &mut buf).is_err());
        let without = vec![Nlri::plain(v4("1.0.0.0/8"))];
        assert!(encode_v4(&without, true, &mut buf).is_err());
    }

    #[test]
    fn decoder_add_path_flag_changes_interpretation() {
        let entries = vec![Nlri::plain(v4("192.0.2.0/24"))];
        let mut buf = BytesMut::new();
        encode_v4(&entries, false, &mut buf).unwrap();
        // Decoding non-add-path bytes as add-path must fail or mis-parse,
        // never silently succeed with the same result.
        if let Ok(decoded) = decode_v4(&buf, true) {
            assert_ne!(decoded, entries);
        }
    }

    #[test]
    fn invalid_prefix_lengths_are_rejected() {
        assert!(decode_v4(&[33, 0, 0, 0, 0, 0], false).is_err());
        assert!(decode_v6(&[129], false).is_err());
        // Truncated prefix body.
        assert!(decode_v4(&[24, 1, 2], false).is_err());
    }

    #[test]
    fn non_canonical_host_bits_are_rejected() {
        // /20 with bits set in the low nibble of the third octet —
        // accepting it would decode to 10.0.0.0/20 and re-encode
        // differently.
        assert!(decode_v4(&[20, 10, 0, 0x01], false).is_err());
        // /9 with low bits in the second octet.
        assert!(decode_v4(&[9, 10, 0x01], false).is_err());
        // The canonical forms still decode.
        assert!(decode_v4(&[24, 10, 0, 1], false).is_ok());
        assert!(decode_v4(&[9, 10, 0x80], false).is_ok());
        assert!(decode_v6(&[32, 0x20, 0x01, 0x0d, 0xb9], false).is_ok());
        assert!(decode_v6(&[30, 0x20, 0x01, 0x0d, 0xb9], false).is_err());
        assert!(decode_v6(&[33, 0x20, 0x01, 0x0d, 0xb9, 0x40], false).is_err());
    }

    #[test]
    fn v6_round_trip_with_and_without_path_id() {
        let entries = vec![
            Nlri::plain("2001:db8::/32".parse().unwrap()),
            Nlri::plain("2001:db8::1/128".parse().unwrap()),
        ];
        let mut buf = BytesMut::new();
        encode_v6(&entries, false, &mut buf).unwrap();
        assert_eq!(decode_v6(&buf, false).unwrap(), entries);

        let entries: Vec<Nlri> = entries
            .into_iter()
            .enumerate()
            .map(|(i, e)| Nlri::with_path_id(e.prefix, i as u32 + 1))
            .collect();
        let mut buf = BytesMut::new();
        encode_v6(&entries, true, &mut buf).unwrap();
        assert_eq!(decode_v6(&buf, true).unwrap(), entries);
    }

    #[test]
    fn family_mixups_are_rejected() {
        let mut buf = BytesMut::new();
        assert!(encode_v4(
            &[Nlri::plain("2001:db8::/32".parse().unwrap())],
            false,
            &mut buf
        )
        .is_err());
        assert!(encode_v6(&[Nlri::plain(v4("1.0.0.0/8"))], false, &mut buf).is_err());
    }
}
