//! The BGP session finite-state machine (RFC 4271 §8), event-driven and
//! clocked by explicit timestamps so it runs deterministically inside the
//! discrete-event emulation.
//!
//! The machine is transport-agnostic: it consumes [`BgpEvent`]s and emits
//! [`FsmAction`]s; [`crate::session::Session`] maps both onto wire bytes.

use crate::error::BgpError;
use crate::notification::NotificationMessage;
use crate::open::OpenMessage;
use core::fmt;

/// Session states (RFC 4271 §8.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Initial state; refuses all connections.
    Idle,
    /// Waiting for the transport to come up (we initiate).
    Connect,
    /// Waiting for the peer to initiate.
    Active,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPENs exchanged, waiting for KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SessionState::Idle => "Idle",
            SessionState::Connect => "Connect",
            SessionState::Active => "Active",
            SessionState::OpenSent => "OpenSent",
            SessionState::OpenConfirm => "OpenConfirm",
            SessionState::Established => "Established",
        };
        f.write_str(s)
    }
}

/// Events driving the machine.
#[derive(Debug, Clone, PartialEq)]
pub enum BgpEvent {
    /// Operator starts the session (active open).
    ManualStart,
    /// Operator starts the session passively (wait for the peer).
    ManualStartPassive,
    /// Operator stops the session.
    ManualStop,
    /// The transport connection is up.
    TcpConfirmed,
    /// The transport connection was lost.
    TcpClosed,
    /// Received an OPEN message.
    RecvOpen(OpenMessage),
    /// Received a KEEPALIVE.
    RecvKeepalive,
    /// Received an UPDATE (payload handled by the session layer).
    RecvUpdate,
    /// Received a NOTIFICATION.
    RecvNotification(NotificationMessage),
    /// The hold timer expired.
    HoldTimerExpired,
    /// The keepalive timer fired.
    KeepaliveTimerExpired,
    /// A decode error occurred on the stream.
    DecodeError(BgpError),
}

/// Actions the machine instructs the session layer to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum FsmAction {
    /// Send our OPEN.
    SendOpen,
    /// Send a KEEPALIVE.
    SendKeepalive,
    /// Send a NOTIFICATION and drop the connection.
    SendNotification(NotificationMessage),
    /// The session reached Established.
    SessionUp,
    /// The session left Established (peer routes must be flushed —
    /// this is what makes Stellar rules implicitly withdraw when a member's
    /// session dies, §4.2.1).
    SessionDown,
    /// Process the pending UPDATE (session layer holds the payload).
    ProcessUpdate,
}

/// The state machine. Hold/keepalive timing uses microsecond timestamps
/// supplied by the caller.
#[derive(Debug)]
pub struct BgpFsm {
    state: SessionState,
    /// Negotiated hold time (seconds); min of both OPENs.
    hold_time_s: u16,
    /// Our configured hold time.
    configured_hold_s: u16,
    last_recv_us: u64,
    last_keepalive_sent_us: u64,
}

impl BgpFsm {
    /// Creates a machine in Idle with the given configured hold time.
    pub fn new(configured_hold_s: u16) -> Self {
        BgpFsm {
            state: SessionState::Idle,
            hold_time_s: configured_hold_s,
            configured_hold_s,
            last_recv_us: 0,
            last_keepalive_sent_us: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The negotiated hold time in seconds.
    pub fn hold_time_s(&self) -> u16 {
        self.hold_time_s
    }

    /// Handles an event at time `now_us`, returning the actions to take.
    pub fn handle(&mut self, event: BgpEvent, now_us: u64) -> Vec<FsmAction> {
        use BgpEvent as E;
        use FsmAction as A;
        use SessionState as S;
        match (&self.state, event) {
            (S::Idle, E::ManualStart) => {
                self.state = S::Connect;
                vec![]
            }
            (S::Idle, E::ManualStartPassive) => {
                self.state = S::Active;
                vec![]
            }
            (S::Connect, E::TcpConfirmed) => {
                self.state = S::OpenSent;
                vec![A::SendOpen]
            }
            (S::Active, E::TcpConfirmed) => {
                // Passive side: wait for the peer's OPEN before sending ours.
                vec![]
            }
            (S::Active, E::RecvOpen(open)) => {
                self.negotiate_hold(open.hold_time);
                self.last_recv_us = now_us;
                self.state = S::OpenConfirm;
                vec![A::SendOpen, A::SendKeepalive]
            }
            (S::OpenSent, E::RecvOpen(open)) => {
                self.negotiate_hold(open.hold_time);
                self.last_recv_us = now_us;
                self.state = S::OpenConfirm;
                vec![A::SendKeepalive]
            }
            (S::OpenConfirm, E::RecvKeepalive) => {
                self.last_recv_us = now_us;
                self.last_keepalive_sent_us = now_us;
                self.state = S::Established;
                vec![A::SessionUp]
            }
            (S::Established, E::RecvKeepalive) => {
                self.last_recv_us = now_us;
                vec![]
            }
            (S::Established, E::RecvUpdate) => {
                self.last_recv_us = now_us;
                vec![A::ProcessUpdate]
            }
            (S::Established, E::KeepaliveTimerExpired) => {
                self.last_keepalive_sent_us = now_us;
                vec![A::SendKeepalive]
            }
            (_, E::HoldTimerExpired) => {
                let was_up = self.state == S::Established;
                self.state = S::Idle;
                let mut acts = vec![A::SendNotification(
                    NotificationMessage::hold_timer_expired(),
                )];
                if was_up {
                    acts.push(A::SessionDown);
                }
                acts
            }
            (_, E::RecvNotification(_)) | (_, E::TcpClosed) => {
                let was_up = self.state == S::Established;
                self.state = S::Idle;
                if was_up {
                    vec![A::SessionDown]
                } else {
                    vec![]
                }
            }
            (_, E::ManualStop) => {
                let was_up = self.state == S::Established;
                self.state = S::Idle;
                let mut acts = vec![A::SendNotification(NotificationMessage::cease())];
                if was_up {
                    acts.push(A::SessionDown);
                }
                acts
            }
            (_, E::DecodeError(e)) => {
                let was_up = self.state == S::Established;
                self.state = S::Idle;
                let mut acts = Vec::new();
                if let Some(n) = NotificationMessage::from_error(&e) {
                    acts.push(A::SendNotification(n));
                }
                if was_up {
                    acts.push(A::SessionDown);
                }
                acts
            }
            // Unexpected event in this state: FSM error per RFC 4271 §6.6.
            (s, e) => {
                // Benign no-ops (e.g. duplicate keepalives while opening).
                if matches!(e, E::RecvKeepalive | E::TcpConfirmed) {
                    return vec![];
                }
                let was_up = *s == S::Established;
                self.state = S::Idle;
                let mut acts = vec![A::SendNotification(NotificationMessage {
                    code: crate::error::ErrorCode::FiniteStateMachine,
                    subcode: 0,
                    data: vec![],
                })];
                if was_up {
                    acts.push(A::SessionDown);
                }
                acts
            }
        }
    }

    /// Clock tick: checks hold/keepalive timers at `now_us`.
    pub fn tick(&mut self, now_us: u64) -> Vec<FsmAction> {
        if self.hold_time_s == 0 {
            return vec![]; // timers disabled
        }
        let hold_us = u64::from(self.hold_time_s) * 1_000_000;
        let keepalive_us = hold_us / 3;
        match self.state {
            SessionState::Established | SessionState::OpenConfirm => {
                if now_us.saturating_sub(self.last_recv_us) > hold_us {
                    return self.handle(BgpEvent::HoldTimerExpired, now_us);
                }
                if self.state == SessionState::Established
                    && now_us.saturating_sub(self.last_keepalive_sent_us) >= keepalive_us
                {
                    return self.handle(BgpEvent::KeepaliveTimerExpired, now_us);
                }
                vec![]
            }
            _ => vec![],
        }
    }

    fn negotiate_hold(&mut self, peer_hold_s: u16) {
        self.hold_time_s = self.configured_hold_s.min(peer_hold_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Asn;
    use stellar_net::addr::Ipv4Address;

    fn open(hold: u16) -> OpenMessage {
        OpenMessage {
            asn: Asn(64500),
            hold_time: hold,
            bgp_id: Ipv4Address::new(1, 1, 1, 1),
            capabilities: vec![],
        }
    }

    #[test]
    fn active_open_happy_path() {
        let mut fsm = BgpFsm::new(90);
        assert_eq!(fsm.state(), SessionState::Idle);
        assert!(fsm.handle(BgpEvent::ManualStart, 0).is_empty());
        assert_eq!(fsm.state(), SessionState::Connect);
        assert_eq!(
            fsm.handle(BgpEvent::TcpConfirmed, 0),
            vec![FsmAction::SendOpen]
        );
        assert_eq!(fsm.state(), SessionState::OpenSent);
        assert_eq!(
            fsm.handle(BgpEvent::RecvOpen(open(90)), 1),
            vec![FsmAction::SendKeepalive]
        );
        assert_eq!(fsm.state(), SessionState::OpenConfirm);
        assert_eq!(
            fsm.handle(BgpEvent::RecvKeepalive, 2),
            vec![FsmAction::SessionUp]
        );
        assert_eq!(fsm.state(), SessionState::Established);
    }

    #[test]
    fn passive_open_happy_path() {
        let mut fsm = BgpFsm::new(90);
        fsm.handle(BgpEvent::ManualStartPassive, 0);
        assert_eq!(fsm.state(), SessionState::Active);
        fsm.handle(BgpEvent::TcpConfirmed, 0);
        assert_eq!(fsm.state(), SessionState::Active);
        let acts = fsm.handle(BgpEvent::RecvOpen(open(90)), 1);
        assert_eq!(acts, vec![FsmAction::SendOpen, FsmAction::SendKeepalive]);
        assert_eq!(fsm.state(), SessionState::OpenConfirm);
        fsm.handle(BgpEvent::RecvKeepalive, 2);
        assert_eq!(fsm.state(), SessionState::Established);
    }

    #[test]
    fn hold_time_negotiates_to_minimum() {
        let mut fsm = BgpFsm::new(90);
        fsm.handle(BgpEvent::ManualStart, 0);
        fsm.handle(BgpEvent::TcpConfirmed, 0);
        fsm.handle(BgpEvent::RecvOpen(open(30)), 0);
        assert_eq!(fsm.hold_time_s(), 30);
    }

    fn established() -> BgpFsm {
        let mut fsm = BgpFsm::new(9);
        fsm.handle(BgpEvent::ManualStart, 0);
        fsm.handle(BgpEvent::TcpConfirmed, 0);
        fsm.handle(BgpEvent::RecvOpen(open(9)), 0);
        fsm.handle(BgpEvent::RecvKeepalive, 0);
        fsm
    }

    #[test]
    fn hold_timer_tears_session_down() {
        let mut fsm = established();
        // 9s hold => keepalives every 3s; stop feeding input.
        let acts = fsm.tick(9_000_001);
        assert!(acts.contains(&FsmAction::SendNotification(
            NotificationMessage::hold_timer_expired()
        )));
        assert!(acts.contains(&FsmAction::SessionDown));
        assert_eq!(fsm.state(), SessionState::Idle);
    }

    #[test]
    fn keepalive_timer_fires_before_hold() {
        let mut fsm = established();
        let acts = fsm.tick(3_000_000);
        assert_eq!(acts, vec![FsmAction::SendKeepalive]);
        // Receiving traffic refreshes hold.
        fsm.handle(BgpEvent::RecvUpdate, 4_000_000);
        let acts = fsm.tick(9_500_000); // 5.5s since last recv < 9s hold
        assert_eq!(acts, vec![FsmAction::SendKeepalive]);
        assert_eq!(fsm.state(), SessionState::Established);
    }

    #[test]
    fn updates_are_processed_only_when_established() {
        let mut fsm = established();
        assert_eq!(
            fsm.handle(BgpEvent::RecvUpdate, 1),
            vec![FsmAction::ProcessUpdate]
        );
        // An UPDATE in OpenSent is an FSM error.
        let mut fsm = BgpFsm::new(90);
        fsm.handle(BgpEvent::ManualStart, 0);
        fsm.handle(BgpEvent::TcpConfirmed, 0);
        let acts = fsm.handle(BgpEvent::RecvUpdate, 1);
        assert!(matches!(acts[0], FsmAction::SendNotification(_)));
        assert_eq!(fsm.state(), SessionState::Idle);
    }

    #[test]
    fn notification_and_stop_reset_to_idle() {
        let mut fsm = established();
        let acts = fsm.handle(BgpEvent::RecvNotification(NotificationMessage::cease()), 1);
        assert_eq!(acts, vec![FsmAction::SessionDown]);
        assert_eq!(fsm.state(), SessionState::Idle);

        let mut fsm = established();
        let acts = fsm.handle(BgpEvent::ManualStop, 1);
        assert!(acts.contains(&FsmAction::SessionDown));
        assert_eq!(fsm.state(), SessionState::Idle);
    }

    #[test]
    fn decode_error_sends_mapped_notification() {
        let mut fsm = established();
        let acts = fsm.handle(
            BgpEvent::DecodeError(BgpError::update(3, "missing attr")),
            1,
        );
        match &acts[0] {
            FsmAction::SendNotification(n) => {
                assert_eq!(n.code, crate::error::ErrorCode::UpdateMessage);
                assert_eq!(n.subcode, 3);
            }
            other => panic!("expected notification, got {other:?}"),
        }
        assert!(acts.contains(&FsmAction::SessionDown));
    }

    #[test]
    fn zero_hold_time_disables_timers() {
        let mut fsm = BgpFsm::new(0);
        fsm.handle(BgpEvent::ManualStart, 0);
        fsm.handle(BgpEvent::TcpConfirmed, 0);
        fsm.handle(BgpEvent::RecvOpen(open(0)), 0);
        fsm.handle(BgpEvent::RecvKeepalive, 0);
        assert_eq!(fsm.state(), SessionState::Established);
        assert!(fsm.tick(u64::MAX / 2).is_empty());
    }
}
