//! Routing Information Bases: per-peer Adj-RIB-In and a Loc-RIB with the
//! BGP decision process (RFC 4271 §9.1).
//!
//! Stellar's blackholing controller keeps an Adj-RIB-In fed by the route
//! server over ADD-PATH and computes *differences between RIB snapshots*
//! (§4.4) — the diffing lives here so it is reusable and testable.

use crate::attr::{AsPath, PathAttribute};
use crate::community::Community;
use crate::extcommunity::ExtendedCommunity;
use crate::nlri::Nlri;
use crate::types::{Asn, Origin};
use crate::update::UpdateMessage;
use std::collections::BTreeMap;
use stellar_net::addr::Ipv4Address;
use stellar_net::prefix::Prefix;

/// Identifies the peer a route was learned from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId {
    /// Peer AS number.
    pub asn: Asn,
    /// Peer BGP identifier (tie-breaker in the decision process).
    pub bgp_id: Ipv4Address,
}

/// A route: one path for one prefix from one peer.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// The prefix (+ optional ADD-PATH id).
    pub nlri: Nlri,
    /// Path attributes as received.
    pub attrs: Vec<PathAttribute>,
    /// The peer this came from.
    pub peer: PeerId,
    /// Receive timestamp (µs of simulation time).
    pub received_us: u64,
}

impl Route {
    /// LOCAL_PREF, defaulting to 100.
    pub fn local_pref(&self) -> u32 {
        self.attrs
            .iter()
            .find_map(|a| match a {
                PathAttribute::LocalPref(v) => Some(*v),
                _ => None,
            })
            .unwrap_or(100)
    }

    /// The AS_PATH (empty if absent).
    pub fn as_path(&self) -> AsPath {
        self.attrs
            .iter()
            .find_map(|a| match a {
                PathAttribute::AsPath(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// ORIGIN, defaulting to Incomplete.
    pub fn origin(&self) -> Origin {
        self.attrs
            .iter()
            .find_map(|a| match a {
                PathAttribute::Origin(o) => Some(*o),
                _ => None,
            })
            .unwrap_or(Origin::Incomplete)
    }

    /// MULTI_EXIT_DISC, defaulting to 0.
    pub fn med(&self) -> u32 {
        self.attrs
            .iter()
            .find_map(|a| match a {
                PathAttribute::Med(v) => Some(*v),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// NEXT_HOP if present.
    pub fn next_hop(&self) -> Option<Ipv4Address> {
        self.attrs.iter().find_map(|a| match a {
            PathAttribute::NextHop(h) => Some(*h),
            _ => None,
        })
    }

    /// Standard communities.
    pub fn communities(&self) -> Vec<Community> {
        self.attrs
            .iter()
            .find_map(|a| match a {
                PathAttribute::Communities(cs) => Some(cs.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Extended communities.
    pub fn extended_communities(&self) -> Vec<ExtendedCommunity> {
        self.attrs
            .iter()
            .find_map(|a| match a {
                PathAttribute::ExtendedCommunities(cs) => Some(cs.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// True if `self` is preferred over `other` by the decision process:
    /// higher LOCAL_PREF, shorter AS_PATH, lower ORIGIN, lower MED, lower
    /// peer BGP id (time-based and IGP steps do not apply here).
    pub fn better_than(&self, other: &Route) -> bool {
        if self.local_pref() != other.local_pref() {
            return self.local_pref() > other.local_pref();
        }
        let (a, b) = (self.as_path().path_len(), other.as_path().path_len());
        if a != b {
            return a < b;
        }
        if self.origin() != other.origin() {
            return self.origin() < other.origin();
        }
        if self.med() != other.med() {
            return self.med() < other.med();
        }
        self.peer.bgp_id < other.peer.bgp_id
    }
}

/// Key identifying one path in a RIB.
pub type PathKey = (Prefix, Option<u32>);

/// Per-peer Adj-RIB-In.
#[derive(Debug, Default)]
pub struct AdjRibIn {
    routes: BTreeMap<PathKey, Route>,
}

/// The result of applying an UPDATE to a RIB.
#[derive(Debug, Default, PartialEq)]
pub struct RibDelta {
    /// Newly added or replaced routes.
    pub announced: Vec<Route>,
    /// Withdrawn routes (the previous entries).
    pub withdrawn: Vec<Route>,
}

impl RibDelta {
    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

impl AdjRibIn {
    /// Creates an empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies an UPDATE from `peer`, returning what changed.
    pub fn apply_update(&mut self, peer: PeerId, update: &UpdateMessage, now_us: u64) -> RibDelta {
        let mut delta = RibDelta::default();
        for w in &update.withdrawn {
            if let Some(old) = self.routes.remove(&(w.prefix, w.path_id)) {
                delta.withdrawn.push(old);
            }
        }
        for n in &update.nlri {
            let route = Route {
                nlri: *n,
                attrs: update.attrs.clone(),
                peer,
                received_us: now_us,
            };
            // An implicit withdraw (replacement) is not reported as a
            // withdrawal; the new route shadows the old.
            self.routes.insert((n.prefix, n.path_id), route.clone());
            delta.announced.push(route);
        }
        delta
    }

    /// Removes every route from the RIB (session down ⇒ implicit
    /// withdrawal of all the peer's routes and, in Stellar, of all its
    /// blackholing rules).
    pub fn flush(&mut self) -> Vec<Route> {
        let out: Vec<Route> = self.routes.values().cloned().collect();
        self.routes.clear();
        out
    }

    /// All routes, ordered by key.
    pub fn routes(&self) -> impl Iterator<Item = &Route> {
        self.routes.values()
    }

    /// All routes for a given prefix (any path id).
    pub fn routes_for(&self, prefix: Prefix) -> Vec<&Route> {
        self.routes
            .range((prefix, None)..=(prefix, Some(u32::MAX)))
            .map(|(_, r)| r)
            .collect()
    }

    /// Number of paths held.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes are held.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// A snapshot of the current keys → routes, for diffing.
    pub fn snapshot(&self) -> BTreeMap<PathKey, Route> {
        self.routes.clone()
    }
}

/// Computes the difference between two RIB snapshots: what §4.4 calls the
/// "abstract configuration changes" source. Returns (added, removed,
/// modified) routes.
pub fn snapshot_diff(
    before: &BTreeMap<PathKey, Route>,
    after: &BTreeMap<PathKey, Route>,
) -> (Vec<Route>, Vec<Route>, Vec<Route>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let mut modified = Vec::new();
    for (k, r) in after {
        match before.get(k) {
            None => added.push(r.clone()),
            Some(old) if old.attrs != r.attrs => modified.push(r.clone()),
            Some(_) => {}
        }
    }
    for (k, r) in before {
        if !after.contains_key(k) {
            removed.push(r.clone());
        }
    }
    (added, removed, modified)
}

/// A Loc-RIB: best path per prefix over a set of contributing routes.
#[derive(Debug, Default)]
pub struct LocRib {
    best: BTreeMap<Prefix, Route>,
}

impl LocRib {
    /// Creates an empty Loc-RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds best paths from an iterator of candidate routes.
    pub fn rebuild<'a>(&mut self, candidates: impl Iterator<Item = &'a Route>) {
        self.best.clear();
        for r in candidates {
            match self.best.get(&r.nlri.prefix) {
                Some(cur) if !r.better_than(cur) => {}
                _ => {
                    self.best.insert(r.nlri.prefix, r.clone());
                }
            }
        }
    }

    /// The best route for `prefix`, if any.
    pub fn best(&self, prefix: Prefix) -> Option<&Route> {
        self.best.get(&prefix)
    }

    /// Longest-prefix-match lookup for an IPv4 address.
    pub fn lookup_v4(&self, addr: stellar_net::addr::Ipv4Address) -> Option<&Route> {
        self.best
            .iter()
            .filter(|(p, _)| p.contains(stellar_net::addr::IpAddress::V4(addr)))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, r)| r)
    }

    /// Number of prefixes with a best path.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    /// Iterates over (prefix, best route).
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &Route)> {
        self.best.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AsPath;

    fn peer(asn: u32, id: u8) -> PeerId {
        PeerId {
            asn: Asn(asn),
            bgp_id: Ipv4Address::new(10, 0, 0, id),
        }
    }

    fn announce(prefix: &str, asns: &[u32]) -> UpdateMessage {
        UpdateMessage::announce(
            prefix.parse().unwrap(),
            Ipv4Address::new(80, 81, 192, 1),
            PathAttribute::AsPath(AsPath::sequence(asns.iter().copied())),
        )
    }

    #[test]
    fn apply_update_announce_and_withdraw() {
        let mut rib = AdjRibIn::new();
        let d = rib.apply_update(peer(64500, 1), &announce("100.10.10.0/24", &[64500]), 0);
        assert_eq!(d.announced.len(), 1);
        assert_eq!(rib.len(), 1);
        let d = rib.apply_update(
            peer(64500, 1),
            &UpdateMessage::withdraw("100.10.10.0/24".parse().unwrap()),
            1,
        );
        assert_eq!(d.withdrawn.len(), 1);
        assert!(rib.is_empty());
        // Withdrawing a non-existent route changes nothing.
        let d = rib.apply_update(
            peer(64500, 1),
            &UpdateMessage::withdraw("1.0.0.0/8".parse().unwrap()),
            2,
        );
        assert!(d.is_empty());
    }

    #[test]
    fn add_path_keeps_parallel_paths() {
        let mut rib = AdjRibIn::new();
        let mut u = announce("100.10.10.10/32", &[64500]);
        u.nlri = vec![Nlri::with_path_id("100.10.10.10/32".parse().unwrap(), 1)];
        rib.apply_update(peer(64500, 1), &u, 0);
        let mut u2 = announce("100.10.10.10/32", &[64501]);
        u2.nlri = vec![Nlri::with_path_id("100.10.10.10/32".parse().unwrap(), 2)];
        rib.apply_update(peer(64501, 2), &u2, 0);
        assert_eq!(rib.len(), 2);
        assert_eq!(rib.routes_for("100.10.10.10/32".parse().unwrap()).len(), 2);
    }

    #[test]
    fn flush_empties_and_returns_routes() {
        let mut rib = AdjRibIn::new();
        rib.apply_update(peer(64500, 1), &announce("1.0.0.0/8", &[64500]), 0);
        rib.apply_update(peer(64500, 1), &announce("2.0.0.0/8", &[64500]), 0);
        let flushed = rib.flush();
        assert_eq!(flushed.len(), 2);
        assert!(rib.is_empty());
    }

    #[test]
    fn decision_process_ordering() {
        let mk = |lp: u32, path: &[u32], origin: Origin, med: u32, id: u8| Route {
            nlri: Nlri::plain("1.0.0.0/8".parse().unwrap()),
            attrs: vec![
                PathAttribute::LocalPref(lp),
                PathAttribute::AsPath(AsPath::sequence(path.iter().copied())),
                PathAttribute::Origin(origin),
                PathAttribute::Med(med),
            ],
            peer: peer(64500, id),
            received_us: 0,
        };
        let base = mk(100, &[1, 2], Origin::Igp, 10, 5);
        assert!(mk(200, &[1, 2, 3], Origin::Egp, 50, 9).better_than(&base));
        assert!(mk(100, &[1], Origin::Incomplete, 50, 9).better_than(&base));
        assert!(!mk(100, &[1, 2, 3], Origin::Igp, 0, 1).better_than(&base));
        assert!(mk(100, &[9, 9], Origin::Igp, 5, 9).better_than(&base));
        assert!(mk(100, &[9, 9], Origin::Igp, 10, 1).better_than(&base));
        assert!(!mk(100, &[9, 9], Origin::Igp, 10, 9).better_than(&base));
    }

    #[test]
    fn loc_rib_picks_best_and_does_lpm() {
        let mut rib = AdjRibIn::new();
        rib.apply_update(peer(64500, 1), &announce("100.10.0.0/16", &[64500, 7]), 0);
        rib.apply_update(peer(64501, 2), &announce("100.10.10.0/24", &[64501]), 0);
        let mut loc = LocRib::new();
        loc.rebuild(rib.routes());
        assert_eq!(loc.len(), 2);
        let hit = loc
            .lookup_v4(stellar_net::addr::Ipv4Address::new(100, 10, 10, 10))
            .unwrap();
        // LPM must prefer the /24.
        assert_eq!(hit.peer.asn, Asn(64501));
        let hit = loc
            .lookup_v4(stellar_net::addr::Ipv4Address::new(100, 10, 99, 1))
            .unwrap();
        assert_eq!(hit.peer.asn, Asn(64500));
        assert!(loc
            .lookup_v4(stellar_net::addr::Ipv4Address::new(9, 9, 9, 9))
            .is_none());
    }

    #[test]
    fn snapshot_diff_detects_adds_removes_modifies() {
        let mut rib = AdjRibIn::new();
        rib.apply_update(peer(64500, 1), &announce("1.0.0.0/8", &[64500]), 0);
        let before = rib.snapshot();

        rib.apply_update(peer(64500, 1), &announce("2.0.0.0/8", &[64500]), 1);
        // Modify 1.0.0.0/8 by changing its attributes.
        let mut m = announce("1.0.0.0/8", &[64500, 64500]);
        m.add_communities(&[Community::BLACKHOLE]);
        rib.apply_update(peer(64500, 1), &m, 2);
        let after = rib.snapshot();

        let (added, removed, modified) = snapshot_diff(&before, &after);
        assert_eq!(added.len(), 1);
        assert_eq!(added[0].nlri.prefix, "2.0.0.0/8".parse().unwrap());
        assert!(removed.is_empty());
        assert_eq!(modified.len(), 1);
        assert_eq!(modified[0].nlri.prefix, "1.0.0.0/8".parse().unwrap());

        let (added, removed, _) = snapshot_diff(&after, &before);
        assert!(added.is_empty());
        assert_eq!(removed.len(), 1);
    }

    #[test]
    fn route_attribute_accessors_default_sanely() {
        let r = Route {
            nlri: Nlri::plain("1.0.0.0/8".parse().unwrap()),
            attrs: vec![],
            peer: peer(64500, 1),
            received_us: 0,
        };
        assert_eq!(r.local_pref(), 100);
        assert_eq!(r.med(), 0);
        assert_eq!(r.origin(), Origin::Incomplete);
        assert_eq!(r.as_path().path_len(), 0);
        assert!(r.next_hop().is_none());
        assert!(r.communities().is_empty());
        assert!(r.extended_communities().is_empty());
    }
}
