//! OPEN message (RFC 4271 §4.2) with capability negotiation (RFC 5492).

use crate::capability::Capability;
use crate::error::{BgpError, BgpResult};
use crate::types::Asn;
use bytes::{BufMut, BytesMut};
use stellar_net::addr::Ipv4Address;

/// An OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMessage {
    /// Sender's AS number (4-octet; the 2-octet field carries AS_TRANS when
    /// it does not fit).
    pub asn: Asn,
    /// Proposed hold time in seconds (0 or >= 3).
    pub hold_time: u16,
    /// BGP identifier (router id).
    pub bgp_id: Ipv4Address,
    /// Advertised capabilities.
    pub capabilities: Vec<Capability>,
}

impl OpenMessage {
    /// Encodes the message body (without the 19-byte message header).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(4); // version
        let two_octet = if self.asn.is_two_octet() {
            self.asn.0 as u16
        } else {
            Asn::TRANS.0 as u16
        };
        buf.put_u16(two_octet);
        buf.put_u16(self.hold_time);
        buf.put_slice(&self.bgp_id.octets());
        // Optional parameters: one parameter of type 2 (capabilities).
        let mut caps = BytesMut::new();
        for c in &self.capabilities {
            c.encode(&mut caps);
        }
        if caps.is_empty() {
            buf.put_u8(0);
        } else {
            buf.put_u8((caps.len() + 2) as u8);
            buf.put_u8(2); // parameter type: capabilities
            buf.put_u8(caps.len() as u8);
            buf.put_slice(&caps);
        }
    }

    /// Decodes a message body.
    pub fn decode(buf: &[u8]) -> BgpResult<OpenMessage> {
        if buf.len() < 10 {
            return Err(BgpError::Truncated { what: "open" });
        }
        if buf[0] != 4 {
            return Err(BgpError::open(1, "unsupported BGP version"));
        }
        let two_octet = u16::from_be_bytes([buf[1], buf[2]]);
        let hold_time = u16::from_be_bytes([buf[3], buf[4]]);
        if hold_time == 1 || hold_time == 2 {
            return Err(BgpError::open(6, "hold time must be 0 or >= 3"));
        }
        let bgp_id = Ipv4Address([buf[5], buf[6], buf[7], buf[8]]);
        let opt_len = buf[9] as usize;
        if buf.len() < 10 + opt_len {
            return Err(BgpError::Truncated {
                what: "open optional parameters",
            });
        }
        let mut capabilities = Vec::new();
        let mut rest = &buf[10..10 + opt_len];
        while !rest.is_empty() {
            if rest.len() < 2 {
                return Err(BgpError::Truncated {
                    what: "open parameter",
                });
            }
            let ptype = rest[0];
            let plen = rest[1] as usize;
            if rest.len() < 2 + plen {
                return Err(BgpError::Truncated {
                    what: "open parameter body",
                });
            }
            if ptype == 2 {
                let mut caps = &rest[2..2 + plen];
                while !caps.is_empty() {
                    let (cap, used) = Capability::decode(caps)?;
                    capabilities.push(cap);
                    caps = &caps[used..];
                }
            }
            // Unknown parameter types are skipped (RFC 5492 behaviour).
            rest = &rest[2 + plen..];
        }
        // Resolve the real ASN: prefer the 4-octet capability.
        let asn = capabilities
            .iter()
            .find_map(|c| match c {
                Capability::FourOctetAs { asn } => Some(Asn(*asn)),
                _ => None,
            })
            .unwrap_or(Asn(u32::from(two_octet)));
        Ok(OpenMessage {
            asn,
            hold_time,
            bgp_id,
            capabilities,
        })
    }

    /// The ADD-PATH capability's families, if advertised.
    pub fn add_path_families(
        &self,
    ) -> Option<
        &[(
            crate::types::Afi,
            crate::types::Safi,
            crate::capability::AddPathMode,
        )],
    > {
        self.capabilities.iter().find_map(|c| match c {
            Capability::AddPath { families } => Some(families.as_slice()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::AddPathMode;
    use crate::types::{Afi, Safi};

    fn sample() -> OpenMessage {
        OpenMessage {
            asn: Asn(64500),
            hold_time: 90,
            bgp_id: Ipv4Address::new(80, 81, 192, 10),
            capabilities: vec![
                Capability::Multiprotocol {
                    afi: Afi::Ipv4,
                    safi: Safi::Unicast,
                },
                Capability::FourOctetAs { asn: 64500 },
                Capability::AddPath {
                    families: vec![(Afi::Ipv4, Safi::Unicast, AddPathMode::Both)],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        let d = OpenMessage::decode(&buf).unwrap();
        assert_eq!(d, m);
        assert!(d.add_path_families().is_some());
    }

    #[test]
    fn four_octet_asn_survives_via_capability() {
        let mut m = sample();
        m.asn = Asn(4_200_000_777);
        m.capabilities = vec![Capability::FourOctetAs { asn: 4_200_000_777 }];
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        // The 2-octet field must carry AS_TRANS.
        assert_eq!(u16::from_be_bytes([buf[1], buf[2]]), Asn::TRANS.0 as u16);
        let d = OpenMessage::decode(&buf).unwrap();
        assert_eq!(d.asn, Asn(4_200_000_777));
    }

    #[test]
    fn no_capabilities_encodes_zero_opt_len() {
        let m = OpenMessage {
            asn: Asn(64500),
            hold_time: 0,
            bgp_id: Ipv4Address::new(1, 1, 1, 1),
            capabilities: vec![],
        };
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        assert_eq!(buf[9], 0);
        let d = OpenMessage::decode(&buf).unwrap();
        assert_eq!(d, m);
        assert!(d.add_path_families().is_none());
    }

    #[test]
    fn rejects_bad_version_and_hold_time() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        let mut raw = buf.to_vec();
        raw[0] = 3;
        assert!(OpenMessage::decode(&raw).is_err());
        let mut m = sample();
        m.hold_time = 2;
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        assert!(OpenMessage::decode(&buf).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        for cut in [5, 9, buf.len() - 1] {
            assert!(OpenMessage::decode(&buf[..cut]).is_err(), "cut={cut}");
        }
    }
}
