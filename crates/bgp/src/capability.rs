//! BGP capabilities advertisement (RFC 5492) with the capabilities Stellar
//! needs: multiprotocol extensions, 4-octet AS numbers, and ADD-PATH.

use crate::error::{BgpError, BgpResult};
use crate::types::{Afi, Safi};
use bytes::BufMut;

/// ADD-PATH send/receive mode (RFC 7911 §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddPathMode {
    /// Able to receive multiple paths (1).
    Receive,
    /// Able to send multiple paths (2).
    Send,
    /// Both (3).
    Both,
}

impl AddPathMode {
    /// Wire value.
    pub fn value(&self) -> u8 {
        match self {
            AddPathMode::Receive => 1,
            AddPathMode::Send => 2,
            AddPathMode::Both => 3,
        }
    }

    /// From wire value.
    pub fn from_value(v: u8) -> Option<Self> {
        match v {
            1 => Some(AddPathMode::Receive),
            2 => Some(AddPathMode::Send),
            3 => Some(AddPathMode::Both),
            _ => None,
        }
    }

    /// True if the speaker can send multiple paths.
    pub fn can_send(&self) -> bool {
        matches!(self, AddPathMode::Send | AddPathMode::Both)
    }

    /// True if the speaker can receive multiple paths.
    pub fn can_receive(&self) -> bool {
        matches!(self, AddPathMode::Receive | AddPathMode::Both)
    }
}

/// A single capability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// Multiprotocol extensions (code 1, RFC 4760).
    Multiprotocol {
        /// Address family.
        afi: Afi,
        /// Subsequent address family.
        safi: Safi,
    },
    /// Four-octet AS numbers (code 65, RFC 6793).
    FourOctetAs {
        /// The speaker's AS number.
        asn: u32,
    },
    /// ADD-PATH (code 69, RFC 7911); one entry per (afi, safi).
    AddPath {
        /// Per-family modes.
        families: Vec<(Afi, Safi, AddPathMode)>,
    },
    /// Route refresh (code 2, RFC 2918).
    RouteRefresh,
    /// Unknown capability, preserved verbatim.
    Unknown {
        /// Capability code.
        code: u8,
        /// Raw value bytes.
        value: Vec<u8>,
    },
}

impl Capability {
    /// Capability code.
    pub fn code(&self) -> u8 {
        match self {
            Capability::Multiprotocol { .. } => 1,
            Capability::RouteRefresh => 2,
            Capability::FourOctetAs { .. } => 65,
            Capability::AddPath { .. } => 69,
            Capability::Unknown { code, .. } => *code,
        }
    }

    /// Encodes as a TLV (code, length, value).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            Capability::Multiprotocol { afi, safi } => {
                buf.put_u8(1);
                buf.put_u8(4);
                buf.put_u16(afi.value());
                buf.put_u8(0);
                buf.put_u8(safi.value());
            }
            Capability::RouteRefresh => {
                buf.put_u8(2);
                buf.put_u8(0);
            }
            Capability::FourOctetAs { asn } => {
                buf.put_u8(65);
                buf.put_u8(4);
                buf.put_u32(*asn);
            }
            Capability::AddPath { families } => {
                buf.put_u8(69);
                buf.put_u8((families.len() * 4) as u8);
                for (afi, safi, mode) in families {
                    buf.put_u16(afi.value());
                    buf.put_u8(safi.value());
                    buf.put_u8(mode.value());
                }
            }
            Capability::Unknown { code, value } => {
                buf.put_u8(*code);
                buf.put_u8(value.len() as u8);
                buf.put_slice(value);
            }
        }
    }

    /// Decodes one capability TLV, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> BgpResult<(Self, usize)> {
        if buf.len() < 2 {
            return Err(BgpError::Truncated { what: "capability" });
        }
        let code = buf[0];
        let len = buf[1] as usize;
        if buf.len() < 2 + len {
            return Err(BgpError::Truncated { what: "capability" });
        }
        let v = &buf[2..2 + len];
        let cap = match code {
            1 => {
                if len != 4 {
                    return Err(BgpError::open(0, "bad multiprotocol capability length"));
                }
                let afi = Afi::from_value(u16::from_be_bytes([v[0], v[1]]))
                    .ok_or(BgpError::open(0, "unknown AFI"))?;
                let safi = Safi::from_value(v[3]).ok_or(BgpError::open(0, "unknown SAFI"))?;
                Capability::Multiprotocol { afi, safi }
            }
            2 => Capability::RouteRefresh,
            65 => {
                if len != 4 {
                    return Err(BgpError::open(0, "bad 4-octet-AS capability length"));
                }
                Capability::FourOctetAs {
                    asn: u32::from_be_bytes([v[0], v[1], v[2], v[3]]),
                }
            }
            69 => {
                if !len.is_multiple_of(4) {
                    return Err(BgpError::open(0, "bad ADD-PATH capability length"));
                }
                let mut families = Vec::with_capacity(len / 4);
                for chunk in v.chunks_exact(4) {
                    let afi = Afi::from_value(u16::from_be_bytes([chunk[0], chunk[1]]))
                        .ok_or(BgpError::open(0, "unknown AFI in ADD-PATH"))?;
                    let safi = Safi::from_value(chunk[2])
                        .ok_or(BgpError::open(0, "unknown SAFI in ADD-PATH"))?;
                    let mode = AddPathMode::from_value(chunk[3])
                        .ok_or(BgpError::open(0, "unknown ADD-PATH mode"))?;
                    families.push((afi, safi, mode));
                }
                Capability::AddPath { families }
            }
            _ => Capability::Unknown {
                code,
                value: v.to_vec(),
            },
        };
        Ok((cap, 2 + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn round_trip(c: &Capability) {
        let mut buf = BytesMut::new();
        c.encode(&mut buf);
        let (d, used) = Capability::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(&d, c);
    }

    #[test]
    fn all_capabilities_round_trip() {
        round_trip(&Capability::Multiprotocol {
            afi: Afi::Ipv4,
            safi: Safi::Unicast,
        });
        round_trip(&Capability::Multiprotocol {
            afi: Afi::Ipv6,
            safi: Safi::Unicast,
        });
        round_trip(&Capability::RouteRefresh);
        round_trip(&Capability::FourOctetAs { asn: 4_210_000_000 });
        round_trip(&Capability::AddPath {
            families: vec![
                (Afi::Ipv4, Safi::Unicast, AddPathMode::Both),
                (Afi::Ipv6, Safi::Unicast, AddPathMode::Send),
            ],
        });
        round_trip(&Capability::Unknown {
            code: 200,
            value: vec![1, 2, 3],
        });
    }

    #[test]
    fn add_path_modes() {
        assert!(AddPathMode::Both.can_send() && AddPathMode::Both.can_receive());
        assert!(AddPathMode::Send.can_send() && !AddPathMode::Send.can_receive());
        assert!(!AddPathMode::Receive.can_send() && AddPathMode::Receive.can_receive());
        assert_eq!(AddPathMode::from_value(0), None);
        assert_eq!(AddPathMode::from_value(4), None);
    }

    #[test]
    fn truncated_and_malformed_are_rejected() {
        assert!(Capability::decode(&[1]).is_err());
        assert!(Capability::decode(&[1, 4, 0]).is_err()); // length beyond buffer
        assert!(Capability::decode(&[1, 3, 0, 1, 1]).is_err()); // MP must be 4
        assert!(Capability::decode(&[69, 3, 0, 1, 1]).is_err()); // not multiple of 4
    }
}
