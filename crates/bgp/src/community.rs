//! Standard BGP communities (RFC 1997) and well-known values, including the
//! BLACKHOLE community (RFC 7999) that triggers RTBH, plus large
//! communities (RFC 8092).

use crate::error::{BgpError, BgpResult};
use crate::types::Asn;
use core::fmt;
use core::str::FromStr;

/// A standard 32-bit community, conventionally written `asn:value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Community(pub u32);

impl Community {
    /// BLACKHOLE (RFC 7999): 0xFFFF029A, i.e. 65535:666. Announcing a
    /// prefix with this community asks peers to discard traffic to it —
    /// the signal classic RTBH is built on (§2.2).
    pub const BLACKHOLE: Community = Community(0xFFFF_029A);
    /// NO_EXPORT (RFC 1997).
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// NO_ADVERTISE (RFC 1997).
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
    /// GRACEFUL_SHUTDOWN (RFC 8326).
    pub const GRACEFUL_SHUTDOWN: Community = Community(0xFFFF_0000);

    /// Builds `asn:value` (the ASN must fit 16 bits).
    pub fn new(asn: u16, value: u16) -> Self {
        Community((u32::from(asn) << 16) | u32::from(value))
    }

    /// The high 16 bits, conventionally an AS number.
    pub fn asn(&self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits.
    pub fn value(&self) -> u16 {
        self.0 as u16
    }

    /// True if this is the RFC 7999 BLACKHOLE community or the
    /// conventional `<ixp-asn>:666` form IXPs documented before the RFC
    /// (§2.2's `IXP_ASN:666`).
    pub fn is_blackhole(&self, ixp_asn: Asn) -> bool {
        *self == Self::BLACKHOLE || (self.value() == 666 && u32::from(self.asn()) == ixp_asn.0)
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn(), self.value())
    }
}

impl FromStr for Community {
    type Err = BgpError;

    fn from_str(s: &str) -> BgpResult<Self> {
        let (a, v) = s.split_once(':').ok_or(BgpError::Truncated {
            what: "community string",
        })?;
        let asn: u16 = a.parse().map_err(|_| BgpError::Truncated {
            what: "community asn",
        })?;
        let val: u16 = v.parse().map_err(|_| BgpError::Truncated {
            what: "community value",
        })?;
        Ok(Community::new(asn, val))
    }
}

/// A large community (RFC 8092): `global:data1:data2` with 32-bit parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LargeCommunity {
    /// Global administrator (an ASN).
    pub global: u32,
    /// First data part.
    pub data1: u32,
    /// Second data part.
    pub data2: u32,
}

impl LargeCommunity {
    /// Constructs a large community.
    pub fn new(global: u32, data1: u32, data2: u32) -> Self {
        LargeCommunity {
            global,
            data1,
            data2,
        }
    }

    /// Encodes to 12 bytes.
    pub fn encode(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[0..4].copy_from_slice(&self.global.to_be_bytes());
        out[4..8].copy_from_slice(&self.data1.to_be_bytes());
        out[8..12].copy_from_slice(&self.data2.to_be_bytes());
        out
    }

    /// Decodes from 12 bytes.
    pub fn decode(b: &[u8]) -> BgpResult<Self> {
        if b.len() < 12 {
            return Err(BgpError::Truncated {
                what: "large community",
            });
        }
        Ok(LargeCommunity {
            global: u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            data1: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            data2: u32::from_be_bytes([b[8], b[9], b[10], b[11]]),
        })
    }
}

impl fmt::Display for LargeCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.global, self.data1, self.data2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackhole_is_65535_666() {
        assert_eq!(Community::BLACKHOLE.asn(), 65535);
        assert_eq!(Community::BLACKHOLE.value(), 666);
        assert_eq!(Community::BLACKHOLE.to_string(), "65535:666");
    }

    #[test]
    fn ixp_specific_blackhole_is_recognized() {
        let ixp = Asn(6695); // a real IXP ASN size
        assert!(Community::new(6695, 666).is_blackhole(ixp));
        assert!(Community::BLACKHOLE.is_blackhole(ixp));
        assert!(!Community::new(6695, 667).is_blackhole(ixp));
        assert!(!Community::new(6696, 666).is_blackhole(ixp));
    }

    #[test]
    fn display_parse_round_trip() {
        let c = Community::new(64500, 123);
        assert_eq!(c.to_string().parse::<Community>().unwrap(), c);
        assert!("not-a-community".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err());
    }

    #[test]
    fn large_community_round_trip() {
        let lc = LargeCommunity::new(4_200_000_000, 2, 123);
        assert_eq!(LargeCommunity::decode(&lc.encode()).unwrap(), lc);
        assert_eq!(lc.to_string(), "4200000000:2:123");
        assert!(LargeCommunity::decode(&[0u8; 11]).is_err());
    }
}
