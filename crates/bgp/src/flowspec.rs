//! BGP Flow Specification NLRI (RFC 8955 for IPv4, RFC 8956 for IPv6).
//!
//! FlowSpec carries a *filter rule* where classic BGP carries a prefix:
//! an n-tuple of [`Component`]s (destination/source prefix, protocol,
//! ports, ICMP fields, TCP flags, packet length, DSCP, fragment bits)
//! plus an action expressed as extended communities (`traffic-rate`,
//! `traffic-action`, `redirect` — see `extcommunity`). At the IXP this
//! is the second signaling plane next to Stellar's own
//! extended-community encoding: members announce FlowSpec NLRI under
//! AFI/SAFI 1/133 or 2/133 and the route server validates, lowers and
//! admits them through the same audit pipeline.
//!
//! On the wire each NLRI is `length (1–2 bytes) | components…`, with
//! components in strictly ascending type order. Decoding is strict —
//! non-minimal length forms, out-of-order components and reserved bits
//! are all rejected — which gives the codec the property the fuzz suite
//! pins down: `encode(decode(x)) == x` for every accepted `x`.

pub mod component;
pub mod op;

pub use component::Component;
pub use op::{
    bitmask_seq_matches, numeric_match_intervals, numeric_seq_matches, BitmaskOp, NumericOp,
};

use crate::error::{BgpError, BgpResult};
use crate::types::Afi;
use stellar_net::prefix::Prefix;

/// Maximum encoded NLRI body length (12-bit length field).
pub const MAX_NLRI_LEN: usize = 0xfff;

/// One flow specification: an AFI plus an ordered component list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowSpec {
    /// Address family the components are interpreted under.
    pub afi: Afi,
    /// Components, in strictly ascending type order.
    pub components: Vec<Component>,
}

impl FlowSpec {
    /// Builds a flowspec, enforcing the strictly-ascending component
    /// order the wire form requires.
    pub fn new(afi: Afi, components: Vec<Component>) -> BgpResult<Self> {
        validate_order(&components)?;
        Ok(FlowSpec { afi, components })
    }

    /// The destination-prefix component's prefix, if present.
    pub fn dst_prefix(&self) -> Option<Prefix> {
        self.components.iter().find_map(|c| match c {
            Component::DstPrefix(p) => Some(*p),
            _ => None,
        })
    }

    /// The source-prefix component's prefix, if present.
    pub fn src_prefix(&self) -> Option<Prefix> {
        self.components.iter().find_map(|c| match c {
            Component::SrcPrefix(p) => Some(*p),
            _ => None,
        })
    }

    /// Encodes the length-prefixed NLRI into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) -> BgpResult<()> {
        validate_order(&self.components)?;
        let mut body = Vec::new();
        for c in &self.components {
            c.encode(self.afi, &mut body)?;
        }
        if body.len() > MAX_NLRI_LEN {
            return Err(BgpError::update(10, "flowspec NLRI exceeds 4095 bytes"));
        }
        if body.len() < 0xf0 {
            buf.push(body.len() as u8);
        } else {
            buf.push(0xf0 | (body.len() >> 8) as u8);
            buf.push((body.len() & 0xff) as u8);
        }
        buf.extend_from_slice(&body);
        Ok(())
    }

    /// The encoded NLRI as owned bytes — the canonical identity of a
    /// flowspec rule (used as the withdraw/replace key upstream).
    pub fn to_wire(&self) -> BgpResult<Vec<u8>> {
        let mut buf = Vec::new();
        self.encode(&mut buf)?;
        Ok(buf)
    }

    /// Decodes one length-prefixed NLRI, returning it and the bytes
    /// consumed.
    pub fn decode(afi: Afi, buf: &[u8]) -> BgpResult<(Self, usize)> {
        let Some(&first) = buf.first() else {
            return Err(BgpError::Truncated {
                what: "flowspec NLRI length",
            });
        };
        let (len, hdr) = if first < 0xf0 {
            (first as usize, 1)
        } else {
            let Some(&second) = buf.get(1) else {
                return Err(BgpError::Truncated {
                    what: "flowspec NLRI length",
                });
            };
            let len = ((first as usize & 0x0f) << 8) | second as usize;
            if len < 0xf0 {
                return Err(BgpError::update(10, "non-minimal flowspec NLRI length"));
            }
            (len, 2)
        };
        if buf.len() < hdr + len {
            return Err(BgpError::Truncated {
                what: "flowspec NLRI body",
            });
        }
        let body = &buf[hdr..hdr + len];
        let mut components = Vec::new();
        let mut at = 0usize;
        while at < body.len() {
            let (c, used) = Component::decode(afi, &body[at..])?;
            components.push(c);
            at += used;
        }
        validate_order(&components)?;
        if components.is_empty() {
            return Err(BgpError::update(10, "empty flowspec NLRI"));
        }
        Ok((FlowSpec { afi, components }, hdr + len))
    }

    /// Encodes a run of NLRIs (an MP_REACH/MP_UNREACH body tail).
    pub fn encode_many(specs: &[FlowSpec], afi: Afi, buf: &mut Vec<u8>) -> BgpResult<()> {
        for s in specs {
            if s.afi != afi {
                return Err(BgpError::update(
                    10,
                    "flowspec AFI disagrees with attribute AFI",
                ));
            }
            s.encode(buf)?;
        }
        Ok(())
    }

    /// Decodes NLRIs from the whole of `buf`.
    pub fn decode_many(afi: Afi, mut buf: &[u8]) -> BgpResult<Vec<FlowSpec>> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            let (s, used) = FlowSpec::decode(afi, buf)?;
            out.push(s);
            buf = &buf[used..];
        }
        Ok(out)
    }
}

/// Deterministically damages an encoded NLRI for fault injection: even
/// salts flip bits in the length prefix, odd salts truncate the body
/// mid-NLRI. The result is still "bytes on the wire" — the decoder is
/// expected to refuse it without poisoning any state keyed on the
/// original bytes.
pub fn corrupt_wire(bytes: &[u8], salt: u64) -> Vec<u8> {
    if bytes.is_empty() {
        // A lone extended-length marker with no second octet.
        return vec![0xff];
    }
    let mut out = bytes.to_vec();
    if salt.is_multiple_of(2) || out.len() < 2 {
        out[0] ^= 0x5a;
    } else {
        let keep = 1 + ((salt >> 1) as usize % (out.len() - 1));
        out.truncate(keep);
    }
    out
}

fn validate_order(components: &[Component]) -> BgpResult<()> {
    for w in components.windows(2) {
        if w[0].type_code() >= w[1].type_code() {
            return Err(BgpError::update(
                10,
                "flowspec components out of ascending type order",
            ));
        }
    }
    Ok(())
}

impl core::fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "flow{{")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.name())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dns_ntp_v4() -> FlowSpec {
        FlowSpec::new(
            Afi::Ipv4,
            vec![
                Component::DstPrefix("100.10.10.10/32".parse().unwrap()),
                Component::IpProtocol(vec![NumericOp::equals(17)]),
                Component::SrcPort(vec![NumericOp::equals(53), NumericOp::equals(123)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn nlri_round_trips() {
        let f = dns_ntp_v4();
        let wire = f.to_wire().unwrap();
        let (d, used) = FlowSpec::decode(Afi::Ipv4, &wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(d, f);
        assert_eq!(d.to_wire().unwrap(), wire);
        assert_eq!(f.dst_prefix(), Some("100.10.10.10/32".parse().unwrap()));
        assert_eq!(f.src_prefix(), None);
    }

    #[test]
    fn many_round_trips() {
        let a = dns_ntp_v4();
        let b = FlowSpec::new(
            Afi::Ipv4,
            vec![Component::DstPrefix("198.51.100.0/24".parse().unwrap())],
        )
        .unwrap();
        let mut buf = Vec::new();
        FlowSpec::encode_many(&[a.clone(), b.clone()], Afi::Ipv4, &mut buf).unwrap();
        assert_eq!(FlowSpec::decode_many(Afi::Ipv4, &buf).unwrap(), vec![a, b]);
    }

    #[test]
    fn long_nlri_uses_two_byte_length() {
        // Enough single-value port operators to push the body past 240
        // bytes: each op is 1 byte op + 2 bytes value.
        let ops: Vec<NumericOp> = (0..100)
            .map(|i| NumericOp::equals(1000 + i).with_len(2).unwrap())
            .collect();
        let f = FlowSpec::new(
            Afi::Ipv4,
            vec![
                Component::DstPrefix("100.10.10.10/32".parse().unwrap()),
                Component::DstPort(ops),
            ],
        )
        .unwrap();
        let wire = f.to_wire().unwrap();
        assert!(wire[0] >= 0xf0, "expected two-byte length form");
        let (d, used) = FlowSpec::decode(Afi::Ipv4, &wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(d, f);
    }

    #[test]
    fn component_order_is_enforced() {
        let out_of_order = vec![
            Component::SrcPort(vec![NumericOp::equals(53)]),
            Component::DstPrefix("100.10.10.10/32".parse().unwrap()),
        ];
        assert!(FlowSpec::new(Afi::Ipv4, out_of_order.clone()).is_err());
        // Duplicate types are also out of (strictly ascending) order.
        let dup = vec![
            Component::DstPrefix("100.10.10.10/32".parse().unwrap()),
            Component::DstPrefix("100.10.10.11/32".parse().unwrap()),
        ];
        assert!(FlowSpec::new(Afi::Ipv4, dup).is_err());
        // Same property on decode: dst-prefix (1) after src-port (6).
        let wire = [7u8, 6, 0x81, 53, 1, 32, 100, 10, 10, 10];
        assert!(FlowSpec::decode(Afi::Ipv4, &wire).is_err());
    }

    #[test]
    fn malformed_nlri_is_rejected() {
        // Empty.
        assert!(FlowSpec::decode(Afi::Ipv4, &[]).is_err());
        assert!(FlowSpec::decode(Afi::Ipv4, &[0]).is_err());
        // Truncated body.
        assert!(FlowSpec::decode(Afi::Ipv4, &[5, 1, 24, 10]).is_err());
        // Non-minimal two-byte length.
        assert!(FlowSpec::decode(Afi::Ipv4, &[0xf0, 3, 3, 0x81, 17]).is_err());
        // Component runs past the declared NLRI length: length says 3
        // but the port operator needs 4 bytes.
        assert!(FlowSpec::decode(Afi::Ipv4, &[3, 5, 0x91, 1, 2]).is_err());
    }

    #[test]
    fn corrupt_wire_is_deterministic_and_refused() {
        let wire = dns_ntp_v4().to_wire().unwrap();
        for salt in 0..16u64 {
            let a = corrupt_wire(&wire, salt);
            assert_eq!(a, corrupt_wire(&wire, salt), "same salt, same damage");
            assert_ne!(a, wire, "damage must change the bytes");
            assert!(
                FlowSpec::decode_many(Afi::Ipv4, &a).is_err(),
                "salt {salt} produced decodable bytes"
            );
        }
        assert!(FlowSpec::decode_many(Afi::Ipv4, &corrupt_wire(&[], 0)).is_err());
    }

    #[test]
    fn v6_round_trip() {
        let f = FlowSpec::new(
            Afi::Ipv6,
            vec![
                Component::DstPrefix("2001:db8::1/128".parse().unwrap()),
                Component::IpProtocol(vec![NumericOp::equals(17)]),
                Component::FlowLabel(vec![NumericOp::equals(99)]),
            ],
        )
        .unwrap();
        let wire = f.to_wire().unwrap();
        let (d, used) = FlowSpec::decode(Afi::Ipv6, &wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(d, f);
    }
}
