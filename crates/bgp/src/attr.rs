//! BGP path attributes (RFC 4271 §4.3 / §5) and their codec.
//!
//! AS numbers in AS_PATH and AGGREGATOR use the 4-octet encoding
//! throughout: every speaker in the emulation negotiates the RFC 6793
//! capability, as all modern route-server deployments do.

use crate::community::{Community, LargeCommunity};
use crate::error::{BgpError, BgpResult};
use crate::extcommunity::ExtendedCommunity;
use crate::flowspec::FlowSpec;
use crate::nlri::{self, Nlri};
use crate::types::{Afi, Asn, Origin, Safi};
use bytes::{BufMut, BytesMut};
use stellar_net::addr::{IpAddress, Ipv4Address, Ipv6Address};

/// Attribute flag: optional.
pub const FLAG_OPTIONAL: u8 = 0x80;
/// Attribute flag: transitive.
pub const FLAG_TRANSITIVE: u8 = 0x40;
/// Attribute flag: partial.
pub const FLAG_PARTIAL: u8 = 0x20;
/// Attribute flag: extended (2-byte) length.
pub const FLAG_EXT_LEN: u8 = 0x10;

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AsSegment {
    /// Ordered sequence of ASNs.
    Sequence(Vec<Asn>),
    /// Unordered set (from aggregation).
    Set(Vec<Asn>),
}

/// An AS_PATH: a list of segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AsPath {
    /// Path segments, nearest AS first.
    pub segments: Vec<AsSegment>,
}

impl AsPath {
    /// An empty path (what iBGP peers and route servers send).
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// A path consisting of a single sequence.
    pub fn sequence(asns: impl IntoIterator<Item = u32>) -> Self {
        AsPath {
            segments: vec![AsSegment::Sequence(asns.into_iter().map(Asn).collect())],
        }
    }

    /// Path length as counted by the decision process: sequences count
    /// per-AS, sets count 1.
    pub fn path_len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                AsSegment::Sequence(v) => v.len(),
                AsSegment::Set(_) => 1,
            })
            .sum()
    }

    /// The origin AS (rightmost in the final sequence), if any.
    pub fn origin_as(&self) -> Option<Asn> {
        match self.segments.last()? {
            AsSegment::Sequence(v) => v.last().copied(),
            AsSegment::Set(v) => v.last().copied(),
        }
    }

    /// The neighbor AS (leftmost), if any.
    pub fn first_as(&self) -> Option<Asn> {
        match self.segments.first()? {
            AsSegment::Sequence(v) => v.first().copied(),
            AsSegment::Set(v) => v.first().copied(),
        }
    }

    /// Returns a new path with `asn` prepended (as eBGP forwarding does).
    pub fn prepend(&self, asn: Asn) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(AsSegment::Sequence(v)) => v.insert(0, asn),
            _ => segments.insert(0, AsSegment::Sequence(vec![asn])),
        }
        AsPath { segments }
    }

    /// True if the path contains `asn` anywhere (loop detection).
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| match s {
            AsSegment::Sequence(v) | AsSegment::Set(v) => v.contains(&asn),
        })
    }
}

/// A decoded path attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum PathAttribute {
    /// ORIGIN (1), well-known mandatory.
    Origin(Origin),
    /// AS_PATH (2), well-known mandatory.
    AsPath(AsPath),
    /// NEXT_HOP (3), well-known mandatory for IPv4 unicast.
    NextHop(Ipv4Address),
    /// MULTI_EXIT_DISC (4), optional non-transitive.
    Med(u32),
    /// LOCAL_PREF (5), well-known (iBGP).
    LocalPref(u32),
    /// ATOMIC_AGGREGATE (6).
    AtomicAggregate,
    /// AGGREGATOR (7): (asn, aggregator id).
    Aggregator(Asn, Ipv4Address),
    /// COMMUNITIES (8), RFC 1997.
    Communities(Vec<Community>),
    /// MP_REACH_NLRI (14), RFC 4760 — used for IPv6 announcements.
    MpReach {
        /// Address family.
        afi: Afi,
        /// Subsequent address family.
        safi: Safi,
        /// Next-hop address.
        next_hop: IpAddress,
        /// Announced NLRI.
        nlri: Vec<Nlri>,
    },
    /// MP_UNREACH_NLRI (15), RFC 4760.
    MpUnreach {
        /// Address family.
        afi: Afi,
        /// Subsequent address family.
        safi: Safi,
        /// Withdrawn NLRI.
        nlri: Vec<Nlri>,
    },
    /// MP_REACH_NLRI (14) carrying FlowSpec NLRI (SAFI 133, RFC 8955
    /// §5). The next hop is zero-length: a filter rule has no
    /// forwarding next hop.
    MpReachFlowSpec {
        /// Address family (1/133 or 2/133).
        afi: Afi,
        /// Announced flow specifications.
        nlri: Vec<FlowSpec>,
    },
    /// MP_UNREACH_NLRI (15) withdrawing FlowSpec NLRI (SAFI 133).
    MpUnreachFlowSpec {
        /// Address family.
        afi: Afi,
        /// Withdrawn flow specifications.
        nlri: Vec<FlowSpec>,
    },
    /// EXTENDED COMMUNITIES (16), RFC 4360 — Stellar's signaling channel.
    ExtendedCommunities(Vec<ExtendedCommunity>),
    /// LARGE_COMMUNITIES (32), RFC 8092.
    LargeCommunities(Vec<LargeCommunity>),
    /// Unrecognized attribute carried verbatim (flags, type, value).
    Unknown {
        /// Original flag byte.
        flags: u8,
        /// Attribute type code.
        type_code: u8,
        /// Raw value.
        value: Vec<u8>,
    },
}

impl PathAttribute {
    /// The attribute's type code.
    pub fn type_code(&self) -> u8 {
        match self {
            PathAttribute::Origin(_) => 1,
            PathAttribute::AsPath(_) => 2,
            PathAttribute::NextHop(_) => 3,
            PathAttribute::Med(_) => 4,
            PathAttribute::LocalPref(_) => 5,
            PathAttribute::AtomicAggregate => 6,
            PathAttribute::Aggregator(..) => 7,
            PathAttribute::Communities(_) => 8,
            PathAttribute::MpReach { .. } | PathAttribute::MpReachFlowSpec { .. } => 14,
            PathAttribute::MpUnreach { .. } | PathAttribute::MpUnreachFlowSpec { .. } => 15,
            PathAttribute::ExtendedCommunities(_) => 16,
            PathAttribute::LargeCommunities(_) => 32,
            PathAttribute::Unknown { type_code, .. } => *type_code,
        }
    }

    fn flags(&self) -> u8 {
        match self {
            PathAttribute::Origin(_)
            | PathAttribute::AsPath(_)
            | PathAttribute::NextHop(_)
            | PathAttribute::LocalPref(_)
            | PathAttribute::AtomicAggregate => FLAG_TRANSITIVE,
            PathAttribute::Med(_) => FLAG_OPTIONAL,
            PathAttribute::Aggregator(..)
            | PathAttribute::Communities(_)
            | PathAttribute::ExtendedCommunities(_)
            | PathAttribute::LargeCommunities(_) => FLAG_OPTIONAL | FLAG_TRANSITIVE,
            PathAttribute::MpReach { .. }
            | PathAttribute::MpUnreach { .. }
            | PathAttribute::MpReachFlowSpec { .. }
            | PathAttribute::MpUnreachFlowSpec { .. } => FLAG_OPTIONAL,
            PathAttribute::Unknown { flags, .. } => *flags,
        }
    }

    /// Encodes the attribute (flags, type, length, value). `add_path`
    /// controls path-id encoding inside MP_REACH/MP_UNREACH bodies.
    pub fn encode<B: BufMut>(&self, add_path: bool, buf: &mut B) -> BgpResult<()> {
        let mut body = BytesMut::new();
        match self {
            PathAttribute::Origin(o) => body.put_u8(o.value()),
            PathAttribute::AsPath(path) => {
                for seg in &path.segments {
                    let (ty, asns) = match seg {
                        AsSegment::Set(v) => (1u8, v),
                        AsSegment::Sequence(v) => (2u8, v),
                    };
                    body.put_u8(ty);
                    body.put_u8(asns.len() as u8);
                    for a in asns {
                        body.put_u32(a.0);
                    }
                }
            }
            PathAttribute::NextHop(a) => body.put_slice(&a.octets()),
            PathAttribute::Med(v) | PathAttribute::LocalPref(v) => body.put_u32(*v),
            PathAttribute::AtomicAggregate => {}
            PathAttribute::Aggregator(asn, id) => {
                body.put_u32(asn.0);
                body.put_slice(&id.octets());
            }
            PathAttribute::Communities(cs) => {
                for c in cs {
                    body.put_u32(c.0);
                }
            }
            PathAttribute::MpReach {
                afi,
                safi,
                next_hop,
                nlri: entries,
            } => {
                body.put_u16(afi.value());
                body.put_u8(safi.value());
                match next_hop {
                    IpAddress::V4(a) => {
                        body.put_u8(4);
                        body.put_slice(&a.octets());
                    }
                    IpAddress::V6(a) => {
                        body.put_u8(16);
                        body.put_slice(&a.octets());
                    }
                }
                body.put_u8(0); // reserved
                match afi {
                    Afi::Ipv4 => nlri::encode_v4(entries, add_path, &mut body)?,
                    Afi::Ipv6 => nlri::encode_v6(entries, add_path, &mut body)?,
                }
            }
            PathAttribute::MpUnreach {
                afi,
                safi,
                nlri: entries,
            } => {
                body.put_u16(afi.value());
                body.put_u8(safi.value());
                match afi {
                    Afi::Ipv4 => nlri::encode_v4(entries, add_path, &mut body)?,
                    Afi::Ipv6 => nlri::encode_v6(entries, add_path, &mut body)?,
                }
            }
            PathAttribute::MpReachFlowSpec { afi, nlri } => {
                body.put_u16(afi.value());
                body.put_u8(Safi::FlowSpec.value());
                body.put_u8(0); // next-hop length
                body.put_u8(0); // reserved
                let mut fs = Vec::new();
                FlowSpec::encode_many(nlri, *afi, &mut fs)?;
                body.put_slice(&fs);
            }
            PathAttribute::MpUnreachFlowSpec { afi, nlri } => {
                body.put_u16(afi.value());
                body.put_u8(Safi::FlowSpec.value());
                let mut fs = Vec::new();
                FlowSpec::encode_many(nlri, *afi, &mut fs)?;
                body.put_slice(&fs);
            }
            PathAttribute::ExtendedCommunities(ecs) => {
                for ec in ecs {
                    body.put_slice(&ec.encode());
                }
            }
            PathAttribute::LargeCommunities(lcs) => {
                for lc in lcs {
                    body.put_slice(&lc.encode());
                }
            }
            PathAttribute::Unknown { value, .. } => body.put_slice(value),
        }
        let mut flags = self.flags();
        if body.len() > 255 {
            flags |= FLAG_EXT_LEN;
        }
        buf.put_u8(flags);
        buf.put_u8(self.type_code());
        if flags & FLAG_EXT_LEN != 0 {
            buf.put_u16(body.len() as u16);
        } else {
            buf.put_u8(body.len() as u8);
        }
        buf.put_slice(&body);
        Ok(())
    }

    /// Decodes one attribute, returning it and the bytes consumed.
    pub fn decode(buf: &[u8], add_path: bool) -> BgpResult<(Self, usize)> {
        if buf.len() < 3 {
            return Err(BgpError::Truncated {
                what: "path attribute header",
            });
        }
        let flags = buf[0];
        let type_code = buf[1];
        let (len, hdr) = if flags & FLAG_EXT_LEN != 0 {
            if buf.len() < 4 {
                return Err(BgpError::Truncated {
                    what: "path attribute extended length",
                });
            }
            (u16::from_be_bytes([buf[2], buf[3]]) as usize, 4)
        } else {
            (buf[2] as usize, 3)
        };
        if buf.len() < hdr + len {
            return Err(BgpError::Truncated {
                what: "path attribute value",
            });
        }
        let v = &buf[hdr..hdr + len];
        // Known attribute types must arrive with exactly the flags this
        // codec emits, and with a minimal length form — anything else
        // would re-encode differently than it arrived.
        let known_flags: Option<u8> = match type_code {
            1 | 2 | 3 | 5 | 6 => Some(FLAG_TRANSITIVE),
            4 | 14 | 15 => Some(FLAG_OPTIONAL),
            7 | 8 | 16 | 32 => Some(FLAG_OPTIONAL | FLAG_TRANSITIVE),
            _ => None,
        };
        if let Some(expected) = known_flags {
            if flags & !FLAG_EXT_LEN != expected {
                return Err(BgpError::update(4, "attribute flags disagree with type"));
            }
            if hdr == 4 && len < 256 {
                return Err(BgpError::update(5, "non-minimal extended attribute length"));
            }
        }
        let attr = match type_code {
            1 => {
                if len != 1 {
                    return Err(BgpError::update(5, "bad ORIGIN length"));
                }
                PathAttribute::Origin(
                    Origin::from_value(v[0]).ok_or(BgpError::update(6, "invalid ORIGIN"))?,
                )
            }
            2 => {
                let mut segments = Vec::new();
                let mut rest = v;
                while !rest.is_empty() {
                    if rest.len() < 2 {
                        return Err(BgpError::update(11, "truncated AS_PATH segment"));
                    }
                    let seg_type = rest[0];
                    let count = rest[1] as usize;
                    let need = 2 + 4 * count;
                    if rest.len() < need {
                        return Err(BgpError::update(11, "truncated AS_PATH asns"));
                    }
                    let asns: Vec<Asn> = rest[2..need]
                        .chunks_exact(4)
                        .map(|c| Asn(u32::from_be_bytes([c[0], c[1], c[2], c[3]])))
                        .collect();
                    segments.push(match seg_type {
                        1 => AsSegment::Set(asns),
                        2 => AsSegment::Sequence(asns),
                        _ => return Err(BgpError::update(11, "unknown AS_PATH segment type")),
                    });
                    rest = &rest[need..];
                }
                PathAttribute::AsPath(AsPath { segments })
            }
            3 => {
                if len != 4 {
                    return Err(BgpError::update(8, "bad NEXT_HOP length"));
                }
                PathAttribute::NextHop(Ipv4Address([v[0], v[1], v[2], v[3]]))
            }
            4 | 5 => {
                if len != 4 {
                    return Err(BgpError::update(5, "bad 32-bit attribute length"));
                }
                let val = u32::from_be_bytes([v[0], v[1], v[2], v[3]]);
                if type_code == 4 {
                    PathAttribute::Med(val)
                } else {
                    PathAttribute::LocalPref(val)
                }
            }
            6 => {
                if len != 0 {
                    return Err(BgpError::update(5, "bad ATOMIC_AGGREGATE length"));
                }
                PathAttribute::AtomicAggregate
            }
            7 => {
                if len != 8 {
                    return Err(BgpError::update(5, "bad AGGREGATOR length"));
                }
                PathAttribute::Aggregator(
                    Asn(u32::from_be_bytes([v[0], v[1], v[2], v[3]])),
                    Ipv4Address([v[4], v[5], v[6], v[7]]),
                )
            }
            8 => {
                if len % 4 != 0 {
                    return Err(BgpError::update(5, "bad COMMUNITIES length"));
                }
                PathAttribute::Communities(
                    v.chunks_exact(4)
                        .map(|c| Community(u32::from_be_bytes([c[0], c[1], c[2], c[3]])))
                        .collect(),
                )
            }
            14 => {
                if len < 5 {
                    return Err(BgpError::update(5, "truncated MP_REACH"));
                }
                let afi = Afi::from_value(u16::from_be_bytes([v[0], v[1]]))
                    .ok_or(BgpError::update(9, "unknown AFI"))?;
                let safi = Safi::from_value(v[2]).ok_or(BgpError::update(9, "unknown SAFI"))?;
                let nh_len = v[3] as usize;
                if v.len() < 4 + nh_len + 1 {
                    return Err(BgpError::update(5, "truncated MP_REACH next hop"));
                }
                let nh_bytes = &v[4..4 + nh_len];
                if safi == Safi::FlowSpec {
                    // RFC 8955 §5: a filter rule carries no forwarding
                    // next hop; this codec emits and accepts length 0.
                    if nh_len != 0 {
                        return Err(BgpError::update(8, "nonzero flowspec next hop length"));
                    }
                    if v[4] != 0 {
                        return Err(BgpError::update(9, "nonzero MP_REACH reserved byte"));
                    }
                    PathAttribute::MpReachFlowSpec {
                        afi,
                        nlri: FlowSpec::decode_many(afi, &v[5..])?,
                    }
                } else {
                    let next_hop = match nh_len {
                        4 => IpAddress::V4(Ipv4Address([
                            nh_bytes[0],
                            nh_bytes[1],
                            nh_bytes[2],
                            nh_bytes[3],
                        ])),
                        16 => {
                            let mut o = [0u8; 16];
                            o.copy_from_slice(&nh_bytes[..16]);
                            IpAddress::V6(Ipv6Address(o))
                        }
                        _ => return Err(BgpError::update(8, "bad MP next hop length")),
                    };
                    if v[4 + nh_len] != 0 {
                        return Err(BgpError::update(9, "nonzero MP_REACH reserved byte"));
                    }
                    let nlri_bytes = &v[4 + nh_len + 1..];
                    let entries = match afi {
                        Afi::Ipv4 => nlri::decode_v4(nlri_bytes, add_path)?,
                        Afi::Ipv6 => nlri::decode_v6(nlri_bytes, add_path)?,
                    };
                    PathAttribute::MpReach {
                        afi,
                        safi,
                        next_hop,
                        nlri: entries,
                    }
                }
            }
            15 => {
                if len < 3 {
                    return Err(BgpError::update(5, "truncated MP_UNREACH"));
                }
                let afi = Afi::from_value(u16::from_be_bytes([v[0], v[1]]))
                    .ok_or(BgpError::update(9, "unknown AFI"))?;
                let safi = Safi::from_value(v[2]).ok_or(BgpError::update(9, "unknown SAFI"))?;
                if safi == Safi::FlowSpec {
                    PathAttribute::MpUnreachFlowSpec {
                        afi,
                        nlri: FlowSpec::decode_many(afi, &v[3..])?,
                    }
                } else {
                    let entries = match afi {
                        Afi::Ipv4 => nlri::decode_v4(&v[3..], add_path)?,
                        Afi::Ipv6 => nlri::decode_v6(&v[3..], add_path)?,
                    };
                    PathAttribute::MpUnreach {
                        afi,
                        safi,
                        nlri: entries,
                    }
                }
            }
            16 => {
                if len % 8 != 0 {
                    return Err(BgpError::update(5, "bad EXTENDED_COMMUNITIES length"));
                }
                let mut ecs = Vec::with_capacity(len / 8);
                for c in v.chunks_exact(8) {
                    ecs.push(ExtendedCommunity::decode(c)?);
                }
                PathAttribute::ExtendedCommunities(ecs)
            }
            32 => {
                if len % 12 != 0 {
                    return Err(BgpError::update(5, "bad LARGE_COMMUNITIES length"));
                }
                let mut lcs = Vec::with_capacity(len / 12);
                for c in v.chunks_exact(12) {
                    lcs.push(LargeCommunity::decode(c)?);
                }
                PathAttribute::LargeCommunities(lcs)
            }
            _ => PathAttribute::Unknown {
                flags,
                type_code,
                value: v.to_vec(),
            },
        };
        Ok((attr, hdr + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(attr: &PathAttribute, add_path: bool) {
        let mut buf = BytesMut::new();
        attr.encode(add_path, &mut buf).unwrap();
        let (d, used) = PathAttribute::decode(&buf, add_path).unwrap();
        assert_eq!(used, buf.len(), "{attr:?}");
        assert_eq!(&d, attr);
    }

    #[test]
    fn simple_attributes_round_trip() {
        round_trip(&PathAttribute::Origin(Origin::Igp), false);
        round_trip(
            &PathAttribute::NextHop(Ipv4Address::new(80, 81, 192, 1)),
            false,
        );
        round_trip(&PathAttribute::Med(100), false);
        round_trip(&PathAttribute::LocalPref(200), false);
        round_trip(&PathAttribute::AtomicAggregate, false);
        round_trip(
            &PathAttribute::Aggregator(Asn(4_200_000_000), Ipv4Address::new(10, 0, 0, 1)),
            false,
        );
    }

    #[test]
    fn as_path_round_trip_with_4octet_asns() {
        let path = AsPath {
            segments: vec![
                AsSegment::Sequence(vec![Asn(64500), Asn(4_200_000_123)]),
                AsSegment::Set(vec![Asn(1), Asn(2), Asn(3)]),
            ],
        };
        round_trip(&PathAttribute::AsPath(path.clone()), false);
        assert_eq!(path.path_len(), 3);
        assert_eq!(path.first_as(), Some(Asn(64500)));
        assert_eq!(path.origin_as(), Some(Asn(3)));
    }

    #[test]
    fn as_path_helpers() {
        let p = AsPath::sequence([10, 20, 30]);
        assert!(p.contains(Asn(20)));
        assert!(!p.contains(Asn(99)));
        let q = p.prepend(Asn(5));
        assert_eq!(q.first_as(), Some(Asn(5)));
        assert_eq!(q.path_len(), 4);
        // Prepending to an empty path creates a sequence.
        let e = AsPath::empty().prepend(Asn(7));
        assert_eq!(e.path_len(), 1);
        assert_eq!(e.origin_as(), Some(Asn(7)));
        assert_eq!(AsPath::empty().path_len(), 0);
        assert_eq!(AsPath::empty().origin_as(), None);
    }

    #[test]
    fn communities_round_trip() {
        round_trip(
            &PathAttribute::Communities(vec![
                Community::BLACKHOLE,
                Community::new(6695, 666),
                Community::NO_EXPORT,
            ]),
            false,
        );
        round_trip(
            &PathAttribute::ExtendedCommunities(vec![ExtendedCommunity::TwoOctetAs {
                subtype: 0xbb,
                asn: 6695,
                local: 0x0201_007b,
                transitive: true,
            }]),
            false,
        );
        round_trip(
            &PathAttribute::LargeCommunities(vec![LargeCommunity::new(6695, 2, 123)]),
            false,
        );
    }

    #[test]
    fn mp_reach_v6_round_trip_with_add_path() {
        let attr = PathAttribute::MpReach {
            afi: Afi::Ipv6,
            safi: Safi::Unicast,
            next_hop: IpAddress::V6("2001:db8::ffff".parse().unwrap()),
            nlri: vec![Nlri::with_path_id("2001:db8::1/128".parse().unwrap(), 3)],
        };
        round_trip(&attr, true);
        let attr = PathAttribute::MpUnreach {
            afi: Afi::Ipv6,
            safi: Safi::Unicast,
            nlri: vec![Nlri::plain("2001:db8::/32".parse().unwrap())],
        };
        round_trip(&attr, false);
    }

    #[test]
    fn mp_flowspec_round_trip() {
        use crate::flowspec::{Component, NumericOp};
        let flow = FlowSpec::new(
            Afi::Ipv4,
            vec![
                Component::DstPrefix("100.10.10.10/32".parse().unwrap()),
                Component::IpProtocol(vec![NumericOp::equals(17)]),
                Component::SrcPort(vec![NumericOp::equals(53), NumericOp::equals(123)]),
            ],
        )
        .unwrap();
        round_trip(
            &PathAttribute::MpReachFlowSpec {
                afi: Afi::Ipv4,
                nlri: vec![flow.clone()],
            },
            false,
        );
        round_trip(
            &PathAttribute::MpUnreachFlowSpec {
                afi: Afi::Ipv4,
                nlri: vec![flow],
            },
            false,
        );
        let v6 = FlowSpec::new(
            Afi::Ipv6,
            vec![Component::DstPrefix("2001:db8::1/128".parse().unwrap())],
        )
        .unwrap();
        round_trip(
            &PathAttribute::MpReachFlowSpec {
                afi: Afi::Ipv6,
                nlri: vec![v6],
            },
            false,
        );
    }

    #[test]
    fn non_canonical_known_attributes_are_rejected() {
        // ORIGIN with OPTIONAL flags.
        assert!(PathAttribute::decode(&[FLAG_OPTIONAL, 1, 1, 0], false).is_err());
        // MED without OPTIONAL.
        assert!(PathAttribute::decode(&[FLAG_TRANSITIVE, 4, 4, 0, 0, 0, 1], false).is_err());
        // Extended length on a short known attribute.
        assert!(
            PathAttribute::decode(&[FLAG_TRANSITIVE | FLAG_EXT_LEN, 1, 0, 1, 0], false).is_err()
        );
        // MP_REACH with a nonzero reserved byte.
        let bad = [FLAG_OPTIONAL, 14, 9, 0, 1, 1, 4, 10, 0, 0, 1, 7];
        assert!(PathAttribute::decode(&bad, false).is_err());
        // Unknown types keep their flags verbatim, whatever they are.
        let odd = PathAttribute::Unknown {
            flags: FLAG_OPTIONAL | FLAG_PARTIAL,
            type_code: 200,
            value: vec![9],
        };
        round_trip(&odd, false);
    }

    #[test]
    fn extended_length_attributes_round_trip() {
        // >255 bytes of communities forces the extended-length flag.
        let cs: Vec<Community> = (0..100).map(|i| Community::new(6695, i)).collect();
        let attr = PathAttribute::Communities(cs);
        let mut buf = BytesMut::new();
        attr.encode(false, &mut buf).unwrap();
        assert!(buf[0] & FLAG_EXT_LEN != 0);
        let (d, _) = PathAttribute::decode(&buf, false).unwrap();
        assert_eq!(d, attr);
    }

    #[test]
    fn unknown_attributes_are_preserved() {
        let attr = PathAttribute::Unknown {
            flags: FLAG_OPTIONAL | FLAG_TRANSITIVE | FLAG_PARTIAL,
            type_code: 99,
            value: vec![1, 2, 3, 4],
        };
        round_trip(&attr, false);
    }

    #[test]
    fn malformed_attributes_are_rejected() {
        // ORIGIN with length 2.
        let bad = [FLAG_TRANSITIVE, 1, 2, 0, 0];
        assert!(PathAttribute::decode(&bad, false).is_err());
        // Unknown ORIGIN value.
        let bad = [FLAG_TRANSITIVE, 1, 1, 9];
        assert!(PathAttribute::decode(&bad, false).is_err());
        // Truncated value.
        let bad = [FLAG_TRANSITIVE, 3, 4, 1, 2];
        assert!(PathAttribute::decode(&bad, false).is_err());
        // Truncated header.
        assert!(PathAttribute::decode(&[0x40, 1], false).is_err());
    }
}
