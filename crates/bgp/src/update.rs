//! UPDATE message (RFC 4271 §4.3).

use crate::attr::PathAttribute;
use crate::community::Community;
use crate::error::{BgpError, BgpResult};
use crate::extcommunity::ExtendedCommunity;
use crate::nlri::{self, Nlri};
use crate::types::Origin;
use bytes::{BufMut, BytesMut};
use stellar_net::addr::Ipv4Address;
use stellar_net::prefix::Prefix;

/// An UPDATE message: withdrawals, path attributes, and announcements.
/// IPv4 unicast uses the classic fields; IPv6 rides in MP_REACH/MP_UNREACH
/// attributes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateMessage {
    /// Withdrawn IPv4 routes.
    pub withdrawn: Vec<Nlri>,
    /// Path attributes.
    pub attrs: Vec<PathAttribute>,
    /// Announced IPv4 routes.
    pub nlri: Vec<Nlri>,
}

impl UpdateMessage {
    /// An announcement of `prefix` with the minimal mandatory attributes.
    pub fn announce(prefix: Prefix, next_hop: Ipv4Address, origin_as_path: PathAttribute) -> Self {
        UpdateMessage {
            withdrawn: vec![],
            attrs: vec![
                PathAttribute::Origin(Origin::Igp),
                origin_as_path,
                PathAttribute::NextHop(next_hop),
            ],
            nlri: vec![Nlri::plain(prefix)],
        }
    }

    /// A withdrawal of `prefix`.
    pub fn withdraw(prefix: Prefix) -> Self {
        UpdateMessage {
            withdrawn: vec![Nlri::plain(prefix)],
            attrs: vec![],
            nlri: vec![],
        }
    }

    /// The standard communities carried, if any.
    pub fn communities(&self) -> &[Community] {
        self.attrs
            .iter()
            .find_map(|a| match a {
                PathAttribute::Communities(cs) => Some(cs.as_slice()),
                _ => None,
            })
            .unwrap_or(&[])
    }

    /// The extended communities carried, if any.
    pub fn extended_communities(&self) -> &[ExtendedCommunity] {
        self.attrs
            .iter()
            .find_map(|a| match a {
                PathAttribute::ExtendedCommunities(cs) => Some(cs.as_slice()),
                _ => None,
            })
            .unwrap_or(&[])
    }

    /// The NEXT_HOP attribute, if present.
    pub fn next_hop(&self) -> Option<Ipv4Address> {
        self.attrs.iter().find_map(|a| match a {
            PathAttribute::NextHop(h) => Some(*h),
            _ => None,
        })
    }

    /// Replaces (or inserts) the NEXT_HOP attribute — how RTBH rewrites
    /// announcements to the blackholing next hop (§2.2).
    pub fn set_next_hop(&mut self, h: Ipv4Address) {
        for a in self.attrs.iter_mut() {
            if let PathAttribute::NextHop(nh) = a {
                *nh = h;
                return;
            }
        }
        self.attrs.push(PathAttribute::NextHop(h));
    }

    /// Appends communities, merging with an existing attribute.
    pub fn add_communities(&mut self, cs: &[Community]) {
        for a in self.attrs.iter_mut() {
            if let PathAttribute::Communities(existing) = a {
                existing.extend_from_slice(cs);
                return;
            }
        }
        self.attrs.push(PathAttribute::Communities(cs.to_vec()));
    }

    /// Appends extended communities, merging with an existing attribute.
    pub fn add_extended_communities(&mut self, cs: &[ExtendedCommunity]) {
        for a in self.attrs.iter_mut() {
            if let PathAttribute::ExtendedCommunities(existing) = a {
                existing.extend_from_slice(cs);
                return;
            }
        }
        self.attrs
            .push(PathAttribute::ExtendedCommunities(cs.to_vec()));
    }

    /// True if the message announces nothing and withdraws nothing (an
    /// End-of-RIB marker).
    pub fn is_end_of_rib(&self) -> bool {
        self.withdrawn.is_empty() && self.attrs.is_empty() && self.nlri.is_empty()
    }

    /// Encodes the message body. `add_path` must match the session state.
    pub fn encode<B: BufMut>(&self, add_path: bool, buf: &mut B) -> BgpResult<()> {
        let mut withdrawn = BytesMut::new();
        nlri::encode_v4(&self.withdrawn, add_path, &mut withdrawn)?;
        buf.put_u16(withdrawn.len() as u16);
        buf.put_slice(&withdrawn);
        let mut attrs = BytesMut::new();
        for a in &self.attrs {
            a.encode(add_path, &mut attrs)?;
        }
        buf.put_u16(attrs.len() as u16);
        buf.put_slice(&attrs);
        nlri::encode_v4(&self.nlri, add_path, buf)?;
        Ok(())
    }

    /// Decodes a message body.
    pub fn decode(buf: &[u8], add_path: bool) -> BgpResult<UpdateMessage> {
        if buf.len() < 4 {
            return Err(BgpError::Truncated { what: "update" });
        }
        let wlen = u16::from_be_bytes([buf[0], buf[1]]) as usize;
        if buf.len() < 2 + wlen + 2 {
            return Err(BgpError::update(1, "withdrawn length overruns message"));
        }
        let withdrawn = nlri::decode_v4(&buf[2..2 + wlen], add_path)?;
        let aoff = 2 + wlen;
        let alen = u16::from_be_bytes([buf[aoff], buf[aoff + 1]]) as usize;
        if buf.len() < aoff + 2 + alen {
            return Err(BgpError::update(1, "attribute length overruns message"));
        }
        let mut attrs = Vec::new();
        let mut rest = &buf[aoff + 2..aoff + 2 + alen];
        while !rest.is_empty() {
            let (a, used) = PathAttribute::decode(rest, add_path)?;
            attrs.push(a);
            rest = &rest[used..];
        }
        let nlri = nlri::decode_v4(&buf[aoff + 2 + alen..], add_path)?;
        // RFC 4271 §6.3: announcements must carry the mandatory attributes.
        if !nlri.is_empty() {
            for required in [1u8, 2, 3] {
                if !attrs.iter().any(|a| a.type_code() == required) {
                    return Err(BgpError::update(3, "missing well-known attribute"));
                }
            }
        }
        Ok(UpdateMessage {
            withdrawn,
            attrs,
            nlri,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AsPath;

    fn announce() -> UpdateMessage {
        let mut u = UpdateMessage::announce(
            "100.10.10.10/32".parse().unwrap(),
            Ipv4Address::new(80, 81, 192, 10),
            PathAttribute::AsPath(AsPath::sequence([64500])),
        );
        u.add_communities(&[Community::BLACKHOLE]);
        u
    }

    #[test]
    fn round_trip_announce() {
        let u = announce();
        let mut buf = BytesMut::new();
        u.encode(false, &mut buf).unwrap();
        let d = UpdateMessage::decode(&buf, false).unwrap();
        assert_eq!(d, u);
        assert_eq!(d.communities(), &[Community::BLACKHOLE]);
        assert_eq!(d.next_hop(), Some(Ipv4Address::new(80, 81, 192, 10)));
    }

    #[test]
    fn round_trip_withdraw_and_eor() {
        let u = UpdateMessage::withdraw("100.10.10.10/32".parse().unwrap());
        let mut buf = BytesMut::new();
        u.encode(false, &mut buf).unwrap();
        let d = UpdateMessage::decode(&buf, false).unwrap();
        assert_eq!(d, u);
        assert!(!d.is_end_of_rib());

        let eor = UpdateMessage::default();
        let mut buf = BytesMut::new();
        eor.encode(false, &mut buf).unwrap();
        assert_eq!(buf.len(), 4);
        assert!(UpdateMessage::decode(&buf, false).unwrap().is_end_of_rib());
    }

    #[test]
    fn next_hop_rewrite() {
        let mut u = announce();
        u.set_next_hop(Ipv4Address::new(80, 81, 193, 253)); // blackhole IP
        assert_eq!(u.next_hop(), Some(Ipv4Address::new(80, 81, 193, 253)));
        // Only one NEXT_HOP attribute remains.
        let n = u
            .attrs
            .iter()
            .filter(|a| matches!(a, PathAttribute::NextHop(_)))
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn add_communities_merges() {
        let mut u = announce();
        u.add_communities(&[Community::new(6695, 666)]);
        assert_eq!(u.communities().len(), 2);
        let n = u
            .attrs
            .iter()
            .filter(|a| matches!(a, PathAttribute::Communities(_)))
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn add_extended_communities_merges() {
        let mut u = announce();
        let ec = ExtendedCommunity::TwoOctetAs {
            subtype: 0xbb,
            asn: 6695,
            local: 1,
            transitive: true,
        };
        u.add_extended_communities(&[ec]);
        u.add_extended_communities(&[ec]);
        assert_eq!(u.extended_communities().len(), 2);
    }

    #[test]
    fn missing_mandatory_attributes_rejected() {
        // Announcement without NEXT_HOP.
        let mut u = announce();
        u.attrs.retain(|a| a.type_code() != 3);
        let mut buf = BytesMut::new();
        u.encode(false, &mut buf).unwrap();
        assert!(matches!(
            UpdateMessage::decode(&buf, false),
            Err(BgpError::Malformed { .. })
        ));
    }

    #[test]
    fn add_path_round_trip() {
        let mut u = announce();
        u.nlri = vec![
            Nlri::with_path_id("100.10.10.10/32".parse().unwrap(), 1),
            Nlri::with_path_id("100.10.10.10/32".parse().unwrap(), 2),
        ];
        let mut buf = BytesMut::new();
        u.encode(true, &mut buf).unwrap();
        let d = UpdateMessage::decode(&buf, true).unwrap();
        assert_eq!(d.nlri.len(), 2);
        assert_eq!(d, u);
    }

    #[test]
    fn bogus_lengths_rejected() {
        assert!(UpdateMessage::decode(&[0, 50, 0, 0], false).is_err());
        assert!(UpdateMessage::decode(&[0, 0, 0, 50], false).is_err());
        assert!(UpdateMessage::decode(&[0], false).is_err());
    }
}
