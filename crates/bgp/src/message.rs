//! BGP message framing: the 19-byte header (16-byte marker, 2-byte length,
//! 1-byte type) and the top-level [`Message`] enum.

use crate::error::{BgpError, BgpResult};
use crate::notification::NotificationMessage;
use crate::open::OpenMessage;
use crate::update::UpdateMessage;
use bytes::{BufMut, BytesMut};

/// Header length.
pub const HEADER_LEN: usize = 19;
/// Maximum message length (RFC 4271).
pub const MAX_LEN: usize = 4096;

/// Per-session decode context: which optional wire features were
/// negotiated. NLRI bytes are uninterpretable without it (RFC 7911 §5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCtx {
    /// ADD-PATH negotiated for IPv4/IPv6 unicast.
    pub add_path: bool,
}

/// A framed BGP message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// OPEN (type 1).
    Open(OpenMessage),
    /// UPDATE (type 2).
    Update(UpdateMessage),
    /// NOTIFICATION (type 3).
    Notification(NotificationMessage),
    /// KEEPALIVE (type 4).
    Keepalive,
    /// ROUTE-REFRESH (type 5, RFC 2918): (afi, reserved, safi).
    RouteRefresh {
        /// Address family.
        afi: u16,
        /// Subsequent address family.
        safi: u8,
    },
}

impl Message {
    /// Message type code.
    pub fn type_code(&self) -> u8 {
        match self {
            Message::Open(_) => 1,
            Message::Update(_) => 2,
            Message::Notification(_) => 3,
            Message::Keepalive => 4,
            Message::RouteRefresh { .. } => 5,
        }
    }

    /// Encodes the message with its header.
    pub fn encode(&self, ctx: DecodeCtx) -> BgpResult<Vec<u8>> {
        let mut body = BytesMut::new();
        match self {
            Message::Open(m) => m.encode(&mut body),
            Message::Update(m) => m.encode(ctx.add_path, &mut body)?,
            Message::Notification(m) => m.encode(&mut body),
            Message::Keepalive => {}
            Message::RouteRefresh { afi, safi } => {
                body.put_u16(*afi);
                body.put_u8(0);
                body.put_u8(*safi);
            }
        }
        let total = HEADER_LEN + body.len();
        if total > MAX_LEN {
            return Err(BgpError::header(1, "message exceeds 4096 bytes"));
        }
        let mut out = BytesMut::with_capacity(total);
        out.put_slice(&[0xffu8; 16]);
        out.put_u16(total as u16);
        out.put_u8(self.type_code());
        out.put_slice(&body);
        Ok(out.to_vec())
    }

    /// Decodes one message from the front of `buf`. Returns the message and
    /// the total bytes consumed, or `Ok(None)` if `buf` does not yet hold a
    /// complete message (stream reassembly).
    pub fn decode(buf: &[u8], ctx: DecodeCtx) -> BgpResult<Option<(Message, usize)>> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if buf[..16] != [0xffu8; 16] {
            return Err(BgpError::header(1, "connection not synchronized"));
        }
        let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
        if !(HEADER_LEN..=MAX_LEN).contains(&len) {
            return Err(BgpError::header(2, "bad message length"));
        }
        if buf.len() < len {
            return Ok(None);
        }
        let body = &buf[HEADER_LEN..len];
        let msg = match buf[18] {
            1 => Message::Open(OpenMessage::decode(body)?),
            2 => Message::Update(UpdateMessage::decode(body, ctx.add_path)?),
            3 => Message::Notification(NotificationMessage::decode(body)?),
            4 => {
                if !body.is_empty() {
                    return Err(BgpError::header(2, "keepalive with body"));
                }
                Message::Keepalive
            }
            5 => {
                if body.len() != 4 {
                    return Err(BgpError::header(2, "bad route-refresh length"));
                }
                Message::RouteRefresh {
                    afi: u16::from_be_bytes([body[0], body[1]]),
                    safi: body[3],
                }
            }
            _ => return Err(BgpError::header(3, "bad message type")),
        };
        Ok(Some((msg, len)))
    }
}

/// Reassembles a byte stream into messages: a stateful wrapper around
/// [`Message::decode`] for transports that deliver arbitrary segments.
#[derive(Debug, Default)]
pub struct MessageReader {
    buf: Vec<u8>,
}

impl MessageReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete message, if any. On a framing error the
    /// buffer is poisoned (cleared) because resynchronization within a BGP
    /// stream is impossible — the real protocol tears the session down.
    pub fn next(&mut self, ctx: DecodeCtx) -> BgpResult<Option<Message>> {
        match Message::decode(&self.buf, ctx) {
            Ok(Some((msg, used))) => {
                self.buf.drain(..used);
                Ok(Some(msg))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.buf.clear();
                Err(e)
            }
        }
    }

    /// Bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AsPath, PathAttribute};
    use crate::types::Asn;
    use stellar_net::addr::Ipv4Address;

    fn sample_update() -> Message {
        Message::Update(UpdateMessage::announce(
            "100.10.10.0/24".parse().unwrap(),
            Ipv4Address::new(80, 81, 192, 10),
            PathAttribute::AsPath(AsPath::sequence([64500])),
        ))
    }

    #[test]
    fn keepalive_round_trip() {
        let wire = Message::Keepalive.encode(DecodeCtx::default()).unwrap();
        assert_eq!(wire.len(), HEADER_LEN);
        let (m, used) = Message::decode(&wire, DecodeCtx::default())
            .unwrap()
            .unwrap();
        assert_eq!(used, HEADER_LEN);
        assert_eq!(m, Message::Keepalive);
    }

    #[test]
    fn all_message_types_round_trip() {
        let ctx = DecodeCtx::default();
        let msgs = vec![
            Message::Open(OpenMessage {
                asn: Asn(64500),
                hold_time: 90,
                bgp_id: Ipv4Address::new(1, 2, 3, 4),
                capabilities: vec![],
            }),
            sample_update(),
            Message::Notification(NotificationMessage::cease()),
            Message::Keepalive,
            Message::RouteRefresh { afi: 1, safi: 1 },
        ];
        for m in msgs {
            let wire = m.encode(ctx).unwrap();
            let (d, used) = Message::decode(&wire, ctx).unwrap().unwrap();
            assert_eq!(used, wire.len());
            assert_eq!(d, m);
        }
    }

    #[test]
    fn partial_input_returns_none() {
        let wire = sample_update().encode(DecodeCtx::default()).unwrap();
        for cut in [0, 5, HEADER_LEN - 1, HEADER_LEN, wire.len() - 1] {
            assert_eq!(
                Message::decode(&wire[..cut], DecodeCtx::default()).unwrap(),
                None,
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bad_marker_and_type_are_fatal() {
        let mut wire = Message::Keepalive.encode(DecodeCtx::default()).unwrap();
        wire[0] = 0;
        assert!(Message::decode(&wire, DecodeCtx::default()).is_err());
        let mut wire = Message::Keepalive.encode(DecodeCtx::default()).unwrap();
        wire[18] = 9;
        assert!(Message::decode(&wire, DecodeCtx::default()).is_err());
    }

    #[test]
    fn reader_reassembles_fragmented_stream() {
        let ctx = DecodeCtx::default();
        let mut stream = Vec::new();
        stream.extend(sample_update().encode(ctx).unwrap());
        stream.extend(Message::Keepalive.encode(ctx).unwrap());
        stream.extend(sample_update().encode(ctx).unwrap());

        let mut reader = MessageReader::new();
        let mut got = Vec::new();
        // Feed 7 bytes at a time.
        for chunk in stream.chunks(7) {
            reader.push(chunk);
            while let Some(m) = reader.next(ctx).unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[1], Message::Keepalive);
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn reader_poisons_on_framing_error() {
        let mut reader = MessageReader::new();
        reader.push(&[0u8; 32]);
        assert!(reader.next(DecodeCtx::default()).is_err());
        assert_eq!(reader.pending(), 0);
    }
}
