//! FlowSpec components (RFC 8955 §4.2.2, RFC 8956 §3).
//!
//! A flow specification is an ordered list of typed components; each
//! decodes with the manual byte-level idiom used throughout this crate:
//! match on remaining length, return typed errors, never panic.

use super::op::{
    decode_bitmask_ops, decode_numeric_ops, encode_bitmask_ops, encode_numeric_ops, BitmaskOp,
    NumericOp,
};
use crate::error::{BgpError, BgpResult};
use crate::types::Afi;
use stellar_net::addr::{Ipv4Address, Ipv6Address};
use stellar_net::prefix::{Ipv4Prefix, Ipv6Prefix, Prefix};

/// One component of a flow specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Component {
    /// Type 1: destination prefix.
    DstPrefix(Prefix),
    /// Type 2: source prefix.
    SrcPrefix(Prefix),
    /// Type 3: IP protocol (v4) / last next header (v6).
    IpProtocol(Vec<NumericOp>),
    /// Type 4: source or destination port.
    Port(Vec<NumericOp>),
    /// Type 5: destination port.
    DstPort(Vec<NumericOp>),
    /// Type 6: source port.
    SrcPort(Vec<NumericOp>),
    /// Type 7: ICMP type.
    IcmpType(Vec<NumericOp>),
    /// Type 8: ICMP code.
    IcmpCode(Vec<NumericOp>),
    /// Type 9: TCP flags (bitmask).
    TcpFlags(Vec<BitmaskOp>),
    /// Type 10: packet length.
    PacketLength(Vec<NumericOp>),
    /// Type 11: DSCP.
    Dscp(Vec<NumericOp>),
    /// Type 12: fragment bits (bitmask).
    Fragment(Vec<BitmaskOp>),
    /// Type 13: flow label (IPv6 only, RFC 8956 §3.7).
    FlowLabel(Vec<NumericOp>),
}

impl Component {
    /// The component's wire type code.
    pub fn type_code(&self) -> u8 {
        match self {
            Component::DstPrefix(_) => 1,
            Component::SrcPrefix(_) => 2,
            Component::IpProtocol(_) => 3,
            Component::Port(_) => 4,
            Component::DstPort(_) => 5,
            Component::SrcPort(_) => 6,
            Component::IcmpType(_) => 7,
            Component::IcmpCode(_) => 8,
            Component::TcpFlags(_) => 9,
            Component::PacketLength(_) => 10,
            Component::Dscp(_) => 11,
            Component::Fragment(_) => 12,
            Component::FlowLabel(_) => 13,
        }
    }

    /// A short human name for error and telemetry contexts.
    pub fn name(&self) -> &'static str {
        match self {
            Component::DstPrefix(_) => "dst-prefix",
            Component::SrcPrefix(_) => "src-prefix",
            Component::IpProtocol(_) => "ip-protocol",
            Component::Port(_) => "port",
            Component::DstPort(_) => "dst-port",
            Component::SrcPort(_) => "src-port",
            Component::IcmpType(_) => "icmp-type",
            Component::IcmpCode(_) => "icmp-code",
            Component::TcpFlags(_) => "tcp-flags",
            Component::PacketLength(_) => "packet-length",
            Component::Dscp(_) => "dscp",
            Component::Fragment(_) => "fragment",
            Component::FlowLabel(_) => "flow-label",
        }
    }

    /// Encodes the component (type byte + body) for a flowspec of
    /// address family `afi`.
    pub fn encode(&self, afi: Afi, buf: &mut Vec<u8>) -> BgpResult<()> {
        buf.push(self.type_code());
        match self {
            Component::DstPrefix(p) | Component::SrcPrefix(p) => encode_prefix(afi, *p, buf),
            Component::IpProtocol(ops)
            | Component::Port(ops)
            | Component::DstPort(ops)
            | Component::SrcPort(ops)
            | Component::IcmpType(ops)
            | Component::IcmpCode(ops)
            | Component::PacketLength(ops)
            | Component::Dscp(ops) => encode_numeric_ops(ops, buf),
            Component::FlowLabel(ops) => {
                if afi != Afi::Ipv6 {
                    return Err(BgpError::update(
                        10,
                        "flow-label component in an IPv4 flowspec",
                    ));
                }
                encode_numeric_ops(ops, buf)
            }
            Component::TcpFlags(ops) | Component::Fragment(ops) => encode_bitmask_ops(ops, buf),
        }
    }

    /// Decodes one component (type byte + body), returning it and the
    /// bytes consumed.
    pub fn decode(afi: Afi, buf: &[u8]) -> BgpResult<(Self, usize)> {
        let Some(&type_code) = buf.first() else {
            return Err(BgpError::Truncated {
                what: "flowspec component type",
            });
        };
        let body = &buf[1..];
        let (component, used) = match type_code {
            1 | 2 => {
                let (prefix, used) = decode_prefix(afi, body)?;
                let c = if type_code == 1 {
                    Component::DstPrefix(prefix)
                } else {
                    Component::SrcPrefix(prefix)
                };
                (c, used)
            }
            3..=8 | 10 | 11 | 13 => {
                if type_code == 13 && afi != Afi::Ipv6 {
                    return Err(BgpError::update(
                        10,
                        "flow-label component in an IPv4 flowspec",
                    ));
                }
                let (ops, used) = decode_numeric_ops(body)?;
                let c = match type_code {
                    3 => Component::IpProtocol(ops),
                    4 => Component::Port(ops),
                    5 => Component::DstPort(ops),
                    6 => Component::SrcPort(ops),
                    7 => Component::IcmpType(ops),
                    8 => Component::IcmpCode(ops),
                    10 => Component::PacketLength(ops),
                    11 => Component::Dscp(ops),
                    _ => Component::FlowLabel(ops),
                };
                (c, used)
            }
            9 | 12 => {
                let (ops, used) = decode_bitmask_ops(body)?;
                let c = if type_code == 9 {
                    Component::TcpFlags(ops)
                } else {
                    Component::Fragment(ops)
                };
                (c, used)
            }
            _ => {
                return Err(BgpError::update(10, "unknown flowspec component type"));
            }
        };
        Ok((component, 1 + used))
    }
}

fn encode_prefix(afi: Afi, prefix: Prefix, buf: &mut Vec<u8>) -> BgpResult<()> {
    match (afi, prefix) {
        (Afi::Ipv4, Prefix::V4(p)) => {
            buf.push(p.len());
            let nbytes = p.len().div_ceil(8) as usize;
            buf.extend_from_slice(&p.addr().octets()[..nbytes]);
            Ok(())
        }
        (Afi::Ipv6, Prefix::V6(p)) => {
            buf.push(p.len());
            buf.push(0); // offset (RFC 8956 §3.1) — only 0 is produced
            let nbytes = p.len().div_ceil(8) as usize;
            buf.extend_from_slice(&p.addr().octets()[..nbytes]);
            Ok(())
        }
        _ => Err(BgpError::update(
            10,
            "flowspec prefix family disagrees with AFI",
        )),
    }
}

fn decode_prefix(afi: Afi, buf: &[u8]) -> BgpResult<(Prefix, usize)> {
    match afi {
        Afi::Ipv4 => {
            let Some(&len) = buf.first() else {
                return Err(BgpError::Truncated {
                    what: "flowspec prefix length",
                });
            };
            if len > 32 {
                return Err(BgpError::update(10, "invalid IPv4 prefix length"));
            }
            let nbytes = len.div_ceil(8) as usize;
            if buf.len() < 1 + nbytes {
                return Err(BgpError::Truncated {
                    what: "flowspec prefix",
                });
            }
            let mut octets = [0u8; 4];
            octets[..nbytes].copy_from_slice(&buf[1..1 + nbytes]);
            let prefix = Ipv4Prefix::new(Ipv4Address(octets), len)
                .map_err(|_| BgpError::update(10, "invalid prefix"))?;
            if prefix.addr().octets()[..nbytes] != buf[1..1 + nbytes] {
                return Err(BgpError::update(10, "prefix has bits set past its length"));
            }
            Ok((Prefix::V4(prefix), 1 + nbytes))
        }
        Afi::Ipv6 => {
            if buf.len() < 2 {
                return Err(BgpError::Truncated {
                    what: "flowspec prefix length",
                });
            }
            let (len, offset) = (buf[0], buf[1]);
            if len > 128 {
                return Err(BgpError::update(10, "invalid IPv6 prefix length"));
            }
            if offset != 0 {
                // The pattern-offset form matches interior bits; nothing
                // in the classifier can express it, so it is refused at
                // the wire rather than silently widened.
                return Err(BgpError::update(
                    10,
                    "nonzero IPv6 flowspec prefix offset unsupported",
                ));
            }
            let nbytes = len.div_ceil(8) as usize;
            if buf.len() < 2 + nbytes {
                return Err(BgpError::Truncated {
                    what: "flowspec prefix",
                });
            }
            let mut octets = [0u8; 16];
            octets[..nbytes].copy_from_slice(&buf[2..2 + nbytes]);
            let prefix = Ipv6Prefix::new(Ipv6Address(octets), len)
                .map_err(|_| BgpError::update(10, "invalid prefix"))?;
            if prefix.addr().octets()[..nbytes] != buf[2..2 + nbytes] {
                return Err(BgpError::update(10, "prefix has bits set past its length"));
            }
            Ok((Prefix::V6(prefix), 2 + nbytes))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(afi: Afi, c: &Component) {
        let mut buf = Vec::new();
        c.encode(afi, &mut buf).unwrap();
        let (d, used) = Component::decode(afi, &buf).unwrap();
        assert_eq!(used, buf.len(), "{c:?}");
        assert_eq!(&d, c);
    }

    #[test]
    fn every_component_type_round_trips() {
        let ops = vec![NumericOp::equals(53), NumericOp::equals(123)];
        let bits = vec![BitmaskOp::new(false, false, true, 0x02)];
        for c in [
            Component::DstPrefix("100.10.10.10/32".parse().unwrap()),
            Component::SrcPrefix("203.0.113.0/24".parse().unwrap()),
            Component::IpProtocol(vec![NumericOp::equals(17)]),
            Component::Port(ops.clone()),
            Component::DstPort(ops.clone()),
            Component::SrcPort(ops.clone()),
            Component::IcmpType(vec![NumericOp::equals(8)]),
            Component::IcmpCode(vec![NumericOp::equals(0)]),
            Component::TcpFlags(bits.clone()),
            Component::PacketLength(vec![NumericOp::ge(1000), NumericOp::and_le(1500)]),
            Component::Dscp(vec![NumericOp::equals(46)]),
            Component::Fragment(bits),
        ] {
            round_trip(Afi::Ipv4, &c);
        }
        round_trip(
            Afi::Ipv6,
            &Component::DstPrefix("2001:db8::1/128".parse().unwrap()),
        );
        round_trip(Afi::Ipv6, &Component::FlowLabel(vec![NumericOp::equals(7)]));
    }

    #[test]
    fn flow_label_is_ipv6_only() {
        let c = Component::FlowLabel(vec![NumericOp::equals(7)]);
        assert!(c.encode(Afi::Ipv4, &mut Vec::new()).is_err());
        let mut buf = Vec::new();
        c.encode(Afi::Ipv6, &mut buf).unwrap();
        assert!(Component::decode(Afi::Ipv4, &buf).is_err());
    }

    #[test]
    fn prefix_family_must_match_afi() {
        let v6 = Component::DstPrefix("2001:db8::/32".parse().unwrap());
        assert!(v6.encode(Afi::Ipv4, &mut Vec::new()).is_err());
        let v4 = Component::SrcPrefix("10.0.0.0/8".parse().unwrap());
        assert!(v4.encode(Afi::Ipv6, &mut Vec::new()).is_err());
    }

    #[test]
    fn malformed_components_are_rejected() {
        // Unknown type.
        assert!(Component::decode(Afi::Ipv4, &[14, 0x81, 1]).is_err());
        assert!(Component::decode(Afi::Ipv4, &[0, 0x81, 1]).is_err());
        // Truncated prefix.
        assert!(Component::decode(Afi::Ipv4, &[1, 24, 10]).is_err());
        // Bad prefix length.
        assert!(Component::decode(Afi::Ipv4, &[1, 33, 1, 2, 3, 4, 5]).is_err());
        // Host bits past the length (/20 with the low nibble set).
        assert!(Component::decode(Afi::Ipv4, &[1, 20, 10, 0, 1]).is_err());
        // Nonzero IPv6 offset.
        assert!(Component::decode(Afi::Ipv6, &[1, 32, 8, 0x20, 0x01, 0x0d]).is_err());
        // Empty input.
        assert!(Component::decode(Afi::Ipv4, &[]).is_err());
    }
}
