//! FlowSpec operator sequences (RFC 8955 §4.2.1).
//!
//! Numeric components (ports, protocol, packet length, …) carry a
//! sequence of `{operator byte, value}` pairs; bitmask components (TCP
//! flags, fragment) carry the same framing with match/negate semantics.
//! A sequence is an OR of AND-groups: each operator with the AND bit
//! clear starts a new group, and the sequence matches if any group does.
//!
//! The operator byte layout is
//!
//! ```text
//!   7    6    5 4    3     2    1    0
//! +----+----+-----+-----+----+----+----+
//! | e  | a  | len | 0   | lt | gt | eq |   numeric
//! | e  | a  | len | 0   | 0  | not| m  |   bitmask
//! +----+----+-----+-----+----+----+----+
//! ```
//!
//! with `len` encoding a value length of `1 << len` bytes. Decoding is
//! strict — reserved bits must be zero, the end-of-list bit must appear
//! on exactly the last operator, and the AND bit must be clear on the
//! first — so that `encode(decode(x)) == x` for every accepted input.

use crate::error::{BgpError, BgpResult};

/// End-of-list bit in an operator byte.
const OP_END: u8 = 0x80;
/// AND bit in an operator byte.
const OP_AND: u8 = 0x40;
/// Reserved bit (numeric operators); must be zero.
const OP_RESERVED: u8 = 0x08;
/// Less-than bit (numeric) / reserved (bitmask).
const OP_LT: u8 = 0x04;
/// Greater-than bit (numeric) / NOT bit (bitmask).
const OP_GT: u8 = 0x02;
/// Equal bit (numeric) / MATCH bit (bitmask).
const OP_EQ: u8 = 0x01;

fn value_len_code(len: u8) -> BgpResult<u8> {
    match len {
        1 => Ok(0),
        2 => Ok(1),
        4 => Ok(2),
        8 => Ok(3),
        _ => Err(BgpError::update(10, "invalid flowspec value length")),
    }
}

fn minimal_len(value: u64) -> u8 {
    if value <= 0xff {
        1
    } else if value <= 0xffff {
        2
    } else if value <= 0xffff_ffff {
        4
    } else {
        8
    }
}

fn read_value(buf: &[u8], n: usize) -> BgpResult<u64> {
    if buf.len() < n {
        return Err(BgpError::Truncated {
            what: "flowspec operator value",
        });
    }
    let mut v = 0u64;
    for b in &buf[..n] {
        v = (v << 8) | u64::from(*b);
    }
    Ok(v)
}

fn write_value(value: u64, n: u8, buf: &mut Vec<u8>) {
    let bytes = value.to_be_bytes();
    buf.extend_from_slice(&bytes[8 - n as usize..]);
}

/// One numeric operator: a relation (`lt`/`gt`/`eq` bits) against a
/// value, AND-ed with the previous operator when `and` is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NumericOp {
    /// AND with the previous operator's result (OR when clear).
    pub and: bool,
    /// Less-than bit.
    pub lt: bool,
    /// Greater-than bit.
    pub gt: bool,
    /// Equality bit.
    pub eq: bool,
    /// Wire length of the value in bytes (1, 2, 4 or 8). Kept explicit
    /// so a decoded operator re-encodes byte-identically.
    len: u8,
    /// The comparison value.
    pub value: u64,
}

impl NumericOp {
    /// An operator with the minimal wire length for `value`.
    pub fn new(and: bool, lt: bool, gt: bool, eq: bool, value: u64) -> Self {
        NumericOp {
            and,
            lt,
            gt,
            eq,
            len: minimal_len(value),
            value,
        }
    }

    /// `== value`, starting a new OR group.
    pub fn equals(value: u64) -> Self {
        Self::new(false, false, false, true, value)
    }

    /// `>= value`, starting a new OR group.
    pub fn ge(value: u64) -> Self {
        Self::new(false, false, true, true, value)
    }

    /// `<= value`, AND-ed with the previous operator.
    pub fn and_le(value: u64) -> Self {
        Self::new(true, true, false, true, value)
    }

    /// The same operator with an explicit wire value length.
    pub fn with_len(self, len: u8) -> BgpResult<Self> {
        value_len_code(len)?;
        if len < 8 && self.value >> (8 * u32::from(len)) != 0 {
            return Err(BgpError::update(10, "flowspec value wider than its length"));
        }
        Ok(NumericOp { len, ..self })
    }

    /// Wire length of the value in bytes.
    pub fn value_len(&self) -> u8 {
        self.len
    }

    /// Whether the relation holds for `x` (ignores the AND bit; sequence
    /// folding is [`numeric_seq_matches`]'s job).
    pub fn relation_matches(&self, x: u64) -> bool {
        (self.lt && x < self.value) || (self.gt && x > self.value) || (self.eq && x == self.value)
    }
}

/// One bitmask operator (TCP flags, fragment bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitmaskOp {
    /// AND with the previous operator's result (OR when clear).
    pub and: bool,
    /// NOT bit: negate the match result.
    pub not: bool,
    /// MATCH bit: require all mask bits set (`data & value == value`);
    /// when clear, any overlapping bit matches.
    pub match_all: bool,
    /// Wire length of the value in bytes (1, 2, 4 or 8).
    len: u8,
    /// The bitmask value.
    pub value: u64,
}

impl BitmaskOp {
    /// An operator with the minimal wire length for `value`.
    pub fn new(and: bool, not: bool, match_all: bool, value: u64) -> Self {
        BitmaskOp {
            and,
            not,
            match_all,
            len: minimal_len(value),
            value,
        }
    }

    /// The same operator with an explicit wire value length.
    pub fn with_len(self, len: u8) -> BgpResult<Self> {
        value_len_code(len)?;
        if len < 8 && self.value >> (8 * u32::from(len)) != 0 {
            return Err(BgpError::update(10, "flowspec value wider than its length"));
        }
        Ok(BitmaskOp { len, ..self })
    }

    /// Wire length of the value in bytes.
    pub fn value_len(&self) -> u8 {
        self.len
    }

    /// Whether this operator matches `x` (ignores the AND bit).
    pub fn bits_match(&self, x: u64) -> bool {
        let m = if self.match_all {
            x & self.value == self.value
        } else {
            x & self.value != 0
        };
        m != self.not
    }
}

/// Folds a sequence's per-operator results into the OR-of-AND-groups
/// value defined by RFC 8955 §4.2.1.1.
fn fold_groups(results: impl Iterator<Item = (bool, bool)>) -> bool {
    let mut any = false;
    let mut current: Option<bool> = None;
    for (and, matched) in results {
        current = Some(match current {
            Some(prev) if and => prev && matched,
            Some(prev) => {
                any = any || prev;
                matched
            }
            None => matched,
        });
    }
    match current {
        Some(last) => any || last,
        None => false,
    }
}

/// Evaluates a numeric operator sequence against `x`.
pub fn numeric_seq_matches(ops: &[NumericOp], x: u64) -> bool {
    fold_groups(ops.iter().map(|op| (op.and, op.relation_matches(x))))
}

/// Evaluates a bitmask operator sequence against `x`.
pub fn bitmask_seq_matches(ops: &[BitmaskOp], x: u64) -> bool {
    fold_groups(ops.iter().map(|op| (op.and, op.bits_match(x))))
}

/// The set of values in `0..=max` matched by a numeric sequence, as
/// sorted, disjoint, non-adjacent (i.e. minimal) closed intervals.
///
/// This is the exact semantics of [`numeric_seq_matches`] lifted to
/// sets, and is what the classifier lowering pass consumes: a minimal
/// interval cover means a minimal `MatchSpec` set downstream.
pub fn numeric_match_intervals(ops: &[NumericOp], max: u64) -> Vec<(u64, u64)> {
    let mut union: Vec<(u64, u64)> = Vec::new();
    let mut group: Option<Vec<(u64, u64)>> = None;
    for op in ops {
        let set = relation_intervals(op, max);
        group = Some(match group {
            Some(prev) if op.and => intersect(&prev, &set),
            Some(prev) => {
                union = merge(union, prev);
                set
            }
            None => set,
        });
    }
    if let Some(last) = group {
        union = merge(union, last);
    }
    union
}

fn relation_intervals(op: &NumericOp, max: u64) -> Vec<(u64, u64)> {
    let mut set = Vec::new();
    if op.lt && op.value > 0 {
        set.push((0, (op.value - 1).min(max)));
    }
    if op.eq && op.value <= max {
        set.push((op.value, op.value));
    }
    if op.gt && op.value < max {
        set.push((op.value + 1, max));
    }
    normalize(set)
}

/// Sorts and coalesces overlapping or adjacent intervals.
fn normalize(mut set: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    set.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(set.len());
    for (lo, hi) in set {
        match out.last_mut() {
            Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

fn merge(a: Vec<(u64, u64)>, b: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let mut all = a;
    all.extend(b);
    normalize(all)
}

fn intersect(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo <= hi {
            out.push((lo, hi));
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

fn encode_op_byte(end: bool, and: bool, len: u8, low_bits: u8, buf: &mut Vec<u8>) -> BgpResult<()> {
    let mut byte = low_bits;
    if end {
        byte |= OP_END;
    }
    if and {
        byte |= OP_AND;
    }
    byte |= value_len_code(len)? << 4;
    buf.push(byte);
    Ok(())
}

/// Encodes a numeric operator sequence; the end-of-list bit is derived
/// from position. An empty sequence is invalid.
pub fn encode_numeric_ops(ops: &[NumericOp], buf: &mut Vec<u8>) -> BgpResult<()> {
    validate_seq_shape(ops.len(), ops.first().map(|op| op.and))?;
    for (i, op) in ops.iter().enumerate() {
        let mut low = 0u8;
        if op.lt {
            low |= OP_LT;
        }
        if op.gt {
            low |= OP_GT;
        }
        if op.eq {
            low |= OP_EQ;
        }
        encode_op_byte(i + 1 == ops.len(), op.and, op.len, low, buf)?;
        write_value(op.value, op.len, buf);
    }
    Ok(())
}

/// Encodes a bitmask operator sequence.
pub fn encode_bitmask_ops(ops: &[BitmaskOp], buf: &mut Vec<u8>) -> BgpResult<()> {
    validate_seq_shape(ops.len(), ops.first().map(|op| op.and))?;
    for (i, op) in ops.iter().enumerate() {
        let mut low = 0u8;
        if op.not {
            low |= OP_GT;
        }
        if op.match_all {
            low |= OP_EQ;
        }
        encode_op_byte(i + 1 == ops.len(), op.and, op.len, low, buf)?;
        write_value(op.value, op.len, buf);
    }
    Ok(())
}

fn validate_seq_shape(len: usize, first_and: Option<bool>) -> BgpResult<()> {
    match first_and {
        None => Err(BgpError::update(10, "empty flowspec operator sequence")),
        Some(true) => Err(BgpError::update(
            10,
            "AND bit set on first flowspec operator",
        )),
        Some(false) => {
            let _ = len;
            Ok(())
        }
    }
}

fn decode_op_header(buf: &[u8], first: bool) -> BgpResult<(u8, bool, bool, u8)> {
    let Some(&byte) = buf.first() else {
        return Err(BgpError::Truncated {
            what: "flowspec operator",
        });
    };
    let and = byte & OP_AND != 0;
    if first && and {
        return Err(BgpError::update(
            10,
            "AND bit set on first flowspec operator",
        ));
    }
    let len = 1u8 << ((byte >> 4) & 0x03);
    Ok((byte, byte & OP_END != 0, and, len))
}

/// Decodes a numeric operator sequence, returning it and the bytes
/// consumed.
pub fn decode_numeric_ops(buf: &[u8]) -> BgpResult<(Vec<NumericOp>, usize)> {
    let mut ops = Vec::new();
    let mut used = 0usize;
    loop {
        let (byte, end, and, len) = decode_op_header(&buf[used..], ops.is_empty())?;
        if byte & OP_RESERVED != 0 {
            return Err(BgpError::update(
                10,
                "reserved bit set in flowspec numeric operator",
            ));
        }
        let value = read_value(&buf[used + 1..], len as usize)?;
        used += 1 + len as usize;
        ops.push(NumericOp {
            and,
            lt: byte & OP_LT != 0,
            gt: byte & OP_GT != 0,
            eq: byte & OP_EQ != 0,
            len,
            value,
        });
        if end {
            return Ok((ops, used));
        }
    }
}

/// Decodes a bitmask operator sequence, returning it and the bytes
/// consumed.
pub fn decode_bitmask_ops(buf: &[u8]) -> BgpResult<(Vec<BitmaskOp>, usize)> {
    let mut ops = Vec::new();
    let mut used = 0usize;
    loop {
        let (byte, end, and, len) = decode_op_header(&buf[used..], ops.is_empty())?;
        if byte & (OP_RESERVED | OP_LT) != 0 {
            return Err(BgpError::update(
                10,
                "reserved bit set in flowspec bitmask operator",
            ));
        }
        let value = read_value(&buf[used + 1..], len as usize)?;
        used += 1 + len as usize;
        ops.push(BitmaskOp {
            and,
            not: byte & OP_GT != 0,
            match_all: byte & OP_EQ != 0,
            len,
            value,
        });
        if end {
            return Ok((ops, used));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_round_trip_preserves_value_lengths() {
        let ops = vec![
            NumericOp::equals(123),
            NumericOp::equals(53).with_len(2).unwrap(),
            NumericOp::ge(1024),
            NumericOp::and_le(2048),
        ];
        let mut buf = Vec::new();
        encode_numeric_ops(&ops, &mut buf).unwrap();
        let (decoded, used) = decode_numeric_ops(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decoded, ops);
        assert_eq!(decoded[1].value_len(), 2);
        let mut again = Vec::new();
        encode_numeric_ops(&decoded, &mut again).unwrap();
        assert_eq!(again, buf);
    }

    #[test]
    fn sequence_shape_is_enforced() {
        assert!(encode_numeric_ops(&[], &mut Vec::new()).is_err());
        let and_first = NumericOp::new(true, false, false, true, 1);
        assert!(encode_numeric_ops(&[and_first], &mut Vec::new()).is_err());
        // 0xc1: end + AND bit on first op.
        assert!(decode_numeric_ops(&[0xc1, 1]).is_err());
        // Reserved bit set.
        assert!(decode_numeric_ops(&[0x89, 1]).is_err());
        // Missing end-of-list.
        assert!(decode_numeric_ops(&[0x01, 1]).is_err());
        // Truncated value.
        assert!(decode_numeric_ops(&[0x91]).is_err());
        // Bitmask: lt position is reserved.
        assert!(decode_bitmask_ops(&[0x85, 1]).is_err());
    }

    #[test]
    fn or_of_and_groups_semantics() {
        // (>= 1024 AND <= 2048) OR == 53
        let ops = vec![
            NumericOp::ge(1024),
            NumericOp::and_le(2048),
            NumericOp::equals(53),
        ];
        assert!(numeric_seq_matches(&ops, 1024));
        assert!(numeric_seq_matches(&ops, 2048));
        assert!(numeric_seq_matches(&ops, 53));
        assert!(!numeric_seq_matches(&ops, 512));
        assert!(!numeric_seq_matches(&ops, 3000));
        assert!(!numeric_seq_matches(&[], 53));
    }

    #[test]
    fn not_equal_via_lt_gt() {
        let ne = NumericOp::new(false, true, true, false, 80);
        assert!(numeric_seq_matches(&[ne], 79));
        assert!(numeric_seq_matches(&[ne], 81));
        assert!(!numeric_seq_matches(&[ne], 80));
        // false relation (000) matches nothing; true (111) everything.
        let never = NumericOp::new(false, false, false, false, 80);
        assert!(!numeric_seq_matches(&[never], 80));
        let always = NumericOp::new(false, true, true, true, 80);
        assert!(numeric_seq_matches(&[always], 0));
        assert!(numeric_seq_matches(&[always], u64::MAX));
    }

    #[test]
    fn bitmask_semantics() {
        // TCP SYN exactly: match-all SYN, and-not ACK.
        let syn = BitmaskOp::new(false, false, true, 0x02);
        let not_ack = BitmaskOp::new(true, true, false, 0x10);
        assert!(bitmask_seq_matches(&[syn, not_ack], 0x02));
        assert!(!bitmask_seq_matches(&[syn, not_ack], 0x12));
        assert!(!bitmask_seq_matches(&[syn, not_ack], 0x10));
        // Any-bit match.
        let any = BitmaskOp::new(false, false, false, 0x03);
        assert!(bitmask_seq_matches(&[any], 0x01));
        assert!(!bitmask_seq_matches(&[any], 0x04));
    }

    #[test]
    fn intervals_agree_with_direct_evaluation() {
        let cases: Vec<Vec<NumericOp>> = vec![
            vec![NumericOp::equals(123), NumericOp::equals(53)],
            vec![NumericOp::ge(1024), NumericOp::and_le(2048)],
            vec![NumericOp::new(false, true, true, false, 80)],
            vec![NumericOp::new(false, true, true, true, 7)],
            vec![NumericOp::new(false, false, false, false, 7)],
            vec![
                NumericOp::new(false, false, true, false, 10),
                NumericOp::new(true, true, false, false, 20),
                NumericOp::new(false, false, true, true, 15),
                NumericOp::new(true, true, false, true, 30),
            ],
            // Value past the domain: > 70000 on a u16 domain is empty.
            vec![NumericOp::new(false, false, true, false, 70_000)],
            vec![NumericOp::new(false, true, false, false, 70_000)],
        ];
        for ops in &cases {
            let intervals = numeric_match_intervals(ops, 65_535);
            // Minimality: sorted, disjoint, non-adjacent.
            for w in intervals.windows(2) {
                assert!(w[0].1 + 1 < w[1].0, "{ops:?} -> {intervals:?}");
            }
            for x in (0..=65_535u64).step_by(7).chain([0, 1, 65_534, 65_535]) {
                let in_set = intervals.iter().any(|&(lo, hi)| lo <= x && x <= hi);
                assert_eq!(
                    in_set,
                    numeric_seq_matches(ops, x),
                    "x={x} ops={ops:?} intervals={intervals:?}"
                );
            }
        }
    }

    #[test]
    fn adjacent_intervals_coalesce() {
        // == 10 OR == 11 OR == 12 must become one interval.
        let ops = vec![
            NumericOp::equals(10),
            NumericOp::equals(11),
            NumericOp::equals(12),
        ];
        assert_eq!(numeric_match_intervals(&ops, 65_535), vec![(10, 12)]);
    }
}
