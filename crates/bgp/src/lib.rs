//! # stellar-bgp
//!
//! A BGP-4 implementation sufficient to run a real IXP route-server
//! control plane inside the emulation:
//!
//! - byte-exact message codecs for OPEN / UPDATE / NOTIFICATION / KEEPALIVE
//!   (RFC 4271) with capability negotiation (RFC 5492): multiprotocol
//!   (RFC 4760), four-octet AS numbers (RFC 6793) and ADD-PATH (RFC 7911 —
//!   the capability Stellar's blackholing controller relies on to see *all*
//!   paths, not just the route server's best path, §4.3);
//! - path attributes including standard (RFC 1997), extended (RFC 4360) and
//!   large (RFC 8092) communities, plus the well-known BLACKHOLE community
//!   (RFC 7999) used by RTBH;
//! - the session finite-state machine with hold/keepalive timers;
//! - Adj-RIB-In / Loc-RIB structures with the BGP decision process.
//!
//! Messages always travel through the full encoder and decoder, even between
//! in-process peers, so malformed-message handling is exercised end-to-end.

pub mod attr;
pub mod capability;
pub mod community;
pub mod error;
pub mod extcommunity;
pub mod flowspec;
pub mod fsm;
pub mod message;
pub mod nlri;
pub mod notification;
pub mod open;
pub mod rib;
pub mod session;
pub mod types;
pub mod update;

pub use attr::{AsPath, PathAttribute};
pub use community::Community;
pub use error::{BgpError, BgpResult};
pub use extcommunity::ExtendedCommunity;
pub use flowspec::FlowSpec;
pub use fsm::{BgpEvent, BgpFsm, FsmAction, SessionState};
pub use message::{DecodeCtx, Message};
pub use nlri::Nlri;
pub use notification::NotificationMessage;
pub use open::OpenMessage;
pub use rib::{AdjRibIn, LocRib, Route};
pub use session::{Session, SessionConfig};
pub use types::{Afi, Asn, Origin, Safi};
pub use update::UpdateMessage;
