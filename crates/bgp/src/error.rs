//! BGP error handling, aligned with RFC 4271 §6 NOTIFICATION error codes so
//! that any decode failure can be turned into the NOTIFICATION a real
//! speaker would send.

use core::fmt;

/// Top-level NOTIFICATION error codes (RFC 4271 §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Message header error (1).
    MessageHeader,
    /// OPEN message error (2).
    OpenMessage,
    /// UPDATE message error (3).
    UpdateMessage,
    /// Hold timer expired (4).
    HoldTimerExpired,
    /// FSM error (5).
    FiniteStateMachine,
    /// Cease (6).
    Cease,
}

impl ErrorCode {
    /// Wire value.
    pub fn value(&self) -> u8 {
        match self {
            ErrorCode::MessageHeader => 1,
            ErrorCode::OpenMessage => 2,
            ErrorCode::UpdateMessage => 3,
            ErrorCode::HoldTimerExpired => 4,
            ErrorCode::FiniteStateMachine => 5,
            ErrorCode::Cease => 6,
        }
    }

    /// From wire value.
    pub fn from_value(v: u8) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::MessageHeader,
            2 => ErrorCode::OpenMessage,
            3 => ErrorCode::UpdateMessage,
            4 => ErrorCode::HoldTimerExpired,
            5 => ErrorCode::FiniteStateMachine,
            6 => ErrorCode::Cease,
            _ => return None,
        })
    }
}

/// Errors raised by the codecs and the FSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpError {
    /// Input ended before the structure was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A structurally invalid message.
    Malformed {
        /// NOTIFICATION error code this maps to.
        code: ErrorCode,
        /// Sub-code (RFC 4271 §6), 0 if unspecific.
        subcode: u8,
        /// Description.
        detail: &'static str,
    },
    /// The connection is not in a state that allows the operation.
    BadState {
        /// Description.
        detail: &'static str,
    },
}

impl BgpError {
    /// Shorthand for header errors.
    pub fn header(subcode: u8, detail: &'static str) -> Self {
        BgpError::Malformed {
            code: ErrorCode::MessageHeader,
            subcode,
            detail,
        }
    }

    /// Shorthand for OPEN errors.
    pub fn open(subcode: u8, detail: &'static str) -> Self {
        BgpError::Malformed {
            code: ErrorCode::OpenMessage,
            subcode,
            detail,
        }
    }

    /// Shorthand for UPDATE errors.
    pub fn update(subcode: u8, detail: &'static str) -> Self {
        BgpError::Malformed {
            code: ErrorCode::UpdateMessage,
            subcode,
            detail,
        }
    }

    /// The NOTIFICATION (code, subcode) a speaker should send for this
    /// error, if any.
    pub fn notification_codes(&self) -> Option<(u8, u8)> {
        match self {
            BgpError::Malformed { code, subcode, .. } => Some((code.value(), *subcode)),
            BgpError::Truncated { .. } => Some((ErrorCode::MessageHeader.value(), 2)),
            BgpError::BadState { .. } => Some((ErrorCode::FiniteStateMachine.value(), 0)),
        }
    }
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::Truncated { what } => write!(f, "truncated {what}"),
            BgpError::Malformed {
                code,
                subcode,
                detail,
            } => write!(f, "malformed message ({code:?}/{subcode}): {detail}"),
            BgpError::BadState { detail } => write!(f, "bad state: {detail}"),
        }
    }
}

impl std::error::Error for BgpError {}

/// Result alias for this crate.
pub type BgpResult<T> = Result<T, BgpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for v in 1..=6u8 {
            assert_eq!(ErrorCode::from_value(v).unwrap().value(), v);
        }
        assert!(ErrorCode::from_value(0).is_none());
        assert!(ErrorCode::from_value(7).is_none());
    }

    #[test]
    fn notification_mapping() {
        assert_eq!(
            BgpError::update(3, "missing attribute").notification_codes(),
            Some((3, 3))
        );
        assert_eq!(
            BgpError::Truncated { what: "open" }.notification_codes(),
            Some((1, 2))
        );
        assert_eq!(
            BgpError::BadState { detail: "x" }.notification_codes(),
            Some((5, 0))
        );
    }

    #[test]
    fn display_is_informative() {
        let e = BgpError::open(2, "bad peer AS");
        assert!(e.to_string().contains("bad peer AS"));
    }
}
