//! NOTIFICATION message (RFC 4271 §4.5).

use crate::error::{BgpError, BgpResult, ErrorCode};
use bytes::BufMut;
use core::fmt;

/// A NOTIFICATION message: sent when a fatal error closes the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMessage {
    /// Error code.
    pub code: ErrorCode,
    /// Error sub-code.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl NotificationMessage {
    /// Builds a notification for a codec/FSM error, if it maps to one.
    pub fn from_error(err: &BgpError) -> Option<NotificationMessage> {
        let (code, subcode) = err.notification_codes()?;
        Some(NotificationMessage {
            code: ErrorCode::from_value(code)?,
            subcode,
            data: Vec::new(),
        })
    }

    /// A Cease notification (administrative shutdown, RFC 4486).
    pub fn cease() -> NotificationMessage {
        NotificationMessage {
            code: ErrorCode::Cease,
            subcode: 2, // administrative shutdown
            data: Vec::new(),
        }
    }

    /// A hold-timer-expired notification.
    pub fn hold_timer_expired() -> NotificationMessage {
        NotificationMessage {
            code: ErrorCode::HoldTimerExpired,
            subcode: 0,
            data: Vec::new(),
        }
    }

    /// Encodes the message body.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.code.value());
        buf.put_u8(self.subcode);
        buf.put_slice(&self.data);
    }

    /// Decodes a message body.
    pub fn decode(buf: &[u8]) -> BgpResult<NotificationMessage> {
        if buf.len() < 2 {
            return Err(BgpError::Truncated {
                what: "notification",
            });
        }
        let code = ErrorCode::from_value(buf[0]).ok_or(BgpError::Malformed {
            code: ErrorCode::MessageHeader,
            subcode: 0,
            detail: "unknown notification code",
        })?;
        Ok(NotificationMessage {
            code,
            subcode: buf[1],
            data: buf[2..].to_vec(),
        })
    }
}

impl fmt::Display for NotificationMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NOTIFICATION {:?}/{}", self.code, self.subcode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn round_trip() {
        let n = NotificationMessage {
            code: ErrorCode::UpdateMessage,
            subcode: 3,
            data: vec![1, 2, 3],
        };
        let mut buf = BytesMut::new();
        n.encode(&mut buf);
        assert_eq!(NotificationMessage::decode(&buf).unwrap(), n);
    }

    #[test]
    fn from_error_maps_codes() {
        let e = BgpError::update(3, "missing well-known attribute");
        let n = NotificationMessage::from_error(&e).unwrap();
        assert_eq!(n.code, ErrorCode::UpdateMessage);
        assert_eq!(n.subcode, 3);
    }

    #[test]
    fn constructors() {
        assert_eq!(NotificationMessage::cease().code, ErrorCode::Cease);
        assert_eq!(
            NotificationMessage::hold_timer_expired().code,
            ErrorCode::HoldTimerExpired
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(NotificationMessage::decode(&[1]).is_err());
        assert!(NotificationMessage::decode(&[99, 0]).is_err());
    }
}
