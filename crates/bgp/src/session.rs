//! A complete BGP speaker session: framing + capability negotiation + FSM.
//!
//! The session is transport-agnostic and fully deterministic: callers feed
//! it received bytes and the current simulation time, and it returns bytes
//! to transmit plus decoded UPDATEs. ADD-PATH is negotiated per RFC 7911:
//! path ids are used on the session iff both speakers advertised the
//! capability with compatible send/receive modes (the route server ↔
//! blackholing controller session uses `Both` on each side).

use crate::capability::{AddPathMode, Capability};
use crate::error::{BgpError, BgpResult};
use crate::fsm::{BgpEvent, BgpFsm, FsmAction, SessionState};
use crate::message::{DecodeCtx, Message, MessageReader};
use crate::open::OpenMessage;
use crate::types::{Afi, Asn, Safi};
use crate::update::UpdateMessage;
use stellar_net::addr::Ipv4Address;

/// Static configuration of one side of a session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Local AS number.
    pub local_asn: Asn,
    /// Local BGP identifier.
    pub bgp_id: Ipv4Address,
    /// Configured hold time in seconds (0 disables timers).
    pub hold_time_s: u16,
    /// Desired ADD-PATH mode, if any.
    pub add_path: Option<AddPathMode>,
    /// Expected peer ASN; enforced on OPEN if set. For iBGP (the
    /// blackholing controller's session, §4.3) set this to `local_asn`.
    pub expected_peer: Option<Asn>,
    /// True to wait for the peer to speak first.
    pub passive: bool,
}

impl SessionConfig {
    /// A typical eBGP route-server-client config.
    pub fn ebgp(local_asn: Asn, bgp_id: Ipv4Address) -> Self {
        SessionConfig {
            local_asn,
            bgp_id,
            hold_time_s: 90,
            add_path: None,
            expected_peer: None,
            passive: false,
        }
    }

    /// An iBGP config with ADD-PATH `Both` — what the blackholing
    /// controller uses towards the route server.
    pub fn ibgp_add_path(local_asn: Asn, bgp_id: Ipv4Address) -> Self {
        SessionConfig {
            local_asn,
            bgp_id,
            hold_time_s: 90,
            add_path: Some(AddPathMode::Both),
            expected_peer: Some(local_asn),
            passive: false,
        }
    }
}

/// What a session interaction produced.
#[derive(Debug, Default)]
pub struct SessionOutput {
    /// Byte segments to transmit to the peer, in order.
    pub to_send: Vec<Vec<u8>>,
    /// Decoded UPDATE messages (only when Established).
    pub updates: Vec<UpdateMessage>,
    /// The session transitioned to Established in this interaction.
    pub session_up: bool,
    /// The session left Established in this interaction.
    pub session_down: bool,
    /// The peer asked for re-advertisement (ROUTE-REFRESH, RFC 2918).
    pub refresh_requested: bool,
}

impl SessionOutput {
    fn merge(&mut self, other: SessionOutput) {
        self.to_send.extend(other.to_send);
        self.updates.extend(other.updates);
        self.session_up |= other.session_up;
        self.session_down |= other.session_down;
        self.refresh_requested |= other.refresh_requested;
    }
}

/// One side of a BGP session.
#[derive(Debug)]
pub struct Session {
    config: SessionConfig,
    fsm: BgpFsm,
    reader: MessageReader,
    ctx: DecodeCtx,
    peer_open: Option<OpenMessage>,
}

impl Session {
    /// Creates a session in Idle.
    pub fn new(config: SessionConfig) -> Self {
        let fsm = BgpFsm::new(config.hold_time_s);
        Session {
            config,
            fsm,
            reader: MessageReader::new(),
            ctx: DecodeCtx::default(),
            peer_open: None,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> SessionState {
        self.fsm.state()
    }

    /// True once the session is Established.
    pub fn is_established(&self) -> bool {
        self.state() == SessionState::Established
    }

    /// The peer's OPEN, once received.
    pub fn peer_open(&self) -> Option<&OpenMessage> {
        self.peer_open.as_ref()
    }

    /// True if ADD-PATH was negotiated on this session.
    pub fn add_path_negotiated(&self) -> bool {
        self.ctx.add_path
    }

    /// Starts the session (and, in this in-memory setting, implicitly
    /// confirms the transport).
    pub fn start(&mut self, now_us: u64) -> SessionOutput {
        let ev = if self.config.passive {
            BgpEvent::ManualStartPassive
        } else {
            BgpEvent::ManualStart
        };
        let acts = self.fsm.handle(ev, now_us);
        let mut out = self.run_actions(acts, now_us);
        let acts = self.fsm.handle(BgpEvent::TcpConfirmed, now_us);
        out.merge(self.run_actions(acts, now_us));
        out
    }

    /// Feeds received bytes.
    pub fn on_bytes(&mut self, bytes: &[u8], now_us: u64) -> SessionOutput {
        self.reader.push(bytes);
        let mut out = SessionOutput::default();
        loop {
            match self.reader.next(self.ctx) {
                Ok(Some(msg)) => out.merge(self.on_message(msg, now_us)),
                Ok(None) => break,
                Err(e) => {
                    let acts = self.fsm.handle(BgpEvent::DecodeError(e), now_us);
                    out.merge(self.run_actions(acts, now_us));
                    break;
                }
            }
        }
        out
    }

    /// Advances timers to `now_us`.
    pub fn tick(&mut self, now_us: u64) -> SessionOutput {
        let acts = self.fsm.tick(now_us);
        self.run_actions(acts, now_us)
    }

    /// Operator stop; emits a Cease NOTIFICATION.
    pub fn stop(&mut self, now_us: u64) -> SessionOutput {
        let acts = self.fsm.handle(BgpEvent::ManualStop, now_us);
        self.run_actions(acts, now_us)
    }

    /// Encodes a ROUTE-REFRESH request for IPv4 unicast. Fails unless
    /// Established.
    pub fn send_route_refresh(&mut self) -> BgpResult<Vec<u8>> {
        if !self.is_established() {
            return Err(BgpError::BadState {
                detail: "cannot send ROUTE-REFRESH before Established",
            });
        }
        Message::RouteRefresh { afi: 1, safi: 1 }.encode(self.ctx)
    }

    /// Encodes an UPDATE for transmission. Fails unless Established.
    pub fn send_update(&mut self, update: &UpdateMessage) -> BgpResult<Vec<u8>> {
        if !self.is_established() {
            return Err(BgpError::BadState {
                detail: "cannot send UPDATE before Established",
            });
        }
        Message::Update(update.clone()).encode(self.ctx)
    }

    fn on_message(&mut self, msg: Message, now_us: u64) -> SessionOutput {
        match msg {
            Message::Open(open) => {
                if let Some(expected) = self.config.expected_peer {
                    if open.asn != expected {
                        let acts = self.fsm.handle(
                            BgpEvent::DecodeError(BgpError::open(2, "unexpected peer AS")),
                            now_us,
                        );
                        return self.run_actions(acts, now_us);
                    }
                }
                self.negotiate(&open);
                self.peer_open = Some(open.clone());
                let acts = self.fsm.handle(BgpEvent::RecvOpen(open), now_us);
                self.run_actions(acts, now_us)
            }
            Message::Keepalive => {
                let acts = self.fsm.handle(BgpEvent::RecvKeepalive, now_us);
                self.run_actions(acts, now_us)
            }
            Message::Update(update) => {
                let acts = self.fsm.handle(BgpEvent::RecvUpdate, now_us);
                let mut out = SessionOutput::default();
                for a in acts {
                    if a == FsmAction::ProcessUpdate {
                        out.updates.push(update.clone());
                    } else {
                        out.merge(self.run_actions(vec![a], now_us));
                    }
                }
                out
            }
            Message::Notification(n) => {
                let acts = self.fsm.handle(BgpEvent::RecvNotification(n), now_us);
                self.run_actions(acts, now_us)
            }
            Message::RouteRefresh { .. } => {
                // Only meaningful on an established session; earlier it is
                // silently ignored (benign, like a stray keepalive).
                SessionOutput {
                    refresh_requested: self.is_established(),
                    ..Default::default()
                }
            }
        }
    }

    fn negotiate(&mut self, peer: &OpenMessage) {
        // Per-direction ADD-PATH reduces to a single session flag here
        // because every deployment in this system uses symmetric `Both`.
        let local_mode = self.config.add_path;
        let peer_mode = peer.add_path_families().and_then(|fams| {
            fams.iter()
                .find(|(afi, safi, _)| *afi == Afi::Ipv4 && *safi == Safi::Unicast)
                .map(|(_, _, m)| *m)
        });
        self.ctx.add_path = match (local_mode, peer_mode) {
            (Some(l), Some(p)) => {
                (l.can_send() && p.can_receive()) || (l.can_receive() && p.can_send())
            }
            _ => false,
        };
    }

    fn local_open(&self) -> OpenMessage {
        let mut capabilities = vec![
            Capability::Multiprotocol {
                afi: Afi::Ipv4,
                safi: Safi::Unicast,
            },
            Capability::Multiprotocol {
                afi: Afi::Ipv6,
                safi: Safi::Unicast,
            },
            Capability::RouteRefresh,
            Capability::FourOctetAs {
                asn: self.config.local_asn.0,
            },
        ];
        if let Some(mode) = self.config.add_path {
            capabilities.push(Capability::AddPath {
                families: vec![
                    (Afi::Ipv4, Safi::Unicast, mode),
                    (Afi::Ipv6, Safi::Unicast, mode),
                ],
            });
        }
        OpenMessage {
            asn: self.config.local_asn,
            hold_time: self.config.hold_time_s,
            bgp_id: self.config.bgp_id,
            capabilities,
        }
    }

    fn run_actions(&mut self, actions: Vec<FsmAction>, _now_us: u64) -> SessionOutput {
        let mut out = SessionOutput::default();
        for a in actions {
            match a {
                FsmAction::SendOpen => {
                    let m = Message::Open(self.local_open());
                    out.to_send
                        .push(m.encode(DecodeCtx::default()).expect("open encodes"));
                }
                FsmAction::SendKeepalive => {
                    out.to_send
                        .push(Message::Keepalive.encode(self.ctx).expect("ka encodes"));
                }
                FsmAction::SendNotification(n) => {
                    out.to_send.push(
                        Message::Notification(n)
                            .encode(self.ctx)
                            .expect("notification encodes"),
                    );
                }
                FsmAction::SessionUp => out.session_up = true,
                FsmAction::SessionDown => out.session_down = true,
                FsmAction::ProcessUpdate => {
                    // Handled inline in on_message.
                }
            }
        }
        out
    }
}

/// Drives two in-memory sessions to Established by relaying their output
/// bytes until quiescent. Returns the number of relay rounds taken.
/// Intended for tests and topology bring-up.
pub fn drive_pair(a: &mut Session, b: &mut Session, now_us: u64) -> usize {
    let mut pending_ab: Vec<Vec<u8>> = Vec::new();
    let mut pending_ba: Vec<Vec<u8>> = Vec::new();
    let out = a.start(now_us);
    pending_ab.extend(out.to_send);
    let out = b.start(now_us);
    pending_ba.extend(out.to_send);
    let mut rounds = 0;
    while !pending_ab.is_empty() || !pending_ba.is_empty() {
        rounds += 1;
        assert!(rounds < 64, "session bring-up did not converge");
        let to_b = std::mem::take(&mut pending_ab);
        for seg in to_b {
            pending_ba.extend(b.on_bytes(&seg, now_us).to_send);
        }
        let to_a = std::mem::take(&mut pending_ba);
        for seg in to_a {
            pending_ab.extend(a.on_bytes(&seg, now_us).to_send);
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AsPath, PathAttribute};
    use crate::nlri::Nlri;

    fn pair(active_ap: Option<AddPathMode>, passive_ap: Option<AddPathMode>) -> (Session, Session) {
        let mut ca = SessionConfig::ebgp(Asn(64500), Ipv4Address::new(10, 0, 0, 1));
        ca.add_path = active_ap;
        let mut cb = SessionConfig::ebgp(Asn(64501), Ipv4Address::new(10, 0, 0, 2));
        cb.add_path = passive_ap;
        cb.passive = true;
        (Session::new(ca), Session::new(cb))
    }

    #[test]
    fn sessions_reach_established() {
        let (mut a, mut b) = pair(None, None);
        drive_pair(&mut a, &mut b, 0);
        assert!(a.is_established());
        assert!(b.is_established());
        assert!(!a.add_path_negotiated());
        assert_eq!(a.peer_open().unwrap().asn, Asn(64501));
        assert_eq!(b.peer_open().unwrap().asn, Asn(64500));
    }

    #[test]
    fn add_path_negotiation_requires_both_sides() {
        let (mut a, mut b) = pair(Some(AddPathMode::Both), Some(AddPathMode::Both));
        drive_pair(&mut a, &mut b, 0);
        assert!(a.add_path_negotiated());
        assert!(b.add_path_negotiated());

        let (mut a, mut b) = pair(Some(AddPathMode::Both), None);
        drive_pair(&mut a, &mut b, 0);
        assert!(!a.add_path_negotiated());
        assert!(!b.add_path_negotiated());

        let (mut a, mut b) = pair(Some(AddPathMode::Send), Some(AddPathMode::Receive));
        drive_pair(&mut a, &mut b, 0);
        assert!(a.add_path_negotiated());
    }

    fn sample_update() -> UpdateMessage {
        UpdateMessage::announce(
            "100.10.10.0/24".parse().unwrap(),
            Ipv4Address::new(80, 81, 192, 10),
            PathAttribute::AsPath(AsPath::sequence([64500])),
        )
    }

    #[test]
    fn updates_flow_after_established() {
        let (mut a, mut b) = pair(None, None);
        drive_pair(&mut a, &mut b, 0);
        let wire = a.send_update(&sample_update()).unwrap();
        let out = b.on_bytes(&wire, 1);
        assert_eq!(out.updates.len(), 1);
        assert_eq!(out.updates[0], sample_update());
    }

    #[test]
    fn updates_rejected_before_established() {
        let (mut a, _) = pair(None, None);
        assert!(a.send_update(&sample_update()).is_err());
    }

    #[test]
    fn add_path_updates_round_trip_between_sessions() {
        let (mut a, mut b) = pair(Some(AddPathMode::Both), Some(AddPathMode::Both));
        drive_pair(&mut a, &mut b, 0);
        let mut u = sample_update();
        u.nlri = vec![
            Nlri::with_path_id("100.10.10.10/32".parse().unwrap(), 1),
            Nlri::with_path_id("100.10.10.10/32".parse().unwrap(), 2),
        ];
        let wire = a.send_update(&u).unwrap();
        let out = b.on_bytes(&wire, 1);
        assert_eq!(out.updates[0].nlri.len(), 2);
        assert_eq!(out.updates[0].nlri[1].path_id, Some(2));
    }

    #[test]
    fn expected_peer_mismatch_kills_session() {
        let mut ca = SessionConfig::ebgp(Asn(64500), Ipv4Address::new(10, 0, 0, 1));
        ca.expected_peer = Some(Asn(99999));
        let mut a = Session::new(ca);
        let mut cb = SessionConfig::ebgp(Asn(64501), Ipv4Address::new(10, 0, 0, 2));
        cb.passive = true;
        let mut b = Session::new(cb);
        let out_a = a.start(0);
        b.start(0);
        let mut replies = Vec::new();
        for seg in out_a.to_send {
            replies.extend(b.on_bytes(&seg, 0).to_send);
        }
        // b's OPEN arrives at a, which expected a different ASN.
        let mut notified = false;
        for seg in replies {
            let out = a.on_bytes(&seg, 0);
            notified |= !out.to_send.is_empty();
        }
        assert_eq!(a.state(), SessionState::Idle);
        assert!(notified, "a should have sent a NOTIFICATION");
    }

    #[test]
    fn garbage_bytes_reset_session_with_notification() {
        let (mut a, mut b) = pair(None, None);
        drive_pair(&mut a, &mut b, 0);
        let out = b.on_bytes(&[0u8; 40], 1);
        assert!(out.session_down);
        assert_eq!(b.state(), SessionState::Idle);
        assert!(!out.to_send.is_empty());
    }

    #[test]
    fn keepalives_maintain_the_session_and_hold_expiry_drops_it() {
        let (mut a, mut b) = pair(None, None);
        drive_pair(&mut a, &mut b, 0);
        // Exchange keepalives for a while.
        let mut t = 0u64;
        for _ in 0..10 {
            t += 30_000_000; // 30 s steps, hold is 90 s
            let out_a = a.tick(t);
            for seg in out_a.to_send {
                b.on_bytes(&seg, t);
            }
            let out_b = b.tick(t);
            for seg in out_b.to_send {
                a.on_bytes(&seg, t);
            }
            assert!(a.is_established() && b.is_established());
        }
        // Now stop relaying to b: its hold timer must eventually fire.
        let out = b.tick(t + 91_000_000);
        assert!(out.session_down);
        assert_eq!(b.state(), SessionState::Idle);
    }

    #[test]
    fn stop_sends_cease() {
        let (mut a, mut b) = pair(None, None);
        drive_pair(&mut a, &mut b, 0);
        let out = a.stop(1);
        assert!(out.session_down);
        let out_b = b.on_bytes(&out.to_send[0], 1);
        assert!(out_b.session_down);
        assert_eq!(b.state(), SessionState::Idle);
    }
}
