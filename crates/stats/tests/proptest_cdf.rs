//! Property tests for the ECDF quantile: `quantile(q)` must be the
//! *smallest* sample v with `P(X <= v) >= q`, for arbitrary samples and
//! arbitrary q — including the float-hazardous q = k/len family where
//! `q * len` is mathematically integral but may round up in f64.

use proptest::prelude::*;
use stellar_stats::Ecdf;

/// The smallest sample satisfying the quantile definition, by linear
/// scan — the obviously-correct reference.
fn reference_quantile(e: &Ecdf, sorted: &[f64], q: f64) -> f64 {
    if q == 0.0 {
        return sorted[0];
    }
    for &v in sorted {
        if e.at(v) >= q {
            return v;
        }
    }
    *sorted.last().unwrap()
}

fn arb_sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6..1.0e6f64, 1..200)
}

proptest! {
    #[test]
    fn quantile_is_minimal_for_arbitrary_q(xs in arb_sample(), q in 0.0..1.0f64) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let e = Ecdf::new(xs);
        for q in [q, 1.0] {
            let got = e.quantile(q);
            prop_assert!(e.at(got) >= q, "P(X<={}) < {}", got, q);
            let reference = reference_quantile(&e, &sorted, q);
            prop_assert_eq!(got, reference, "not the smallest satisfying sample");
        }
    }

    #[test]
    fn quantile_is_minimal_for_integral_ranks(xs in arb_sample(), k in 1usize..200) {
        // q = k/len: the rank is mathematically exactly k, the case the
        // naive ceil got wrong when f64 rounded q*len up.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let len = xs.len();
        let k = (k % len) + 1;
        let q = k as f64 / len as f64;
        let e = Ecdf::new(xs);
        let got = e.quantile(q);
        prop_assert!(e.at(got) >= q);
        prop_assert_eq!(got, reference_quantile(&e, &sorted, q));
    }
}
