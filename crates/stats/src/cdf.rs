//! Empirical cumulative distribution functions (Fig. 10b).

/// An empirical CDF over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample (NaNs are rejected).
    pub fn new(mut xs: Vec<f64>) -> Ecdf {
        assert!(!xs.is_empty(), "ECDF needs at least one sample");
        assert!(
            xs.iter().all(|v| !v.is_nan()),
            "ECDF input must not contain NaN"
        );
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Ecdf { sorted: xs }
    }

    /// P(X <= x).
    pub fn at(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we test
        // v <= x.
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0..=1) as the smallest sample value v with
    /// P(X <= v) >= q.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if q == 0.0 {
            return self.sorted[0];
        }
        // Epsilon-guarded ceil: `q * len` can exceed its mathematically
        // integral value by a few ulps (e.g. q = k/len computed in f64),
        // and a naive ceil then lands one rank too high — returning a
        // sample strictly above the smallest one satisfying P(X<=v) >= q.
        // The relative nudge (a few thousand ulps) is far below the gap
        // to the next representable rank for any realistic sample size.
        let rank = q * self.sorted.len() as f64;
        let idx = ((rank - rank * 1e-12).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: constructor rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Evaluates the CDF at each of `points`, yielding `(x, P(X<=x))`
    /// pairs — the series a plot like Fig. 10(b) needs.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.at(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_steps_match_sample() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(1.0), 0.25);
        assert_eq!(e.at(2.0), 0.75);
        assert_eq!(e.at(3.0), 0.75);
        assert_eq!(e.at(4.0), 1.0);
        assert_eq!(e.at(100.0), 1.0);
    }

    #[test]
    fn quantiles_are_inverse_of_cdf() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.95), 95.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.quantile(0.0), 1.0);
        // P(X <= quantile(q)) >= q for all q.
        for q in [0.01, 0.25, 0.7, 0.95, 0.99] {
            assert!(e.at(e.quantile(q)) >= q);
        }
    }

    #[test]
    fn quantile_survives_float_rounded_integral_ranks() {
        // Regression: for q = k/len computed in f64, q*len can round one
        // ulp above the integer k; the naive ceil then returns the
        // (k+1)-th sample, violating minimality. Exhaustively check every
        // (len, k) pair in a range known to contain such roundings.
        for len in 1usize..=512 {
            let e = Ecdf::new((1..=len).map(|i| i as f64).collect());
            for k in 1..=len {
                let q = k as f64 / len as f64;
                let got = e.quantile(q);
                assert!(e.at(got) >= q, "len={len} k={k}: P(X<={got}) < {q}");
                // Minimality: the k-th sample (value k) is the smallest v
                // with at(v) >= k/len.
                assert_eq!(got, k as f64, "len={len} k={k}: not minimal");
            }
        }
    }

    #[test]
    fn series_is_monotone() {
        let e = Ecdf::new(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let pts: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let s = e.series(&pts);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        Ecdf::new(vec![]);
    }
}
