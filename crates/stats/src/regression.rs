//! Ordinary least-squares linear regression with confidence bands.
//!
//! Fig. 10(a) plots control-plane CPU usage against the rule-update rate as
//! a linear regression with a 95 % confidence interval; this module
//! implements that fit, including the standard errors needed for the band
//! and for inverting the fit ("at 15 % CPU the ER handles a median of 4.33
//! updates per second").

use crate::describe::mean;
use crate::special::student_t_quantile;

/// An OLS fit `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Residual standard error.
    pub resid_se: f64,
    /// Standard error of the slope.
    pub slope_se: f64,
    /// Standard error of the intercept.
    pub intercept_se: f64,
    /// Number of points fitted.
    pub n: usize,
    /// Mean of the predictor (needed for prediction bands).
    pub x_mean: f64,
    /// Sum of squared deviations of the predictor.
    pub sxx: f64,
}

impl OlsFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Half-width of the 95 % confidence band for the *mean response*
    /// at `x`.
    pub fn ci95_half_width(&self, x: f64) -> f64 {
        let df = (self.n - 2) as f64;
        let t = student_t_quantile(0.975, df);
        let d = x - self.x_mean;
        t * self.resid_se * (1.0 / self.n as f64 + d * d / self.sxx).sqrt()
    }

    /// Solves `predict(x) = y` for `x` — e.g. "which update rate reaches
    /// the 15 % CPU cap".
    pub fn solve_for_x(&self, y: f64) -> f64 {
        assert!(self.slope != 0.0, "cannot invert a flat fit");
        (y - self.intercept) / self.slope
    }
}

/// Fits `y = a + b x` by least squares. Requires at least three points and
/// non-degenerate x.
pub fn ols(x: &[f64], y: &[f64]) -> OlsFit {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 3, "need >=3 points");
    let n = x.len() as f64;
    let xm = mean(x);
    let ym = mean(y);
    let sxx: f64 = x.iter().map(|v| (v - xm) * (v - xm)).sum();
    assert!(sxx > 0.0, "x must not be constant");
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - xm) * (b - ym)).sum();
    let slope = sxy / sxx;
    let intercept = ym - slope * xm;
    let ss_tot: f64 = y.iter().map(|v| (v - ym) * (v - ym)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| {
            let e = b - (intercept + slope * a);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    let resid_se = (ss_res / (n - 2.0)).sqrt();
    let slope_se = resid_se / sxx.sqrt();
    let intercept_se = resid_se * (1.0 / n + xm * xm / sxx).sqrt();
    OlsFit {
        slope,
        intercept,
        r2,
        resid_se,
        slope_se,
        intercept_se,
        n: x.len(),
        x_mean: xm,
        sxx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 2.0).collect();
        let f = ols(&x, &y);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!(f.resid_se < 1e-9);
        assert!((f.predict(4.0) - 14.0).abs() < 1e-12);
        assert!((f.solve_for_x(14.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fit_is_close() {
        // Deterministic pseudo-noise.
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 1.5 * v + 0.5 + ((i * 37 % 17) as f64 - 8.0) / 40.0)
            .collect();
        let f = ols(&x, &y);
        assert!((f.slope - 1.5).abs() < 0.05);
        assert!((f.intercept - 0.5).abs() < 0.2);
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn ci_band_is_narrowest_at_x_mean() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + (v % 3.0)).collect();
        let f = ols(&x, &y);
        let at_mean = f.ci95_half_width(f.x_mean);
        assert!(at_mean <= f.ci95_half_width(0.0));
        assert!(at_mean <= f.ci95_half_width(19.0));
    }

    #[test]
    #[should_panic(expected = "x must not be constant")]
    fn constant_x_panics() {
        ols(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
    }
}
