//! # stellar-stats
//!
//! The statistical toolkit behind the paper's evaluation plots:
//!
//! - descriptive statistics and percentiles ([`describe`]),
//! - one-tailed Welch's unequal-variances t-test, used in §2.3 to show the
//!   port distribution of blackholed traffic differs significantly from
//!   non-blackholed traffic ([`welch`]),
//! - 95 % confidence intervals for means (Fig. 3a error bars) ([`ci`]),
//! - ordinary least-squares regression with confidence bands (Fig. 10a)
//!   ([`regression`]),
//! - empirical CDFs (Fig. 10b) ([`cdf`]),
//! - plain-text table/series rendering shared by the bench binaries
//!   ([`table`]).
//!
//! Everything is implemented from first principles (log-gamma, regularized
//! incomplete beta, Student-t distribution) so the crate has no external
//! dependencies and results are bit-reproducible.

pub mod cdf;
pub mod ci;
pub mod describe;
pub mod regression;
pub mod special;
pub mod table;
pub mod welch;

pub use cdf::Ecdf;
pub use ci::{mean_ci95, MeanCi};
pub use describe::{mean, median, percentile, std_dev, variance};
pub use regression::{ols, OlsFit};
pub use welch::{welch_t_test, WelchResult};
