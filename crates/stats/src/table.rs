//! Plain-text rendering of tables and time series, shared by the bench
//! binaries so every experiment prints in a consistent, diffable format.

/// Renders an aligned text table. The first row is treated as the header.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            line.push_str(&format!("{cell:<w$}"));
            if i + 1 < cols {
                line.push_str("  ");
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Renders a `(t, value)` time series as `t<sep>value` lines with a header,
/// suitable for piping into a plotting tool.
pub fn render_series(name: &str, unit: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("# {name} [{unit}]\n");
    for (t, v) in series {
        out.push_str(&format!("{t:.3}\t{v:.3}\n"));
    }
    out
}

/// Renders a horizontal ASCII bar of `frac` (0..=1) with the given width —
/// used to give the figure binaries a quick visual of distributions.
pub fn bar(frac: f64, width: usize) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Formats a bit rate with an adaptive unit.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} Gbps", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.1} Mbps", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.1} Kbps", bps / 1e3)
    } else {
        format!("{bps:.0} bps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let rows = vec![
            vec!["port".to_string(), "share".to_string()],
            vec!["123 (ntp)".to_string(), "25.0%".to_string()],
            vec!["0".to_string(), "12.5%".to_string()],
        ];
        let t = render_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].starts_with("port"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // "share" column starts at the same offset in every row.
        let off = lines[0].find("share").unwrap();
        assert_eq!(&lines[2][off..off + 5], "25.0%");
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn series_renders_header_and_rows() {
        let s = render_series("attack", "Mbps", &[(0.0, 1.0), (1.0, 2.0)]);
        assert!(s.starts_with("# attack [Mbps]\n"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn bar_clamps_and_scales() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(7.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "....");
    }

    #[test]
    fn bps_formatting() {
        assert_eq!(fmt_bps(1.2e9), "1.20 Gbps");
        assert_eq!(fmt_bps(3.5e6), "3.5 Mbps");
        assert_eq!(fmt_bps(9_000.0), "9.0 Kbps");
        assert_eq!(fmt_bps(500.0), "500 bps");
    }
}
