//! Descriptive statistics.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator). Returns `NaN` for fewer than
/// two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// The `p`-th percentile (0–100) with linear interpolation between order
/// statistics — the convention used for "the 95th percentile of parallel
/// RTBHs" (N in Fig. 9) and the queueing p95 in Fig. 10(b).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    if v.len() == 1 {
        return v[0];
    }
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] + (v[hi] - v[lo]) * frac
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance with n-1: 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[42.0], 95.0), 42.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        // 95th of 0..=100 uniform grid.
        let grid: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert!((percentile(&grid, 95.0) - 95.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 9.0, 3.0];
        let mut b = a;
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(percentile(&a, 75.0), percentile(&b, 75.0));
    }
}
