//! Confidence intervals for sample means (the 95 % error bars of Fig. 3a).

use crate::describe::{mean, std_dev};
use crate::special::student_t_quantile;

/// A sample mean with a symmetric confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
}

impl MeanCi {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// True if `v` lies within the interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo() && v <= self.hi()
    }
}

/// Two-sided confidence interval for the mean at the given level using the
/// Student-t critical value.
pub fn mean_ci(xs: &[f64], level: f64) -> MeanCi {
    assert!(xs.len() >= 2, "need >=2 samples for a CI");
    assert!(level > 0.0 && level < 1.0);
    let df = (xs.len() - 1) as f64;
    let tcrit = student_t_quantile(0.5 + level / 2.0, df);
    let se = std_dev(xs) / (xs.len() as f64).sqrt();
    MeanCi {
        mean: mean(xs),
        half_width: tcrit * se,
        level,
    }
}

/// The conventional 95 % interval.
pub fn mean_ci95(xs: &[f64]) -> MeanCi {
    mean_ci(xs, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_contains_mean_and_is_symmetric() {
        let xs = [9.8, 10.1, 10.0, 9.9, 10.2, 10.0];
        let ci = mean_ci95(&xs);
        assert!(ci.contains(ci.mean));
        assert!((ci.hi() - ci.mean - (ci.mean - ci.lo())).abs() < 1e-12);
        assert!(ci.half_width > 0.0);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let c90 = mean_ci(&xs, 0.90);
        let c99 = mean_ci(&xs, 0.99);
        assert!(c99.half_width > c90.half_width);
    }

    #[test]
    fn known_critical_value() {
        // n=11 -> df=10 -> t_crit(97.5%) = 2.2281; sd=1, se=1/sqrt(11).
        let xs: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let ci = mean_ci95(&xs);
        let sd = crate::describe::std_dev(&xs);
        let expected = 2.2281 * sd / (11f64).sqrt();
        assert!((ci.half_width - expected).abs() < 1e-3);
    }

    #[test]
    fn more_samples_shrink_interval() {
        let small: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let big: Vec<f64> = (0..1000).map(|i| (i % 5) as f64).collect();
        assert!(mean_ci95(&big).half_width < mean_ci95(&small).half_width);
    }
}
