//! Special functions needed by the Student-t distribution: log-gamma and
//! the regularized incomplete beta function.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
/// Accurate to ~1e-13 for positive arguments, which is far beyond what the
/// t-tests here need.
pub fn ln_gamma(x: f64) -> f64 {
    #[allow(clippy::excessive_precision)] // published Lanczos coefficients
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function I_x(a, b), computed with the
/// continued-fraction expansion (Numerical Recipes `betacf`).
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The continued fraction converges fastest for x < (a+1)/(a+b+2);
    // otherwise evaluate the mirrored fraction directly (no recursion, so
    // boundary values of x cannot ping-pong between the two branches).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Inverse CDF (quantile) of Student's t distribution, via bisection on the
/// monotone CDF. `p` must be in (0, 1).
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    let (mut lo, mut hi) = (-1e3, 1e3);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3_628_800f64.ln()).abs() < 1e-9);
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_boundary_and_symmetry() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform).
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        let v = inc_beta(2.5, 4.0, 0.3) + inc_beta(4.0, 2.5, 0.7);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_known_values() {
        // df=1 (Cauchy): CDF(1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
        // Symmetric around 0.
        assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        // df=10, t=2.228 is the 97.5th percentile (classic table value).
        assert!((student_t_cdf(2.228, 10.0) - 0.975).abs() < 1e-4);
        // Large df approaches the normal: CDF(1.96) ~ 0.975.
        assert!((student_t_cdf(1.96, 1e6) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for &df in &[1.0, 3.0, 10.0, 30.0, 200.0] {
            for &p in &[0.01, 0.05, 0.5, 0.95, 0.975, 0.99] {
                let q = student_t_quantile(p, df);
                assert!((student_t_cdf(q, df) - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
        // Classic value: t_{0.975, 10} = 2.2281.
        assert!((student_t_quantile(0.975, 10.0) - 2.2281).abs() < 1e-3);
    }
}
