//! Welch's unequal-variances t-test.
//!
//! §2.3 of the paper: "Significant differences are identified by using a
//! one-tailed Welch's unequal variances t-test with significance level
//! 0.02". This module reproduces exactly that test for comparing a port's
//! traffic share across RTBH events vs. non-blackholed traffic.

use crate::describe::{mean, variance};
use crate::special::student_t_cdf;

/// Outcome of a Welch t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchResult {
    /// The t statistic (positive when sample A's mean exceeds B's).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// One-tailed p-value for the alternative "mean(A) > mean(B)".
    pub p_one_tailed: f64,
}

impl WelchResult {
    /// True if the one-tailed test rejects H0 at significance `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_one_tailed < alpha
    }
}

/// Runs a one-tailed Welch's t-test for the alternative hypothesis
/// `mean(a) > mean(b)`. Both samples need at least two observations.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> WelchResult {
    assert!(a.len() >= 2 && b.len() >= 2, "need >=2 samples per group");
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    // Identical constant samples: define t = 0 (no evidence either way).
    if se2 == 0.0 {
        return WelchResult {
            t: 0.0,
            df: na + nb - 2.0,
            p_one_tailed: 0.5,
        };
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let p = 1.0 - student_t_cdf(t, df);
    WelchResult {
        t,
        df,
        p_one_tailed: p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_separated_samples_are_significant() {
        let a = [10.0, 11.0, 9.5, 10.5, 10.2, 9.8];
        let b = [1.0, 1.2, 0.9, 1.1, 1.05, 0.95];
        let r = welch_t_test(&a, &b);
        assert!(r.t > 10.0);
        assert!(r.significant_at(0.02));
        assert!(r.p_one_tailed < 1e-6);
    }

    #[test]
    fn identical_distributions_are_not_significant() {
        let a = [5.0, 5.1, 4.9, 5.05, 4.95, 5.02, 4.98, 5.0];
        let b = [5.0, 5.08, 4.92, 5.03, 4.97, 5.01, 4.99, 5.0];
        let r = welch_t_test(&a, &b);
        assert!(!r.significant_at(0.02));
        assert!(r.p_one_tailed > 0.1);
    }

    #[test]
    fn one_tailed_direction_matters() {
        let lo = [1.0, 1.1, 0.9, 1.05];
        let hi = [3.0, 3.1, 2.9, 3.05];
        // Alternative mean(lo) > mean(hi) is false: p should be ~1.
        let r = welch_t_test(&lo, &hi);
        assert!(r.p_one_tailed > 0.98);
        // And the reverse is highly significant.
        let r = welch_t_test(&hi, &lo);
        assert!(r.p_one_tailed < 0.001);
    }

    #[test]
    fn textbook_welch_example() {
        // Classic example with unequal variances (e.g. from Welch 1947
        // style data): check df lies between min(n)-1 and n1+n2-2.
        let a = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ];
        let b = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0,
            23.9,
        ];
        let r = welch_t_test(&b, &a);
        assert!(r.df > 14.0 && r.df < 28.0);
        assert!(r.t > 2.0);
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn degenerate_constant_samples() {
        let a = [2.0, 2.0, 2.0];
        let b = [2.0, 2.0, 2.0];
        let r = welch_t_test(&a, &b);
        assert_eq!(r.t, 0.0);
        assert_eq!(r.p_one_tailed, 0.5);
    }
}
