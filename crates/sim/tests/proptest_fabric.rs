//! Property tests for the multi-PoP fabric's determinism contract:
//!
//! - the PoP fan-out must be observationally identical for any worker
//!   count (the `STELLAR_TICK_WORKERS` axis) — verdicts, fabric
//!   counters, and exported obs snapshot bytes;
//! - per-port outcomes must not depend on how ports are partitioned
//!   into PoPs (the `STELLAR_POPS` axis), because filtering is
//!   egress-side;
//! - a 1-PoP fabric must be byte-indistinguishable from the bare
//!   single [`EdgeRouter`] it wraps.

use proptest::prelude::*;
use stellar_dataplane::filter::{Action, FilterRule, MatchSpec, PortMatch};
use stellar_dataplane::hardware::HardwareInfoBase;
use stellar_dataplane::port::MemberPort;
use stellar_dataplane::switch::{EdgeRouter, OfferedAggregate, PortId};
use stellar_net::addr::{IpAddress, Ipv4Address};
use stellar_net::flow::FlowKey;
use stellar_net::mac::MacAddr;
use stellar_net::proto::IpProtocol;
use stellar_sim::fabric::{Fabric, PopId};

const TICK_US: u64 = 1_000_000;

fn arb_spec() -> impl Strategy<Value = MatchSpec> {
    (
        proptest::option::of(prop_oneof![Just(IpProtocol::UDP), Just(IpProtocol::TCP)]),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(|(proto, sp)| MatchSpec {
            protocol: proto,
            src_port: sp.map(PortMatch::Exact),
            ..Default::default()
        })
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Drop),
        Just(Action::Forward),
        (1_000_000u64..1_000_000_000).prop_map(|r| Action::Shape { rate_bps: r }),
    ]
}

/// One port's rules: `(spec, action, priority)`.
type RuleGen = Vec<(MatchSpec, Action, u16)>;
/// One tick's offers: `(src port index, dst port index, l4 src port,
/// bytes, udp)` — src drawn from the member ports so cross-PoP and
/// local paths both occur, plus some external (unknown-MAC) sources.
type OfferGen = Vec<(usize, usize, u16, u64, bool)>;

fn arb_topology() -> impl Strategy<Value = (Vec<RuleGen>, Vec<OfferGen>)> {
    let rules = proptest::collection::vec(
        proptest::collection::vec((arb_spec(), arb_action(), any::<u16>()), 0..4),
        2..18,
    );
    let ticks = proptest::collection::vec(
        proptest::collection::vec(
            (
                0usize..32,
                0usize..18,
                any::<u16>(),
                1u64..50_000_000,
                any::<bool>(),
            ),
            0..24,
        ),
        1..4,
    );
    (rules, ticks)
}

fn port_rules_to_filter(p: usize, rules: &RuleGen) -> Vec<FilterRule> {
    rules
        .iter()
        .enumerate()
        .map(|(i, (spec, action, prio))| {
            FilterRule::new((p * 8 + i) as u64 + 1, spec.clone(), *action, *prio)
        })
        .collect()
}

fn build_fabric(port_rules: &[RuleGen], pops: usize) -> Fabric {
    let mut fabric = Fabric::new(HardwareInfoBase::lab_switch(), pops);
    for (p, rules) in port_rules.iter().enumerate() {
        let asn = 64500 + p as u32;
        let pid = PortId(p as u32 + 1);
        fabric.add_port(
            PopId((p % pops) as u16),
            pid,
            MemberPort::new(asn, MacAddr::for_member(asn, 1), 100_000_000),
        );
        let port = fabric.port_mut(pid).expect("port just added");
        for rule in port_rules_to_filter(p, rules) {
            port.policy.install(rule);
        }
    }
    fabric
}

fn build_router(port_rules: &[RuleGen]) -> EdgeRouter {
    let mut er = EdgeRouter::new(HardwareInfoBase::lab_switch());
    for (p, rules) in port_rules.iter().enumerate() {
        let asn = 64500 + p as u32;
        let pid = PortId(p as u32 + 1);
        er.add_port(
            pid,
            MemberPort::new(asn, MacAddr::for_member(asn, 1), 100_000_000),
        );
        let port = er.port_mut(pid).expect("port just added");
        for rule in port_rules_to_filter(p, rules) {
            port.policy.install(rule);
        }
    }
    er
}

fn offers_for_tick(n_ports: usize, tick: &OfferGen) -> Vec<OfferedAggregate> {
    tick.iter()
        .map(|&(src, dst, sp, bytes, udp)| {
            let dst = dst % n_ports;
            let dst_asn = 64500 + dst as u32;
            // src index past the member range -> an external source MAC
            // the fabric cannot attribute to any PoP.
            let src_mac = if src < n_ports {
                MacAddr::for_member(64500 + src as u32, 1)
            } else {
                MacAddr::for_member(65000 + src as u32, 1)
            };
            OfferedAggregate {
                key: FlowKey {
                    src_mac,
                    dst_mac: MacAddr::for_member(dst_asn, 1),
                    src_ip: IpAddress::V4(Ipv4Address::new(198, 51, 100, src as u8)),
                    dst_ip: IpAddress::V4(Ipv4Address::new(100, 0, dst as u8, 10)),
                    protocol: if udp {
                        IpProtocol::UDP
                    } else {
                        IpProtocol::TCP
                    },
                    src_port: sp,
                    dst_port: 40000,
                    ..FlowKey::default()
                },
                bytes,
                packets: bytes / 1000 + 1,
            }
        })
        .collect()
}

fn obs_bytes_fabric(fabric: &Fabric) -> String {
    let mut reg = stellar_obs::MetricsRegistry::default();
    fabric.observe(&mut reg);
    serde_json::to_string(&reg.to_content()).expect("serialize registry")
}

fn obs_bytes_router(er: &EdgeRouter) -> String {
    let mut reg = stellar_obs::MetricsRegistry::default();
    er.observe(&mut reg);
    serde_json::to_string(&reg.to_content()).expect("serialize registry")
}

/// Per-port cumulative counters, sorted by port id — the
/// partition-independence witness.
fn fingerprint(fabric: &Fabric) -> Vec<(u32, stellar_dataplane::counters::PortCounters)> {
    fabric
        .ports()
        .map(|(pid, port)| (pid.0, port.counters))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The worker axis: for each PoP count, every worker count yields
    /// the same verdicts, fabric counters, and obs snapshot bytes as
    /// the single-worker run.
    #[test]
    fn fabric_is_deterministic_across_workers_and_pops(topo in arb_topology()) {
        let (port_rules, ticks) = topo;
        let n_ports = port_rules.len();
        for pops in [1usize, 4, 16] {
            let mut base = build_fabric(&port_rules, pops);
            base.set_tick_workers(1);
            let mut base_results = Vec::new();
            for (t, tick) in ticks.iter().enumerate() {
                let offers = offers_for_tick(n_ports, tick);
                base_results.push(base.process_tick(&offers, (t as u64 + 1) * TICK_US, TICK_US));
            }
            let base_obs = obs_bytes_fabric(&base);
            for workers in [2usize, 4] {
                let mut fab = build_fabric(&port_rules, pops);
                fab.set_tick_workers(workers);
                // Defeat the adaptive cutoff: these topologies sit far
                // below the default threshold and the property under
                // test is the parallel fan-out itself.
                fab.set_parallel_min_work(0);
                for (t, tick) in ticks.iter().enumerate() {
                    let offers = offers_for_tick(n_ports, tick);
                    let r = fab.process_tick(&offers, (t as u64 + 1) * TICK_US, TICK_US);
                    prop_assert_eq!(&r, &base_results[t]);
                }
                prop_assert_eq!(fab.counters(), base.counters());
                prop_assert_eq!(obs_bytes_fabric(&fab), base_obs.clone());
            }
        }
    }

    /// The PoP axis: per-port verdicts and cumulative counters are
    /// independent of how ports are sharded into PoPs, because rules
    /// filter at egress only.
    #[test]
    fn port_outcomes_are_partition_independent(topo in arb_topology()) {
        let (port_rules, ticks) = topo;
        let n_ports = port_rules.len();
        let mut fabrics: Vec<Fabric> = [1usize, 4, 16]
            .iter()
            .map(|&pops| {
                let mut f = build_fabric(&port_rules, pops);
                f.set_tick_workers(1);
                f
            })
            .collect();
        for (t, tick) in ticks.iter().enumerate() {
            let offers = offers_for_tick(n_ports, tick);
            let end_us = (t as u64 + 1) * TICK_US;
            let mut results = fabrics
                .iter_mut()
                .map(|f| f.process_tick(&offers, end_us, TICK_US));
            let first = results.next().expect("three fabrics");
            for r in results {
                prop_assert_eq!(&r, &first);
            }
        }
        let fp = fingerprint(&fabrics[0]);
        for f in &fabrics[1..] {
            prop_assert_eq!(&fingerprint(f), &fp);
        }
        // Byte totals are conserved across partitions: only the
        // local/cross-PoP split moves, their sum does not.
        let sum = |f: &Fabric| {
            let c = f.counters();
            (c.local_bytes + c.cross_pop_bytes, c.external_bytes, c.unroutable_bytes)
        };
        let s = sum(&fabrics[0]);
        for f in &fabrics[1..] {
            prop_assert_eq!(sum(f), s);
        }
    }

    /// A 1-PoP fabric is the single router: same verdicts and the
    /// exact same exported snapshot bytes (the fabric delegates its
    /// observe to the lone PoP rather than renaming anything).
    #[test]
    fn one_pop_fabric_matches_bare_router(topo in arb_topology()) {
        let (port_rules, ticks) = topo;
        let n_ports = port_rules.len();
        let mut fab = build_fabric(&port_rules, 1);
        fab.set_tick_workers(1);
        let mut er = build_router(&port_rules);
        er.set_tick_workers(1);
        for (t, tick) in ticks.iter().enumerate() {
            let offers = offers_for_tick(n_ports, tick);
            let end_us = (t as u64 + 1) * TICK_US;
            let rf = fab.process_tick(&offers, end_us, TICK_US);
            let rr = er.process_tick(&offers, end_us, TICK_US);
            prop_assert_eq!(&rf, &rr);
        }
        prop_assert_eq!(fab.rule_ledger(), er.rule_ledger());
        prop_assert_eq!(obs_bytes_fabric(&fab), obs_bytes_router(&er));
    }
}
