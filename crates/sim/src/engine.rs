//! A deterministic discrete-event scheduler.
//!
//! Events are `FnOnce(&mut S, &mut Scheduler)` closures over the
//! experiment state `S`; handlers schedule follow-up events through the
//! [`Scheduler`] handle. Ties at the same timestamp run in scheduling
//! order (a strictly increasing sequence number breaks them), so runs are
//! reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type Handler<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    handler: Handler<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Handle through which event handlers schedule more events.
pub struct Scheduler<S> {
    now: SimTime,
    pending: Vec<(SimTime, Handler<S>)>,
}

impl<S> Scheduler<S> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `handler` to run at absolute time `at` (clamped to now).
    pub fn at(&mut self, at: SimTime, handler: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static) {
        self.pending.push((at.max(self.now), Box::new(handler)));
    }

    /// Schedules `handler` to run `delay` after now.
    pub fn after(
        &mut self,
        delay: SimTime,
        handler: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    ) {
        self.at(self.now + delay, handler);
    }
}

/// The discrete-event engine.
pub struct Engine<S> {
    queue: BinaryHeap<Reverse<Scheduled<S>>>,
    now: SimTime,
    seq: u64,
    executed: u64,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            executed: 0,
        }
    }
}

impl<S> Engine<S> {
    /// Creates an empty engine at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at absolute time `at`.
    pub fn schedule(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    ) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            handler: Box::new(handler),
        }));
    }

    /// Runs until the queue is empty or `until` is reached. Returns the
    /// number of events executed.
    pub fn run(&mut self, state: &mut S, until: SimTime) -> usize {
        let mut executed = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > until {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.at;
            let mut sched = Scheduler {
                now: self.now,
                pending: Vec::new(),
            };
            (ev.handler)(state, &mut sched);
            for (at, h) in sched.pending {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Reverse(Scheduled {
                    at,
                    seq,
                    handler: h,
                }));
            }
            executed += 1;
        }
        self.now = self.now.max(until.min(self.now.max(until)));
        self.executed += executed as u64;
        executed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events executed over the engine's lifetime (across `run` calls).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Publishes the engine gauges: lifetime event count, pending queue
    /// depth, and the simulation clock.
    pub fn observe(&self, reg: &mut stellar_obs::MetricsRegistry) {
        reg.counter_set("sim.engine.executed", self.executed);
        reg.gauge_set("sim.engine.pending", self.queue.len() as i64);
        reg.gauge_set("sim.engine.now_us", self.now as i64);
    }
}

/// Schedules `f` to run at `at` and then every `every` units until it
/// returns `false`. The recurrence is expressed through boxed `FnOnce`
/// re-scheduling, so it composes with the engine's deterministic
/// tie-breaking like any other event. This is the idiom for periodic
/// control-plane work — queue pumping, reconciliation sweeps — in
/// fault-scenario experiments.
pub fn schedule_repeating<S: 'static>(
    engine: &mut Engine<S>,
    at: SimTime,
    every: SimTime,
    f: impl FnMut(&mut S, SimTime) -> bool + 'static,
) {
    assert!(every > 0, "period must be positive");
    type RepeatFn<S> = Box<dyn FnMut(&mut S, SimTime) -> bool>;
    fn tick<S: 'static>(mut f: RepeatFn<S>, every: SimTime) -> Handler<S> {
        Box::new(move |state, sched| {
            if f(state, sched.now()) {
                sched.after(every, tick(f, every));
            }
        })
    }
    let handler = tick(Box::new(f), every);
    engine.schedule(at, handler);
}

/// Drives a fixed-tick loop from `start` to `end` (exclusive of the final
/// partial tick): calls `f(tick_start, tick_end, state)` for every tick.
/// This is the pattern the traffic experiments use.
pub fn run_ticks<S>(
    state: &mut S,
    start: SimTime,
    end: SimTime,
    tick: SimTime,
    mut f: impl FnMut(&mut S, SimTime, SimTime),
) {
    assert!(tick > 0, "tick must be positive");
    let mut t = start;
    while t < end {
        let t1 = (t + tick).min(end);
        f(state, t, t1);
        t = t1;
    }
}

/// [`run_ticks`] with wall-clock instrumentation for benchmark
/// harnesses: returns `(ticks executed, elapsed wall time)`. The wall
/// clock never touches the simulation — tick boundaries, state, and any
/// exported metrics stay byte-identical to a plain [`run_ticks`] run —
/// so `scale_sweep` can time the same loop the experiments drive
/// without forking the driver.
pub fn run_ticks_timed<S>(
    state: &mut S,
    start: SimTime,
    end: SimTime,
    tick: SimTime,
    mut f: impl FnMut(&mut S, SimTime, SimTime),
) -> (u64, std::time::Duration) {
    let mut ticks = 0u64;
    let t0 = std::time::Instant::now();
    run_ticks(state, start, end, tick, |s, a, b| {
        f(s, a, b);
        ticks += 1;
    });
    (ticks, t0.elapsed())
}

/// [`run_ticks`] with tick timing recorded into `reg`: each tick's
/// sim-time duration feeds the `sim.tick_us` histogram and bumps the
/// `sim.ticks` counter. Durations are simulation time, not wall clock —
/// the final partial tick is the only one that differs from `tick`, and
/// the record is identical across identically-parameterized runs.
pub fn run_ticks_observed<S>(
    state: &mut S,
    start: SimTime,
    end: SimTime,
    tick: SimTime,
    reg: &mut stellar_obs::MetricsRegistry,
    mut f: impl FnMut(&mut S, SimTime, SimTime),
) {
    run_ticks(state, start, end, tick, |s, t0, t1| {
        f(s, t0, t1);
        reg.observe("sim.tick_us", t1 - t0);
        reg.counter_inc("sim.ticks");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule(20, |s: &mut Vec<&str>, _| s.push("b"));
        eng.schedule(10, |s, _| s.push("a"));
        eng.schedule(20, |s, _| s.push("c"));
        let n = eng.run(&mut log, 100);
        assert_eq!(n, 3);
        assert_eq!(log, vec!["a", "b", "c"]);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        fn recurse(s: &mut Vec<u64>, sched: &mut Scheduler<Vec<u64>>) {
            s.push(sched.now());
            if sched.now() < 50 {
                sched.after(10, recurse);
            }
        }
        eng.schedule(10, recurse);
        eng.run(&mut log, 1000);
        assert_eq!(log, vec![10, 20, 30, 40, 50]);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn run_stops_at_until_and_resumes() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for t in [5u64, 15, 25] {
            eng.schedule(t, move |s: &mut Vec<u64>, _| s.push(t));
        }
        eng.run(&mut log, 20);
        assert_eq!(log, vec![5, 15]);
        assert_eq!(eng.pending(), 1);
        eng.run(&mut log, 30);
        assert_eq!(log, vec![5, 15, 25]);
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule(50, |s: &mut Vec<u64>, sched| {
            s.push(sched.now());
            // "Yesterday" clamps to now.
            sched.at(1, |s, sched| s.push(sched.now()));
        });
        eng.run(&mut log, 100);
        assert_eq!(log, vec![50, 50]);
    }

    #[test]
    fn repeating_events_run_until_cancelled() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        schedule_repeating(&mut eng, 10, 20, |s, now| {
            s.push(now);
            now < 70
        });
        eng.run(&mut log, 1_000);
        assert_eq!(log, vec![10, 30, 50, 70]);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn repeating_events_interleave_deterministically() {
        let mut eng: Engine<Vec<(u64, &'static str)>> = Engine::new();
        let mut log = Vec::new();
        schedule_repeating(&mut eng, 0, 10, |s, now| {
            s.push((now, "a"));
            now < 20
        });
        schedule_repeating(&mut eng, 0, 10, |s, now| {
            s.push((now, "b"));
            now < 20
        });
        eng.run(&mut log, 100);
        // Ties break in scheduling order on every recurrence.
        assert_eq!(
            log,
            vec![
                (0, "a"),
                (0, "b"),
                (10, "a"),
                (10, "b"),
                (20, "a"),
                (20, "b")
            ]
        );
    }

    #[test]
    fn timed_tick_driver_counts_ticks_and_mutates_state() {
        let mut n = 0u64;
        let (ticks, _wall) = run_ticks_timed(&mut n, 0, 1_000, 250, |s, _, _| *s += 1);
        assert_eq!(ticks, 4);
        assert_eq!(n, 4);
    }

    #[test]
    fn tick_driver_covers_range_exactly() {
        let mut spans: Vec<(u64, u64)> = Vec::new();
        run_ticks(&mut spans, 0, 1_050, 250, |s, a, b| s.push((a, b)));
        assert_eq!(
            spans,
            vec![(0, 250), (250, 500), (500, 750), (750, 1000), (1000, 1050)]
        );
    }
}
