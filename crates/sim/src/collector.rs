//! IPFIX-like flow collection and the time-series / distribution queries
//! the paper's measurement study runs over it (§2.3).

use crate::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use stellar_net::flow::{FlowKey, FlowRecord};
use stellar_net::ports;

/// A regular time series of per-bucket values.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Start of the first bucket.
    pub start_us: SimTime,
    /// Bucket width.
    pub bucket_us: SimTime,
    /// One value per bucket.
    pub values: Vec<f64>,
}

impl TimeSeries {
    /// `(t_seconds, value)` pairs with `t` at bucket centers.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let t = self.start_us + self.bucket_us * i as u64 + self.bucket_us / 2;
                (t as f64 / 1e6, *v)
            })
            .collect()
    }

    /// Maximum value (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean over buckets within `[from_s, to_s)` of the series.
    pub fn mean_between(&self, from_s: f64, to_s: f64) -> f64 {
        let vals: Vec<f64> = self
            .points()
            .into_iter()
            .filter(|(t, _)| *t >= from_s && *t < to_s)
            .map(|(_, v)| v)
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// The "characteristic" port of a flow for distribution plots: the
/// well-known service port if either end uses one, else the lower port
/// (the convention flow-analysis pipelines use so client-side ephemeral
/// ports do not dominate).
pub fn characteristic_port(key: &FlowKey) -> u16 {
    let well_known = |p: u16| {
        p < 1024 || ports::is_amplification_prone(p) || p == ports::HTTP_ALT || p == ports::RTMP
    };
    match (well_known(key.src_port), well_known(key.dst_port)) {
        (true, _) => key.src_port,
        (false, true) => key.dst_port,
        (false, false) => key.src_port.min(key.dst_port),
    }
}

/// Collects flow records and answers the study's queries.
///
/// Real IXP flow export is *sampled* (IPFIX/sFlow at 1-in-N packets);
/// a sampling rate can be configured, in which case observations are
/// thinned deterministically and scaled back up by N — the estimator
/// production collectors use. Rates and shares stay unbiased; rare flows
/// may vanish, exactly as in real exports.
#[derive(Debug, Default)]
pub struct FlowCollector {
    records: Vec<FlowRecord>,
    /// 1-in-N packet sampling; 0 or 1 = unsampled.
    sample_n: u64,
    /// Deterministic sampling phase accumulator per flow key hash.
    seed: u64,
}

impl FlowCollector {
    /// An empty, unsampled collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A collector sampling 1-in-`n` packets (deterministic, seeded).
    pub fn with_sampling(n: u64, seed: u64) -> Self {
        FlowCollector {
            records: Vec::new(),
            sample_n: n,
            seed,
        }
    }

    fn hash(&self, key: &FlowKey, start_us: SimTime) -> u64 {
        // SplitMix64 over the key's identifying fields.
        let mut z = self.seed
            ^ u64::from_le_bytes({
                let o = key.src_mac.octets();
                [
                    o[0],
                    o[1],
                    o[2],
                    o[3],
                    o[4],
                    o[5],
                    key.src_port as u8,
                    (key.src_port >> 8) as u8,
                ]
            })
            ^ start_us.rotate_left(17)
            ^ (u64::from(key.dst_port) << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Records one aggregate observation, applying packet sampling if
    /// configured.
    pub fn record(
        &mut self,
        key: FlowKey,
        start_us: SimTime,
        end_us: SimTime,
        bytes: u64,
        packets: u64,
    ) {
        let (bytes, packets) = if self.sample_n > 1 {
            // Expected sampled packets; use a deterministic Bernoulli
            // remainder so small flows are kept or dropped whole.
            let n = self.sample_n;
            let kept = packets / n;
            let remainder = packets % n;
            let extra = if remainder > 0 && self.hash(&key, start_us) % n < remainder {
                1
            } else {
                0
            };
            let kept = kept + extra;
            if kept == 0 {
                return; // flow invisible to the sampled export
            }
            // Scale back up by N (the standard sampled-flow estimator).
            let mean_pkt = bytes / packets.max(1);
            (kept * n * mean_pkt, kept * n)
        } else {
            (bytes, packets)
        };
        self.records.push(FlowRecord {
            key,
            start_us,
            end_us,
            bytes,
            packets,
        });
    }

    /// All records.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rate time series (bits/second per bucket) over records accepted by
    /// `filter`. Records are attributed to the bucket of their start time
    /// (records are generated per-tick, so they never span buckets when
    /// `bucket_us` is a multiple of the tick).
    pub fn rate_series(
        &self,
        start_us: SimTime,
        end_us: SimTime,
        bucket_us: SimTime,
        mut filter: impl FnMut(&FlowRecord) -> bool,
    ) -> TimeSeries {
        assert!(bucket_us > 0 && end_us > start_us);
        let n = ((end_us - start_us).div_ceil(bucket_us)) as usize;
        let mut bytes = vec![0u64; n];
        for r in &self.records {
            if r.start_us < start_us || r.start_us >= end_us || !filter(r) {
                continue;
            }
            let idx = ((r.start_us - start_us) / bucket_us) as usize;
            bytes[idx] += r.bytes;
        }
        TimeSeries {
            start_us,
            bucket_us,
            values: bytes
                .into_iter()
                .map(|b| b as f64 * 8.0 / (bucket_us as f64 / 1e6))
                .collect(),
        }
    }

    /// Byte share by characteristic port over records accepted by
    /// `filter`, normalized to 1.0. Ports below `min_share` are folded
    /// into `u16::MAX` ("others").
    pub fn port_shares(
        &self,
        mut filter: impl FnMut(&FlowRecord) -> bool,
        min_share: f64,
    ) -> BTreeMap<u16, f64> {
        let mut by_port: BTreeMap<u16, u64> = BTreeMap::new();
        let mut total = 0u64;
        for r in &self.records {
            if !filter(r) {
                continue;
            }
            *by_port.entry(characteristic_port(&r.key)).or_insert(0) += r.bytes;
            total += r.bytes;
        }
        let mut out = BTreeMap::new();
        if total == 0 {
            return out;
        }
        let mut others = 0.0;
        for (port, b) in by_port {
            let share = b as f64 / total as f64;
            if share >= min_share {
                out.insert(port, share);
            } else {
                others += share;
            }
        }
        if others > 0.0 {
            out.insert(u16::MAX, others);
        }
        out
    }

    /// Per-bucket count of distinct source member MACs ("#peers" in
    /// Figs. 3c/10c) over records accepted by `filter`.
    pub fn peer_count_series(
        &self,
        start_us: SimTime,
        end_us: SimTime,
        bucket_us: SimTime,
        mut filter: impl FnMut(&FlowRecord) -> bool,
    ) -> TimeSeries {
        assert!(bucket_us > 0 && end_us > start_us);
        let n = ((end_us - start_us).div_ceil(bucket_us)) as usize;
        let mut sets: Vec<BTreeSet<[u8; 6]>> = vec![BTreeSet::new(); n];
        for r in &self.records {
            if r.start_us < start_us || r.start_us >= end_us || r.bytes == 0 || !filter(r) {
                continue;
            }
            let idx = ((r.start_us - start_us) / bucket_us) as usize;
            sets[idx].insert(r.key.src_mac.octets());
        }
        TimeSeries {
            start_us,
            bucket_us,
            values: sets.into_iter().map(|s| s.len() as f64).collect(),
        }
    }

    /// Fraction of bytes (over `filter`ed records) whose transport
    /// protocol is `proto` — the UDP-vs-TCP split of §2.3.
    pub fn protocol_share(
        &self,
        proto: stellar_net::proto::IpProtocol,
        mut filter: impl FnMut(&FlowRecord) -> bool,
    ) -> f64 {
        let mut hit = 0u64;
        let mut total = 0u64;
        for r in &self.records {
            if !filter(r) {
                continue;
            }
            total += r.bytes;
            if r.key.protocol == proto {
                hit += r.bytes;
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::mac::MacAddr;
    use stellar_net::proto::IpProtocol;

    fn key(src_member: u32, src_port: u16, dst_port: u16, proto: IpProtocol) -> FlowKey {
        FlowKey {
            src_mac: MacAddr::for_member(src_member, 1),
            dst_mac: MacAddr::for_member(64500, 1),
            src_ip: IpAddress::V4(Ipv4Address::new(203, 0, 113, 1)),
            dst_ip: IpAddress::V4(Ipv4Address::new(100, 10, 10, 10)),
            protocol: proto,
            src_port,
            dst_port,
            ..FlowKey::default()
        }
    }

    #[test]
    fn characteristic_port_prefers_service_side() {
        // Client → server: dst is the service port.
        assert_eq!(
            characteristic_port(&key(1, 51000, 443, IpProtocol::TCP)),
            443
        );
        // Amplification response: src is the service port.
        assert_eq!(
            characteristic_port(&key(1, 11211, 47000, IpProtocol::UDP)),
            11211
        );
        // Both well-known: src wins (responses dominate by bytes).
        assert_eq!(characteristic_port(&key(1, 123, 80, IpProtocol::UDP)), 123);
        // Neither: lower port.
        assert_eq!(
            characteristic_port(&key(1, 40000, 39999, IpProtocol::UDP)),
            39999
        );
    }

    #[test]
    fn rate_series_buckets_bytes() {
        let mut c = FlowCollector::new();
        // 1 MB in bucket 0, 2 MB in bucket 1 (1-second buckets).
        c.record(
            key(1, 123, 40000, IpProtocol::UDP),
            0,
            500_000,
            1_000_000,
            100,
        );
        c.record(
            key(1, 123, 40000, IpProtocol::UDP),
            1_200_000,
            1_500_000,
            2_000_000,
            100,
        );
        let s = c.rate_series(0, 2_000_000, 1_000_000, |_| true);
        assert_eq!(s.values.len(), 2);
        assert!((s.values[0] - 8e6).abs() < 1.0);
        assert!((s.values[1] - 16e6).abs() < 1.0);
        assert!((s.max() - 16e6).abs() < 1.0);
        let pts = s.points();
        assert!((pts[0].0 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn port_shares_normalize_and_fold_small() {
        let mut c = FlowCollector::new();
        c.record(key(1, 11211, 40000, IpProtocol::UDP), 0, 1, 900, 1);
        c.record(key(1, 51000, 443, IpProtocol::TCP), 0, 1, 90, 1);
        c.record(key(1, 51000, 8080, IpProtocol::TCP), 0, 1, 10, 1);
        let shares = c.port_shares(|_| true, 0.05);
        assert!((shares[&11211] - 0.9).abs() < 1e-9);
        assert!((shares[&443] - 0.09).abs() < 1e-9);
        assert!((shares[&u16::MAX] - 0.01).abs() < 1e-9);
        let total: f64 = shares.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn peer_counts_are_distinct_per_bucket() {
        let mut c = FlowCollector::new();
        for m in 0..5u32 {
            c.record(key(m, 123, 40000, IpProtocol::UDP), 0, 1, 100, 1);
            // Same members again in the same bucket: still 5 distinct.
            c.record(key(m, 123, 40000, IpProtocol::UDP), 100, 101, 100, 1);
        }
        c.record(
            key(0, 123, 40000, IpProtocol::UDP),
            1_000_000,
            1_000_001,
            100,
            1,
        );
        let s = c.peer_count_series(0, 2_000_000, 1_000_000, |_| true);
        assert_eq!(s.values, vec![5.0, 1.0]);
    }

    #[test]
    fn protocol_share_splits_udp_tcp() {
        let mut c = FlowCollector::new();
        c.record(key(1, 123, 4000, IpProtocol::UDP), 0, 1, 999, 1);
        c.record(key(1, 51000, 443, IpProtocol::TCP), 0, 1, 1, 1);
        assert!((c.protocol_share(IpProtocol::UDP, |_| true) - 0.999).abs() < 1e-9);
        assert!((c.protocol_share(IpProtocol::TCP, |_| true) - 0.001).abs() < 1e-9);
        assert_eq!(c.protocol_share(IpProtocol::ICMP, |_| true), 0.0);
    }

    #[test]
    fn sampling_is_unbiased_for_large_flows_and_thins_small_ones() {
        // A large flow: the scaled estimate stays within a few percent.
        let mut c = FlowCollector::with_sampling(100, 7);
        for t in 0..100u64 {
            c.record(
                key(1, 123, 40000, IpProtocol::UDP),
                t * 1_000_000,
                t * 1_000_000 + 1,
                1_000_000, // 1000 packets of 1000B per tick
                1000,
            );
        }
        let est: u64 = c.records().iter().map(|r| r.bytes).sum();
        let truth = 100_000_000u64;
        let err = (est as f64 - truth as f64).abs() / truth as f64;
        assert!(err < 0.05, "estimate off by {err}");

        // A tiny flow (1 packet) usually vanishes under 1-in-100 sampling.
        let mut c = FlowCollector::with_sampling(100, 7);
        let mut seen = 0;
        for t in 0..100u64 {
            c.record(key(2, 53, 4000, IpProtocol::UDP), t, t + 1, 100, 1);
            seen = c.len();
        }
        assert!(seen < 15, "tiny flow sampled {seen}/100 times");
        // And unsampled collectors keep everything.
        let mut c = FlowCollector::new();
        c.record(key(2, 53, 4000, IpProtocol::UDP), 0, 1, 100, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.records()[0].bytes, 100);
    }

    #[test]
    fn mean_between_selects_window() {
        let s = TimeSeries {
            start_us: 0,
            bucket_us: 1_000_000,
            values: vec![10.0, 20.0, 30.0, 40.0],
        };
        // Buckets centered at 0.5, 1.5, 2.5, 3.5 s.
        assert!((s.mean_between(1.0, 3.0) - 25.0).abs() < 1e-9);
        assert!(s.mean_between(10.0, 20.0).is_nan());
    }
}
