//! IXP topology assembly: members, route server, edge fabric.

use crate::fabric::{Fabric, PopId};
use crate::honoring::HonoringModel;
use std::collections::BTreeMap;
use stellar_bgp::attr::{AsPath, PathAttribute};
use stellar_bgp::types::Asn;
use stellar_bgp::update::UpdateMessage;
use stellar_dataplane::hardware::HardwareInfoBase;
use stellar_dataplane::port::MemberPort;
use stellar_dataplane::switch::PortId;
use stellar_net::addr::Ipv4Address;
use stellar_net::mac::MacAddr;
use stellar_net::prefix::{Ipv4Prefix, Prefix};
use stellar_routeserver::irr::IrrDb;
use stellar_routeserver::policy::ImportPolicy;
use stellar_routeserver::rpki::RpkiTable;
use stellar_routeserver::server::{RouteServer, RouteServerConfig};

/// Specification of one IXP member for topology building.
#[derive(Debug, Clone)]
pub struct MemberSpec {
    /// The member's AS number.
    pub asn: u32,
    /// Port capacity in bits/second.
    pub capacity_bps: u64,
    /// Prefixes the member owns (registered in the IRR automatically).
    pub prefixes: Vec<Prefix>,
}

impl MemberSpec {
    /// A member with a single /24 derived from its index and a 10 Gbps
    /// port — the bulk population for large topologies. Prefixes are
    /// drawn from 131–190/8, clear of every bogon range (100.64/10 CGN,
    /// RFC 1918, multicast) and of the scenarios' victim space in 100/8.
    pub fn generic(asn: u32, index: u32) -> Self {
        let a = 131 + (index / 200) % 60;
        let b = index % 200;
        let prefix = Ipv4Prefix::new(Ipv4Address::new(a as u8, b as u8, 0, 0), 24)
            .expect("generated prefix is valid");
        MemberSpec {
            asn,
            capacity_bps: 10_000_000_000,
            prefixes: vec![Prefix::V4(prefix)],
        }
    }
}

/// Runtime info about one member.
#[derive(Debug, Clone)]
pub struct MemberInfo {
    /// The member's router MAC on the peering LAN.
    pub mac: MacAddr,
    /// The ER port the member connects to.
    pub port: PortId,
    /// The member's router IP on the peering LAN (BGP next hop).
    pub peering_ip: Ipv4Address,
    /// Owned prefixes.
    pub prefixes: Vec<Prefix>,
}

/// Number of PoPs topologies build with: `STELLAR_POPS` when set (and at
/// least 1), else 1 — the legacy single-router shape.
pub fn pops_from_env() -> usize {
    std::env::var("STELLAR_POPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// An assembled IXP.
pub struct IxpTopology {
    /// The switching platform: a fabric of one or more edge routers.
    pub fabric: Fabric,
    /// The route server.
    pub route_server: RouteServer,
    /// Members by ASN.
    pub members: BTreeMap<Asn, MemberInfo>,
    /// RTBH compliance model.
    pub honoring: HonoringModel,
}

impl IxpTopology {
    /// Builds an IXP with [`pops_from_env`] PoPs: one port per member
    /// (round-robined over PoPs), a route server with every member's
    /// prefixes IRR-registered, and the paper's honoring model.
    pub fn build(specs: &[MemberSpec], hib: HardwareInfoBase) -> Self {
        Self::build_with_pops(specs, hib, pops_from_env())
    }

    /// Builds an IXP across `pops` PoPs. Member `i` lands on PoP
    /// `i % pops`, so every PoP carries an even share of the membership;
    /// with `pops == 1` this is exactly the legacy single-router
    /// topology.
    pub fn build_with_pops(specs: &[MemberSpec], hib: HardwareInfoBase, pops: usize) -> Self {
        let pops = pops.max(1);
        let mut fabric = Fabric::new(hib, pops);
        let rs_config = RouteServerConfig::l_ixp();
        let mut irr = IrrDb::new();
        let mut members = BTreeMap::new();
        for (i, spec) in specs.iter().enumerate() {
            let asn = Asn(spec.asn);
            let mac = MacAddr::for_member(spec.asn, 1);
            let port = PortId(i as u32 + 1);
            let peering_ip = Ipv4Address::new(80, 81, (192 + i / 250) as u8, (i % 250 + 1) as u8);
            fabric.add_port(
                PopId((i % pops) as u16),
                port,
                MemberPort::new(spec.asn, mac, spec.capacity_bps),
            );
            for p in &spec.prefixes {
                irr.register(*p, asn);
            }
            members.insert(
                asn,
                MemberInfo {
                    mac,
                    port,
                    peering_ip,
                    prefixes: spec.prefixes.clone(),
                },
            );
        }
        let mut route_server =
            RouteServer::new(rs_config, ImportPolicy::new(irr, RpkiTable::new()));
        for (asn, info) in &members {
            route_server.add_peer(*asn, info.peering_ip);
        }
        IxpTopology {
            fabric,
            route_server,
            members,
            honoring: HonoringModel::paper(),
        }
    }

    /// The member owning `asn`.
    pub fn member(&self, asn: Asn) -> Option<&MemberInfo> {
        self.members.get(&asn)
    }

    /// Builds the standard announcement a member sends the route server
    /// for one of its prefixes. IPv6 prefixes are announced via
    /// MP_REACH_NLRI (RFC 4760).
    pub fn announcement(&self, asn: Asn, prefix: Prefix) -> UpdateMessage {
        let info = self.members.get(&asn).expect("member exists");
        match prefix {
            Prefix::V4(_) => UpdateMessage::announce(
                prefix,
                info.peering_ip,
                PathAttribute::AsPath(AsPath::sequence([asn.0])),
            ),
            Prefix::V6(_) => {
                // Synthesize a stable v6 peering address from the v4 one.
                let o = info.peering_ip.octets();
                let nh: stellar_net::addr::Ipv6Address =
                    format!("2001:7f8:0:1::{:x}:{:x}", u16::from(o[2]), u16::from(o[3]))
                        .parse()
                        .expect("synthesized address parses");
                UpdateMessage {
                    withdrawn: vec![],
                    attrs: vec![
                        stellar_bgp::attr::PathAttribute::Origin(stellar_bgp::types::Origin::Igp),
                        PathAttribute::AsPath(AsPath::sequence([asn.0])),
                        stellar_bgp::attr::PathAttribute::MpReach {
                            afi: stellar_bgp::types::Afi::Ipv6,
                            safi: stellar_bgp::types::Safi::Unicast,
                            next_hop: stellar_net::addr::IpAddress::V6(nh),
                            nlri: vec![stellar_bgp::nlri::Nlri::plain(prefix)],
                        },
                    ],
                    nlri: vec![],
                }
            }
        }
    }

    /// Announces every member's prefixes to the route server (topology
    /// bring-up). Returns the number of accepted announcements.
    pub fn announce_all(&mut self, now_us: u64) -> usize {
        let mut accepted = 0;
        let announcements: Vec<(Asn, UpdateMessage)> = self
            .members
            .iter()
            .flat_map(|(asn, info)| {
                info.prefixes
                    .iter()
                    .map(|p| (*asn, self.announcement(*asn, *p)))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (asn, u) in announcements {
            let out = self.route_server.handle_update(asn, &u, now_us);
            if out.rejections.is_empty() {
                accepted += 1;
            }
        }
        accepted
    }

    /// Members (other than `except`) that honor RTBH signals.
    pub fn honoring_members(&self, except: Asn) -> Vec<Asn> {
        self.members
            .keys()
            .filter(|a| **a != except && self.honoring.honors(**a))
            .copied()
            .collect()
    }
}

/// Builds `n` generic member specs with ASNs starting at `base_asn`.
pub fn generic_members(base_asn: u32, n: usize) -> Vec<MemberSpec> {
    (0..n)
        .map(|i| MemberSpec::generic(base_asn + i as u32, i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_wires_members_ports_and_ribs() {
        let specs = generic_members(64500, 10);
        let mut ixp = IxpTopology::build(&specs, HardwareInfoBase::lab_switch());
        assert_eq!(ixp.members.len(), 10);
        // Every member has a port and the MAC maps back to it.
        for (asn, info) in &ixp.members {
            assert_eq!(ixp.fabric.port_of_mac(info.mac), Some(info.port));
            assert_eq!(ixp.fabric.port(info.port).unwrap().member_asn, asn.0);
        }
        let accepted = ixp.announce_all(0);
        assert_eq!(accepted, 10);
        assert_eq!(ixp.route_server.stats().accepted, 10);
    }

    #[test]
    fn announcements_validate_against_auto_registered_irr() {
        let specs = generic_members(64500, 3);
        let mut ixp = IxpTopology::build(&specs, HardwareInfoBase::lab_switch());
        let prefix = ixp.members[&Asn(64500)].prefixes[0];
        let u = ixp.announcement(Asn(64500), prefix);
        let out = ixp.route_server.handle_update(Asn(64500), &u, 0);
        assert!(out.rejections.is_empty());
        // Exports go to the other two members.
        assert_eq!(out.exports.len(), 2);
        // A hijack of the same prefix from another member is rejected.
        let hijack = ixp.announcement(Asn(64501), prefix);
        let out = ixp.route_server.handle_update(Asn(64501), &hijack, 0);
        assert_eq!(out.rejections.len(), 1);
    }

    #[test]
    fn build_with_pops_round_robins_members() {
        let specs = generic_members(64500, 10);
        let ixp = IxpTopology::build_with_pops(&specs, HardwareInfoBase::lab_switch(), 4);
        assert_eq!(ixp.fabric.num_pops(), 4);
        // ASNs ascend with the build index, so the BTreeMap walk
        // reproduces the round-robin order.
        for (i, info) in ixp.members.values().enumerate() {
            assert_eq!(
                ixp.fabric.pop_of_port(info.port),
                Some(PopId((i % 4) as u16))
            );
        }
        // Each of the 4 PoPs carries 2-3 of the 10 members.
        for r in ixp.fabric.routers() {
            let n = r.ports().count();
            assert!((2..=3).contains(&n));
        }
    }

    #[test]
    fn generic_prefixes_are_distinct() {
        let specs = generic_members(64500, 100);
        let mut seen = std::collections::BTreeSet::new();
        for s in &specs {
            for p in &s.prefixes {
                assert!(seen.insert(*p), "duplicate prefix {p}");
            }
        }
    }

    #[test]
    fn honoring_members_excludes_victim() {
        let specs = generic_members(64500, 50);
        let ixp = IxpTopology::build(&specs, HardwareInfoBase::lab_switch());
        let honoring = ixp.honoring_members(Asn(64500));
        assert!(!honoring.contains(&Asn(64500)));
        // With the paper model ~30% of 49 non-victims honor.
        assert!(!honoring.is_empty());
        assert!(honoring.len() < 49);
    }
}
