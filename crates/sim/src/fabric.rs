//! The multi-PoP fabric: N edge routers joined by a deterministic
//! inter-PoP delivery layer.
//!
//! The paper's L-IXP spans 20+ PoPs; a single [`EdgeRouter`] caps every
//! scale number at one router's tick loop. The [`Fabric`] shards the
//! topology at router granularity: each member port is assigned to one
//! PoP, offered aggregates are routed to their destination MAC's PoP in
//! offer order (the per-tick cross-PoP exchange — pure data movement, no
//! wall clock, no unordered iteration), and every PoP then runs its own
//! arena tick pipeline. PoPs share nothing — each owns its ports, TCAM
//! and scratch arena — so the per-PoP ticks are perfect shards for the
//! [`stellar_classify::pool`] worker pool, and parallel, sequential and
//! single-PoP execution produce byte-identical verdicts, counters and
//! obs snapshots. Per-PoP results merge in ascending PoP order; port ids
//! are fabric-unique, so the merged view is exactly the single-router
//! view of the same topology.
//!
//! Determinism argument, in short: routing reads only the offer stream
//! (stable order) and the MAC→PoP map (point lookups, never iterated);
//! each aggregate lands in exactly one PoP bucket, in arrival order;
//! PoPs are data-independent, so execution interleaving cannot change
//! any per-port outcome; and every merge (results, snapshots, port
//! walks) is keyed on ascending PoP / PortId order.

use std::collections::{BTreeMap, HashMap};
use stellar_classify::sharded;
use stellar_dataplane::filter::FilterRule;
use stellar_dataplane::hardware::HardwareInfoBase;
use stellar_dataplane::port::MemberPort;
use stellar_dataplane::qos::TickResult;
use stellar_dataplane::switch::{
    EdgeRouter, InstallError, OfferedAggregate, PacketVerdict, PortId,
};
use stellar_net::mac::MacAddr;
use stellar_net::packet::Packet;

/// Identifies one PoP (one edge router) in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PopId(pub u16);

/// Cumulative byte accounting for the inter-PoP delivery layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Bytes whose ingress and egress port share a PoP.
    pub local_bytes: u64,
    /// Bytes that crossed PoPs (ingress member on one PoP, egress port
    /// on another) — the backbone load a smarter rule placement saves.
    pub cross_pop_bytes: u64,
    /// Bytes sourced outside the fabric (unknown source MAC): they enter
    /// at their egress PoP's external uplink.
    pub external_bytes: u64,
    /// Bytes toward MACs no port owns; they vanish, as on a real fabric
    /// with no FDB entry and unicast flooding off.
    pub unroutable_bytes: u64,
}

/// A sharded IXP data plane: one [`EdgeRouter`] per PoP plus the
/// member-port → PoP assignment and the per-tick exchange buffers.
#[derive(Debug)]
pub struct Fabric {
    pops: Vec<EdgeRouter>,
    /// Port → owning PoP. Point lookups only — never iterated.
    port_pop: HashMap<PortId, u16>,
    /// Member MAC → owning PoP. Point lookups only — never iterated.
    mac_pop: HashMap<MacAddr, u16>,
    /// Per-PoP offer buckets, cleared (never freed) each tick so the
    /// steady-state exchange allocates nothing.
    buckets: Vec<Vec<OfferedAggregate>>,
    /// Max pool workers for the PoP fan-out; 1 = sequential.
    tick_workers: usize,
    /// Minimum routed aggregates per tick before the PoP fan-out uses
    /// the pool (each PoP applies its own finer-grained cutoff too).
    parallel_min_work: u64,
    /// Whether the most recent tick fanned PoPs out to the pool.
    last_parallel: bool,
    counters: FabricCounters,
    /// Cumulative bytes sourced by members of each PoP.
    pop_ingress_bytes: Vec<u64>,
    /// Cumulative bytes delivered toward ports of each PoP.
    pop_egress_bytes: Vec<u64>,
}

impl Fabric {
    /// Creates a fabric of `pops` identical edge routers. Every PoP gets
    /// its own TCAM, control-plane CPU and rule budget from `hib`.
    pub fn new(hib: HardwareInfoBase, pops: usize) -> Self {
        let n = pops.max(1);
        let routers: Vec<EdgeRouter> = (0..n).map(|_| EdgeRouter::new(hib.clone())).collect();
        let tick_workers = routers[0].tick_workers();
        Fabric {
            pops: routers,
            port_pop: HashMap::new(),
            mac_pop: HashMap::new(),
            buckets: (0..n).map(|_| Vec::new()).collect(),
            tick_workers,
            parallel_min_work: sharded::parallel_min_work_from_env(),
            last_parallel: false,
            counters: FabricCounters::default(),
            pop_ingress_bytes: vec![0; n],
            pop_egress_bytes: vec![0; n],
        }
    }

    /// Single-PoP fabric — drop-in for the legacy single-router topology.
    pub fn single(hib: HardwareInfoBase) -> Self {
        Fabric::new(hib, 1)
    }

    /// Number of PoPs.
    pub fn num_pops(&self) -> usize {
        self.pops.len()
    }

    /// Read access to every PoP's router, ascending PoP order.
    pub fn routers(&self) -> &[EdgeRouter] {
        &self.pops
    }

    /// One PoP's router.
    pub fn router(&self, pop: PopId) -> Option<&EdgeRouter> {
        self.pops.get(pop.0 as usize)
    }

    /// Mutable access to one PoP's router (tests and benches; topology
    /// membership must go through [`Fabric::add_port`]).
    pub fn router_mut(&mut self, pop: PopId) -> Option<&mut EdgeRouter> {
        self.pops.get_mut(pop.0 as usize)
    }

    /// Attaches a member port to a PoP. Port ids are fabric-unique —
    /// the flat id space is what makes the multi-PoP merge identical to
    /// the single-router view. Panics on a duplicate id or an unknown
    /// PoP (topology bugs).
    pub fn add_port(&mut self, pop: PopId, id: PortId, port: MemberPort) {
        let p = pop.0 as usize;
        assert!(p < self.pops.len(), "unknown PoP {pop:?} in topology");
        assert!(
            !self.port_pop.contains_key(&id),
            "duplicate port id {id:?} in fabric topology"
        );
        self.port_pop.insert(id, pop.0);
        self.mac_pop.insert(port.mac, pop.0);
        self.pops[p].add_port(id, port);
    }

    /// The PoP a port is attached to.
    pub fn pop_of_port(&self, id: PortId) -> Option<PopId> {
        self.port_pop.get(&id).map(|&p| PopId(p))
    }

    /// The port a member MAC is attached to.
    pub fn port_of_mac(&self, mac: MacAddr) -> Option<PortId> {
        self.mac_pop
            .get(&mac)
            .and_then(|&p| self.pops.get(p as usize))
            .and_then(|r| r.port_of_mac(mac))
    }

    /// Immutable access to a port.
    pub fn port(&self, id: PortId) -> Option<&MemberPort> {
        self.port_pop
            .get(&id)
            .and_then(|&p| self.pops.get(p as usize))
            .and_then(|r| r.port(id))
    }

    /// Mutable access to a port.
    pub fn port_mut(&mut self, id: PortId) -> Option<&mut MemberPort> {
        let &p = self.port_pop.get(&id)?;
        self.pops.get_mut(p as usize)?.port_mut(id)
    }

    /// Every port in the fabric in ascending `PortId` order, regardless
    /// of PoP assignment — the same walk order a single router yields.
    /// Cold path (reconcile/watchdog cadence): collects and sorts.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &MemberPort)> {
        let mut all: Vec<(PortId, &MemberPort)> = self
            .pops
            .iter()
            .flat_map(|r| r.ports().map(|(pid, port)| (*pid, port)))
            .collect();
        all.sort_unstable_by_key(|(pid, _)| *pid);
        all.into_iter()
    }

    /// Installs a rule on the owning PoP, charging that PoP's TCAM and
    /// CPU — the control-plane fan-out path.
    pub fn install_rule(
        &mut self,
        port_id: PortId,
        rule: FilterRule,
        now_us: u64,
    ) -> Result<(), InstallError> {
        let &p = self
            .port_pop
            .get(&port_id)
            .ok_or(InstallError::NoSuchPort)?;
        match self.pops.get_mut(p as usize) {
            Some(r) => r.install_rule(port_id, rule, now_us),
            None => Err(InstallError::NoSuchPort),
        }
    }

    /// Removes a rule from the owning PoP.
    pub fn remove_rule(&mut self, port_id: PortId, rule_id: u64, now_us: u64) -> bool {
        let Some(&p) = self.port_pop.get(&port_id) else {
            return false;
        };
        self.pops
            .get_mut(p as usize)
            .is_some_and(|r| r.remove_rule(port_id, rule_id, now_us))
    }

    /// Removes every rule on a port. Returns how many were removed.
    pub fn flush_port(&mut self, port_id: PortId, now_us: u64) -> usize {
        let Some(&p) = self.port_pop.get(&port_id) else {
            return 0;
        };
        self.pops
            .get_mut(p as usize)
            .map_or(0, |r| r.flush_port(port_id, now_us))
    }

    /// Cold-restarts every PoP (a fabric-wide power event): volatile
    /// filter state is wiped everywhere, forwarding state survives.
    /// Returns the total rules lost.
    pub fn restart(&mut self, now_us: u64) -> usize {
        self.pops.iter_mut().map(|r| r.restart(now_us)).sum()
    }

    /// Functional per-packet path: routes the packet to its destination
    /// MAC's PoP and classifies it there.
    pub fn process_packet(&self, wire: &[u8]) -> Result<PacketVerdict, stellar_net::NetError> {
        let packet = Packet::decode(wire)?;
        let Some(&p) = self.mac_pop.get(&packet.flow_key().dst_mac) else {
            return Ok(PacketVerdict::Unroutable);
        };
        match self.pops.get(p as usize) {
            Some(r) => r.process_packet(wire),
            None => Ok(PacketVerdict::Unroutable),
        }
    }

    /// Total rules installed across every PoP.
    pub fn total_rules(&self) -> usize {
        self.pops.iter().map(|r| r.total_rules()).sum()
    }

    /// The `(installs, removals)` ledger summed across PoPs. The
    /// conservation invariant holds fabric-wide because it holds per
    /// PoP: `installs - removals == total_rules()`.
    pub fn rule_ledger(&self) -> (u64, u64) {
        self.pops.iter().fold((0, 0), |(i, r), er| {
            let (pi, pr) = er.rule_ledger();
            (i + pi, r + pr)
        })
    }

    /// L3–L4 TCAM criteria in use, summed across PoPs.
    pub fn l34_used_total(&self) -> usize {
        self.pops.iter().map(|r| r.tcam().l34_used()).sum()
    }

    /// MAC TCAM criteria in use, summed across PoPs.
    pub fn mac_used_total(&self) -> usize {
        self.pops.iter().map(|r| r.tcam().mac_used()).sum()
    }

    /// Free L3–L4 TCAM criteria, summed across PoPs.
    pub fn l34_free_total(&self) -> usize {
        self.pops.iter().map(|r| r.tcam().l34_free()).sum()
    }

    /// Free MAC TCAM criteria, summed across PoPs.
    pub fn mac_free_total(&self) -> usize {
        self.pops.iter().map(|r| r.tcam().mac_free()).sum()
    }

    /// Live TCAM allocations, summed across PoPs.
    pub fn allocation_count_total(&self) -> usize {
        self.pops.iter().map(|r| r.tcam().allocation_count()).sum()
    }

    /// Caps the PoP fan-out and every PoP's internal port fan-out.
    pub fn set_tick_workers(&mut self, workers: usize) {
        self.tick_workers = workers.max(1);
        for r in &mut self.pops {
            r.set_tick_workers(workers);
        }
    }

    /// The current PoP fan-out cap.
    pub fn tick_workers(&self) -> usize {
        self.tick_workers
    }

    /// Sets the adaptive-parallelism cutoff, fabric-wide (the fabric
    /// compares it against routed aggregates per tick; each PoP against
    /// its own touched-ports × rules estimate).
    pub fn set_parallel_min_work(&mut self, min_work: u64) {
        self.parallel_min_work = min_work;
        for r in &mut self.pops {
            r.set_parallel_min_work(min_work);
        }
    }

    /// The fabric-level adaptive-parallelism cutoff.
    pub fn parallel_min_work(&self) -> u64 {
        self.parallel_min_work
    }

    /// Whether the most recent tick fanned PoPs out to the worker pool.
    pub fn last_tick_parallel(&self) -> bool {
        self.last_parallel
    }

    /// Cumulative inter-PoP delivery accounting.
    pub fn counters(&self) -> FabricCounters {
        self.counters
    }

    /// Cumulative bytes sourced by members of `pop`.
    pub fn pop_ingress_bytes(&self, pop: PopId) -> u64 {
        self.pop_ingress_bytes
            .get(pop.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Cumulative bytes delivered toward ports of `pop`.
    pub fn pop_egress_bytes(&self, pop: PopId) -> u64 {
        self.pop_egress_bytes
            .get(pop.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    /// The per-tick cross-PoP exchange: every offered aggregate is routed
    /// to its destination MAC's PoP bucket in arrival order, with the
    /// local / cross-PoP / external split accounted. Returns the number
    /// of routed aggregates (the fabric-level work estimate).
    fn route(&mut self, offers: &[OfferedAggregate]) -> u64 {
        for b in &mut self.buckets {
            b.clear();
        }
        let mut routed = 0u64;
        for o in offers {
            // Ingress accounting happens where the bytes enter the
            // fabric, whether or not they turn out to be routable.
            let ingress = self.mac_pop.get(&o.key.src_mac).copied();
            if let Some(i) = ingress {
                self.pop_ingress_bytes[i as usize] += o.bytes;
            }
            let Some(&egress) = self.mac_pop.get(&o.key.dst_mac) else {
                self.counters.unroutable_bytes += o.bytes;
                continue;
            };
            match ingress {
                Some(i) if i == egress => self.counters.local_bytes += o.bytes,
                Some(_) => self.counters.cross_pop_bytes += o.bytes,
                None => self.counters.external_bytes += o.bytes,
            }
            self.pop_egress_bytes[egress as usize] += o.bytes;
            self.buckets[egress as usize].push(*o);
            routed += 1;
        }
        routed
    }

    /// Decides the fan-out width for this tick and records the effective
    /// mode.
    fn plan_tick(&mut self, routed: u64) -> usize {
        let workers = sharded::effective_workers(self.tick_workers, routed, self.parallel_min_work);
        self.last_parallel = workers > 1 && self.pops.len() > 1;
        workers
    }

    /// The zero-allocation fabric tick: exchanges aggregates across PoPs,
    /// then runs every PoP's arena pipeline — in parallel at router
    /// granularity when enough work is on offer. Results stay in each
    /// PoP's arena (read them through cumulative port counters or
    /// [`Fabric::process_tick`]); parallel and sequential execution are
    /// byte-identical because PoPs share no state and all merges are
    /// order-keyed.
    pub fn process_tick_in_place(
        &mut self,
        offers: &[OfferedAggregate],
        tick_end_us: u64,
        tick_us: u64,
    ) {
        let routed = self.route(offers);
        let workers = self.plan_tick(routed);
        if !self.last_parallel {
            for (pop, bucket) in self.pops.iter_mut().zip(self.buckets.iter()) {
                pop.process_tick_in_place(bucket, tick_end_us, tick_us);
            }
            return;
        }
        let shards: Vec<(&mut EdgeRouter, &[OfferedAggregate])> = self
            .pops
            .iter_mut()
            .zip(self.buckets.iter().map(|b| b.as_slice()))
            .collect();
        sharded::parallel_shards(shards, workers, |(pop, offers)| {
            pop.process_tick_in_place(offers, tick_end_us, tick_us);
        });
    }

    /// Compatibility tick: runs the exchange + per-PoP pipelines, then
    /// merges every PoP's owned results into one map in ascending PoP
    /// (and therefore ascending, fabric-unique `PortId`) order — the
    /// exact shape the single-router `process_tick` returns.
    pub fn process_tick(
        &mut self,
        offers: &[OfferedAggregate],
        tick_end_us: u64,
        tick_us: u64,
    ) -> BTreeMap<PortId, TickResult> {
        let routed = self.route(offers);
        let workers = self.plan_tick(routed);
        let mut out = BTreeMap::new();
        if !self.last_parallel {
            for (pop, bucket) in self.pops.iter_mut().zip(self.buckets.iter()) {
                out.extend(pop.process_tick(bucket, tick_end_us, tick_us));
            }
            return out;
        }
        let shards: Vec<(&mut EdgeRouter, &[OfferedAggregate])> = self
            .pops
            .iter_mut()
            .zip(self.buckets.iter().map(|b| b.as_slice()))
            .collect();
        let maps = sharded::parallel_shards(shards, workers, |(pop, offers)| {
            pop.process_tick(offers, tick_end_us, tick_us)
        });
        for m in maps {
            out.extend(m);
        }
        out
    }

    /// Publishes the fabric gauges. A 1-PoP fabric delegates to its
    /// single router — byte-identical to the legacy single-router
    /// snapshot. A multi-PoP fabric publishes the same router-global
    /// gauges as PoP-wide sums (dashboards keep working), adds per-PoP
    /// occupancy and the inter-PoP delivery counters, and emits the
    /// per-port gauges of every PoP (port ids are fabric-unique, so the
    /// names cannot collide).
    pub fn observe(&self, reg: &mut stellar_obs::MetricsRegistry) {
        if self.pops.len() == 1 {
            self.pops[0].observe(reg);
            return;
        }
        reg.gauge_set("dataplane.tcam.l34_used", self.l34_used_total() as i64);
        reg.gauge_set("dataplane.tcam.l34_free", self.l34_free_total() as i64);
        reg.gauge_set("dataplane.tcam.mac_used", self.mac_used_total() as i64);
        reg.gauge_set("dataplane.tcam.mac_free", self.mac_free_total() as i64);
        reg.gauge_set(
            "dataplane.tcam.allocations",
            self.allocation_count_total() as i64,
        );
        reg.gauge_set("dataplane.total_rules", self.total_rules() as i64);
        let (installs, removals) = self.rule_ledger();
        reg.counter_set("dataplane.rule_installs", installs);
        reg.counter_set("dataplane.rule_removals", removals);
        reg.gauge_set("fabric.pops", self.pops.len() as i64);
        let c = &self.counters;
        reg.counter_set("fabric.local_bytes", c.local_bytes);
        reg.counter_set("fabric.cross_pop_bytes", c.cross_pop_bytes);
        reg.counter_set("fabric.external_bytes", c.external_bytes);
        reg.counter_set("fabric.unroutable_bytes", c.unroutable_bytes);
        for (i, r) in self.pops.iter().enumerate() {
            let p = format!("fabric.pop.{i}");
            reg.gauge_set(&format!("{p}.rules"), r.total_rules() as i64);
            reg.gauge_set(&format!("{p}.tcam_l34_used"), r.tcam().l34_used() as i64);
            reg.gauge_set(&format!("{p}.tcam_mac_used"), r.tcam().mac_used() as i64);
            reg.counter_set(&format!("{p}.ingress_bytes"), self.pop_ingress_bytes[i]);
            reg.counter_set(&format!("{p}.egress_bytes"), self.pop_egress_bytes[i]);
            r.observe_ports(reg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_dataplane::filter::{Action, MatchSpec};
    use stellar_net::addr::{IpAddress, Ipv4Address};
    use stellar_net::flow::FlowKey;
    use stellar_net::proto::IpProtocol;

    fn offer(src_member: u32, dst_member: u32, bytes: u64) -> OfferedAggregate {
        OfferedAggregate {
            key: FlowKey {
                src_mac: MacAddr::for_member(src_member, 1),
                dst_mac: MacAddr::for_member(dst_member, 1),
                src_ip: IpAddress::V4(Ipv4Address::new(203, 0, 113, 7)),
                dst_ip: IpAddress::V4(Ipv4Address::new(100, 10, 10, 10)),
                protocol: IpProtocol::UDP,
                src_port: 123,
                dst_port: 44444,
                ..FlowKey::default()
            },
            bytes,
            packets: bytes / 1000 + 1,
        }
    }

    /// 4 members round-robined over `pops` PoPs.
    fn fabric(pops: usize) -> Fabric {
        let mut f = Fabric::new(HardwareInfoBase::lab_switch(), pops);
        for i in 0..4u32 {
            let asn = 64500 + i;
            f.add_port(
                PopId((i as usize % pops) as u16),
                PortId(i + 1),
                MemberPort::new(asn, MacAddr::for_member(asn, 1), 1_000_000_000),
            );
        }
        f
    }

    #[test]
    fn cross_pop_delivery_matches_single_pop() {
        let offers = [
            offer(64500, 64501, 1000),
            offer(64501, 64502, 2000),
            offer(64503, 64500, 3000),
            offer(65000, 64503, 4000), // external source
            offer(64500, 9999, 5000),  // unroutable
        ];
        let mut single = fabric(1);
        let mut multi = fabric(4);
        let a = single.process_tick(&offers, 1_000_000, 1_000_000);
        let b = multi.process_tick(&offers, 1_000_000, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(b[&PortId(2)].counters.forwarded_bytes, 1000);
        // Accounting: with one PoP everything member-sourced is local.
        assert_eq!(single.counters().local_bytes, 6000);
        assert_eq!(single.counters().cross_pop_bytes, 0);
        // With one port per PoP, every member-sourced delivery crosses.
        assert_eq!(multi.counters().local_bytes, 0);
        assert_eq!(multi.counters().cross_pop_bytes, 6000);
        assert_eq!(multi.counters().external_bytes, 4000);
        assert_eq!(multi.counters().unroutable_bytes, 5000);
        assert_eq!(multi.pop_ingress_bytes(PopId(0)), 1000 + 5000);
        assert_eq!(multi.pop_egress_bytes(PopId(3)), 4000);
    }

    #[test]
    fn rules_install_against_owning_pop_tcam() {
        let mut f = fabric(4);
        let rule = FilterRule::new(
            1,
            MatchSpec::proto_src_port_to("100.10.10.10/32".parse().unwrap(), IpProtocol::UDP, 123),
            Action::Drop,
            10,
        );
        // Port 2 lives on PoP 1.
        assert_eq!(f.pop_of_port(PortId(2)), Some(PopId(1)));
        f.install_rule(PortId(2), rule, 0).unwrap();
        assert_eq!(f.total_rules(), 1);
        assert_eq!(f.routers()[1].tcam().l34_used(), 3);
        assert_eq!(f.routers()[0].tcam().l34_used(), 0);
        assert_eq!(f.l34_used_total(), 3);
        let res = f.process_tick(&[offer(64500, 64501, 1000)], 1_000_000, 1_000_000);
        assert_eq!(res[&PortId(2)].counters.dropped_bytes, 1000);
        assert!(f.remove_rule(PortId(2), 1, 1));
        assert_eq!(f.l34_used_total(), 0);
        assert_eq!(f.rule_ledger(), (1, 1));
        // Unknown port: refused, no ledger movement.
        assert_eq!(
            f.install_rule(
                PortId(99),
                FilterRule::new(2, MatchSpec::default(), Action::Drop, 10),
                2
            ),
            Err(InstallError::NoSuchPort)
        );
        assert!(!f.remove_rule(PortId(99), 1, 2));
        assert_eq!(f.flush_port(PortId(99), 2), 0);
    }

    #[test]
    fn restart_wipes_every_pop() {
        let mut f = fabric(2);
        for (pid, port) in [(PortId(1), 123u16), (PortId(2), 124)] {
            f.install_rule(
                pid,
                FilterRule::new(
                    u64::from(port),
                    MatchSpec::proto_src_port_to(
                        "100.10.10.10/32".parse().unwrap(),
                        IpProtocol::UDP,
                        port,
                    ),
                    Action::Drop,
                    10,
                ),
                0,
            )
            .unwrap();
        }
        assert_eq!(f.total_rules(), 2);
        assert_eq!(f.restart(1), 2);
        assert_eq!(f.total_rules(), 0);
        assert_eq!(f.l34_used_total(), 0);
        let (i, r) = f.rule_ledger();
        assert_eq!(i, r);
    }

    #[test]
    fn ports_walk_is_sorted_across_pops() {
        let f = fabric(3);
        let ids: Vec<u32> = f.ports().map(|(pid, _)| pid.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
        assert_eq!(f.port(PortId(3)).map(|p| p.member_asn), Some(64502));
        assert_eq!(
            f.port_of_mac(MacAddr::for_member(64503, 1)),
            Some(PortId(4))
        );
    }

    #[test]
    fn multi_pop_observe_aggregates_and_single_pop_delegates() {
        let mut reg = stellar_obs::MetricsRegistry::new();
        let mut legacy = stellar_obs::MetricsRegistry::new();
        let f1 = fabric(1);
        f1.observe(&mut reg);
        f1.routers()[0].observe(&mut legacy);
        assert_eq!(
            serde_json::to_string(&reg.to_content()).unwrap(),
            serde_json::to_string(&legacy.to_content()).unwrap()
        );
        let mut f4 = fabric(4);
        f4.process_tick(&[offer(64500, 64501, 1000)], 1_000_000, 1_000_000);
        let mut reg4 = stellar_obs::MetricsRegistry::new();
        f4.observe(&mut reg4);
        let json = serde_json::to_string(&reg4.to_content()).unwrap();
        assert!(json.contains("\"fabric.pops\""));
        assert!(json.contains("\"fabric.cross_pop_bytes\":1000"));
        assert!(json.contains("\"fabric.pop.1.egress_bytes\":1000"));
        assert!(json.contains("\"dataplane.port.2.forwarded_bytes\":1000"));
    }
}
