//! The simulation clock: `u64` microseconds since experiment start.

/// A point in simulation time, in microseconds.
pub type SimTime = u64;

/// Converts seconds to simulation time.
pub const fn secs(s: u64) -> SimTime {
    s * 1_000_000
}

/// Converts milliseconds to simulation time.
pub const fn millis(ms: u64) -> SimTime {
    ms * 1_000
}

/// Converts simulation time to (fractional) seconds.
pub fn us_to_secs(t: SimTime) -> f64 {
    t as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(secs(3), 3_000_000);
        assert_eq!(millis(250), 250_000);
        assert!((us_to_secs(secs(90)) - 90.0).abs() < 1e-12);
        assert_eq!(us_to_secs(0), 0.0);
    }
}
