//! Flow-level workload generators.
//!
//! These stand in for the production IPFIX traces and the booter service
//! of §2.3/§2.4/§5.3. Generators emit [`OfferedAggregate`]s per tick; the
//! dataplane consumes them and the collector records what survives.

use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::Rng;
use stellar_dataplane::switch::OfferedAggregate;
use stellar_net::addr::{IpAddress, Ipv4Address};
use stellar_net::amplification::AmpProtocol;
use stellar_net::flow::FlowKey;
use stellar_net::mac::MacAddr;
use stellar_net::ports;
use stellar_net::proto::IpProtocol;

/// Anything that can produce traffic for a tick.
pub trait TrafficSource {
    /// Produces the aggregates for `[t0, t1)`.
    fn generate(&mut self, t0: SimTime, t1: SimTime, rng: &mut SmallRng) -> Vec<OfferedAggregate>;
}

/// A traffic endpoint: the member router (MAC) it enters the fabric from
/// and a representative source IP behind it.
#[derive(Debug, Clone, Copy)]
pub struct SourcePoint {
    /// Member-router MAC on the peering LAN.
    pub mac: MacAddr,
    /// Source IP.
    pub ip: Ipv4Address,
}

/// The benign web mix of Fig. 2(c): HTTPS/HTTP/RTMP towards a hosted
/// service, with client-side ephemeral source ports.
#[derive(Debug, Clone)]
pub struct BenignWebMix {
    /// The victim service's IP.
    pub target_ip: Ipv4Address,
    /// The victim member's router MAC (egress port selector).
    pub target_mac: MacAddr,
    /// Aggregate offered rate in bits/second.
    pub rate_bps: f64,
    /// `(dst service port, share)` mix; shares should sum to 1.
    pub port_mix: Vec<(u16, f64)>,
    /// Client populations (one per sending member).
    pub sources: Vec<SourcePoint>,
    /// Active window.
    pub active: (SimTime, SimTime),
}

impl BenignWebMix {
    /// The Fig. 2(c) pre-attack mix: mostly 443, some 80/8080, a little
    /// RTMP.
    pub fn fig2c(
        target_ip: Ipv4Address,
        target_mac: MacAddr,
        rate_bps: f64,
        sources: Vec<SourcePoint>,
        active: (SimTime, SimTime),
    ) -> Self {
        BenignWebMix {
            target_ip,
            target_mac,
            rate_bps,
            port_mix: vec![
                (ports::HTTPS, 0.55),
                (ports::HTTP, 0.25),
                (ports::HTTP_ALT, 0.12),
                (ports::RTMP, 0.08),
            ],
            sources,
            active,
        }
    }
}

impl TrafficSource for BenignWebMix {
    fn generate(&mut self, t0: SimTime, t1: SimTime, rng: &mut SmallRng) -> Vec<OfferedAggregate> {
        if t1 <= self.active.0 || t0 >= self.active.1 || self.sources.is_empty() {
            return Vec::new();
        }
        let overlap_us = t1.min(self.active.1) - t0.max(self.active.0);
        let dt_s = overlap_us as f64 / 1e6;
        // ±5 % per-tick load noise.
        let noise = 1.0 + (rng.random::<f64>() - 0.5) * 0.1;
        let total_bytes = self.rate_bps * dt_s / 8.0 * noise;
        let mut out = Vec::new();
        for (port, share) in &self.port_mix {
            let port_bytes = total_bytes * share;
            let per_src = (port_bytes / self.sources.len() as f64).round() as u64;
            if per_src == 0 {
                continue;
            }
            for s in &self.sources {
                let key = FlowKey {
                    src_mac: s.mac,
                    dst_mac: self.target_mac,
                    src_ip: IpAddress::V4(s.ip),
                    dst_ip: IpAddress::V4(self.target_ip),
                    protocol: IpProtocol::TCP,
                    src_port: 49152 + (s.ip.to_u32() % 16000) as u16,
                    dst_port: *port,
                    ..FlowKey::default()
                };
                out.push(OfferedAggregate {
                    key,
                    bytes: per_src,
                    packets: (per_src / 900).max(1),
                });
            }
        }
        out
    }
}

/// A reflection/amplification attack: spoofed-source responses converging
/// on the victim from many reflectors, with fragment records on port 0.
#[derive(Debug, Clone)]
pub struct AmplificationAttack {
    /// The abused protocol.
    pub protocol: AmpProtocol,
    /// Victim IP.
    pub target_ip: Ipv4Address,
    /// Victim member's router MAC.
    pub target_mac: MacAddr,
    /// Received attack rate at the victim in bits/second.
    pub rate_bps: f64,
    /// Reflector populations (one entry per contributing member port).
    pub reflectors: Vec<SourcePoint>,
    /// Active window.
    pub active: (SimTime, SimTime),
    /// Ramp-up time to reach full rate after start.
    pub ramp_us: SimTime,
}

impl TrafficSource for AmplificationAttack {
    fn generate(&mut self, t0: SimTime, t1: SimTime, rng: &mut SmallRng) -> Vec<OfferedAggregate> {
        if t1 <= self.active.0 || t0 >= self.active.1 || self.reflectors.is_empty() {
            return Vec::new();
        }
        let overlap_us = t1.min(self.active.1) - t0.max(self.active.0);
        let dt_s = overlap_us as f64 / 1e6;
        // Linear ramp to full rate.
        let since_start = t0.saturating_sub(self.active.0);
        let ramp = if self.ramp_us == 0 {
            1.0
        } else {
            (since_start as f64 / self.ramp_us as f64).min(1.0)
        };
        let noise = 1.0 + (rng.random::<f64>() - 0.5) * 0.1;
        let total_bytes = self.rate_bps * ramp * dt_s / 8.0 * noise;
        let frag_share = self.protocol.fragmented_share();
        let pkt_size = self.protocol.response_packet_size() as u64;
        let mut out = Vec::new();
        let per_reflector = total_bytes / self.reflectors.len() as f64;
        for r in &self.reflectors {
            let svc_bytes = (per_reflector * (1.0 - frag_share)).round() as u64;
            let frag_bytes = (per_reflector * frag_share).round() as u64;
            if svc_bytes > 0 {
                out.push(OfferedAggregate {
                    key: FlowKey {
                        src_mac: r.mac,
                        dst_mac: self.target_mac,
                        src_ip: IpAddress::V4(r.ip),
                        dst_ip: IpAddress::V4(self.target_ip),
                        protocol: IpProtocol::UDP,
                        src_port: self.protocol.port(),
                        dst_port: 40000 + (r.ip.to_u32() % 20000) as u16,
                        ..FlowKey::default()
                    },
                    bytes: svc_bytes,
                    packets: (svc_bytes / pkt_size).max(1),
                });
            }
            if frag_bytes > 0 {
                // Non-first fragments: no transport header, flow records
                // show port 0 (Fig. 3a's dominant bar).
                out.push(OfferedAggregate {
                    key: FlowKey {
                        src_mac: r.mac,
                        dst_mac: self.target_mac,
                        src_ip: IpAddress::V4(r.ip),
                        dst_ip: IpAddress::V4(self.target_ip),
                        protocol: IpProtocol::UDP,
                        src_port: 0,
                        dst_port: 0,
                        ..FlowKey::default()
                    },
                    bytes: frag_bytes,
                    packets: (frag_bytes / pkt_size).max(1),
                });
            }
        }
        out
    }
}

/// A DDoS-for-hire ("booter") service, as used for the controlled
/// experiments (§2.4: "we request a short-duration attack ... of peak
/// traffic of about 1 Gbps"; traffic arrives "from almost 40 different
/// peers").
#[derive(Debug, Clone)]
pub struct BooterService {
    attack: AmplificationAttack,
}

impl BooterService {
    /// Orders an attack: `peak_bps` of `protocol` reflection against
    /// `target`, reflected through `reflector_members` member ports.
    pub fn order(
        protocol: AmpProtocol,
        target_ip: Ipv4Address,
        target_mac: MacAddr,
        peak_bps: f64,
        reflector_members: Vec<SourcePoint>,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        BooterService {
            attack: AmplificationAttack {
                protocol,
                target_ip,
                target_mac,
                rate_bps: peak_bps,
                reflectors: reflector_members,
                active: (start, end),
                ramp_us: 20_000_000, // booters ramp over ~20 s
            },
        }
    }

    /// The number of member ports the attack arrives through.
    pub fn peer_count(&self) -> usize {
        self.attack.reflectors.len()
    }
}

impl TrafficSource for BooterService {
    fn generate(&mut self, t0: SimTime, t1: SimTime, rng: &mut SmallRng) -> Vec<OfferedAggregate> {
        self.attack.generate(t0, t1, rng)
    }
}

/// Builds `n` reflector source points spread over member ASNs starting at
/// `base_asn`, with source IPs drawn from `pool`.
pub fn reflector_pool(
    base_asn: u32,
    n: usize,
    pool: stellar_net::prefix::Ipv4Prefix,
) -> Vec<SourcePoint> {
    (0..n)
        .map(|i| SourcePoint {
            mac: MacAddr::for_member(base_asn + i as u32, 1),
            ip: pool.nth_host(i as u64 * 7 + 3),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn target() -> (Ipv4Address, MacAddr) {
        (
            Ipv4Address::new(100, 10, 10, 10),
            MacAddr::for_member(64500, 1),
        )
    }

    #[test]
    fn web_mix_produces_configured_rate_and_ports() {
        let (ip, mac) = target();
        let sources = reflector_pool(65000, 4, "203.0.113.0/24".parse().unwrap());
        let mut mix = BenignWebMix::fig2c(ip, mac, 100e6, sources, (0, 10_000_000));
        let mut r = rng();
        let mut total = 0u64;
        let mut https = 0u64;
        for t in 0..100u64 {
            for agg in mix.generate(t * 100_000, (t + 1) * 100_000, &mut r) {
                assert_eq!(agg.key.dst_mac, mac);
                assert_eq!(agg.key.protocol, IpProtocol::TCP);
                total += agg.bytes;
                if agg.key.dst_port == ports::HTTPS {
                    https += agg.bytes;
                }
            }
        }
        let rate = total as f64 * 8.0 / 10.0;
        assert!((rate - 100e6).abs() / 100e6 < 0.05, "rate {rate}");
        let https_share = https as f64 / total as f64;
        assert!((https_share - 0.55).abs() < 0.05, "https {https_share}");
    }

    #[test]
    fn generators_respect_their_window() {
        let (ip, mac) = target();
        let sources = reflector_pool(65000, 2, "203.0.113.0/24".parse().unwrap());
        let mut mix = BenignWebMix::fig2c(ip, mac, 100e6, sources, (5_000_000, 6_000_000));
        let mut r = rng();
        assert!(mix.generate(0, 1_000_000, &mut r).is_empty());
        assert!(!mix.generate(5_000_000, 5_100_000, &mut r).is_empty());
        assert!(mix.generate(6_000_000, 7_000_000, &mut r).is_empty());
    }

    #[test]
    fn ntp_attack_uses_source_port_123() {
        let (ip, mac) = target();
        let reflectors = reflector_pool(65100, 10, "198.51.100.0/24".parse().unwrap());
        let mut atk = AmplificationAttack {
            protocol: AmpProtocol::Ntp,
            target_ip: ip,
            target_mac: mac,
            rate_bps: 1e9,
            reflectors,
            active: (0, 10_000_000),
            ramp_us: 0,
        };
        let mut r = rng();
        let aggs = atk.generate(1_000_000, 1_100_000, &mut r);
        assert!(!aggs.is_empty());
        let svc: u64 = aggs
            .iter()
            .filter(|a| a.key.src_port == 123)
            .map(|a| a.bytes)
            .sum();
        let frag: u64 = aggs
            .iter()
            .filter(|a| a.key.src_port == 0)
            .map(|a| a.bytes)
            .sum();
        // NTP responses (4455 B) fragment: ~2/3 of bytes are port-0
        // fragments, ~1/3 carries the NTP source port.
        let frag_share = frag as f64 / (svc + frag) as f64;
        assert!((frag_share - AmpProtocol::Ntp.fragmented_share()).abs() < 0.05);
        // Distinct member MACs = 10 peers.
        let macs: std::collections::BTreeSet<_> =
            aggs.iter().map(|a| a.key.src_mac.octets()).collect();
        assert_eq!(macs.len(), 10);
    }

    #[test]
    fn booter_ramps_to_peak() {
        let (ip, mac) = target();
        let reflectors = reflector_pool(65100, 40, "198.51.100.0/24".parse().unwrap());
        let mut booter =
            BooterService::order(AmpProtocol::Ntp, ip, mac, 1e9, reflectors, 0, 600_000_000);
        assert_eq!(booter.peer_count(), 40);
        let mut r = rng();
        let early: u64 = booter
            .generate(1_000_000, 2_000_000, &mut r)
            .iter()
            .map(|a| a.bytes)
            .sum();
        let late: u64 = booter
            .generate(100_000_000, 101_000_000, &mut r)
            .iter()
            .map(|a| a.bytes)
            .sum();
        assert!(
            early < late / 5,
            "ramp not visible: early {early}, late {late}"
        );
        let late_rate = late as f64 * 8.0;
        assert!((late_rate - 1e9).abs() / 1e9 < 0.1, "late rate {late_rate}");
    }

    #[test]
    fn fragmenting_protocols_emit_port_zero_records() {
        let (ip, mac) = target();
        let reflectors = reflector_pool(65100, 5, "198.51.100.0/24".parse().unwrap());
        let mk = |proto: AmpProtocol| AmplificationAttack {
            protocol: proto,
            target_ip: ip,
            target_mac: mac,
            rate_bps: 40e9,
            reflectors: reflectors.clone(),
            active: (0, 1_000_000),
            ramp_us: 0,
        };
        let mut r = rng();
        // DNS: one big datagram → 2/3 of bytes land on port 0.
        let aggs = mk(AmpProtocol::Dns).generate(0, 1_000_000, &mut r);
        let frag: u64 = aggs
            .iter()
            .filter(|a| a.key.src_port == 0)
            .map(|a| a.bytes)
            .sum();
        let total: u64 = aggs.iter().map(|a| a.bytes).sum();
        let share = frag as f64 / total as f64;
        assert!((share - 2.0 / 3.0).abs() < 0.05, "dns frag share {share}");
        // memcached: MTU-sized chunks → the 11211 signature stays visible
        // (what Fig. 2c shows).
        let aggs = mk(AmpProtocol::Memcached).generate(0, 1_000_000, &mut r);
        assert!(aggs.iter().all(|a| a.key.src_port == 11211));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (ip, mac) = target();
        let reflectors = reflector_pool(65100, 3, "198.51.100.0/24".parse().unwrap());
        let mk = || AmplificationAttack {
            protocol: AmpProtocol::Dns,
            target_ip: ip,
            target_mac: mac,
            rate_bps: 1e8,
            reflectors: reflectors.clone(),
            active: (0, 1_000_000),
            ramp_us: 0,
        };
        let mut a = mk();
        let mut b = mk();
        let mut ra = rng();
        let mut rb = rng();
        let ga: Vec<u64> = a
            .generate(0, 100_000, &mut ra)
            .iter()
            .map(|x| x.bytes)
            .collect();
        let gb: Vec<u64> = b
            .generate(0, 100_000, &mut rb)
            .iter()
            .map(|x| x.bytes)
            .collect();
        assert_eq!(ga, gb);
    }
}
