//! # stellar-sim
//!
//! The deterministic discrete-event IXP emulation that stands in for the
//! paper's production testbed (see DESIGN.md §2 for the substitution
//! argument):
//!
//! - [`time`] — the simulation clock (microseconds);
//! - [`engine`] — a classic discrete-event scheduler plus the fixed-tick
//!   driver the traffic experiments use;
//! - [`traffic`] — flow-level workload generators: a benign web mix,
//!   amplification attacks, and the booter service used in §2.4/§5.3;
//! - [`topology`] — assembles members, the route server, and the edge
//!   fabric into a runnable IXP;
//! - [`fabric`] — the multi-PoP data plane: N edge routers, a
//!   member-port→PoP assignment, and the deterministic per-tick
//!   cross-PoP aggregate exchange;
//! - [`collector`] — IPFIX-like flow collection and time-series queries
//!   (the measurement pipeline of §2.3);
//! - [`honoring`] — the RTBH compliance model (≈70 % of members do not
//!   honor blackhole signals, §2.4).
//!
//! Everything is seeded: the same seed yields bit-identical experiment
//! outputs.

pub mod collector;
pub mod engine;
pub mod fabric;
pub mod honoring;
pub mod time;
pub mod topology;
pub mod traffic;

pub use collector::{FlowCollector, TimeSeries};
pub use engine::{Engine, Scheduler};
pub use fabric::{Fabric, FabricCounters, PopId};
pub use honoring::HonoringModel;
pub use time::{secs, us_to_secs, SimTime};
pub use topology::{IxpTopology, MemberSpec};
pub use traffic::{AmplificationAttack, BenignWebMix, BooterService, TrafficSource};
