//! The RTBH compliance model.
//!
//! §2.4: "almost 70 % of these IXP members do not honor the blackholing
//! community. Among the possible reasons are: (a) they choose to not
//! participate in RTBH, (b) they do not accept updates for more specific
//! prefixes than /24 ..., or (c) they made a mistake in their
//! configuration."
//!
//! Whether a member honors is a stable property of that member (a network
//! either has the exceptions configured or it does not), so the model
//! assigns each ASN a deterministic, seed-dependent decision rather than
//! re-rolling per announcement.

use stellar_bgp::types::Asn;

/// Why a member ignores RTBH signals (the paper's three hypotheses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IgnoreReason {
    /// Chooses not to participate in RTBH.
    NotParticipating,
    /// Default filters reject more-specifics than /24.
    FiltersMoreSpecifics,
    /// Configuration mistake ("fat-finger error").
    Misconfiguration,
}

/// Deterministic per-member RTBH compliance.
#[derive(Debug, Clone)]
pub struct HonoringModel {
    honor_fraction: f64,
    seed: u64,
}

impl HonoringModel {
    /// Default seed for the paper-calibrated model.
    pub const DEFAULT_SEED: u64 = 0x57e1_1a00_57e1_1a00;

    /// The paper's measured compliance: ~30 % honor (§2.4).
    pub fn paper() -> Self {
        HonoringModel::new(0.30, Self::DEFAULT_SEED)
    }

    /// A model where `honor_fraction` of members honor signals.
    pub fn new(honor_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&honor_fraction));
        HonoringModel {
            honor_fraction,
            seed,
        }
    }

    fn hash(&self, asn: Asn) -> u64 {
        // SplitMix64 over (seed ^ asn).
        let mut z = self.seed ^ (u64::from(asn.0)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True if this member honors RTBH blackhole announcements.
    pub fn honors(&self, asn: Asn) -> bool {
        let unit = (self.hash(asn) >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.honor_fraction
    }

    /// For a non-honoring member, the (deterministic) reason, weighted
    /// towards the filtering explanation the paper considers most likely.
    pub fn ignore_reason(&self, asn: Asn) -> Option<IgnoreReason> {
        if self.honors(asn) {
            return None;
        }
        Some(match self.hash(asn.0.wrapping_add(1).into()) % 10 {
            0..=1 => IgnoreReason::NotParticipating,
            2..=8 => IgnoreReason::FiltersMoreSpecifics,
            _ => IgnoreReason::Misconfiguration,
        })
    }

    /// The configured honoring fraction.
    pub fn honor_fraction(&self) -> f64 {
        self.honor_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_stable() {
        let m = HonoringModel::new(0.3, 42);
        for asn in 1..100u32 {
            assert_eq!(m.honors(Asn(asn)), m.honors(Asn(asn)));
        }
    }

    #[test]
    fn fraction_is_approximately_respected() {
        let m = HonoringModel::new(0.30, 7);
        let honoring = (1..=10_000u32).filter(|&a| m.honors(Asn(a))).count();
        let frac = honoring as f64 / 10_000.0;
        assert!((frac - 0.30).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn extremes() {
        let all = HonoringModel::new(1.0, 1);
        let none = HonoringModel::new(0.0, 1);
        for a in 1..50u32 {
            assert!(all.honors(Asn(a)));
            assert!(!none.honors(Asn(a)));
            assert_eq!(all.ignore_reason(Asn(a)), None);
            assert!(none.ignore_reason(Asn(a)).is_some());
        }
    }

    #[test]
    fn different_seeds_give_different_assignments() {
        let a = HonoringModel::new(0.5, 1);
        let b = HonoringModel::new(0.5, 2);
        let differing = (1..=1000u32)
            .filter(|&x| a.honors(Asn(x)) != b.honors(Asn(x)))
            .count();
        assert!(differing > 100, "only {differing} differ");
    }

    #[test]
    fn ignore_reasons_are_mostly_filtering() {
        let m = HonoringModel::new(0.0, 3);
        let mut filters = 0;
        let mut total = 0;
        for a in 1..=1000u32 {
            if let Some(r) = m.ignore_reason(Asn(a)) {
                total += 1;
                if r == IgnoreReason::FiltersMoreSpecifics {
                    filters += 1;
                }
            }
        }
        assert_eq!(total, 1000);
        assert!(filters as f64 / total as f64 > 0.5);
    }
}
