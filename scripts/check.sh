#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release -q --test fault_recovery -- --include-ignored (fault soak)"
cargo test --release -q --test fault_recovery -- --include-ignored

echo "All checks passed."
