#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

# The determinism gates below rename tracked snapshots while they
# compare runs. Restore them and drop the comparison litter on every
# exit path (success, diff failure, ^C) so a failed gate never leaves
# the tree dirty.
cleanup() {
  if [ -f results/metrics_fault_soak.run1.json ]; then
    mv -f results/metrics_fault_soak.run1.json results/metrics_fault_soak.json
  fi
  if [ -f results/metrics_quickstart.seq.json ]; then
    mv -f results/metrics_quickstart.seq.json results/metrics_quickstart.json
  fi
  if [ -f results/chaos_soak.run1.json ]; then
    mv -f results/chaos_soak.run1.json results/chaos_soak.json
  fi
  if [ -f results/metrics_quickstart.hash.json ]; then
    mv -f results/metrics_quickstart.hash.json results/metrics_quickstart.json
  fi
  if [ -f results/metrics_quickstart.pop4.json ]; then
    rm -f results/metrics_quickstart.pop4.json
  fi
  if [ -f results/metrics_quickstart.pop1.json ]; then
    mv -f results/metrics_quickstart.pop1.json results/metrics_quickstart.json
  fi
  if [ -f results/rule_diff.run1.json ]; then
    mv -f results/rule_diff.run1.json results/rule_diff.json
  fi
  if [ -f results/lint.run1.json ]; then
    mv -f results/lint.run1.json results/lint.json
  fi
}
trap cleanup EXIT

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> stellar-lint (workspace invariants: determinism, snapshot ordering, panic budget)"
cargo run --release -q -p stellar-lint -- --root . --json results/lint.json

echo "==> stellar-lint --json artifact is byte-identical across runs"
mv results/lint.json results/lint.run1.json
cargo run --release -q -p stellar-lint -- --root . --json results/lint.json >/dev/null
diff results/lint.run1.json results/lint.json

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release -q --test fault_recovery -- --include-ignored (fault soak)"
cargo test --release -q --test fault_recovery -- --include-ignored

echo "==> determinism gate: fault_soak metrics snapshot is byte-identical across runs"
cargo run --release -q --example fault_soak >/dev/null
mv results/metrics_fault_soak.json results/metrics_fault_soak.run1.json
cargo run --release -q --example fault_soak >/dev/null
diff results/metrics_fault_soak.run1.json results/metrics_fault_soak.json

echo "==> determinism gate: parallel tick pipeline matches sequential (quickstart snapshot)"
STELLAR_TICK_WORKERS=1 cargo run --release -q --example quickstart >/dev/null
mv results/metrics_quickstart.json results/metrics_quickstart.seq.json
STELLAR_TICK_WORKERS=8 cargo run --release -q --example quickstart >/dev/null
diff results/metrics_quickstart.seq.json results/metrics_quickstart.json

echo "==> determinism gate: interval-tree classifier backend matches hash (quickstart snapshot)"
STELLAR_CLASSIFY_BACKEND=hash cargo run --release -q --example quickstart >/dev/null
mv results/metrics_quickstart.json results/metrics_quickstart.hash.json
STELLAR_CLASSIFY_BACKEND=tree cargo run --release -q --example quickstart >/dev/null
diff results/metrics_quickstart.hash.json results/metrics_quickstart.json

echo "==> determinism gate: 4-PoP fabric run-twice and across worker counts (quickstart snapshot)"
STELLAR_POPS=4 STELLAR_TICK_WORKERS=1 cargo run --release -q --example quickstart >/dev/null
mv results/metrics_quickstart.json results/metrics_quickstart.pop4.json
STELLAR_POPS=4 STELLAR_TICK_WORKERS=1 cargo run --release -q --example quickstart >/dev/null
diff results/metrics_quickstart.pop4.json results/metrics_quickstart.json
STELLAR_POPS=4 STELLAR_TICK_WORKERS=8 STELLAR_PARALLEL_MIN_WORK=0 \
  cargo run --release -q --example quickstart >/dev/null
diff results/metrics_quickstart.pop4.json results/metrics_quickstart.json
rm -f results/metrics_quickstart.pop4.json

echo "==> determinism gate: 1-PoP fabric matches the legacy single-router snapshot"
STELLAR_POPS=1 cargo run --release -q --example quickstart >/dev/null
mv results/metrics_quickstart.json results/metrics_quickstart.pop1.json
cargo run --release -q --example quickstart >/dev/null
diff results/metrics_quickstart.pop1.json results/metrics_quickstart.json
rm -f results/metrics_quickstart.pop1.json

echo "==> scale_sweep smoke: regenerate BENCH_pipeline.json (cross-mode equality asserted in-run)"
STELLAR_SWEEP_SMOKE=1 cargo run --release -q -p stellar-bench --bin scale_sweep >/dev/null

echo "==> pop_placement smoke: budget-aware placement + 4-PoP watchdog episode (asserted in-run)"
cargo run --release -q -p stellar-bench --bin pop_placement >/dev/null

echo "==> rule_audit smoke: static rule-table analysis + control-plane batch audit"
cargo run --release -q -p stellar-bench --bin rule_audit >/dev/null

echo "==> rule_diff gate: semantic diff + proof obligations over adversarial fixtures"
# Every obligation (lowering exactness, ladder monotonicity, placement
# soundness) and every sabotage detection is asserted inside the binary;
# the quickstart runs above assert the placement obligation on the live
# 1-PoP and 4-PoP episodes. The artifact must be byte-identical across
# two from-scratch runs.
cargo run --release -q -p stellar-bench --bin rule_diff >/dev/null
mv results/rule_diff.json results/rule_diff.run1.json
cargo run --release -q -p stellar-bench --bin rule_diff >/dev/null
diff results/rule_diff.run1.json results/rule_diff.json

echo "==> flowspec conformance: hex wire vectors decode/re-encode byte-identically"
cargo test --release -q -p stellar-bgp --test flowspec_conformance

echo "==> flowspec_signal smoke: FlowSpec episode end-to-end (determinism asserted in-run)"
cargo run --release -q -p stellar-bench --bin flowspec_signal >/dev/null

echo "==> chaos_soak smoke: every fault class, watchdog-clean + converged (asserted in-run)"
STELLAR_CHAOS_SMOKE=1 cargo run --release -q -p stellar-bench --bin chaos_soak >/dev/null
mv results/chaos_soak.json results/chaos_soak.run1.json
STELLAR_CHAOS_SMOKE=1 cargo run --release -q -p stellar-bench --bin chaos_soak >/dev/null
diff results/chaos_soak.run1.json results/chaos_soak.json

echo "All checks passed."
