#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release -q --test fault_recovery -- --include-ignored (fault soak)"
cargo test --release -q --test fault_recovery -- --include-ignored

echo "==> determinism gate: fault_soak metrics snapshot is byte-identical across runs"
cargo run --release -q --example fault_soak >/dev/null
mv results/metrics_fault_soak.json results/metrics_fault_soak.run1.json
cargo run --release -q --example fault_soak >/dev/null
diff results/metrics_fault_soak.run1.json results/metrics_fault_soak.json
rm results/metrics_fault_soak.run1.json

echo "==> determinism gate: parallel tick pipeline matches sequential (quickstart snapshot)"
STELLAR_TICK_WORKERS=1 cargo run --release -q --example quickstart >/dev/null
mv results/metrics_quickstart.json results/metrics_quickstart.seq.json
STELLAR_TICK_WORKERS=8 cargo run --release -q --example quickstart >/dev/null
diff results/metrics_quickstart.seq.json results/metrics_quickstart.json
rm results/metrics_quickstart.seq.json

echo "==> scale_sweep smoke: regenerate BENCH_pipeline.json (cross-mode equality asserted in-run)"
STELLAR_SWEEP_SMOKE=1 cargo run --release -q -p stellar-bench --bin scale_sweep >/dev/null

echo "All checks passed."
